#ifndef UNIQOPT_OBS_METRICS_H_
#define UNIQOPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace uniqopt {
namespace obs {

/// Monotonic counter. Lock-free; safe to increment from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Settable (non-monotonic) value — current cache bytes, live entry
/// counts, and similar "what is it right now" measurements. Lock-free.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(uint64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Metric (and span) names use the dotted `<subsystem>.<object>.<measure>`
/// scheme. A name is valid when it maps onto a Prometheus-legal name
/// after the exporter replaces dots with underscores:
/// `[a-zA-Z_][a-zA-Z0-9_.:]*`.
bool IsValidMetricName(const std::string& name);

/// The closest valid name: every illegal character becomes '_' (with a
/// leading '_' when the first character is illegal). Identity on valid
/// names.
std::string CanonicalMetricName(const std::string& name);

/// Value/latency histogram with HDR-style log2 buckets (8 linear
/// sub-buckets per power of two ⇒ ≤ 12.5% relative quantile error), plus
/// exact count/sum/min/max. All updates are lock-free atomics, so
/// recording from concurrent operators or sessions needs no coordination.
class Histogram {
 public:
  static constexpr int kPrecisionBits = 3;  // 2^3 sub-buckets per octave
  static constexpr size_t kNumBuckets =
      (64 - kPrecisionBits + 1) << kPrecisionBits;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value; 0 when empty.
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;

  /// Quantile estimate by nearest rank over the buckets; `q` in [0, 1].
  /// Returns the midpoint of the bucket holding the ranked observation
  /// (exact for values < 2^kPrecisionBits). 0 when empty.
  uint64_t Quantile(double q) const;

  void Reset();

  /// Seqlock-style reset detector for snapshot-diff consumers (the
  /// windowed time-series plane): Reset() bumps the generation once on
  /// entry and once on exit, so an even, unchanged generation across a
  /// snapshot proves no reset raced it — an odd value means a reset is
  /// in flight, a changed value means one landed mid-snapshot. A window
  /// that straddles a reset is discarded instead of reporting negative
  /// deltas.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Maps a value to its bucket and back (bucket midpoint). Exposed for
  /// tests of the bucketing error bound.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(size_t index);
  /// Largest value that lands in bucket `index` (the bucket's inclusive
  /// upper bound — the `le` boundary Prometheus exposition uses).
  static uint64_t BucketUpperBound(size_t index);

  /// Occupied buckets as (inclusive upper bound, cumulative count),
  /// ascending; the Prometheus exporter appends the implicit +Inf bucket
  /// (= count()). Empty histogram ⇒ empty vector.
  std::vector<std::pair<uint64_t, uint64_t>> CumulativeBuckets() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Point-in-time counter values, used for delta reporting (EXPLAIN
/// ANALYZE shows exactly the counters one execution moved).
using CounterSnapshot = std::map<std::string, uint64_t>;

/// Counters that changed between two snapshots, as `name: +delta` lines.
std::string CounterDeltaToText(const CounterSnapshot& before,
                               const CounterSnapshot& after,
                               const std::string& indent = "  ");

/// The changed counters as a map (new counters count from zero).
CounterSnapshot CounterDelta(const CounterSnapshot& before,
                             const CounterSnapshot& after);

/// Process-wide named-metric registry. Lookup is mutex-protected and
/// returns stable references (hot paths should cache them); the metric
/// objects themselves are lock-free.
///
/// Naming scheme (see DESIGN.md §Observability):
///   <subsystem>.<object>.<measure>   e.g. ims.dli.gnp_calls,
///   rewrite.rule.SubqueryToJoin.fired, optimizer.phase.bind.ns
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The default process-wide registry.
  static MetricsRegistry& Global();

  /// Finds or creates; the reference stays valid for the registry's
  /// lifetime. Names are validated on first registration: an invalid
  /// name (see IsValidMetricName) is canonicalized with a warning, so
  /// every registered metric exports cleanly.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  CounterSnapshot Counters() const;
  /// Point-in-time gauge values, name-sorted (same shape as Counters()).
  std::map<std::string, uint64_t> Gauges() const;
  std::vector<std::string> HistogramNames() const;
  /// The histogram registered under `name`, or nullptr. Unlike
  /// GetHistogram this never creates — exporters snapshot without
  /// mutating the registry.
  const Histogram* FindHistogram(const std::string& name) const;

  /// Zeroes every metric (names stay registered).
  void ResetAll();

  /// Human-readable dump, sorted by name.
  std::string ToText() const;
  /// {"counters": {...}, "histograms": {name: {count, sum, min, max,
  ///  mean, p50, p90, p99}}}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records wall time from construction to destruction, in nanoseconds,
/// into a histogram. For latency metrics on paths benchmarks gate on
/// (scripts/bench_compare.py compares the `.ns` histograms' p50).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  /// Nanoseconds elapsed so far.
  uint64_t ElapsedNs() const;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_METRICS_H_
