// Tests for the query flight recorder: ring-buffer bounds and eviction,
// slow-query tracking, plan fingerprints, the records the optimizer and
// gateway layers emit, and — the load-bearing guarantee — that a
// concurrent workload (writers optimizing queries while a reader drains
// \history) stays consistent and retains the last K queries.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/recorder.h"
#include "test_util.h"
#include "uniqopt/optimizer.h"
#include "workload/query_corpus.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

obs::QueryRecord MakeRecord(const std::string& query, uint64_t total_ns) {
  obs::QueryRecord rec;
  rec.source = "test";
  rec.query = query;
  rec.total_ns = total_ns;
  return rec;
}

TEST(RecorderTest, RetainsLastKOldestFirst) {
  obs::QueryRecorder recorder(4);
  for (int i = 1; i <= 10; ++i) {
    recorder.Record(MakeRecord("q" + std::to_string(i), 100));
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  std::vector<obs::QueryRecord> history = recorder.History();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history[0].query, "q7");
  EXPECT_EQ(history[3].query, "q10");
  // Ids are assigned monotonically and survive eviction.
  EXPECT_EQ(history[0].id + 3, history[3].id);
}

TEST(RecorderTest, SetCapacityKeepsNewest) {
  obs::QueryRecorder recorder(8);
  for (int i = 1; i <= 6; ++i) {
    recorder.Record(MakeRecord("q" + std::to_string(i), 100));
  }
  recorder.SetCapacity(2);
  std::vector<obs::QueryRecord> history = recorder.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].query, "q5");
  EXPECT_EQ(history[1].query, "q6");
  // Growing again keeps the retained records and admits new ones.
  recorder.SetCapacity(4);
  recorder.Record(MakeRecord("q7", 100));
  EXPECT_EQ(recorder.History().size(), 3u);
}

TEST(RecorderTest, SlowQueriesHonorThreshold) {
  obs::QueryRecorder recorder;
  recorder.SetSlowThresholdNs(1000000);  // 1ms
  recorder.Record(MakeRecord("fast", 500));
  recorder.Record(MakeRecord("slow1", 2000000));
  recorder.Record(MakeRecord("fast2", 999999));
  recorder.Record(MakeRecord("slow2", 1000000));
  std::vector<obs::QueryRecord> slow = recorder.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].query, "slow1");
  EXPECT_EQ(slow[1].query, "slow2");
  // Threshold 0 disables slow tracking entirely.
  recorder.SetSlowThresholdNs(0);
  EXPECT_TRUE(recorder.SlowQueries().empty());
}

TEST(RecorderTest, ClearResetsHistoryNotIds) {
  obs::QueryRecorder recorder;
  recorder.Record(MakeRecord("a", 1));
  uint64_t first_id = recorder.History()[0].id;
  recorder.Clear();
  EXPECT_TRUE(recorder.History().empty());
  recorder.Record(MakeRecord("b", 1));
  EXPECT_GT(recorder.History()[0].id, first_id);
}

TEST(RecorderTest, StampsWallClockOnRecord) {
  obs::QueryRecorder recorder;
  recorder.Record(MakeRecord("auto", 1));
  obs::QueryRecord pre = MakeRecord("pre", 1);
  pre.wall_time_us = 1700000000000000;  // 2023-11-14T22:13:20Z
  recorder.Record(std::move(pre));

  std::vector<obs::QueryRecord> history = recorder.History();
  ASSERT_EQ(history.size(), 2u);
  // Un-stamped records get the current wall clock; pre-stamped records
  // keep their stamp.
  EXPECT_GT(history[0].wall_time_us, 1700000000000000u);
  EXPECT_EQ(history[1].wall_time_us, 1700000000000000u);
  // \history renders the stamp; the JSON dump carries both the raw
  // microseconds and the rendered form.
  EXPECT_NE(history[1].ToString().find("@2023-11-14T22:13:20Z"),
            std::string::npos)
      << history[1].ToString();
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"wall_time_us\": 1700000000000000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wall_time\": \"2023-11-14T22:13:20Z\""),
            std::string::npos)
      << json;
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(RecorderTest, StampsSteadyClockAndReturnsAssignedId) {
  obs::QueryRecorder recorder;
  uint64_t id_a = recorder.Record(MakeRecord("a", 1));
  obs::QueryRecord pre = MakeRecord("pre", 1);
  pre.steady_ns = 42;
  uint64_t id_b = recorder.Record(std::move(pre));

  // Record() returns the id it assigned — the time-series plane hands
  // this to window exemplars so alerts resolve back to \history.
  EXPECT_EQ(id_b, id_a + 1);
  std::vector<obs::QueryRecord> history = recorder.History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].id, id_a);
  EXPECT_EQ(history[1].id, id_b);
  // Un-stamped records get the monotonic clock; pre-stamped keep theirs.
  EXPECT_GT(history[0].steady_ns, 0u);
  EXPECT_EQ(history[1].steady_ns, 42u);
  // The JSON dump carries the raw nanoseconds.
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"steady_ns\": 42"), std::string::npos) << json;
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(RecorderTest, RendersNearMissSummaries) {
  obs::QueryRecorder recorder;
  obs::QueryRecord rec = MakeRecord("SELECT DISTINCT SNO FROM SUPPLIER", 1);
  rec.near_misses.push_back(
      "SUPPLIER: UNIQUE (SNO) (theorem1.distinct)");
  recorder.Record(std::move(rec));

  std::string text = recorder.ToText();
  EXPECT_NE(text.find("near-miss: SUPPLIER: UNIQUE (SNO)"),
            std::string::npos)
      << text;
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"near_misses\""), std::string::npos) << json;
  EXPECT_NE(json.find("UNIQUE (SNO)"), std::string::npos) << json;
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(FingerprintTest, StableAndDiscriminating) {
  const std::string plan = "Distinct\n  Scan SUPPLIER\n";
  EXPECT_EQ(obs::FingerprintPlanText(plan), obs::FingerprintPlanText(plan));
  EXPECT_NE(obs::FingerprintPlanText(plan),
            obs::FingerprintPlanText("Scan SUPPLIER\n"));
  EXPECT_NE(obs::FingerprintPlanText(""), 0u);
}

class RecorderIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    optimizer_ = std::make_unique<Optimizer>(&db_);
    obs::QueryRecorder::Global().Clear();
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(RecorderIntegrationTest, ExecuteRecordsPlanHashAndVerdicts) {
  // Example 1: DISTINCT provably redundant, so the record must carry
  // the RemoveRedundantDistinct verdict and the optimized plan's hash.
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer_->Prepare("SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, "
                          "PARTS P WHERE S.SNO = P.SNO"));
  ASSERT_OK(optimizer_->Execute(prepared).status());

  std::vector<obs::QueryRecord> history =
      obs::QueryRecorder::Global().History();
  ASSERT_EQ(history.size(), 1u);
  const obs::QueryRecord& rec = history[0];
  EXPECT_EQ(rec.source, "optimizer");
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.plan_hash,
            obs::FingerprintPlanText(prepared.optimized_plan->ToString()));
  EXPECT_NE(rec.plan_hash, 0u);
  bool saw_distinct_removal = false;
  for (const auto& [rule, description] : rec.rewrites) {
    if (rule == "RemoveRedundantDistinct") saw_distinct_removal = true;
  }
  EXPECT_TRUE(saw_distinct_removal);
  EXPECT_NE(rec.proof_summary.find("redundant"), std::string::npos)
      << rec.proof_summary;
  // The pipeline phases all landed, execute last.
  ASSERT_FALSE(rec.phase_ns.empty());
  EXPECT_EQ(rec.phase_ns.front().first, "parse");
  EXPECT_EQ(rec.phase_ns.back().first, "execute");
  EXPECT_GT(rec.total_ns, 0u);
  EXPECT_GT(rec.rows_out, 0u);
}

TEST_F(RecorderIntegrationTest, FailuresAreRecordedWithError) {
  EXPECT_FALSE(optimizer_->Prepare("SELECT FROM WHERE").ok());
  std::vector<obs::QueryRecord> history =
      obs::QueryRecorder::Global().History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history[0].ok);
  EXPECT_FALSE(history[0].error.empty());
}

TEST_F(RecorderIntegrationTest, EqualQueriesShareAPlanHash) {
  const std::string sql =
      "SELECT SNO FROM SUPPLIER WHERE SNO = 1";
  ASSERT_OK_AND_ASSIGN(PreparedQuery a, optimizer_->Prepare(sql));
  ASSERT_OK_AND_ASSIGN(PreparedQuery b, optimizer_->Prepare(sql));
  EXPECT_EQ(a.plan_hash, b.plan_hash);
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery c,
      optimizer_->Prepare("SELECT SNO FROM SUPPLIER WHERE SNO = 2"));
  EXPECT_NE(a.plan_hash, c.plan_hash);
}

// The ISSUE acceptance test: 4 writer threads run the workload corpus
// through the optimizer while a reader drains history/slow/json
// concurrently. Afterwards the recorder must have seen every query and
// retain exactly the last K with intact plan hashes.
TEST_F(RecorderIntegrationTest, ConcurrentWorkloadKeepsLastK) {
  constexpr int kThreads = 4;
  constexpr size_t kCapacity = 32;
  obs::QueryRecorder& recorder = obs::QueryRecorder::Global();
  recorder.SetCapacity(kCapacity);

  // Corpus queries without host variables execute cleanly end-to-end.
  std::vector<std::string> sqls;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    if (q.sql.find(':') == std::string::npos) sqls.push_back(q.sql);
  }
  ASSERT_GE(sqls.size(), 4u);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> executed{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::QueryRecord> snapshot = recorder.History();
      EXPECT_LE(snapshot.size(), kCapacity);
      // Snapshots are consistent: ids strictly increase oldest→newest
      // and every record is fully formed (no torn writes).
      for (size_t i = 1; i < snapshot.size(); ++i) {
        EXPECT_LT(snapshot[i - 1].id, snapshot[i].id);
      }
      for (const obs::QueryRecord& rec : snapshot) {
        EXPECT_FALSE(rec.query.empty());
        if (rec.ok && rec.source == "optimizer") {
          EXPECT_NE(rec.plan_hash, 0u);
        }
      }
      (void)recorder.SlowQueries();
      (void)recorder.ToJson();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread gets its own optimizer; they share db_ read-only
      // and the process-global recorder.
      Optimizer optimizer(&db_);
      // Two passes over the corpus per thread: with 4 writers that
      // guarantees more records than kCapacity, so eviction happens.
      for (size_t i = 0; i < 2 * sqls.size(); ++i) {
        const std::string& sql = sqls[(i + t) % sqls.size()];
        auto prepared = optimizer.Prepare(sql);
        ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
        auto rows = optimizer.Execute(*prepared);
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(executed.load(), 2 * kThreads * sqls.size());
  EXPECT_EQ(recorder.total_recorded(), executed.load());
  std::vector<obs::QueryRecord> history = recorder.History();
  ASSERT_EQ(history.size(), kCapacity);
  // The retained window is exactly the last K ids, in order: ids are
  // consecutive and a probe recorded now gets the very next id, so
  // history.back() was the newest record overall.
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i - 1].id + 1, history[i].id);
  }
  recorder.Record(MakeRecord("probe", 0));
  EXPECT_EQ(recorder.History().back().id, history.back().id + 1);
  Optimizer verify_optimizer(&db_);
  for (const obs::QueryRecord& rec : history) {
    ASSERT_TRUE(rec.ok) << rec.error;
    auto reprepared = verify_optimizer.Prepare(rec.query);
    ASSERT_TRUE(reprepared.ok());
    EXPECT_EQ(rec.plan_hash, reprepared->plan_hash) << rec.query;
  }
  recorder.Clear();
  recorder.SetCapacity(obs::QueryRecorder::kDefaultCapacity);
}

}  // namespace
}  // namespace uniqopt
