# Empty dependencies file for uniqopt_storage.
# This may be replaced when dependencies are built.
