#include <gtest/gtest.h>

#include "ims/gateway.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

using ims::BuildSupplierIms;
using ims::DliSession;
using ims::DliStatus;
using ims::ImsDatabase;
using ims::JoinStrategySuppliersForOem;
using ims::JoinStrategySuppliersForPart;
using ims::NestedStrategySuppliersForOem;
using ims::NestedStrategySuppliersForPart;
using ims::Ssa;

class ImsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    auto ims = BuildSupplierIms(db_);
    ASSERT_TRUE(ims.ok()) << ims.status().ToString();
    ims_ = std::move(*ims);
  }

  Database db_;
  std::unique_ptr<ImsDatabase> ims_;
};

TEST_F(ImsTest, HierarchyLoadsAllSegments) {
  // 100 suppliers + 1000 parts + 50 agents.
  EXPECT_EQ(ims_->num_segments(), 1150u);
}

TEST_F(ImsTest, GuByKeyUsesIndex) {
  DliSession dli(ims_.get());
  DliStatus st = dli.GU(Ssa::Equal("SUPPLIER", "SNO", Value::Integer(42)));
  EXPECT_EQ(st, DliStatus::kOk);
  EXPECT_EQ(dli.current()->fields[0].AsInteger(), 42);
  // Index lookup examines exactly one segment.
  EXPECT_EQ(dli.stats().segments_visited, 1u);
}

TEST_F(ImsTest, GuNotFound) {
  DliSession dli(ims_.get());
  EXPECT_EQ(dli.GU(Ssa::Equal("SUPPLIER", "SNO", Value::Integer(9999))),
            DliStatus::kNotFound);
}

TEST_F(ImsTest, GnWalksRootsInKeyOrder) {
  DliSession dli(ims_.get());
  ASSERT_EQ(dli.GU(Ssa::Unqualified("SUPPLIER")), DliStatus::kOk);
  int64_t prev = dli.current()->fields[0].AsInteger();
  size_t count = 1;
  while (dli.GN(Ssa::Unqualified("SUPPLIER")) == DliStatus::kOk) {
    int64_t sno = dli.current()->fields[0].AsInteger();
    EXPECT_GT(sno, prev);
    prev = sno;
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST_F(ImsTest, GnpIteratesChildrenOfCurrentParentOnly) {
  DliSession dli(ims_.get());
  ASSERT_EQ(dli.GU(Ssa::Equal("SUPPLIER", "SNO", Value::Integer(5))),
            DliStatus::kOk);
  size_t parts = 0;
  while (dli.GNP(Ssa::Unqualified("PARTS")) == DliStatus::kOk) {
    EXPECT_EQ(dli.current()->parent->fields[0].AsInteger(), 5);
    ++parts;
  }
  EXPECT_EQ(parts, 10u);  // parts_per_supplier
}

TEST_F(ImsTest, GnpKeyQualificationHaltsEarly) {
  DliSession dli(ims_.get());
  ASSERT_EQ(dli.GU(Ssa::Equal("SUPPLIER", "SNO", Value::Integer(5))),
            DliStatus::kOk);
  dli.ResetStats();
  // PNO = 3: twins are key-sequenced 1..10, so the scan examines 3
  // segments and stops.
  ASSERT_EQ(dli.GNP(Ssa::Equal("PARTS", "PNO", Value::Integer(3))),
            DliStatus::kOk);
  EXPECT_EQ(dli.stats().segments_visited, 3u);
  // The follow-up call sees key 4 > 3 and fails after one visit.
  ASSERT_EQ(dli.GNP(Ssa::Equal("PARTS", "PNO", Value::Integer(3))),
            DliStatus::kNotFound);
  EXPECT_EQ(dli.stats().segments_visited, 4u);
}

TEST_F(ImsTest, Example10BothStrategiesProduceSameSuppliers) {
  auto join = JoinStrategySuppliersForPart(*ims_, 4);
  auto nested = NestedStrategySuppliersForPart(*ims_, 4);
  EXPECT_EQ(join.rows.size(), 100u);  // every supplier has part 4
  EXPECT_TRUE(MultisetEquals(join.rows, nested.rows));
}

TEST_F(ImsTest, Example10NestedHalvesPartsCalls) {
  // The paper's claim: the nested strategy halves the number of DL/I
  // calls against the PARTS segment, because the join strategy's second
  // GNP per supplier always returns 'GE'.
  auto join = JoinStrategySuppliersForPart(*ims_, 4);
  auto nested = NestedStrategySuppliersForPart(*ims_, 4);
  size_t join_parts_calls = join.stats.calls_by_segment.at("PARTS");
  size_t nested_parts_calls = nested.stats.calls_by_segment.at("PARTS");
  EXPECT_EQ(join_parts_calls, 200u);    // 2 per supplier
  EXPECT_EQ(nested_parts_calls, 100u);  // 1 per supplier
}

TEST_F(ImsTest, OemVariantNestedHaltsEarly) {
  // OEM_PNO is not the sequence field: the join strategy's second GNP
  // scans all remaining twins; the nested strategy stops at the match.
  // Pick an OEM that exists (generator assigns 1..1000 sequentially).
  auto join = JoinStrategySuppliersForOem(*ims_, 37);
  auto nested = NestedStrategySuppliersForOem(*ims_, 37);
  ASSERT_EQ(join.rows.size(), 1u);  // OEM_PNO is a candidate key
  EXPECT_TRUE(MultisetEquals(join.rows, nested.rows));
  EXPECT_GT(join.stats.segments_visited, nested.stats.segments_visited);
}

TEST_F(ImsTest, InsertValidation) {
  ims::ImsDatabaseDef def;
  ims::SegmentTypeDef root;
  root.name = "R";
  root.fields = {{"K", TypeId::kInteger}};
  root.key_field = 0;
  ASSERT_OK(def.AddSegmentType(root));
  ims::SegmentTypeDef child;
  child.name = "C";
  child.fields = {{"K", TypeId::kInteger}};
  child.key_field = 0;
  child.parent = "R";
  ASSERT_OK(def.AddSegmentType(child));
  // A second root type is rejected.
  ims::SegmentTypeDef bad_root;
  bad_root.name = "R2";
  bad_root.fields = {{"K", TypeId::kInteger}};
  bad_root.key_field = 0;
  EXPECT_FALSE(def.AddSegmentType(bad_root).ok());

  ImsDatabase db(std::move(def));
  auto r1 = db.InsertRoot(Row({Value::Integer(1)}));
  ASSERT_TRUE(r1.ok());
  // Duplicate root key rejected (key-sequenced organization).
  EXPECT_FALSE(db.InsertRoot(Row({Value::Integer(1)})).ok());
  // Child under the right parent, wrong arity rejected.
  EXPECT_FALSE(
      db.InsertChild(*r1, "C", Row({Value::Integer(1), Value::Integer(2)}))
          .ok());
  ASSERT_TRUE(db.InsertChild(*r1, "C", Row({Value::Integer(2)})).ok());
}

TEST_F(ImsTest, TwinChainStaysKeyOrderedUnderRandomInserts) {
  ims::ImsDatabaseDef def;
  ims::SegmentTypeDef root;
  root.name = "R";
  root.fields = {{"K", TypeId::kInteger}};
  root.key_field = 0;
  ASSERT_OK(def.AddSegmentType(root));
  ims::SegmentTypeDef child;
  child.name = "C";
  child.fields = {{"K", TypeId::kInteger}};
  child.key_field = 0;
  child.parent = "R";
  ASSERT_OK(def.AddSegmentType(child));
  ImsDatabase db(std::move(def));
  auto r = db.InsertRoot(Row({Value::Integer(1)}));
  ASSERT_TRUE(r.ok());
  for (int64_t k : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(db.InsertChild(*r, "C", Row({Value::Integer(k)})).ok());
  }
  DliSession dli(&db);
  ASSERT_EQ(dli.GU(Ssa::Equal("R", "K", Value::Integer(1))), DliStatus::kOk);
  std::vector<int64_t> keys;
  while (dli.GNP(Ssa::Unqualified("C")) == DliStatus::kOk) {
    keys.push_back(dli.current()->fields[0].AsInteger());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

}  // namespace
}  // namespace uniqopt
