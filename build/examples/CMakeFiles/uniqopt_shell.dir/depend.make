# Empty dependencies file for uniqopt_shell.
# This may be replaced when dependencies are built.
