#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace uniqopt {
namespace obs {

namespace {

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
    return true;
  }
  if (first) return false;
  return (c >= '0' && c <= '9') || c == '.' || c == ':';
}

}  // namespace

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (!IsMetricNameChar(name[i], i == 0)) return false;
  }
  return true;
}

std::string CanonicalMetricName(const std::string& name) {
  if (name.empty()) return "_";
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    if (!IsMetricNameChar(out[i], /*first=*/false)) out[i] = '_';
  }
  if (!IsMetricNameChar(out[0], /*first=*/true)) out[0] = '_';
  return out;
}

namespace {

/// Lock-free monotone update: keep the extremum.
void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value < cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (value > cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  constexpr int P = kPrecisionBits;
  if (value < (uint64_t{1} << P)) return static_cast<size_t>(value);
  int k = 63 - std::countl_zero(value);  // position of the leading 1; k >= P
  uint64_t sub = (value >> (k - P)) & ((uint64_t{1} << P) - 1);
  return ((static_cast<size_t>(k) - P + 1) << P) + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  constexpr int P = kPrecisionBits;
  if (index < (size_t{1} << P)) return index;  // exact range
  int k = static_cast<int>(index >> P) + P - 1;
  uint64_t sub = index & ((uint64_t{1} << P) - 1);
  uint64_t low = ((uint64_t{1} << P) + sub) << (k - P);
  uint64_t width = uint64_t{1} << (k - P);
  return low + width / 2;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  constexpr int P = kPrecisionBits;
  if (index < (size_t{1} << P)) return index;  // exact range
  int k = static_cast<int>(index >> P) + P - 1;
  uint64_t sub = index & ((uint64_t{1} << P) - 1);
  uint64_t low = ((uint64_t{1} << P) + sub) << (k - P);
  uint64_t width = uint64_t{1} << (k - P);
  return low + width - 1;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::CumulativeBuckets()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  uint64_t running = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    running += n;
    out.emplace_back(BucketUpperBound(i), running);
  }
  return out;
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the ceil(q*n)-th observation (1-based). The clamps
  // make the n == 1 case exact for every q and keep q = 0 well-defined.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      uint64_t mid = BucketMidpoint(i);
      // Clamp into the observed range so q=0 / q=1 report exact ends.
      if (mid < min()) mid = min();
      if (mid > max()) mid = max();
      return mid;
    }
  }
  return max();
}

void Histogram::Reset() {
  // Odd generation = reset in flight; +2 overall per reset. Snapshot
  // consumers re-read the generation around their reads and discard the
  // interval when it moved or is odd.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

std::string CounterDeltaToText(const CounterSnapshot& before,
                               const CounterSnapshot& after,
                               const std::string& indent) {
  std::string out;
  for (const auto& [name, delta] : CounterDelta(before, after)) {
    out += indent + name + ": +" + std::to_string(delta) + "\n";
  }
  return out;
}

CounterSnapshot CounterDelta(const CounterSnapshot& before,
                             const CounterSnapshot& after) {
  CounterSnapshot delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    uint64_t prev = it == before.end() ? 0 : it->second;
    if (value > prev) delta[name] = value - prev;
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// Registration-time name check: an invalid name is canonicalized (and
/// warned about once) instead of poisoning the export plane.
std::string ValidatedName(const std::string& name) {
  if (IsValidMetricName(name)) return name;
  std::string fixed = CanonicalMetricName(name);
  UNIQOPT_LOG(kWarning) << "invalid metric name \"" << name
                        << "\" registered as \"" << fixed << "\"";
  return fixed;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(ValidatedName(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(ValidatedName(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(ValidatedName(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

CounterSnapshot MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  CounterSnapshot out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, uint64_t> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, hist] : histograms_) out.push_back(name);
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += name + " = " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " = " + std::to_string(gauge->value()) + " (gauge)\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " = {count=" + std::to_string(h->count()) +
           " min=" + std::to_string(h->min()) +
           " p50=" + std::to_string(h->Quantile(0.5)) +
           " p90=" + std::to_string(h->Quantile(0.9)) +
           " p99=" + std::to_string(h->Quantile(0.99)) +
           " max=" + std::to_string(h->max()) + "}\n";
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {";
    out += "\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + std::to_string(h->sum());
    out += ", \"min\": " + std::to_string(h->min());
    out += ", \"max\": " + std::to_string(h->max());
    out += ", \"mean\": " + std::to_string(h->mean());
    out += ", \"p50\": " + std::to_string(h->Quantile(0.5));
    out += ", \"p90\": " + std::to_string(h->Quantile(0.9));
    out += ", \"p99\": " + std::to_string(h->Quantile(0.99));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(NowNs()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (histogram_ != nullptr) histogram_->Record(ElapsedNs());
}

uint64_t ScopedLatencyTimer::ElapsedNs() const {
  return NowNs() - start_ns_;
}

}  // namespace obs
}  // namespace uniqopt
