file(REMOVE_RECURSE
  "CMakeFiles/bench_ims_gateway.dir/bench_ims_gateway.cc.o"
  "CMakeFiles/bench_ims_gateway.dir/bench_ims_gateway.cc.o.d"
  "bench_ims_gateway"
  "bench_ims_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ims_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
