// Experiments X12–X15: the §7 future-work extensions implemented on top
// of the paper's machinery.
//
//  - X12 JoinElimination_*: inclusion-dependency join pruning (King) —
//    the FK join to SUPPLIER disappears entirely.
//  - X13 SemanticPredicate_*: true-interpreted predicate reasoning —
//    implied conjuncts dropped, contradictions short-circuit to an
//    empty plan without scanning.
//  - X14 GroupByOnKey_*: single-row-group aggregation collapses into a
//    projection.
//  - X15 GatewayPolicy_*: the generic SQL→DL/I translator executing the
//    same query under the relational ("always join") policy vs the
//    uniqueness-gated join→subquery policy (§6.1 through the generic
//    gateway rather than the hand-coded Example 10 programs).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ims/translator.h"

namespace uniqopt {
namespace bench {
namespace {

// ----------------------------------------------------- X12 join elimination
void BM_JoinElimination_Off(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(
      db, "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
          "WHERE P.SNO = S.SNO");
  RewriteOptions opts;
  opts.join_elimination = false;
  plan = MustRewrite(plan, opts);
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_JoinElimination_Off)->Arg(1000)->Arg(5000);

void BM_JoinElimination_On(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(
      db, "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
          "WHERE P.SNO = S.SNO");
  plan = MustRewrite(plan);
  UNIQOPT_DCHECK_MSG(plan->ToString().find("SUPPLIER") == std::string::npos,
                     "join elimination did not fire");
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_JoinElimination_On)->Arg(1000)->Arg(5000);

// ------------------------------------------------ X13 semantic predicates
void BM_SemanticPredicate_ImpliedKept(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(
      db, "SELECT P.PNO FROM PARTS P WHERE P.SNO >= 1 AND "
          "P.COLOR = 'RED'");
  RewriteOptions opts;
  opts.semantic_predicates = false;
  plan = MustRewrite(plan, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustExecute(plan, db));
  }
}
BENCHMARK(BM_SemanticPredicate_ImpliedKept)->Arg(5000);

void BM_SemanticPredicate_ImpliedDropped(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(
      db, "SELECT P.PNO FROM PARTS P WHERE P.SNO >= 1 AND "
          "P.COLOR = 'RED'");
  plan = MustRewrite(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustExecute(plan, db));
  }
}
BENCHMARK(BM_SemanticPredicate_ImpliedDropped)->Arg(5000);

void BM_SemanticPredicate_ContradictionScan(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(db, "SELECT SNAME FROM SUPPLIER WHERE SNO > " +
                                  std::to_string(state.range(0) + 1));
  RewriteOptions opts;
  opts.semantic_predicates = false;
  plan = MustRewrite(plan, opts);
  ExecStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustExecute(plan, db, {}, &stats));
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
}
BENCHMARK(BM_SemanticPredicate_ContradictionScan)->Arg(5000);

void BM_SemanticPredicate_ContradictionEmpty(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 20);
  PlanPtr plan = MustBind(db, "SELECT SNAME FROM SUPPLIER WHERE SNO > " +
                                  std::to_string(state.range(0) + 1));
  plan = MustRewrite(plan);
  ExecStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustExecute(plan, db, {}, &stats));
  }
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
}
BENCHMARK(BM_SemanticPredicate_ContradictionEmpty)->Arg(5000);

// ------------------------------------------------- X14 group-by on a key
void BM_GroupByOnKey_HashAggregate(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 10);
  PlanPtr plan = MustBind(
      db, "SELECT SNO, SUM(BUDGET) FROM SUPPLIER GROUP BY SNO");
  RewriteOptions opts;
  opts.group_by_elimination = false;
  plan = MustRewrite(plan, opts);
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_GroupByOnKey_HashAggregate)->Arg(5000)->Arg(20000);

void BM_GroupByOnKey_Projection(benchmark::State& state) {
  const Database& db = GetSupplierDb(static_cast<size_t>(state.range(0)), 10);
  PlanPtr plan = MustBind(
      db, "SELECT SNO, SUM(BUDGET) FROM SUPPLIER GROUP BY SNO");
  plan = MustRewrite(plan);
  UNIQOPT_DCHECK_MSG(As<ProjectNode>(plan) != nullptr &&
                         plan->ToString().find("Aggregate") ==
                             std::string::npos,
                     "group-by elimination did not fire");
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_GroupByOnKey_Projection)->Arg(5000)->Arg(20000);

// ------------------------------------------------- X15 gateway policies
const ims::ImsDatabase& GetIms(size_t suppliers) {
  static std::map<size_t, std::unique_ptr<ims::ImsDatabase>>* cache =
      new std::map<size_t, std::unique_ptr<ims::ImsDatabase>>();
  auto it = cache->find(suppliers);
  if (it != cache->end()) return *it->second;
  auto built = ims::BuildSupplierIms(GetSupplierDb(suppliers, 20));
  UNIQOPT_DCHECK_MSG(built.ok(), built.status().ToString().c_str());
  const ims::ImsDatabase& ref = **built;
  cache->emplace(suppliers, std::move(*built));
  return ref;
}

void RunGateway(benchmark::State& state, bool nested_policy) {
  size_t suppliers = static_cast<size_t>(state.range(0));
  const Database& db = GetSupplierDb(suppliers, 20);
  const ims::ImsDatabase& ims_db = GetIms(suppliers);
  PlanPtr plan = MustBind(
      db, "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
          "WHERE S.SNO = P.SNO AND P.PNO = 7");
  if (nested_policy) {
    RewriteOptions opts;
    opts.join_to_subquery = true;
    opts.subquery_to_join = false;
    opts.subquery_to_distinct_join = false;
    opts.join_elimination = false;
    plan = MustRewrite(plan, opts);
  }
  auto program = ims::TranslatePlan(ims_db, plan);
  UNIQOPT_DCHECK_MSG(program.ok(), program.status().ToString().c_str());
  ims::GatewayResult result;
  for (auto _ : state) {
    result = ims::RunProgram(ims_db, *program);
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.counters["rows"] = static_cast<double>(result.rows.size());
  state.counters["parts_calls"] =
      static_cast<double>(result.stats.calls_by_segment.at("PARTS"));
}

void BM_GatewayPolicy_AlwaysJoin(benchmark::State& state) {
  RunGateway(state, /*nested_policy=*/false);
}
BENCHMARK(BM_GatewayPolicy_AlwaysJoin)->Arg(1000)->Arg(5000);

void BM_GatewayPolicy_UniquenessNested(benchmark::State& state) {
  RunGateway(state, /*nested_policy=*/true);
}
BENCHMARK(BM_GatewayPolicy_UniquenessNested)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
