// Quickstart for the uniqopt library: build the paper's supplier
// database, ask whether a DISTINCT is redundant (Theorem 1 / Algorithm
// 1), rewrite the query, and execute both plans to compare the work.
//
//   $ quickstart
//
// The query is Example 1 of the paper: the DISTINCT is provably
// unnecessary because the projection covers the keys of both tables
// given the join predicate.

#include <cstdio>

#include "analysis/uniqueness.h"
#include "exec/planner.h"
#include "plan/binder.h"
#include "rewrite/rewriter.h"
#include "workload/supplier_schema.h"

namespace {

int Run() {
  using namespace uniqopt;

  // 1. Create the Figure 1 schema and load synthetic data.
  Database db;
  SupplierSchemaOptions schema_opts;
  Status st = CreateSupplierSchema(&db, schema_opts);
  if (!st.ok()) {
    std::fprintf(stderr, "schema: %s\n", st.ToString().c_str());
    return 1;
  }
  SupplierDataOptions data_opts;
  data_opts.num_suppliers = 200;
  data_opts.parts_per_supplier = 40;
  st = PopulateSupplierDatabase(&db, data_opts);
  if (!st.ok()) {
    std::fprintf(stderr, "data: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Parse and bind Example 1.
  const char* sql =
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
  std::printf("query:\n  %s\n\n", sql);
  Binder binder(&db.catalog());
  auto bound = binder.BindSql(sql);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("logical plan:\n%s\n", bound->plan->ToString().c_str());

  // 3. Run Algorithm 1 and show its trace (compare the paper's Ex. 5).
  auto verdict = AnalyzeDistinctAlgorithm1(bound->plan);
  if (!verdict.ok()) {
    std::fprintf(stderr, "analyze: %s\n",
                 verdict.status().ToString().c_str());
    return 1;
  }
  std::printf("Algorithm 1 trace:\n");
  for (const std::string& line : verdict->trace) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("verdict: DISTINCT is %s\n\n",
              verdict->distinct_unnecessary ? "UNNECESSARY" : "required");

  // 4. Rewrite and execute both plans, comparing the sort work.
  auto rewritten = RewritePlan(bound->plan);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  for (const AppliedRewrite& r : rewritten->applied) {
    std::printf("applied rewrite: %s — %s\n",
                RewriteRuleIdToString(r.rule), r.description.c_str());
  }

  ExecContext before_ctx;
  ExecContext after_ctx;
  auto before = ExecutePlan(bound->plan, db, &before_ctx);
  auto after = ExecutePlan(rewritten->plan, db, &after_ctx);
  if (!before.ok() || !after.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("\noriginal plan:  %zu rows, stats: %s\n", before->size(),
              before_ctx.stats.ToString().c_str());
  std::printf("rewritten plan: %zu rows, stats: %s\n", after->size(),
              after_ctx.stats.ToString().c_str());
  std::printf(
      "\nsort comparisons avoided by removing the DISTINCT: %zu\n",
      before_ctx.stats.sort_comparisons - after_ctx.stats.sort_comparisons);
  return 0;
}

}  // namespace

int main() { return Run(); }
