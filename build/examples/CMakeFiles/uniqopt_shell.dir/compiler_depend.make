# Empty compiler generated dependencies file for uniqopt_shell.
# This may be replaced when dependencies are built.
