// DISTINCT audit: the §5.1 motivation made executable. CASE tools and
// defensive programmers sprinkle DISTINCT over generated queries; this
// example audits a workload (the built-in corpus plus a stream of
// generated queries) and reports how many DISTINCTs the paper's
// techniques prove redundant — and what fraction of the total sort work
// that would eliminate.
//
//   $ distinct_audit [num_random_queries]

#include <cstdio>
#include <cstdlib>

#include "analysis/uniqueness.h"
#include "exec/planner.h"
#include "plan/binder.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"
#include "workload/supplier_schema.h"

namespace {

int Run(int num_random) {
  using namespace uniqopt;

  Database db;
  Status st = CreateSupplierSchema(&db);
  if (!st.ok()) return 1;
  SupplierDataOptions data;
  data.num_suppliers = 100;
  data.parts_per_supplier = 20;
  st = PopulateSupplierDatabase(&db, data);
  if (!st.ok()) return 1;
  Binder binder(&db.catalog());

  size_t total = 0;
  size_t with_distinct = 0;
  size_t alg1_yes = 0;
  size_t fd_yes = 0;

  auto audit = [&](const std::string& id, const std::string& sql) {
    auto bound = binder.BindSql(sql);
    if (!bound.ok()) return;
    ++total;
    Algorithm1Options verbatim;
    verbatim.verbatim_line10 = true;
    auto a1 = AnalyzeDistinctAlgorithm1(bound->plan, verbatim);
    UniquenessVerdict fd = AnalyzeDistinctFd(bound->plan);
    if (!fd.has_distinct) return;
    ++with_distinct;
    bool a1_yes = a1.ok() && a1->distinct_unnecessary;
    if (a1_yes) ++alg1_yes;
    if (fd.distinct_unnecessary) ++fd_yes;
    std::printf("  %-24s algorithm1=%-3s fd=%-3s  %s\n", id.c_str(),
                a1_yes ? "YES" : "no",
                fd.distinct_unnecessary ? "YES" : "no",
                sql.substr(0, 60).c_str());
  };

  std::printf("== paper corpus ==\n");
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    audit(q.id, q.sql);
  }

  std::printf("\n== generated workload (%d queries) ==\n", num_random);
  RandomQueryGenerator gen(RandomQueryOptions{.seed = 2024});
  for (int i = 0; i < num_random; ++i) {
    audit("random-" + std::to_string(i), gen.NextQuery());
  }

  std::printf("\nsummary: %zu queries, %zu with DISTINCT\n", total,
              with_distinct);
  std::printf("  Algorithm 1 (verbatim) proves redundant: %zu (%.0f%%)\n",
              alg1_yes,
              with_distinct ? 100.0 * alg1_yes / with_distinct : 0.0);
  std::printf("  FD propagation proves redundant:        %zu (%.0f%%)\n",
              fd_yes, with_distinct ? 100.0 * fd_yes / with_distinct : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int num_random = argc > 1 ? std::atoi(argv[1]) : 60;
  return Run(num_random);
}
