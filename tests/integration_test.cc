// End-to-end scenarios through the Optimizer facade, including a
// machine-checked index of every worked example in the paper.

#include <gtest/gtest.h>

#include "test_util.h"
#include "uniqopt/uniqopt.h"

namespace uniqopt {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(MakeTestSupplierDatabase(&db_));
    optimizer_ = std::make_unique<Optimizer>(&db_);
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(IntegrationTest, PrepareExecuteRoundTrip) {
  auto prepared = optimizer_->Prepare(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PN");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_FALSE(prepared->rewrites.empty());
  auto rows = optimizer_->Execute(*prepared, {{"PN", Value::Integer(3)}});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 100u);
}

TEST_F(IntegrationTest, UnboundHostVariableRejected) {
  auto prepared = optimizer_->Prepare(
      "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :X");
  ASSERT_TRUE(prepared.ok());
  auto rows = optimizer_->Execute(*prepared);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  auto unknown =
      optimizer_->Execute(*prepared, {{"Y", Value::Integer(1)}});
  EXPECT_FALSE(unknown.ok());
}

TEST_F(IntegrationTest, ExplainMentionsRewrites) {
  auto prepared = optimizer_->Prepare(
      "SELECT SNO FROM SUPPLIER EXCEPT SELECT SNO FROM AGENTS");
  ASSERT_TRUE(prepared.ok());
  std::string explain = prepared->Explain();
  EXPECT_NE(explain.find("ExceptToNotExists"), std::string::npos) << explain;
  EXPECT_NE(explain.find("NotExists"), std::string::npos);
}

TEST_F(IntegrationTest, AnalyzeSqlDiagnostic) {
  auto verdict = optimizer_->AnalyzeSql(
      "SELECT DISTINCT SNO, SNAME FROM SUPPLIER");
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->has_distinct);
  EXPECT_TRUE(verdict->distinct_unnecessary);
}

TEST_F(IntegrationTest, OptimizedPlansReturnSameRowsAsOriginal) {
  const char* queries[] = {
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
      "INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' "
      "OR A.ACITY = 'Hull'",
      "SELECT SNO FROM SUPPLIER EXCEPT ALL SELECT SNO FROM AGENTS",
  };
  for (const char* sql : queries) {
    auto prepared = optimizer_->Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql;
    ExecContext ctx1;
    ExecContext ctx2;
    auto original = ExecutePlan(prepared->original_plan, db_, &ctx1);
    auto optimized = ExecutePlan(prepared->optimized_plan, db_, &ctx2);
    ASSERT_TRUE(original.ok()) << sql;
    ASSERT_TRUE(optimized.ok()) << sql;
    EXPECT_TRUE(MultisetEquals(*original, *optimized)) << sql;
  }
}

/// The per-example index: every worked example in the paper, the
/// component that reproduces it, and its expected analyzer/rewriter
/// outcome, executed end to end.
struct PaperExample {
  const char* id;
  const char* sql;
  /// Rule expected to fire (or none).
  std::optional<RewriteRuleId> expected_rule;
};

TEST_F(IntegrationTest, PaperExampleIndex) {
  const PaperExample examples[] = {
      {"example1 (§1)",
       "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
       RewriteRuleId::kRemoveRedundantDistinct},
      {"example2 (§1)",
       "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
       std::nullopt},
      {"example4 (§3)",
       "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, "
       "PARTS P WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO",
       RewriteRuleId::kRemoveRedundantDistinct},
      {"example6 (§5.1)",
       "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, "
       "PARTS P WHERE S.SNAME = :SUPPLIER_NAME AND S.SNO = P.SNO",
       RewriteRuleId::kRemoveRedundantDistinct},
      {"example7 (§5.2)",
       "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE "
       "S.SNAME = :SUPPLIER_NAME AND EXISTS (SELECT * FROM PARTS P "
       "WHERE S.SNO = P.SNO AND P.PNO = :PART_NO)",
       RewriteRuleId::kSubqueryToJoin},
      {"example8 (§5.2)",
       "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
       "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
       RewriteRuleId::kSubqueryToDistinctJoin},
      {"example9 (§5.3)",
       "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
       "INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE "
       "A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
       RewriteRuleId::kIntersectToExists},
  };
  for (const PaperExample& ex : examples) {
    auto prepared = optimizer_->Prepare(ex.sql);
    ASSERT_TRUE(prepared.ok()) << ex.id << ": "
                               << prepared.status().ToString();
    if (ex.expected_rule.has_value()) {
      bool fired = false;
      for (const AppliedRewrite& r : prepared->rewrites) {
        fired = fired || r.rule == *ex.expected_rule;
      }
      EXPECT_TRUE(fired) << ex.id << " expected "
                         << RewriteRuleIdToString(*ex.expected_rule)
                         << "\n"
                         << prepared->Explain();
    } else {
      EXPECT_TRUE(prepared->rewrites.empty())
          << ex.id << " expected no rewrite\n"
          << prepared->Explain();
    }
  }
}

TEST_F(IntegrationTest, FreshDatabaseViaDdlAndFacade) {
  // Build a new schema purely through SQL and use the facade end to end.
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE EMP (ENO INTEGER NOT NULL, DNO INTEGER NOT NULL, "
      "NAME VARCHAR(20), PRIMARY KEY (ENO))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE DEPT (DNO INTEGER NOT NULL, DNAME VARCHAR(20), "
      "PRIMARY KEY (DNO))"));
  ASSERT_OK_AND_ASSIGN(Table * emp, db.GetTable("EMP"));
  ASSERT_OK_AND_ASSIGN(Table * dept, db.GetTable("DEPT"));
  for (int64_t d = 1; d <= 3; ++d) {
    ASSERT_OK(dept->InsertValues(
        {Value::Integer(d), Value::String("DEPT-" + std::to_string(d))}));
  }
  for (int64_t e = 1; e <= 9; ++e) {
    ASSERT_OK(emp->InsertValues({Value::Integer(e),
                                 Value::Integer(1 + e % 3),
                                 Value::String("E" + std::to_string(e))}));
  }
  Optimizer opt(&db);
  auto prepared = opt.Prepare(
      "SELECT DISTINCT E.ENO, E.NAME, D.DNAME FROM EMP E, DEPT D "
      "WHERE E.DNO = D.DNO");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // ENO is EMP's key; DEPT's key DNO is bound via E.DNO = D.DNO and
  // ENO → DNO... it is NOT: DNO of D is equated to E.DNO which is
  // functionally determined by ENO. Algorithm 1 misses this (V lacks
  // D.DNO) but the FD detector finds it.
  auto fired = prepared->rewrites;
  bool removed = false;
  for (const AppliedRewrite& r : fired) {
    removed = removed || r.rule == RewriteRuleId::kRemoveRedundantDistinct;
  }
  EXPECT_TRUE(removed) << prepared->Explain();
  auto rows = opt.Execute(*prepared);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  EXPECT_FALSE(HasDuplicates(*rows));
}

}  // namespace
}  // namespace uniqopt
