#include "exec/profile.h"

#include <chrono>

namespace uniqopt {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatNs(uint64_t ns) {
  if (ns >= 1000000) {
    return std::to_string(ns / 1000000) + "." +
           std::to_string(ns / 100000 % 10) + "ms";
  }
  if (ns >= 1000) {
    return std::to_string(ns / 1000) + "." + std::to_string(ns / 100 % 10) +
           "us";
  }
  return std::to_string(ns) + "ns";
}

}  // namespace

size_t ExecProfile::Reserve(int depth) {
  OpProfile op;
  op.depth = depth;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void ExecProfile::SetName(size_t slot, std::string name) {
  ops_.at(slot).name = std::move(name);
}

uint64_t ExecProfile::RowsIn(size_t slot) const {
  uint64_t rows = 0;
  int depth = ops_.at(slot).depth;
  for (size_t i = slot + 1; i < ops_.size() && ops_[i].depth > depth; ++i) {
    if (ops_[i].depth == depth + 1) rows += ops_[i].rows_out;
  }
  return rows;
}

uint64_t ExecProfile::SelfTimeNs(size_t slot) const {
  uint64_t children = 0;
  int depth = ops_.at(slot).depth;
  for (size_t i = slot + 1; i < ops_.size() && ops_[i].depth > depth; ++i) {
    if (ops_[i].depth == depth + 1) children += ops_[i].time_ns;
  }
  uint64_t total = ops_[slot].time_ns;
  return children > total ? 0 : total - children;
}

void ExecProfile::SetParallel(unsigned dop, size_t batch_size,
                              std::vector<WorkerProfile> workers) {
  parallel_dop_ = dop;
  parallel_batch_size_ = batch_size;
  workers_ = std::move(workers);
}

std::string ExecProfile::ToText() const {
  std::string out;
  if (parallel_dop_ > 0) {
    out += "  Gather  dop=" + std::to_string(parallel_dop_) +
           " batch_size=" + std::to_string(parallel_batch_size_) + "\n";
    for (size_t w = 0; w < workers_.size(); ++w) {
      const WorkerProfile& wp = workers_[w];
      out += "    worker " + std::to_string(w) +
             ": morsels=" + std::to_string(wp.morsels) +
             " rows=" + std::to_string(wp.rows) +
             " busy=" + FormatNs(wp.busy_ns) + "\n";
    }
  }
  for (size_t i = 0; i < ops_.size(); ++i) {
    const OpProfile& op = ops_[i];
    out += std::string(static_cast<size_t>(op.depth) * 2 + 2, ' ');
    out += op.name.empty() ? "(unnamed)" : op.name;
    out += "  rows_in=" + std::to_string(RowsIn(i));
    out += " rows_out=" + std::to_string(op.rows_out);
    out += " time=" + FormatNs(op.time_ns);
    out += " (self " + FormatNs(SelfTimeNs(i)) + ")";
    out += "\n";
  }
  return out;
}

ProfileOp::ProfileOp(OperatorPtr child, ExecProfile* profile, size_t slot)
    : Operator(child->schema()),
      child_(std::move(child)),
      profile_(profile),
      slot_(slot) {}

Status ProfileOp::Open(ExecContext* ctx) {
  uint64_t start = NowNs();
  Status status = child_->Open(ctx);
  profile_->op(slot_).time_ns += NowNs() - start;
  return status;
}

Result<bool> ProfileOp::Next(ExecContext* ctx, Row* row) {
  uint64_t start = NowNs();
  Result<bool> produced = child_->Next(ctx, row);
  OpProfile& op = profile_->op(slot_);
  op.time_ns += NowNs() - start;
  ++op.next_calls;
  if (produced.ok() && *produced) ++op.rows_out;
  return produced;
}

Result<bool> ProfileOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  uint64_t start = NowNs();
  Result<bool> produced = child_->NextBatch(ctx, out);
  OpProfile& op = profile_->op(slot_);
  op.time_ns += NowNs() - start;
  ++op.next_calls;
  if (produced.ok() && *produced) op.rows_out += out->size();
  return produced;
}

void ProfileOp::Close() {
  uint64_t start = NowNs();
  child_->Close();
  profile_->op(slot_).time_ns += NowNs() - start;
}

}  // namespace uniqopt
