// Transactional DML plane: INSERT/UPDATE/DELETE semantics, atomic
// rollback on constraint violations (the failed statement leaves the
// committed version byte-identical), CREATE UNIQUE INDEX validation of
// existing rows, catalog-version bumps that invalidate the plan cache,
// and the index-backed Table::ContainsKeyValue / advisor-purge
// satellites.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/advisor.h"
#include "txn/dml.h"
#include "txn/dml_executor.h"
#include "uniqopt/uniqopt.h"
#include "workload/supplier_schema.h"

#include "test_util.h"

namespace uniqopt {
namespace {

std::vector<Row> SnapshotRows(const Database& db, const std::string& table) {
  auto t = db.GetTable(table);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  TableSnapshot snap = (*t)->Snapshot();
  return snap->rows;
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].NullSafeEquals(b[i])) return false;
  }
  return true;
}

Result<txn::DmlResult> Dml(Database* db, const std::string& sql) {
  txn::DmlExecutor executor(db);
  return executor.ExecuteSql(sql);
}

TEST(DmlTest, IsDmlSqlClassifiesLeadingKeyword) {
  EXPECT_TRUE(txn::IsDmlSql("INSERT INTO T VALUES (1)"));
  EXPECT_TRUE(txn::IsDmlSql("  update t set a = 1"));
  EXPECT_TRUE(txn::IsDmlSql("Delete FROM T"));
  EXPECT_FALSE(txn::IsDmlSql("SELECT * FROM T"));
  EXPECT_FALSE(txn::IsDmlSql("CREATE UNIQUE INDEX I ON T (A)"));
}

TEST(DmlTest, InsertAppendsRowAndBumpsCatalogVersion) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  uint64_t before = db.catalog().version();
  size_t rows_before = SnapshotRows(db, "SUPPLIER").size();
  ASSERT_OK_AND_ASSIGN(
      txn::DmlResult r,
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (401, 'NEWCO', 'Toronto', 5.0, "
          "'Active')"));
  EXPECT_EQ(r.rows_affected, 1u);
  EXPECT_EQ(SnapshotRows(db, "SUPPLIER").size(), rows_before + 1);
  EXPECT_GT(db.catalog().version(), before);
  // The fresh row is queryable and unique-index reachable.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> got,
      RunSql(db, "SELECT SNAME FROM SUPPLIER WHERE SNO = 401"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][0].AsString(), "NEWCO");
}

TEST(DmlTest, InsertWithExplicitColumnsFillsRestWithNull) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  ASSERT_OK(Dml(&db, "INSERT INTO SUPPLIER (SNO, SNAME) VALUES (402, 'P')")
                .status());
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> got,
      RunSql(db, "SELECT SNO, SNAME FROM SUPPLIER WHERE SNO = 402"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][1].AsString(), "P");
}

TEST(DmlTest, MultiRowInsertRollsBackAtomicallyOnDuplicate) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<Row> before = SnapshotRows(db, "SUPPLIER");
  uint64_t version_before = db.catalog().version();
  // Second row collides with the first INSIDE the same statement: the
  // first row must not survive.
  auto r = Dml(&db,
               "INSERT INTO SUPPLIER VALUES "
               "(410, 'A', 'Toronto', 1.0, 'Active'), "
               "(410, 'B', 'Chicago', 2.0, 'Active')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation)
      << r.status().ToString();
  EXPECT_TRUE(SameRows(before, SnapshotRows(db, "SUPPLIER")));
  EXPECT_EQ(db.catalog().version(), version_before);
}

TEST(DmlTest, InsertDuplicateOfCommittedKeyRollsBack) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<Row> before = SnapshotRows(db, "SUPPLIER");
  // SNO 1 is seeded.
  auto r = Dml(
      &db, "INSERT INTO SUPPLIER VALUES (1, 'X', 'Toronto', 1.0, 'Active')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(SameRows(before, SnapshotRows(db, "SUPPLIER")));
}

TEST(DmlTest, InsertEnforcesNotNullAndCheckConstraints) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<Row> before = SnapshotRows(db, "SUPPLIER");
  // SNO is NOT NULL.
  EXPECT_FALSE(
      Dml(&db,
          "INSERT INTO SUPPLIER (SNAME) VALUES ('GHOST')")
          .ok());
  // CHECK (SNO BETWEEN 1 AND 499).
  EXPECT_FALSE(
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (1000, 'X', 'Toronto', 1.0, "
          "'Active')")
          .ok());
  EXPECT_TRUE(SameRows(before, SnapshotRows(db, "SUPPLIER")));
}

TEST(DmlTest, InsertEnforcesForeignKey) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  // Supplier 400 does not exist (100 seeded).
  auto r = Dml(&db,
               "INSERT INTO PARTS VALUES (400, 1, 'WIDGET', 7777, 'RED')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  // After inserting the parent, the same child row commits.
  ASSERT_OK(
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (400, 'P', 'Toronto', 1.0, 'Active')")
          .status());
  EXPECT_OK(
      Dml(&db, "INSERT INTO PARTS VALUES (400, 1, 'WIDGET', 7777, 'RED')")
          .status());
}

TEST(DmlTest, UpdateEvaluatesSourcesAgainstOldRow) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  ASSERT_OK(
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (420, 'OLD', 'Toronto', 1.0, "
          "'Active')")
          .status());
  ASSERT_OK_AND_ASSIGN(
      txn::DmlResult r,
      Dml(&db, "UPDATE SUPPLIER SET SNAME = SCITY, SCITY = 'Chicago' "
               "WHERE SNO = 420"));
  EXPECT_EQ(r.rows_affected, 1u);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> got,
      RunSql(db, "SELECT SNAME, SCITY FROM SUPPLIER WHERE SNO = 420"));
  ASSERT_EQ(got.size(), 1u);
  // SNAME took the OLD SCITY, not the simultaneously-assigned one.
  EXPECT_EQ(got[0][0].AsString(), "Toronto");
  EXPECT_EQ(got[0][1].AsString(), "Chicago");
}

TEST(DmlTest, UpdateIntoDuplicateKeyRollsBackByteIdentical) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<Row> before = SnapshotRows(db, "SUPPLIER");
  uint64_t version_before = db.catalog().version();
  auto r = Dml(&db, "UPDATE SUPPLIER SET SNO = 1 WHERE SNO = 2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(SameRows(before, SnapshotRows(db, "SUPPLIER")));
  EXPECT_EQ(db.catalog().version(), version_before);
}

TEST(DmlTest, ZeroRowUpdateAndDeleteDoNotBumpCatalog) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  uint64_t before = db.catalog().version();
  ASSERT_OK_AND_ASSIGN(
      txn::DmlResult u,
      Dml(&db, "UPDATE SUPPLIER SET SNAME = 'Z' WHERE SNO = 499"));
  EXPECT_EQ(u.rows_affected, 0u);
  ASSERT_OK_AND_ASSIGN(txn::DmlResult d,
                       Dml(&db, "DELETE FROM SUPPLIER WHERE SNO = 499"));
  EXPECT_EQ(d.rows_affected, 0u);
  EXPECT_EQ(db.catalog().version(), before);
}

TEST(DmlTest, DeleteOfReferencedParentIsRestricted) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  std::vector<Row> before = SnapshotRows(db, "SUPPLIER");
  auto r = Dml(&db, "DELETE FROM SUPPLIER WHERE SNO = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(SameRows(before, SnapshotRows(db, "SUPPLIER")));
  // Removing the children first unblocks the parent delete.
  ASSERT_OK(Dml(&db, "DELETE FROM PARTS WHERE SNO = 1").status());
  ASSERT_OK(Dml(&db, "DELETE FROM AGENTS WHERE SNO = 1").status());
  ASSERT_OK_AND_ASSIGN(txn::DmlResult d,
                       Dml(&db, "DELETE FROM SUPPLIER WHERE SNO = 1"));
  EXPECT_EQ(d.rows_affected, 1u);
}

TEST(DmlTest, CommitInvalidatesPlanCache) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery cold, optimizer.Prepare(sql));
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_OK_AND_ASSIGN(PreparedQuery warm, optimizer.Prepare(sql));
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_OK(
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (430, 'C', 'Toronto', 1.0, 'Active')")
          .status());
  // The commit bumped Catalog::version(), which the cache key mixes in:
  // the stale entry is unreachable.
  ASSERT_OK_AND_ASSIGN(PreparedQuery after, optimizer.Prepare(sql));
  EXPECT_FALSE(after.cache_hit);
}

TEST(DmlTest, CreateUniqueIndexValidatesExistingRows) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A))"));
  ASSERT_OK(Dml(&db, "INSERT INTO T VALUES (1, 10), (2, 10), (3, 30)")
                .status());
  // Existing duplicate in B: the index must refuse and declare nothing.
  size_t keys_before = (*db.GetTable("T"))->def().keys().size();
  Status st = db.ExecuteDdl("CREATE UNIQUE INDEX UB ON T (B)");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
  EXPECT_EQ((*db.GetTable("T"))->def().keys().size(), keys_before);
  // Deduplicate, retry: the key is declared and enforced from then on.
  ASSERT_OK(Dml(&db, "UPDATE T SET B = 20 WHERE A = 2").status());
  ASSERT_OK(db.ExecuteDdl("CREATE UNIQUE INDEX UB ON T (B)"));
  EXPECT_EQ((*db.GetTable("T"))->def().keys().size(), keys_before + 1);
  auto r = Dml(&db, "INSERT INTO T VALUES (4, 30)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
  // Re-declaring the same name or column set is rejected.
  EXPECT_FALSE(db.ExecuteDdl("CREATE UNIQUE INDEX UB ON T (B)").ok());
  EXPECT_FALSE(db.ExecuteDdl("CREATE UNIQUE INDEX UB2 ON T (B)").ok());
  // Bare CREATE INDEX is a parse error by design.
  EXPECT_FALSE(db.ExecuteDdl("CREATE INDEX I ON T (B)").ok());
}

TEST(DmlTest, ContainsKeyValueTracksCommittedDml) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  ASSERT_OK_AND_ASSIGN(const Table* supplier, db.GetTable("SUPPLIER"));
  Row key(std::vector<Value>{Value::Integer(440)});
  EXPECT_FALSE(supplier->ContainsKeyValue(0, key));
  ASSERT_OK(
      Dml(&db,
          "INSERT INTO SUPPLIER VALUES (440, 'K', 'Toronto', 1.0, 'Active')")
          .status());
  EXPECT_TRUE(supplier->ContainsKeyValue(0, key));
  ASSERT_OK(Dml(&db, "DELETE FROM SUPPLIER WHERE SNO = 440").status());
  EXPECT_FALSE(supplier->ContainsKeyValue(0, key));
}

TEST(DmlTest, DropTablePurgesAdvisorSuggestions) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE DOOMED (A INTEGER NOT NULL)"));
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE KEPT (A INTEGER NOT NULL)"));
  obs::AdvisorStore& store = obs::AdvisorStore::Global();
  store.Clear();
  obs::NearMiss miss;
  miss.table = "DOOMED";
  miss.kind = obs::MissingFactKind::kUniqueKey;
  miss.replay_key_columns = {"A"};
  store.Record(miss, /*fingerprint=*/1, "SELECT DISTINCT A FROM DOOMED");
  miss.table = "KEPT";
  store.Record(miss, /*fingerprint=*/2, "SELECT DISTINCT A FROM KEPT");
  ASSERT_EQ(store.size(), 2u);
  ASSERT_OK(db.ExecuteDdl("DROP TABLE DOOMED"));
  std::vector<obs::AdvisorSuggestion> left = store.Suggestions();
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].table, "KEPT");
  store.Clear();
}

TEST(DmlTest, HostVariablesBindByName) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  txn::DmlExecutor executor(&db);
  ASSERT_OK_AND_ASSIGN(
      txn::DmlResult r,
      executor.ExecuteSql(
          "INSERT INTO SUPPLIER VALUES (:sno, :nm, 'Toronto', 1.0, "
          "'Active')",
          {{"SNO", Value::Integer(450)}, {"nm", Value::String("HV")}}));
  EXPECT_EQ(r.rows_affected, 1u);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> got,
      RunSql(db, "SELECT SNAME FROM SUPPLIER WHERE SNO = 450"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][0].AsString(), "HV");
}

}  // namespace
}  // namespace uniqopt
