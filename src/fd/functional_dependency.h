#ifndef UNIQOPT_FD_FUNCTIONAL_DEPENDENCY_H_
#define UNIQOPT_FD_FUNCTIONAL_DEPENDENCY_H_

#include <string>
#include <vector>

#include "fd/attribute_set.h"

namespace uniqopt {

/// A functional dependency `lhs → rhs` over positional attributes, with
/// the paper's null-aware semantics (Definition 1): two tuples that agree
/// on `lhs` under the null-equality operator `=!` must agree on `rhs`
/// under `=!`. An FD with empty `lhs` states that `rhs` is constant
/// across the (derived) table — the effect of a `col = literal`
/// predicate.
struct FunctionalDependency {
  AttributeSet lhs;
  AttributeSet rhs;

  std::string ToString() const {
    return lhs.ToString() + " -> " + rhs.ToString();
  }
};

/// A set of FDs supporting attribute-set closure (Armstrong's axioms) and
/// key tests. Inference rules are sound for the paper's `=!`-based FDs:
/// reflexivity, augmentation and transitivity all hold because `=!` is a
/// true equivalence relation on values (unlike the 3VL `=`).
class FdSet {
 public:
  FdSet() = default;

  void Add(FunctionalDependency fd) { fds_.push_back(std::move(fd)); }
  void Add(AttributeSet lhs, AttributeSet rhs) {
    fds_.push_back({std::move(lhs), std::move(rhs)});
  }
  /// Adds the constant-column dependency ∅ → {attr}.
  void AddConstant(size_t attr) {
    FunctionalDependency fd;
    fd.rhs.Add(attr);
    fds_.push_back(std::move(fd));
  }
  /// Adds the bidirectional equivalence a ↔ b (from a = b under 3VL: both
  /// sides non-NULL and equal whenever the predicate passed).
  void AddEquivalence(size_t a, size_t b) {
    Add(AttributeSet{a}, AttributeSet{b});
    Add(AttributeSet{b}, AttributeSet{a});
  }

  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }

  void Append(const FdSet& other) {
    fds_.insert(fds_.end(), other.fds_.begin(), other.fds_.end());
  }

  /// All FDs with attributes shifted by `offset` (product re-basing).
  FdSet Shifted(size_t offset) const;

  /// Attribute-set closure of `attrs` under this FD set.
  AttributeSet Closure(const AttributeSet& attrs) const;

  /// True when Closure(attrs) ⊇ universe — i.e. `attrs` is a superkey of
  /// a table with attributes `universe`.
  bool IsSuperkey(const AttributeSet& attrs,
                  const AttributeSet& universe) const;

  /// True when lhs → rhs follows from this set.
  bool Implies(const AttributeSet& lhs, const AttributeSet& rhs) const;

  /// FD set valid for the table projected onto `kept` attributes: each
  /// kept attribute is renumbered to its position in `kept`; dependencies
  /// are derived via closures restricted to kept attributes. Complete
  /// only up to single-attribute-lhs recombination (exact projection is
  /// exponential — Klug/Darwen); always sound.
  FdSet ProjectTo(const std::vector<size_t>& kept) const;

  std::string ToString() const;

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_FD_FUNCTIONAL_DEPENDENCY_H_
