file(REMOVE_RECURSE
  "libuniqopt_catalog.a"
)
