#include "analysis/shape.h"

#include "expr/normalize.h"

namespace uniqopt {

namespace {

/// Recursively collects the Get leaves of a product tree. Selects and
/// Exists nodes above products are absorbed; their predicates are
/// rebased to the final product schema positions (children of a product
/// have contiguous column ranges, so a left-subtree predicate is already
/// correctly based and a right-subtree predicate needs shifting — which
/// the plan builder guarantees by construction of column indexes).
Status Collect(const PlanPtr& node, size_t offset, SpecShape* shape) {
  switch (node->kind()) {
    case PlanKind::kGet: {
      SpecShape::BaseTable bt;
      bt.get = As<GetNode>(node);
      bt.offset = offset;
      shape->tables.push_back(bt);
      return Status::OK();
    }
    case PlanKind::kSelect: {
      const SelectNode& sel = *As<SelectNode>(node);
      for (const ExprPtr& conj : FlattenAnd(sel.predicate())) {
        shape->predicates.push_back(offset == 0 ? conj
                                                : ShiftColumns(conj, offset));
      }
      return Collect(sel.input(), offset, shape);
    }
    case PlanKind::kExists: {
      const ExistsNode& ex = *As<ExistsNode>(node);
      if (offset != 0) {
        // Semi-joins below a product would need correlation rebasing;
        // the binder never produces this shape.
        return Status::Unsupported(
            "existential filter nested under a product");
      }
      shape->exists_filters.push_back(&ex);
      return Collect(ex.outer(), offset, shape);
    }
    case PlanKind::kProduct: {
      const ProductNode& prod = *As<ProductNode>(node);
      UNIQOPT_RETURN_NOT_OK(Collect(prod.left(), offset, shape));
      return Collect(prod.right(),
                     offset + prod.left()->schema().num_columns(), shape);
    }
    default:
      return Status::Unsupported(
          "plan is not a select-project-product specification");
  }
}

}  // namespace

Result<SpecShape> ExtractSpecShape(const PlanPtr& plan) {
  const ProjectNode* project = As<ProjectNode>(plan);
  if (project == nullptr) {
    return Status::Unsupported("plan does not end in a projection");
  }
  SpecShape shape;
  shape.project = project;
  shape.width = project->input()->schema().num_columns();
  UNIQOPT_RETURN_NOT_OK(Collect(project->input(), 0, &shape));
  return shape;
}

Result<SpecShape> ExtractProductShape(const PlanPtr& plan) {
  SpecShape shape;
  shape.width = plan->schema().num_columns();
  UNIQOPT_RETURN_NOT_OK(Collect(plan, 0, &shape));
  return shape;
}

}  // namespace uniqopt
