# Empty dependencies file for uniqopt_types.
# This may be replaced when dependencies are built.
