// Tests for the §7 "true-interpreted predicate" extension: WHERE
// conjuncts simplified against CHECK constraints — the implication
// engine (analysis/implication) and the RemoveImpliedPredicate /
// DetectEmptyResult rewrites.

#include <gtest/gtest.h>

#include "analysis/implication.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

// --------------------------------------------------------------- domains
TEST(ImplicationTest, IntervalFromChecks) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER NOT NULL, CHECK (A BETWEEN 1 AND 499))"));
  ASSERT_OK_AND_ASSIGN(const TableDef* t, db.catalog().GetTable("T"));
  ColumnDomains domains = ColumnDomains::FromTable(*t);
  const ValueDomain& d = domains.domain(0);
  ASSERT_TRUE(d.min.has_value());
  ASSERT_TRUE(d.max.has_value());
  EXPECT_EQ(d.min->AsInteger(), 1);
  EXPECT_EQ(d.max->AsInteger(), 499);

  // Implications against the interval.
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kGe, Value::Integer(0)),
            AtomVerdict::kImpliedForNonNull);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kLe, Value::Integer(499)),
            AtomVerdict::kImpliedForNonNull);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kGt, Value::Integer(0)),
            AtomVerdict::kImpliedForNonNull);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kEq, Value::Integer(600)),
            AtomVerdict::kContradicted);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kGt, Value::Integer(499)),
            AtomVerdict::kContradicted);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kLt, Value::Integer(1)),
            AtomVerdict::kContradicted);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kEq, Value::Integer(42)),
            AtomVerdict::kUnknown);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kNe, Value::Integer(600)),
            AtomVerdict::kImpliedForNonNull);
}

TEST(ImplicationTest, FiniteSetFromInListCheck) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (C VARCHAR(20) NOT NULL, "
      "CHECK (C IN ('Chicago', 'New York', 'Toronto')))"));
  ASSERT_OK_AND_ASSIGN(const TableDef* t, db.catalog().GetTable("T"));
  ColumnDomains domains = ColumnDomains::FromTable(*t);
  const ValueDomain& d = domains.domain(0);
  ASSERT_TRUE(d.values.has_value());
  EXPECT_EQ(d.values->size(), 3u);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kEq, Value::String("Paris")),
            AtomVerdict::kContradicted);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kNe, Value::String("Paris")),
            AtomVerdict::kImpliedForNonNull);
  EXPECT_EQ(
      TestAtomAgainstDomain(d, CompareOp::kEq, Value::String("Toronto")),
      AtomVerdict::kUnknown);
}

TEST(ImplicationTest, PinnedColumn) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER NOT NULL, CHECK (A = 7))"));
  ASSERT_OK_AND_ASSIGN(const TableDef* t, db.catalog().GetTable("T"));
  ColumnDomains domains = ColumnDomains::FromTable(*t);
  const ValueDomain& d = domains.domain(0);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kEq, Value::Integer(7)),
            AtomVerdict::kImpliedForNonNull);
  EXPECT_EQ(TestAtomAgainstDomain(d, CompareOp::kNe, Value::Integer(7)),
            AtomVerdict::kContradicted);
}

TEST(ImplicationTest, MatchersHandleOperandOrder) {
  size_t col = 0;
  CompareOp op = CompareOp::kEq;
  Value v;
  // 5 < A  ≡  A > 5.
  ExprPtr e = Expr::Compare(CompareOp::kLt,
                            Expr::Literal(Value::Integer(5)),
                            Expr::ColumnRef(3, "A", TypeId::kInteger));
  ASSERT_TRUE(MatchColumnConstant(e, &col, &op, &v));
  EXPECT_EQ(col, 3u);
  EXPECT_EQ(op, CompareOp::kGt);
  // NULL literals never match.
  ExprPtr n = Expr::Compare(CompareOp::kEq,
                            Expr::ColumnRef(1, "A", TypeId::kInteger),
                            Expr::Literal(Value::Null(TypeId::kInteger)));
  EXPECT_FALSE(MatchColumnConstant(n, &col, &op, &v));
  // Mixed-column disjunctions don't form an IN-list.
  std::vector<Value> vals;
  ExprPtr mixed = Expr::MakeOr(
      {Expr::Compare(CompareOp::kEq, Expr::ColumnRef(0, "A", TypeId::kInteger),
                     Expr::Literal(Value::Integer(1))),
       Expr::Compare(CompareOp::kEq, Expr::ColumnRef(1, "B", TypeId::kInteger),
                     Expr::Literal(Value::Integer(2)))});
  EXPECT_FALSE(MatchColumnInList(mixed, &col, &vals));
}

// --------------------------------------------------------------- rewrites
class SemanticPredicateTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  RewriteResult Rewrite(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto r = RewritePlan(bound->plan);
    EXPECT_TRUE(r.ok());
    // Execute both plans and compare (no host vars in these tests).
    ExecContext c1;
    ExecContext c2;
    auto before = ExecutePlan(bound->plan, db_, &c1);
    auto after = ExecutePlan(r->plan, db_, &c2);
    EXPECT_TRUE(before.ok());
    EXPECT_TRUE(after.ok());
    EXPECT_TRUE(MultisetEquals(*before, *after)) << sql;
    return *r;
  }

  Database db_;
};

TEST_F(SemanticPredicateTest, ImpliedRangeConjunctDropped) {
  // CHECK (SNO BETWEEN 1 AND 499) and SNO NOT NULL: the WHERE range is
  // implied.
  RewriteResult r = Rewrite(
      "SELECT SNAME FROM SUPPLIER WHERE SNO BETWEEN 1 AND 499");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveImpliedPredicate));
  // The whole Select disappears (all conjuncts implied).
  EXPECT_EQ(r.plan->ToString().find("Select"), std::string::npos)
      << r.plan->ToString();
}

TEST_F(SemanticPredicateTest, NullableColumnKeepsImpliedConjunct) {
  // SCITY is nullable: CHECK(SCITY IN (...)) is true-interpreted, so a
  // NULL city passes the CHECK but must still be rejected by the WHERE.
  RewriteResult r = Rewrite(
      "SELECT SNO FROM SUPPLIER "
      "WHERE SCITY IN ('Chicago', 'New York', 'Toronto')");
  EXPECT_FALSE(r.Applied(RewriteRuleId::kRemoveImpliedPredicate));
}

TEST_F(SemanticPredicateTest, ContradictionYieldsEmptyPlan) {
  RewriteResult r = Rewrite("SELECT SNAME FROM SUPPLIER WHERE SNO = 600");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kDetectEmptyResult));
  ExecStats stats;
  ExecContext ctx;
  auto rows = ExecutePlan(r.plan, db_, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  // The executor must not even scan the table.
  EXPECT_EQ(ctx.stats.rows_scanned, 0u);
}

TEST_F(SemanticPredicateTest, ContradictionViaInListCheck) {
  RewriteResult r =
      Rewrite("SELECT SNO FROM SUPPLIER WHERE SCITY = 'Paris'");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kDetectEmptyResult));
}

TEST_F(SemanticPredicateTest, IsNotNullTautologyDropped) {
  RewriteResult r =
      Rewrite("SELECT SNAME FROM SUPPLIER WHERE SNO IS NOT NULL");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveImpliedPredicate));
}

TEST_F(SemanticPredicateTest, IsNullOnNotNullColumnIsEmpty) {
  RewriteResult r = Rewrite("SELECT SNAME FROM SUPPLIER WHERE SNO IS NULL");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kDetectEmptyResult));
}

TEST_F(SemanticPredicateTest, UnrelatedConjunctsSurvive) {
  RewriteResult r = Rewrite(
      "SELECT SNAME FROM SUPPLIER WHERE SNO >= 1 AND SCITY = 'Toronto'");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveImpliedPredicate));
  // SCITY = 'Toronto' must remain.
  EXPECT_NE(r.plan->ToString().find("SCITY"), std::string::npos)
      << r.plan->ToString();
}

TEST_F(SemanticPredicateTest, WorksUnderJoins) {
  RewriteResult r = Rewrite(
      "SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.SNO >= 1");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveImpliedPredicate));
  EXPECT_FALSE(r.Applied(RewriteRuleId::kDetectEmptyResult));
}

TEST_F(SemanticPredicateTest, DisabledByOption) {
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql("SELECT SNAME FROM SUPPLIER WHERE SNO = 600");
  ASSERT_TRUE(bound.ok());
  RewriteOptions opts;
  opts.semantic_predicates = false;
  auto r = RewritePlan(bound->plan, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->Applied(RewriteRuleId::kDetectEmptyResult));
}

}  // namespace
}  // namespace uniqopt
