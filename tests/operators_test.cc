// Direct operator-level tests for the volcano executor: edge cases that
// SQL-level tests reach only indirectly (NULL join keys, residual
// predicates, re-Open behaviour, empty inputs).

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "test_util.h"

namespace uniqopt {
namespace {

Schema OneIntColumn(const char* name) {
  return Schema({{"T", name, TypeId::kInteger, true}});
}

/// Materialized-rows source for operator tests.
class VectorSourceOp final : public Operator {
 public:
  VectorSourceOp(Schema schema, std::vector<Row> rows)
      : Operator(std::move(schema)), rows_(std::move(rows)) {}

  Status Open(ExecContext*) override {
    pos_ = 0;
    ++opens_;
    return Status::OK();
  }
  Result<bool> Next(ExecContext*, Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    return true;
  }
  void Close() override {}
  std::string name() const override { return "VectorSource"; }

  int opens() const { return opens_; }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
  int opens_ = 0;
};

OperatorPtr IntSource(const char* name, std::vector<int64_t> values,
                      std::vector<size_t> null_positions = {}) {
  std::vector<Row> rows;
  for (size_t i = 0; i < values.size(); ++i) {
    bool is_null = false;
    for (size_t p : null_positions) is_null = is_null || p == i;
    std::vector<Value> cells;
    cells.push_back(is_null ? Value::Null(TypeId::kInteger)
                            : Value::Integer(values[i]));
    rows.push_back(Row(std::move(cells)));
  }
  return OperatorPtr(new VectorSourceOp(OneIntColumn(name),
                                        std::move(rows)));
}

TEST(OperatorsTest, FilterRejectsUnknown) {
  // x > 1 over {0, 2, NULL}: only 2 passes (UNKNOWN rejects).
  OperatorPtr src = IntSource("X", {0, 2, 0}, {2});
  ExprPtr pred = Expr::Compare(CompareOp::kGt,
                               Expr::ColumnRef(0, "X", TypeId::kInteger),
                               Expr::Literal(Value::Integer(1)));
  FilterOp filter(std::move(src), pred);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecuteToVector(&filter, &ctx));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInteger(), 2);
}

TEST(OperatorsTest, HashJoinSkipsNullKeys) {
  // NULL keys never match under 3VL `=`.
  OperatorPtr left = IntSource("L", {1, 2, 0}, {2});
  OperatorPtr right = IntSource("R", {2, 3, 0}, {2});
  HashJoinOp join(std::move(left), std::move(right), {0}, {0}, nullptr);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&join, &ctx));
  ASSERT_EQ(rows.size(), 1u);  // only 2 = 2
  EXPECT_EQ(rows[0][0].AsInteger(), 2);
  EXPECT_EQ(rows[0][1].AsInteger(), 2);
}

TEST(OperatorsTest, HashJoinResidualPredicate) {
  OperatorPtr left = IntSource("L", {1, 1, 2});
  OperatorPtr right = IntSource("R", {1, 2});
  // Join on equality plus residual L < 2 ⇒ rows with L = 1 only.
  ExprPtr residual = Expr::Compare(CompareOp::kLt,
                                   Expr::ColumnRef(0, "L", TypeId::kInteger),
                                   Expr::Literal(Value::Integer(2)));
  HashJoinOp join(std::move(left), std::move(right), {0}, {0}, residual);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&join, &ctx));
  EXPECT_EQ(rows.size(), 2u);  // two L=1 rows match R=1
}

TEST(OperatorsTest, HashJoinDuplicateBuildKeys) {
  OperatorPtr left = IntSource("L", {7});
  OperatorPtr right = IntSource("R", {7, 7, 7});
  HashJoinOp join(std::move(left), std::move(right), {0}, {0}, nullptr);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&join, &ctx));
  EXPECT_EQ(rows.size(), 3u);
}

TEST(OperatorsTest, SemiJoinEmitsOuterOncePerMatch) {
  OperatorPtr outer = IntSource("L", {1, 2, 3});
  OperatorPtr inner = IntSource("R", {2, 2, 3, 3});
  HashSemiJoinOp semi(std::move(outer), std::move(inner), {0}, {0}, nullptr,
                      /*negated=*/false);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&semi, &ctx));
  EXPECT_EQ(rows.size(), 2u);  // 2 and 3 once each, 1 dropped
}

TEST(OperatorsTest, AntiJoinKeepsNullKeyedOuter) {
  // NULL outer key never matches ⇒ NOT EXISTS keeps the row.
  OperatorPtr outer = IntSource("L", {1, 0}, {1});
  OperatorPtr inner = IntSource("R", {1});
  HashSemiJoinOp anti(std::move(outer), std::move(inner), {0}, {0}, nullptr,
                      /*negated=*/true);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&anti, &ctx));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST(OperatorsTest, NestedLoopSemiJoinMatchesHashVariant) {
  auto make_pair = [] {
    return std::make_pair(IntSource("L", {1, 2, 3, 0}, {3}),
                          IntSource("R", {2, 3}));
  };
  ExprPtr corr = Expr::Compare(CompareOp::kEq,
                               Expr::ColumnRef(0, "L", TypeId::kInteger),
                               Expr::ColumnRef(1, "R", TypeId::kInteger));
  auto [o1, i1] = make_pair();
  NestedLoopSemiJoinOp nl(std::move(o1), std::move(i1), corr, false);
  auto [o2, i2] = make_pair();
  HashSemiJoinOp hash(std::move(o2), std::move(i2), {0}, {0}, nullptr,
                      false);
  ExecContext c1;
  ExecContext c2;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a, ExecuteToVector(&nl, &c1));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b, ExecuteToVector(&hash, &c2));
  EXPECT_TRUE(MultisetEquals(a, b));
  EXPECT_EQ(a.size(), 2u);
}

TEST(OperatorsTest, SortDistinctStableAcrossReopen) {
  SortDistinctOp distinct(IntSource("X", {3, 1, 3, 2, 1}));
  for (int round = 0; round < 2; ++round) {
    ExecContext ctx;
    ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                         ExecuteToVector(&distinct, &ctx));
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0].AsInteger(), 1);
    EXPECT_EQ(rows[2][0].AsInteger(), 3);
  }
}

TEST(OperatorsTest, HashDistinctCollapsesNulls) {
  HashDistinctOp distinct(IntSource("X", {0, 0, 1}, {0, 1}));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecuteToVector(&distinct, &ctx));
  EXPECT_EQ(rows.size(), 2u);  // NULL collapses with NULL
}

TEST(OperatorsTest, ProductOfEmptyInput) {
  NestedLoopProductOp product(IntSource("L", {}), IntSource("R", {1, 2}));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecuteToVector(&product, &ctx));
  EXPECT_TRUE(rows.empty());
  NestedLoopProductOp product2(IntSource("L", {1}), IntSource("R", {}));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows2,
                       ExecuteToVector(&product2, &ctx));
  EXPECT_TRUE(rows2.empty());
}

TEST(OperatorsTest, SetOpCountsAreExact) {
  // L = {1×3, 2×1}, R = {1×1, 2×2}: ∩All = {1×1, 2×1}, −All = {1×2}.
  auto L = [] { return IntSource("X", {1, 1, 1, 2}); };
  auto R = [] { return IntSource("X", {1, 2, 2}); };
  ExecContext ctx;
  SetOpOp i_all(SetOpAlgebra::kIntersect, DuplicateMode::kAll, L(), R());
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a, ExecuteToVector(&i_all, &ctx));
  EXPECT_EQ(a.size(), 2u);
  SetOpOp e_all(SetOpAlgebra::kExcept, DuplicateMode::kAll, L(), R());
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b, ExecuteToVector(&e_all, &ctx));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0][0].AsInteger(), 1);
  SetOpOp i_dist(SetOpAlgebra::kIntersect, DuplicateMode::kDist, L(), R());
  ASSERT_OK_AND_ASSIGN(std::vector<Row> c, ExecuteToVector(&i_dist, &ctx));
  EXPECT_EQ(c.size(), 2u);
  SetOpOp e_dist(SetOpAlgebra::kExcept, DuplicateMode::kDist, L(), R());
  ASSERT_OK_AND_ASSIGN(std::vector<Row> d, ExecuteToVector(&e_dist, &ctx));
  EXPECT_TRUE(d.empty());
}

TEST(OperatorsTest, SortMergeIntersectHandlesNulls) {
  SortMergeIntersectOp intersect(IntSource("X", {1, 0}, {1}),
                                 IntSource("X", {0, 2}, {0}));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       ExecuteToVector(&intersect, &ctx));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());  // NULL =! NULL in set operations
}

TEST(OperatorsTest, EmptySourceProducesNothing) {
  EmptySourceOp empty(OneIntColumn("X"));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, ExecuteToVector(&empty, &ctx));
  EXPECT_TRUE(rows.empty());
}

TEST(OperatorsTest, ProjectReordersColumns) {
  std::vector<Row> rows = {Row({Value::Integer(1), Value::String("a")})};
  Schema schema({{"T", "X", TypeId::kInteger, false},
                 {"T", "Y", TypeId::kString, false}});
  ProjectOp project(
      OperatorPtr(new VectorSourceOp(schema, std::move(rows))), {1, 0, 1});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> out, ExecuteToVector(&project, &ctx));
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 3u);
  EXPECT_EQ(out[0][0].AsString(), "a");
  EXPECT_EQ(out[0][1].AsInteger(), 1);
  EXPECT_EQ(out[0][2].AsString(), "a");
}

}  // namespace
}  // namespace uniqopt
