#include "txn/dml.h"

#include <cctype>

#include "common/string_util.h"
#include "parser/parser.h"

namespace uniqopt {
namespace txn {

namespace {

/// INSERT values must be evaluable without an input row: literals and
/// host variables, possibly wrapped in parse-level sugar. Column refs
/// would silently evaluate to NULL (there is no row yet), so reject
/// them up front with a targeted message.
Status CheckInsertValue(const AstExpr& e) {
  switch (e.kind) {
    case AstExprKind::kLiteral:
    case AstExprKind::kHostVar:
      return Status::OK();
    case AstExprKind::kColumnRef:
      return Status::BindError(
          "INSERT values must be literals or host variables, not column "
          "references (got " +
          e.ToString() + ")");
    default:
      return Status::BindError(
          "INSERT values must be literals or host variables (got " +
          e.ToString() + ")");
  }
}

}  // namespace

const char* DmlKindName(DmlKind kind) {
  switch (kind) {
    case DmlKind::kInsert:
      return "INSERT";
    case DmlKind::kUpdate:
      return "UPDATE";
    case DmlKind::kDelete:
      return "DELETE";
    case DmlKind::kCreateIndex:
      return "CREATE UNIQUE INDEX";
  }
  return "?";
}

Result<BoundDml> BindDml(Database* db, const Statement& stmt) {
  BoundDml out;
  if (stmt.insert_stmt != nullptr) {
    const InsertStmt& ins = *stmt.insert_stmt;
    out.kind = DmlKind::kInsert;
    auto bound = std::make_unique<BoundInsert>();
    UNIQOPT_ASSIGN_OR_RETURN(bound->table, db->GetTable(ins.table_name));
    const TableDef& def = bound->table->def();
    if (ins.columns.empty()) {
      for (size_t i = 0; i < def.schema().num_columns(); ++i) {
        bound->target_ordinals.push_back(i);
      }
    } else {
      for (const std::string& cn : ins.columns) {
        UNIQOPT_ASSIGN_OR_RETURN(size_t ord, def.ColumnOrdinal(cn));
        for (size_t existing : bound->target_ordinals) {
          if (existing == ord) {
            return Status::BindError("duplicate INSERT column: " + cn);
          }
        }
        bound->target_ordinals.push_back(ord);
      }
    }
    for (const std::vector<AstExprPtr>& row : ins.rows) {
      if (row.size() != bound->target_ordinals.size()) {
        return Status::BindError(
            "INSERT row has " + std::to_string(row.size()) +
            " values for " + std::to_string(bound->target_ordinals.size()) +
            " columns");
      }
      std::vector<ExprPtr> bound_row;
      for (const AstExprPtr& value : row) {
        UNIQOPT_RETURN_NOT_OK(CheckInsertValue(*value));
        UNIQOPT_ASSIGN_OR_RETURN(
            ExprPtr e, BindTableScalar(&db->catalog(), def, *value,
                                       &out.host_vars));
        bound_row.push_back(std::move(e));
      }
      bound->rows.push_back(std::move(bound_row));
    }
    out.insert = std::move(bound);
    return out;
  }
  if (stmt.update_stmt != nullptr) {
    const UpdateStmt& upd = *stmt.update_stmt;
    out.kind = DmlKind::kUpdate;
    auto bound = std::make_unique<BoundUpdate>();
    UNIQOPT_ASSIGN_OR_RETURN(bound->table, db->GetTable(upd.table_name));
    const TableDef& def = bound->table->def();
    for (const auto& [column, value] : upd.assignments) {
      UNIQOPT_ASSIGN_OR_RETURN(size_t ord, def.ColumnOrdinal(column));
      for (const auto& [existing, unused] : bound->assignments) {
        if (existing == ord) {
          return Status::BindError("duplicate SET column: " + column);
        }
      }
      UNIQOPT_ASSIGN_OR_RETURN(
          ExprPtr e,
          BindTableScalar(&db->catalog(), def, *value, &out.host_vars));
      bound->assignments.emplace_back(ord, std::move(e));
    }
    if (upd.where != nullptr) {
      UNIQOPT_ASSIGN_OR_RETURN(
          bound->where,
          BindTableScalar(&db->catalog(), def, *upd.where, &out.host_vars));
    }
    out.update = std::move(bound);
    return out;
  }
  if (stmt.delete_stmt != nullptr) {
    const DeleteStmt& del = *stmt.delete_stmt;
    out.kind = DmlKind::kDelete;
    auto bound = std::make_unique<BoundDelete>();
    UNIQOPT_ASSIGN_OR_RETURN(bound->table, db->GetTable(del.table_name));
    if (del.where != nullptr) {
      UNIQOPT_ASSIGN_OR_RETURN(
          bound->where,
          BindTableScalar(&db->catalog(), bound->table->def(), *del.where,
                          &out.host_vars));
    }
    out.del = std::move(bound);
    return out;
  }
  if (stmt.create_index != nullptr) {
    out.kind = DmlKind::kCreateIndex;
    auto bound = std::make_unique<BoundCreateIndex>();
    bound->table_name = stmt.create_index->table_name;
    bound->index_name = stmt.create_index->index_name;
    bound->columns = stmt.create_index->columns;
    out.create_index = std::move(bound);
    return out;
  }
  return Status::InvalidArgument(
      "expected an INSERT, UPDATE, DELETE, or CREATE UNIQUE INDEX "
      "statement");
}

Result<BoundDml> BindDmlSql(Database* db, std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return BindDml(db, *stmt);
}

bool IsDmlSql(std::string_view sql) {
  std::string_view s = StripAsciiWhitespace(sql);
  size_t end = 0;
  while (end < s.size() && !std::isspace(static_cast<unsigned char>(s[end]))) {
    ++end;
  }
  std::string word = ToUpperAscii(s.substr(0, end));
  return word == "INSERT" || word == "UPDATE" || word == "DELETE";
}

}  // namespace txn
}  // namespace uniqopt
