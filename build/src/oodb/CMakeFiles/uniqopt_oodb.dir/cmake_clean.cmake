file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_oodb.dir/navigator.cc.o"
  "CMakeFiles/uniqopt_oodb.dir/navigator.cc.o.d"
  "CMakeFiles/uniqopt_oodb.dir/object_store.cc.o"
  "CMakeFiles/uniqopt_oodb.dir/object_store.cc.o.d"
  "CMakeFiles/uniqopt_oodb.dir/oo_translator.cc.o"
  "CMakeFiles/uniqopt_oodb.dir/oo_translator.cc.o.d"
  "libuniqopt_oodb.a"
  "libuniqopt_oodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_oodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
