file(REMOVE_RECURSE
  "CMakeFiles/oo_translator_test.dir/oo_translator_test.cc.o"
  "CMakeFiles/oo_translator_test.dir/oo_translator_test.cc.o.d"
  "oo_translator_test"
  "oo_translator_test.pdb"
  "oo_translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
