#include "analysis/near_miss.h"

#include <limits>

#include "analysis/algorithm1.h"
#include "expr/normalize.h"

namespace uniqopt {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

std::vector<std::string> LocalColumnNames(const TableDef& table,
                                          const AttributeSet& local) {
  std::vector<std::string> names;
  for (size_t ordinal : local.ToVector()) {
    names.push_back(table.schema().column(ordinal).name);
  }
  return names;
}

}  // namespace

void ComputeTableNearMiss(const std::string& goal, const TableDef& table,
                          const std::string& alias, size_t shift,
                          const AttributeSet& bound,
                          const AttributeSet& goal_columns,
                          const AnalysisOptions& options,
                          std::vector<obs::NearMiss>* out) {
  const size_t arity = table.schema().num_columns();
  AttributeSet table_cols = AttributeSet::AllUpTo(arity).Shifted(shift);
  AttributeSet b_local;  // bound ∩ cols(T), re-based to table ordinals
  AttributeSet g_local;  // goal_columns ∩ cols(T), re-based likewise
  for (size_t pos : bound.Intersect(table_cols).ToVector()) {
    b_local.Add(pos - shift);
  }
  for (size_t pos : goal_columns.Intersect(table_cols).ToVector()) {
    g_local.Add(pos - shift);
  }
  // No bound column reaches this table: the proof did not get close, and
  // any suggested key would be over an empty column set. Not a near-miss.
  if (b_local.Empty()) return;

  obs::NearMiss best;
  size_t best_cost = std::numeric_limits<size_t>::max();

  // Candidate 1: declare the goal columns themselves (projection /
  // grouping columns of this table) a candidate key; fall back to the
  // full bound set when no goal column touches the table (Theorem 2
  // inner tables, where the seed is the outer schema).
  const AttributeSet& unique_cols = g_local.Empty() ? b_local : g_local;
  {
    std::vector<std::string> names = LocalColumnNames(table, unique_cols);
    obs::NearMiss miss;
    miss.goal = goal;
    miss.table = table.name();
    miss.alias = alias;
    miss.kind = obs::MissingFactKind::kUniqueKey;
    miss.fact = "UNIQUE (" + JoinNames(names) + ")";
    miss.replay_key_columns = std::move(names);
    best = std::move(miss);
    best_cost = unique_cols.Count();
  }

  // Candidate 2: for each declared key K not covered by B, the FD
  // B -> K\B completes the coverage. Cheaper when the key is nearly
  // bound already. Replay actualizes the FD as UNIQUE over the
  // determinant B (no FD DDL exists; a key over B is strictly stronger).
  for (const KeyConstraint& key : table.keys()) {
    if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
    AttributeSet key_set = AttributeSet::FromVector(key.columns);
    AttributeSet missing = key_set.Difference(b_local);
    if (missing.Empty()) continue;  // key already covered
    if (missing.Count() < best_cost) {
      std::vector<std::string> determinant =
          LocalColumnNames(table, b_local);
      obs::NearMiss miss;
      miss.goal = goal;
      miss.table = table.name();
      miss.alias = alias;
      miss.kind = obs::MissingFactKind::kFunctionalDependency;
      miss.fact = "FD (" + JoinNames(determinant) + ") -> (" +
                  JoinNames(LocalColumnNames(table, missing)) + ")";
      miss.replay_key_columns = std::move(determinant);
      best = std::move(miss);
      best_cost = missing.Count();
    }
  }

  best.bound_columns =
      "(" + JoinNames(LocalColumnNames(table, b_local)) + ")";
  out->push_back(std::move(best));
}

std::vector<obs::NearMiss> CollectShapeNearMisses(
    const SpecShape& shape, const AttributeSet& initially_bound,
    const std::string& goal, const AnalysisOptions& options) {
  std::vector<obs::NearMiss> out;
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : shape.predicates) {
    Result<ExprPtr> cnf = ToCnf(pred, options.normalize_budget);
    if (!cnf.ok()) continue;  // over-budget conjunct contributes nothing
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }
  bool any_kept = false;
  AttributeSet bound = BoundColumnClosure(conjuncts, initially_bound,
                                          options, nullptr, &any_kept);
  for (const SpecShape::BaseTable& bt : shape.tables) {
    const TableDef& table = bt.get->table();
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      if (AttributeSet::FromVector(key.columns)
              .Shifted(bt.offset)
              .IsSubsetOf(bound)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      ComputeTableNearMiss(goal, table, bt.get->alias(), bt.offset, bound,
                           initially_bound, options, &out);
    }
  }
  return out;
}

std::vector<obs::NearMiss> CollectSpecNearMisses(
    const PlanPtr& plan, const std::string& goal,
    const AnalysisOptions& options) {
  Result<SpecShape> shape = ExtractSpecShape(plan);
  if (!shape.ok()) return {};
  return CollectShapeNearMisses(
      *shape, AttributeSet::FromVector(shape->project->columns()), goal,
      options);
}

}  // namespace uniqopt
