// Tests for the logical plan layer: schema propagation, nullability,
// printing, and the SpecShape decomposition used by the analyzers.

#include <gtest/gtest.h>

#include "analysis/shape.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    binder_ = std::make_unique<Binder>(&db_.catalog());
  }

  PlanPtr Bind(const std::string& sql) {
    auto bound = binder_->BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound->plan;
  }

  Database db_;
  std::unique_ptr<Binder> binder_;
};

TEST_F(PlanTest, SchemaPropagation) {
  PlanPtr plan = Bind(
      "SELECT P.PNAME, S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  const Schema& schema = plan->schema();
  ASSERT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.column(0).QualifiedName(), "P.PNAME");
  EXPECT_TRUE(schema.column(0).nullable);
  EXPECT_EQ(schema.column(1).QualifiedName(), "S.SNO");
  EXPECT_FALSE(schema.column(1).nullable);  // primary key column
}

TEST_F(PlanTest, ProductSchemaIsConcat) {
  PlanPtr plan = Bind("SELECT * FROM SUPPLIER S, AGENTS A");
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const ProductNode* product = As<ProductNode>(project->input());
  ASSERT_NE(product, nullptr);
  EXPECT_EQ(product->schema().num_columns(),
            product->left()->schema().num_columns() +
                product->right()->schema().num_columns());
  EXPECT_EQ(product->schema().column(5).QualifiedName(), "A.SNO");
}

TEST_F(PlanTest, ExistsPreservesOuterSchema) {
  PlanPtr plan = Bind(
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
  const ProjectNode* project = As<ProjectNode>(plan);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  EXPECT_EQ(exists->schema().num_columns(),
            exists->outer()->schema().num_columns());
}

TEST_F(PlanTest, SetOpNullabilityUnions) {
  // SUPPLIER.SNO is NOT NULL, PARTS.OEM_PNO is nullable: the result
  // column of the set operation must be nullable.
  PlanPtr plan = Bind(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT OEM_PNO FROM PARTS");
  EXPECT_TRUE(plan->schema().column(0).nullable);
  PlanPtr both_strict =
      Bind("SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  EXPECT_FALSE(both_strict->schema().column(0).nullable);
}

TEST_F(PlanTest, ToStringRendersTree) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Project DISTINCT [S.SNO]"), std::string::npos) << s;
  EXPECT_NE(s.find("Select [(S.SNO = P.SNO AND P.COLOR = 'RED')]"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("Get SUPPLIER AS S"), std::string::npos) << s;
  // Indentation shows structure.
  EXPECT_NE(s.find("\n  Select"), std::string::npos) << s;
  EXPECT_NE(s.find("\n    Product"), std::string::npos) << s;
}

TEST_F(PlanTest, AggregateSchemaAndPrinting) {
  PlanPtr plan = Bind(
      "SELECT SCITY, COUNT(*), SUM(BUDGET) FROM SUPPLIER GROUP BY SCITY");
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const AggregateNode* agg = As<AggregateNode>(project->input());
  ASSERT_NE(agg, nullptr);
  const Schema& schema = agg->schema();
  ASSERT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.column(1).name, "COUNT(*)");
  EXPECT_EQ(schema.column(1).type, TypeId::kInteger);
  EXPECT_FALSE(schema.column(1).nullable);
  EXPECT_EQ(schema.column(2).type, TypeId::kDouble);  // SUM over DOUBLE
  EXPECT_TRUE(schema.column(2).nullable);
  EXPECT_NE(plan->ToString().find("Aggregate [SUPPLIER.SCITY]"),
            std::string::npos);
}

TEST_F(PlanTest, SpecShapeDecomposition) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A "
      "WHERE S.SNO = P.SNO AND A.SNO = S.SNO AND P.COLOR = 'RED'");
  auto shape = ExtractSpecShape(plan);
  ASSERT_TRUE(shape.ok()) << shape.status().ToString();
  ASSERT_EQ(shape->tables.size(), 3u);
  EXPECT_EQ(shape->tables[0].offset, 0u);
  EXPECT_EQ(shape->tables[1].offset, 5u);   // SUPPLIER has 5 columns
  EXPECT_EQ(shape->tables[2].offset, 10u);  // PARTS has 5 columns
  EXPECT_EQ(shape->predicates.size(), 3u);
  EXPECT_EQ(shape->width, 14u);
}

TEST_F(PlanTest, SpecShapeRejectsSetOps) {
  PlanPtr plan =
      Bind("SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  auto shape = ExtractSpecShape(plan);
  EXPECT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kUnsupported);
}

TEST_F(PlanTest, SpecShapeCollectsExistsFilters) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO FROM SUPPLIER S "
      "WHERE S.SCITY = 'Toronto' AND EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
  auto shape = ExtractSpecShape(plan);
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->exists_filters.size(), 1u);
  EXPECT_EQ(shape->predicates.size(), 1u);
  EXPECT_EQ(shape->tables.size(), 1u);
}

TEST_F(PlanTest, AsDowncastsAreChecked) {
  PlanPtr plan = Bind("SELECT SNO FROM SUPPLIER");
  EXPECT_NE(As<ProjectNode>(plan), nullptr);
  EXPECT_EQ(As<SelectNode>(plan), nullptr);
  EXPECT_EQ(As<GetNode>(plan), nullptr);
  EXPECT_EQ(As<SetOpNode>(plan), nullptr);
  EXPECT_EQ(As<AggregateNode>(plan), nullptr);
}

}  // namespace
}  // namespace uniqopt
