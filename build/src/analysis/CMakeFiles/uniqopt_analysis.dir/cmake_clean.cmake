file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_analysis.dir/algorithm1.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/algorithm1.cc.o.d"
  "CMakeFiles/uniqopt_analysis.dir/implication.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/implication.cc.o.d"
  "CMakeFiles/uniqopt_analysis.dir/properties.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/properties.cc.o.d"
  "CMakeFiles/uniqopt_analysis.dir/shape.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/shape.cc.o.d"
  "CMakeFiles/uniqopt_analysis.dir/subquery.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/subquery.cc.o.d"
  "CMakeFiles/uniqopt_analysis.dir/uniqueness.cc.o"
  "CMakeFiles/uniqopt_analysis.dir/uniqueness.cc.o.d"
  "libuniqopt_analysis.a"
  "libuniqopt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
