#ifndef UNIQOPT_EXEC_INDEX_EXEC_H_
#define UNIQOPT_EXEC_INDEX_EXEC_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "exec/operator.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace uniqopt {

/// Index-backed execution: the unique hash indexes that the DML plane
/// maintains to *enforce* declared keys double as access paths. A
/// predicate whose Type-1 equality conjuncts cover a declared key
/// identifies at most one row (the paper's §2 single-row guarantee), so
/// the scan collapses to one hash probe; a hash join whose build side is
/// a bare keyed Get needs no build phase at all — the committed index
/// already IS the hash table.
///
/// The Match* helpers below are shared by the planner's lowering and the
/// cost model so the two always agree on when an index applies.

/// How a point-lookup probe value is obtained at Open time: a literal
/// from the query text or a host-variable slot (exactly one is set).
struct IndexProbe {
  std::optional<Value> constant;
  std::optional<size_t> host_var;

  Value Resolve(const std::vector<Value>& params) const {
    return constant.has_value() ? *constant : params.at(*host_var);
  }
};

/// σ[pred](Get(T)) matched to a unique-index point lookup. `probes` are
/// arranged in the key's declared column order; conjuncts not consumed
/// by the probe remain in `residual` (table coordinates).
struct IndexLookupMatch {
  size_t key_index = 0;
  std::vector<IndexProbe> probes;
  std::vector<ExprPtr> residual;
};

/// Matches when Type-1 equality conjuncts of `predicate` cover every
/// column of some declared key of `def` (first-declared key wins, which
/// puts PRIMARY KEY ahead of later UNIQUE declarations). Returns nullopt
/// when no key is fully covered.
std::optional<IndexLookupMatch> MatchIndexLookup(const TableDef& def,
                                                 const ExprPtr& predicate);

/// A hash join whose right (build) side can be replaced by unique-index
/// probes: the right-side equi-columns are exactly a declared key.
struct IndexJoinMatch {
  size_t key_index = 0;
  /// Probe-side (left) columns rearranged into the key's column order.
  std::vector<size_t> left_keys;
};

/// Matches when `right_keys` (build-side columns, right coordinates,
/// paired positionally with `left_keys`) form exactly the column set of
/// a declared key of `right_def`. Duplicate right columns or extra
/// equi-pairs fall back to the classic hash build.
std::optional<IndexJoinMatch> MatchUniqueIndexJoin(
    const TableDef& right_def, const std::vector<size_t>& left_keys,
    const std::vector<size_t>& right_keys);

/// "NAME" for named keys, else "T(A,B)" — used in operator names so
/// EXPLAIN ANALYZE shows which index carried the probe.
std::string KeyDisplayName(const TableDef& def, size_t key_index);

/// Point lookup: probes the table's unique index `key_index` once and
/// emits at most one row (filtered through `residual` when present).
/// A NULL probe value emits nothing — SQL `=` never matches NULL, even
/// though the index itself files NULL keys under `=!`.
class IndexLookupOp final : public Operator {
 public:
  IndexLookupOp(const Table* table, Schema schema, size_t key_index,
                std::vector<IndexProbe> probes, ExprPtr residual,
                std::string key_name);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override {
    return "IndexLookup(" + key_name_ + ")";
  }

 private:
  const Table* table_;
  size_t key_index_;
  std::vector<IndexProbe> probes_;
  ExprPtr residual_;
  std::string key_name_;
  /// Pinned for the lifetime of the operator so a borrowed matched row
  /// stays valid across a concurrent writer's commit.
  TableSnapshot snapshot_;
  std::optional<Row> match_;
};

/// Join probing the build side's unique index instead of building a hash
/// table: for each left row, project the key columns, probe, and emit
/// the concatenated row. Output is identical to HashJoinOp when the
/// right equi-columns are a declared key (at most one match per probe).
/// `right_filter` holds pushed-down right-side conjuncts in right
/// coordinates; `residual` is evaluated over the concatenated row.
class UniqueIndexJoinOp final : public Operator {
 public:
  UniqueIndexJoinOp(OperatorPtr left, const Table* right_table,
                    const Schema& right_schema, size_t key_index,
                    std::vector<size_t> left_keys, ExprPtr right_filter,
                    ExprPtr residual, std::string key_name);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override {
    return "UniqueIndexJoin(" + key_name_ + ")";
  }

 private:
  OperatorPtr left_;
  const Table* right_table_;
  size_t key_index_;
  std::vector<size_t> left_keys_;
  ExprPtr right_filter_;
  ExprPtr residual_;
  std::string key_name_;
  /// Key-column types of the build side, for probe-value coercion.
  std::vector<TypeId> key_types_;
  TableSnapshot snapshot_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_INDEX_EXEC_H_
