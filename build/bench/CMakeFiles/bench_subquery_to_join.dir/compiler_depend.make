# Empty compiler generated dependencies file for bench_subquery_to_join.
# This may be replaced when dependencies are built.
