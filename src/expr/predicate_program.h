// A predicate "program": a conjunction of flat atoms compiled once from
// an Expr tree, evaluated over whole batches by refining a selection
// vector in place. The tuple-at-a-time path interprets the Expr tree per
// row (two Value copies and a virtual walk per comparison); the batch
// path compiles the common shapes — `col <op> literal`, `col <op> :host`,
// `col IS [NOT] NULL` — into atoms that read column slots by reference.
// Anything else falls back to the interpreter per row, so compilation is
// always safe and never changes results.

#pragma once

#include <cstdint>
#include <vector>

#include "expr/expr.h"
#include "types/row.h"

namespace uniqopt {

class PredicateProgram {
 public:
  /// Compiles `predicate` (may be null, meaning "keep everything").
  /// Never fails: unsupported shapes become interpreted atoms.
  static PredicateProgram Compile(ExprPtr predicate);

  /// Refines `sel` in place: keeps index i iff the predicate evaluates
  /// to TRUE on data[i] (UNKNOWN drops the row, matching WHERE).
  void FilterSel(const Row* data, std::vector<uint32_t>* sel,
                 const std::vector<Value>& params) const;

  /// True when every atom took a fast (non-interpreted) form.
  bool fully_compiled() const { return fully_compiled_; }
  size_t num_atoms() const { return atoms_.size(); }

 private:
  enum class AtomKind {
    kColCmpConst,   ///< row[col] <op> literal
    kColCmpParam,   ///< row[col] <op> params[param]
    kColIsNull,     ///< row[col] IS NULL
    kColIsNotNull,  ///< row[col] IS NOT NULL
    kInterpreted,   ///< fallback: Expr::EvaluatePredicate per row
  };
  struct Atom {
    AtomKind kind;
    size_t col = 0;
    CompareOp op = CompareOp::kEq;
    Value constant;
    size_t param = 0;
    ExprPtr fallback;  ///< set for kInterpreted
  };

  /// Appends atoms for `e`; returns false if it had to fall back.
  bool CompileNode(const ExprPtr& e);

  std::vector<Atom> atoms_;
  bool fully_compiled_ = true;
};

}  // namespace uniqopt
