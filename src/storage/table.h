#ifndef UNIQOPT_STORAGE_TABLE_H_
#define UNIQOPT_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_def.h"
#include "common/result.h"
#include "types/row.h"

namespace uniqopt {

/// An in-memory base table. Inserts enforce, in order: arity and column
/// types, NOT NULL, CHECK constraints (true-interpreted: a row is
/// rejected only when a CHECK evaluates to FALSE — SQL2 semantics), and
/// key uniqueness.
///
/// Key uniqueness follows the paper's reading of SQL2 UNIQUE (§2.1):
/// NULL is treated as one special value under the null-equality operator
/// `=!`, so at most one row may carry NULL in a single-column candidate
/// key. This is what makes declared UNIQUE constraints usable as key
/// dependencies in Theorem 1.
class Database;

class Table {
 public:
  explicit Table(const TableDef* def) : def_(def) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;

  const TableDef& def() const { return *def_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  Status Insert(Row row);

  /// Convenience for fixtures: insert from values; aborts on arity
  /// mismatch, returns the constraint status.
  Status InsertValues(std::vector<Value> values) {
    return Insert(Row(std::move(values)));
  }

  void Clear();

  /// Attaches the owning database; enables FOREIGN KEY enforcement on
  /// insert (set automatically by Database::CreateTable).
  void SetDatabase(const Database* db) { database_ = db; }

  /// True when a row with this key value (projected in the key's column
  /// order) exists. `key_index` indexes def().keys().
  bool ContainsKeyValue(size_t key_index, const Row& key_row) const;

 private:
  Status Validate(const Row& row) const;
  Status ValidateForeignKeys(const Row& row) const;

  const TableDef* def_;
  const Database* database_ = nullptr;
  std::vector<Row> rows_;
  /// One uniqueness set per declared key, holding projected key rows.
  std::vector<std::unordered_set<Row, RowHash, RowNullSafeEqual>> key_sets_;
};

/// A catalog plus its table instances — the "database" the executor and
/// examples run against.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Registers a definition and creates an empty instance.
  Status CreateTable(TableDef def);
  /// Drops the table, its rows and its constraints; bumps the catalog
  /// version (invalidating cached plans that referenced it).
  Status DropTable(const std::string& name);
  /// Parses and runs `CREATE TABLE ...` or `DROP TABLE ...`.
  Status ExecuteDdl(std::string_view sql);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

 private:
  Catalog catalog_;
  std::vector<std::unique_ptr<Table>> tables_;  // parallel to catalog order
};

}  // namespace uniqopt

#endif  // UNIQOPT_STORAGE_TABLE_H_
