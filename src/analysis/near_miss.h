#ifndef UNIQOPT_ANALYSIS_NEAR_MISS_H_
#define UNIQOPT_ANALYSIS_NEAR_MISS_H_

#include <string>
#include <vector>

#include "analysis/properties.h"
#include "analysis/shape.h"
#include "catalog/table_def.h"
#include "fd/attribute_set.h"
#include "obs/advisor.h"

namespace uniqopt {

/// Computes the minimal missing fact for one FROM table whose key
/// coverage failed, by diffing the fixpoint closure against the goal
/// set (not by brute force over column subsets):
///
///   B = closure `bound` restricted to the table's columns (the columns
///       the proof *did* establish as bound);
///   G = `goal_columns` (the initially-bound seed: projection or
///       grouping columns) restricted to the table.
///
/// Candidates, cheapest wins (ties prefer the key form):
///   - UNIQUE over G (or over B when no goal column touches the table):
///     declaring those columns a candidate key covers the table
///     outright. Cost = |columns|.
///   - For each declared key K (UNIQUE keys only when
///     `options.use_unique_keys`): the FD B -> K\B would complete K's
///     coverage. Cost = |K\B|.
///
/// Emits nothing when B is empty — no bound column reaches the table,
/// so no single declaration closes the gap. `shift` is the table's
/// first column position within the product schema; `bound` and
/// `goal_columns` are product-schema sets.
void ComputeTableNearMiss(const std::string& goal, const TableDef& table,
                          const std::string& alias, size_t shift,
                          const AttributeSet& bound,
                          const AttributeSet& goal_columns,
                          const AnalysisOptions& options,
                          std::vector<obs::NearMiss>* out);

/// Runs the bound-column closure of Algorithm 1 over `shape` seeded with
/// `initially_bound` and emits one near-miss per table whose candidate
/// keys the closure fails to cover. Used by the rewriter at rejection
/// sites that have a shape but not an Algorithm1Result (set-operation
/// operands, GROUP-BY-on-key, Corollary 1 outer blocks).
std::vector<obs::NearMiss> CollectShapeNearMisses(
    const SpecShape& shape, const AttributeSet& initially_bound,
    const std::string& goal, const AnalysisOptions& options);

/// Convenience over CollectShapeNearMisses: extracts the spec shape of
/// `plan` (projection over a product) and seeds the closure with its
/// projection columns. Returns empty when the plan has no such shape.
std::vector<obs::NearMiss> CollectSpecNearMisses(
    const PlanPtr& plan, const std::string& goal,
    const AnalysisOptions& options);

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_NEAR_MISS_H_
