#ifndef UNIQOPT_TYPES_TRIBOOL_H_
#define UNIQOPT_TYPES_TRIBOOL_H_

namespace uniqopt {

/// SQL's three-valued logic. `kUnknown` arises from any comparison with
/// NULL inside a WHERE/HAVING clause (the paper's §3.1, Table 2).
enum class Tribool { kFalse = 0, kUnknown = 1, kTrue = 2 };

/// Kleene conjunction.
constexpr Tribool And(Tribool a, Tribool b) {
  if (a == Tribool::kFalse || b == Tribool::kFalse) return Tribool::kFalse;
  if (a == Tribool::kUnknown || b == Tribool::kUnknown) {
    return Tribool::kUnknown;
  }
  return Tribool::kTrue;
}

/// Kleene disjunction.
constexpr Tribool Or(Tribool a, Tribool b) {
  if (a == Tribool::kTrue || b == Tribool::kTrue) return Tribool::kTrue;
  if (a == Tribool::kUnknown || b == Tribool::kUnknown) {
    return Tribool::kUnknown;
  }
  return Tribool::kFalse;
}

/// Kleene negation.
constexpr Tribool Not(Tribool a) {
  switch (a) {
    case Tribool::kFalse:
      return Tribool::kTrue;
    case Tribool::kTrue:
      return Tribool::kFalse;
    case Tribool::kUnknown:
      return Tribool::kUnknown;
  }
  return Tribool::kUnknown;
}

constexpr Tribool FromBool(bool b) {
  return b ? Tribool::kTrue : Tribool::kFalse;
}

/// The paper's false-interpretation operator ⌊P⌋: UNKNOWN collapses to
/// FALSE. This is the semantics SQL applies to WHERE-clause predicates.
constexpr bool FalseInterpreted(Tribool t) { return t == Tribool::kTrue; }

/// The paper's true-interpretation operator ⌈P⌉: UNKNOWN collapses to TRUE
/// ("x IS NULL OR P(x)").
constexpr bool TrueInterpreted(Tribool t) { return t != Tribool::kFalse; }

constexpr const char* TriboolToString(Tribool t) {
  switch (t) {
    case Tribool::kFalse:
      return "false";
    case Tribool::kUnknown:
      return "unknown";
    case Tribool::kTrue:
      return "true";
  }
  return "?";
}

}  // namespace uniqopt

#endif  // UNIQOPT_TYPES_TRIBOOL_H_
