// Morsel-driven parallel + batch execution layer, measured end to end:
//
//   scan→filter→aggregate over a 100k-row SUPPLIER table, executed
//   tuple-at-a-time serial, batch (vectorized) at dop 1, and
//   morsel-parallel at dop 2/4/8;
//
//   join + DISTINCT vs join with DISTINCT eliminated (the paper's
//   headline rewrite), serial and at dop 8 — elimination removes the
//   gather-side dedup barrier entirely.
//
// Histograms (consumed by scripts/bench_compare.py --exec-scaling and
// the BENCH_pr9.json gate):
//   bench.exec.serial.ns     tuple-at-a-time, dop 1
//   bench.exec.batch.ns      batch path, dop 1       (gate: >= 1.5x)
//   bench.exec.dop2.ns       batch path, dop 2
//   bench.exec.dop4.ns       batch path, dop 4
//   bench.exec.parallel.ns   batch path, dop 8       (gate: >= 3x)
//   bench.exec.join_distinct.ns / join_eliminated.ns (serial)
//   bench.exec.join_distinct_dop8.ns / join_eliminated_dop8.ns

#include "bench_util.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr size_t kSuppliers = 100000;
constexpr size_t kPartsPerSupplier = 1;

// Range-predicate scan, the classic vectorization-friendly shape: the
// tuple path copies each 5-column row out of storage and interprets the
// Expr tree per row (two operand Value copies per comparison), the
// batch path borrows storage slices and runs the compiled
// PredicateProgram's inline integer loops over each selection vector.
const char* kScanFilterAggSql =
    "SELECT COUNT(*), MIN(SNO) FROM SUPPLIER "
    "WHERE SNO >= 10000 AND SNO < 50000";

PhysicalOptions MakePhysical(size_t batch_size, unsigned dop) {
  PhysicalOptions physical;
  physical.batch_size = batch_size;
  physical.dop = dop;
  return physical;
}

void RunScanFilterAgg(::benchmark::State& state, const char* series,
                      size_t batch_size, unsigned dop) {
  const Database& db = GetSupplierDb(kSuppliers, kPartsPerSupplier);
  PlanPtr plan = MustBind(db, kScanFilterAggSql);
  PhysicalOptions physical = MakePhysical(batch_size, dop);
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram(series);
  size_t rows = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    rows += MustExecute(plan, db, physical);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ScanFilterAgg_SerialTuple(::benchmark::State& state) {
  RunScanFilterAgg(state, "bench.exec.serial.ns", /*batch_size=*/0,
                   /*dop=*/1);
}
BENCHMARK(BM_ScanFilterAgg_SerialTuple);

void BM_ScanFilterAgg_Batch(::benchmark::State& state) {
  RunScanFilterAgg(state, "bench.exec.batch.ns", /*batch_size=*/1024,
                   /*dop=*/1);
}
BENCHMARK(BM_ScanFilterAgg_Batch);

void BM_ScanFilterAgg_Dop2(::benchmark::State& state) {
  RunScanFilterAgg(state, "bench.exec.dop2.ns", /*batch_size=*/1024,
                   /*dop=*/2);
}
BENCHMARK(BM_ScanFilterAgg_Dop2);

void BM_ScanFilterAgg_Dop4(::benchmark::State& state) {
  RunScanFilterAgg(state, "bench.exec.dop4.ns", /*batch_size=*/1024,
                   /*dop=*/4);
}
BENCHMARK(BM_ScanFilterAgg_Dop4);

void BM_ScanFilterAgg_Dop8(::benchmark::State& state) {
  RunScanFilterAgg(state, "bench.exec.parallel.ns", /*batch_size=*/1024,
                   /*dop=*/8);
}
BENCHMARK(BM_ScanFilterAgg_Dop8);

// Join + DISTINCT vs the DISTINCT-eliminated rewrite. SNO ⊕ PNO covers
// the PARTS key, so Theorem 1 removes the DISTINCT; what the parallel
// layer gains is structural: the eliminated plan is a pure pipeline
// (concat merge), while the DISTINCT plan pays a dedup barrier at the
// gather point.
const char* kJoinDistinctSql =
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO < 40000";

void RunJoin(::benchmark::State& state, const char* series, bool eliminate,
             unsigned dop) {
  const Database& db = GetSupplierDb(kSuppliers, kPartsPerSupplier);
  PlanPtr plan = MustBind(db, kJoinDistinctSql);
  if (eliminate) plan = MustRewrite(plan);
  PhysicalOptions physical = MakePhysical(/*batch_size=*/1024, dop);
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram(series);
  size_t rows = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    rows += MustExecute(plan, db, physical);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_JoinDistinct_Serial(::benchmark::State& state) {
  RunJoin(state, "bench.exec.join_distinct.ns", /*eliminate=*/false,
          /*dop=*/1);
}
BENCHMARK(BM_JoinDistinct_Serial);

void BM_JoinEliminated_Serial(::benchmark::State& state) {
  RunJoin(state, "bench.exec.join_eliminated.ns", /*eliminate=*/true,
          /*dop=*/1);
}
BENCHMARK(BM_JoinEliminated_Serial);

void BM_JoinDistinct_Dop8(::benchmark::State& state) {
  RunJoin(state, "bench.exec.join_distinct_dop8.ns", /*eliminate=*/false,
          /*dop=*/8);
}
BENCHMARK(BM_JoinDistinct_Dop8);

void BM_JoinEliminated_Dop8(::benchmark::State& state) {
  RunJoin(state, "bench.exec.join_eliminated_dop8.ns", /*eliminate=*/true,
          /*dop=*/8);
}
BENCHMARK(BM_JoinEliminated_Dop8);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
