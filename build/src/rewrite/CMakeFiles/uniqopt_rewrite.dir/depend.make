# Empty dependencies file for uniqopt_rewrite.
# This may be replaced when dependencies are built.
