#include "fd/functional_dependency.h"

#include <map>

namespace uniqopt {

FdSet FdSet::Shifted(size_t offset) const {
  FdSet out;
  for (const FunctionalDependency& fd : fds_) {
    out.Add(fd.lhs.Shifted(offset), fd.rhs.Shifted(offset));
  }
  return out;
}

AttributeSet FdSet::Closure(const AttributeSet& attrs) const {
  AttributeSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      if (fd.lhs.IsSubsetOf(closure) && !fd.rhs.IsSubsetOf(closure)) {
        closure.UnionInPlace(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::IsSuperkey(const AttributeSet& attrs,
                       const AttributeSet& universe) const {
  return universe.IsSubsetOf(Closure(attrs));
}

bool FdSet::Implies(const AttributeSet& lhs, const AttributeSet& rhs) const {
  return rhs.IsSubsetOf(Closure(lhs));
}

FdSet FdSet::ProjectTo(const std::vector<size_t>& kept) const {
  AttributeSet kept_set = AttributeSet::FromVector(kept);
  std::map<size_t, size_t> renumber;
  for (size_t i = 0; i < kept.size(); ++i) renumber[kept[i]] = i;

  auto renumber_set = [&](const AttributeSet& s) {
    AttributeSet out;
    for (size_t a : s.ToVector()) {
      auto it = renumber.find(a);
      if (it != renumber.end()) out.Add(it->second);
    }
    return out;
  };

  FdSet out;
  // Constants survive projection directly.
  AttributeSet empty_closure = Closure(AttributeSet{});
  AttributeSet kept_constants = empty_closure.Intersect(kept_set);
  if (!kept_constants.Empty()) {
    FunctionalDependency fd;
    fd.rhs = renumber_set(kept_constants);
    out.Add(std::move(fd));
  }
  // For each kept FD lhs contained in the projection, keep the kept part
  // of the closure of that lhs. Additionally probe single attributes so
  // equivalences survive even when declared with out-of-projection rhs.
  for (const FunctionalDependency& fd : fds_) {
    if (!fd.lhs.IsSubsetOf(kept_set)) continue;
    AttributeSet reachable = Closure(fd.lhs).Intersect(kept_set);
    AttributeSet lhs = renumber_set(fd.lhs);
    AttributeSet rhs = renumber_set(reachable).Difference(lhs);
    if (!rhs.Empty()) out.Add(std::move(lhs), std::move(rhs));
  }
  for (size_t a : kept) {
    AttributeSet single{a};
    AttributeSet reachable = Closure(single).Intersect(kept_set);
    if (reachable.Count() > 1) {
      AttributeSet lhs = renumber_set(single);
      AttributeSet rhs = renumber_set(reachable).Difference(lhs);
      if (!rhs.Empty()) out.Add(std::move(lhs), std::move(rhs));
    }
  }
  return out;
}

std::string FdSet::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i > 0) out += "; ";
    out += fds_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace uniqopt
