#ifndef UNIQOPT_TESTS_TEST_UTIL_H_
#define UNIQOPT_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/planner.h"
#include "plan/binder.h"
#include "storage/table.h"

namespace uniqopt {

/// gtest helpers for Status/Result.
#define ASSERT_OK(expr)                                     \
  do {                                                      \
    ::uniqopt::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    ::uniqopt::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                    \
  UNIQOPT_ASSIGN_OR_ABORT_IMPL(                             \
      UNIQOPT_ASSIGN_OR_RETURN_CONCAT(_test_result_, __LINE__), lhs, rexpr)

#define UNIQOPT_ASSIGN_OR_ABORT_IMPL(tmp, lhs, rexpr)       \
  auto tmp = (rexpr);                                       \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();         \
  lhs = std::move(tmp).ValueOrDie()

/// Named host-variable bindings for running parameterized queries.
using ParamBindings = std::vector<std::pair<std::string, Value>>;

/// Parses, binds, lowers and executes `sql` against `db`.
inline Result<std::vector<Row>> RunSql(const Database& db,
                                       const std::string& sql,
                                       const ParamBindings& params = {},
                                       const PhysicalOptions& physical = {},
                                       ExecStats* stats = nullptr) {
  Binder binder(&db.catalog());
  UNIQOPT_ASSIGN_OR_RETURN(BoundQuery bound, binder.BindSql(sql));
  ExecContext ctx;
  ctx.params.resize(bound.host_vars.size());
  for (const auto& [name, value] : params) {
    UNIQOPT_ASSIGN_OR_RETURN(size_t slot, bound.HostVarSlot(name));
    ctx.params[slot] = value;
  }
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows,
                           ExecutePlan(bound.plan, db, &ctx, physical));
  if (stats != nullptr) *stats = ctx.stats;
  return rows;
}

/// Multiset equality of row collections under `=!` value identity.
inline bool MultisetEquals(std::vector<Row> a, std::vector<Row> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].NullSafeEquals(b[i])) return false;
  }
  return true;
}

/// True if the collection contains two `=!`-equal rows.
inline bool HasDuplicates(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].NullSafeEquals(rows[i - 1])) return true;
  }
  return false;
}

inline std::string RowsToString(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace uniqopt

#endif  // UNIQOPT_TESTS_TEST_UTIL_H_
