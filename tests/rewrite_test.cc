#include <gtest/gtest.h>

#include "analysis/properties.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return bound.ok() ? bound->plan : nullptr;
  }

  /// Executes `plan` and the rewritten plan; checks multiset equality and
  /// returns which rules fired.
  RewriteResult RewriteAndCheck(const std::string& sql,
                                const ParamBindings& params = {},
                                const RewriteOptions& options = {}) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    auto rewritten = RewritePlan(bound->plan, options);
    EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();

    ExecContext ctx1;
    ExecContext ctx2;
    ctx1.params.resize(bound->host_vars.size());
    ctx2.params.resize(bound->host_vars.size());
    for (const auto& [name, value] : params) {
      auto slot = bound->HostVarSlot(name);
      EXPECT_TRUE(slot.ok());
      ctx1.params[*slot] = value;
      ctx2.params[*slot] = value;
    }
    auto before = ExecutePlan(bound->plan, db_, &ctx1);
    auto after = ExecutePlan(rewritten->plan, db_, &ctx2);
    EXPECT_TRUE(before.ok()) << before.status().ToString();
    EXPECT_TRUE(after.ok()) << after.status().ToString();
    if (before.ok() && after.ok()) {
      EXPECT_TRUE(MultisetEquals(*before, *after))
          << sql << "\noriginal:\n"
          << bound->plan->ToString() << "rewritten:\n"
          << rewritten->plan->ToString() << "before rows:\n"
          << RowsToString(*before) << "after rows:\n"
          << RowsToString(*after);
    }
    return *rewritten;
  }

  Database db_;
};

TEST_F(RewriteTest, RemovesRedundantDistinctExample1) {
  RewriteResult r = RewriteAndCheck(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveRedundantDistinct));
  const ProjectNode* project = As<ProjectNode>(r.plan);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->mode(), DuplicateMode::kAll);
}

TEST_F(RewriteTest, KeepsNecessaryDistinctExample2) {
  RewriteResult r = RewriteAndCheck(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  EXPECT_FALSE(r.Applied(RewriteRuleId::kRemoveRedundantDistinct));
  const ProjectNode* project = As<ProjectNode>(r.plan);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->mode(), DuplicateMode::kDist);
}

TEST_F(RewriteTest, SubqueryToJoinExample7) {
  RewriteResult r = RewriteAndCheck(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
      "WHERE S.SNAME = :NAME AND EXISTS "
      "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PN)",
      {{"NAME", Value::String("SUPPLIER-7")}, {"PN", Value::Integer(3)}});
  EXPECT_TRUE(r.Applied(RewriteRuleId::kSubqueryToJoin));
  // The result no longer contains an Exists node.
  EXPECT_EQ(r.plan->kind(), PlanKind::kProject);
  EXPECT_NE(As<SelectNode>(As<ProjectNode>(r.plan)->input()), nullptr);
}

TEST_F(RewriteTest, SubqueryToDistinctJoinExample8) {
  // Outer projects SUPPLIER's key ⇒ Corollary 1 applies even though many
  // red parts may match.
  RewriteResult r = RewriteAndCheck(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kSubqueryToDistinctJoin));
  const ProjectNode* project = As<ProjectNode>(r.plan);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->mode(), DuplicateMode::kDist);
}

TEST_F(RewriteTest, SubqueryNotConvertedWhenDuplicatesWouldAppear) {
  // Outer projects a non-key (SNAME): converting to a plain join would
  // duplicate suppliers with several red parts; converting to DISTINCT
  // join would collapse legitimately duplicate SNAMEs. Neither is valid.
  RewriteResult r = RewriteAndCheck(
      "SELECT ALL S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  EXPECT_FALSE(r.Applied(RewriteRuleId::kSubqueryToJoin));
  EXPECT_FALSE(r.Applied(RewriteRuleId::kSubqueryToDistinctJoin));
}

TEST_F(RewriteTest, DistinctProjectionAlwaysConvertible) {
  RewriteResult r = RewriteAndCheck(
      "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kSubqueryToDistinctJoin));
}

TEST_F(RewriteTest, IntersectToExistsExample9) {
  RewriteResult r = RewriteAndCheck(
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
      "INTERSECT "
      "SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR "
      "A.ACITY = 'Hull'");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kIntersectToExists));
  EXPECT_EQ(r.plan->kind(), PlanKind::kExists);
}

TEST_F(RewriteTest, IntersectAllToExistsCorollary2) {
  RewriteResult r = RewriteAndCheck(
      "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM PARTS");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kIntersectAllToExists));
}

TEST_F(RewriteTest, IntersectSwapsWhenOnlyRightUnique) {
  // Left operand (PARTS.SNO) has duplicates; right (SUPPLIER.SNO) is
  // unique — the rewrite swaps operands.
  RewriteResult r = RewriteAndCheck(
      "SELECT SNO FROM PARTS INTERSECT SELECT SNO FROM SUPPLIER");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kIntersectToExists) ||
              r.Applied(RewriteRuleId::kRemoveRedundantDistinct));
}

TEST_F(RewriteTest, IntersectNotRewrittenWhenBothHaveDuplicates) {
  RewriteResult r = RewriteAndCheck(
      "SELECT SNAME FROM SUPPLIER INTERSECT ALL "
      "SELECT PNAME FROM PARTS");
  EXPECT_TRUE(r.applied.empty());
}

TEST_F(RewriteTest, ExceptToNotExists) {
  RewriteResult r = RewriteAndCheck(
      "SELECT SNO FROM SUPPLIER EXCEPT SELECT SNO FROM AGENTS");
  EXPECT_TRUE(r.Applied(RewriteRuleId::kExceptToNotExists));
  const ExistsNode* exists = As<ExistsNode>(r.plan);
  ASSERT_NE(exists, nullptr);
  EXPECT_TRUE(exists->negated());
}

TEST_F(RewriteTest, NullSafeCorrelationPreservesNullMatches) {
  // OEM_PNO is nullable; the INTERSECT→EXISTS rewrite must keep NULLs
  // matching NULLs via the null-safe predicate.
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE L (K INTEGER NOT NULL, V INTEGER, PRIMARY KEY (K))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE R (K INTEGER NOT NULL, V INTEGER, PRIMARY KEY (K))"));
  ASSERT_OK_AND_ASSIGN(Table * l, db.GetTable("L"));
  ASSERT_OK_AND_ASSIGN(Table * r, db.GetTable("R"));
  ASSERT_OK(l->InsertValues({Value::Integer(1), Value::Null(TypeId::kInteger)}));
  ASSERT_OK(l->InsertValues({Value::Integer(2), Value::Integer(7)}));
  ASSERT_OK(r->InsertValues({Value::Integer(1), Value::Null(TypeId::kInteger)}));
  ASSERT_OK(r->InsertValues({Value::Integer(3), Value::Integer(7)}));

  Binder binder(&db.catalog());
  const char* sql =
      "SELECT K, V FROM L INTERSECT SELECT K, V FROM R";
  auto bound = binder.BindSql(sql);
  ASSERT_TRUE(bound.ok());
  auto rewritten = RewritePlan(bound->plan);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->Applied(RewriteRuleId::kIntersectToExists));

  ExecContext ctx1;
  ExecContext ctx2;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> before,
                       ExecutePlan(bound->plan, db, &ctx1));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> after,
                       ExecutePlan(rewritten->plan, db, &ctx2));
  // Row (1, NULL) matches across operands under =!.
  ASSERT_EQ(before.size(), 1u);
  EXPECT_TRUE(MultisetEquals(before, after));
}

TEST_F(RewriteTest, JoinToSubqueryRequiresOptIn) {
  const char* sql =
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PN";
  RewriteResult off = RewriteAndCheck(sql, {{"PN", Value::Integer(2)}});
  EXPECT_FALSE(off.Applied(RewriteRuleId::kJoinToSubquery));

  RewriteOptions opts;
  opts.join_to_subquery = true;
  opts.subquery_to_join = false;  // avoid immediate re-conversion
  opts.subquery_to_distinct_join = false;
  RewriteResult on =
      RewriteAndCheck(sql, {{"PN", Value::Integer(2)}}, opts);
  EXPECT_TRUE(on.Applied(RewriteRuleId::kJoinToSubquery));
  const ProjectNode* project = As<ProjectNode>(on.plan);
  ASSERT_NE(project, nullptr);
  EXPECT_NE(As<ExistsNode>(project->input()), nullptr);
}

TEST_F(RewriteTest, JoinToSubqueryRejectedWhenInnerNotUnique) {
  // Discarded side (PARTS by COLOR) can match many times; ALL-mode join
  // semantics would be changed, so the rewrite must not fire.
  RewriteOptions opts;
  opts.join_to_subquery = true;
  opts.subquery_to_join = false;
  opts.subquery_to_distinct_join = false;
  RewriteResult r = RewriteAndCheck(
      "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
      {}, opts);
  EXPECT_FALSE(r.Applied(RewriteRuleId::kJoinToSubquery));
}

TEST_F(RewriteTest, JoinToSubqueryDistinctModeAlwaysValid) {
  RewriteOptions opts;
  opts.join_to_subquery = true;
  opts.subquery_to_join = false;
  opts.subquery_to_distinct_join = false;
  opts.remove_redundant_distinct = false;  // keep the π_Dist visible
  RewriteResult r = RewriteAndCheck(
      "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
      {}, opts);
  EXPECT_TRUE(r.Applied(RewriteRuleId::kJoinToSubquery));
}

TEST_F(RewriteTest, RewritePipelineStacksRules) {
  // DISTINCT is redundant *and* the subquery is convertible: both rules
  // fire on one query.
  RewriteResult r = RewriteAndCheck(
      "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = :PN)",
      {{"PN", Value::Integer(1)}});
  EXPECT_TRUE(r.Applied(RewriteRuleId::kSubqueryToJoin) ||
              r.Applied(RewriteRuleId::kSubqueryToDistinctJoin));
  EXPECT_TRUE(r.Applied(RewriteRuleId::kRemoveRedundantDistinct));
  const ProjectNode* project = As<ProjectNode>(r.plan);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->mode(), DuplicateMode::kAll);
}

TEST_F(RewriteTest, ExistsToIntersectRoundTrip) {
  // §5.3 both ways: INTERSECT → EXISTS (Theorem 3), and — with the
  // converse rule enabled — that EXISTS back to an INTERSECT.
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  ASSERT_TRUE(bound.ok());
  auto forward = RewritePlan(bound->plan);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(forward->Applied(RewriteRuleId::kIntersectToExists));
  ASSERT_EQ(forward->plan->kind(), PlanKind::kExists);

  RewriteOptions back_opts;
  back_opts.exists_to_intersect = true;
  back_opts.intersect_to_exists = false;
  back_opts.intersect_all_to_exists = false;
  back_opts.except_to_not_exists = false;
  auto back = RewritePlan(forward->plan, back_opts);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Applied(RewriteRuleId::kExistsToIntersect))
      << back->plan->ToString();
  EXPECT_EQ(back->plan->kind(), PlanKind::kSetOp);

  // All three plans produce the same rows.
  ExecContext c1;
  ExecContext c2;
  ExecContext c3;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a,
                       ExecutePlan(bound->plan, db_, &c1));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b,
                       ExecutePlan(forward->plan, db_, &c2));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> c,
                       ExecutePlan(back->plan, db_, &c3));
  EXPECT_TRUE(MultisetEquals(a, b));
  EXPECT_TRUE(MultisetEquals(a, c));
}

TEST_F(RewriteTest, ExistsToIntersectRequiresDuplicateFreeOuter) {
  // SNAME is not a key: the converse rewrite must not fire even with a
  // null-safe correlation shape.
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT SNAME FROM SUPPLIER INTERSECT SELECT ANAME FROM AGENTS");
  ASSERT_TRUE(bound.ok());
  // Neither operand is duplicate-free, so the forward rewrite cannot
  // fire either; build the Exists manually.
  const SetOpNode* setop = As<SetOpNode>(bound->plan);
  ASSERT_NE(setop, nullptr);
  ExprPtr corr = MakeNullSafeCorrelation(setop->left()->schema(),
                                         setop->right()->schema());
  PlanPtr exists =
      ExistsNode::Make(setop->left(), setop->right(), corr, false);
  RewriteOptions opts;
  opts.exists_to_intersect = true;
  auto back = RewritePlan(exists, opts);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->Applied(RewriteRuleId::kExistsToIntersect));
}

TEST_F(RewriteTest, HostVarQueriesPreserveResultsAcrossParams) {
  const char* sql =
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
      "WHERE EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND "
      "P.PNO = :PN)";
  for (int64_t pn : {1, 5, 10, 99}) {
    RewriteAndCheck(sql, {{"PN", Value::Integer(pn)}});
  }
}

}  // namespace
}  // namespace uniqopt
