file(REMOVE_RECURSE
  "CMakeFiles/ims_gateway.dir/ims_gateway.cc.o"
  "CMakeFiles/ims_gateway.dir/ims_gateway.cc.o.d"
  "ims_gateway"
  "ims_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ims_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
