file(REMOVE_RECURSE
  "CMakeFiles/bench_intersect_rewrite.dir/bench_intersect_rewrite.cc.o"
  "CMakeFiles/bench_intersect_rewrite.dir/bench_intersect_rewrite.cc.o.d"
  "bench_intersect_rewrite"
  "bench_intersect_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intersect_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
