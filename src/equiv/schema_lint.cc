#include "equiv/schema_lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>

#include "equiv/symbolic.h"
#include "obs/advisor.h"

namespace uniqopt {
namespace equiv {
namespace {

std::string ColumnList(const TableDef& def, const std::vector<size_t>& cols) {
  std::string out = "(";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i) out += ", ";
    out += def.schema().column(cols[i]).name;
  }
  return out + ")";
}

std::string KeyDisplayName(const TableDef& def, const KeyConstraint& key) {
  if (!key.name.empty()) return key.name;
  return (key.kind == KeyKind::kPrimary ? "PRIMARY KEY " : "UNIQUE ") +
         ColumnList(def, key.columns);
}

void LintKeys(const TableDef& def, std::vector<SchemaLintFinding>* out) {
  const auto& keys = def.keys();
  for (size_t i = 0; i < keys.size(); ++i) {
    std::set<size_t> a(keys[i].columns.begin(), keys[i].columns.end());
    for (size_t j = 0; j < keys.size(); ++j) {
      if (i == j) continue;
      std::set<size_t> b(keys[j].columns.begin(), keys[j].columns.end());
      if (a == b) {
        if (i < j) {
          out->push_back({SchemaLintKind::kDuplicateKey, def.name(),
                          KeyDisplayName(def, keys[j]),
                          "declares the same column set " +
                              ColumnList(def, keys[j].columns) + " as " +
                              KeyDisplayName(def, keys[i])});
        }
        continue;
      }
      if (std::includes(a.begin(), a.end(), b.begin(), b.end())) {
        out->push_back({SchemaLintKind::kRedundantKey, def.name(),
                        KeyDisplayName(def, keys[i]),
                        "column set " + ColumnList(def, keys[i].columns) +
                            " contains key " +
                            KeyDisplayName(def, keys[j]) +
                            " — the wider key is implied and adds no "
                            "uniqueness"});
        break;  // one finding per redundant key is enough
      }
    }
  }
  for (const KeyConstraint& key : keys) {
    if (key.kind != KeyKind::kPrimary) continue;
    for (size_t kc : key.columns) {
      if (def.schema().column(kc).nullable) {
        out->push_back({SchemaLintKind::kNullableKeyColumn, def.name(),
                        def.schema().column(kc).name,
                        "PRIMARY KEY column " + def.schema().column(kc).name +
                            " is declared nullable — the implicit NOT NULL "
                            "half of the primary-key contract is missing"});
      }
    }
  }
}

void LintChecks(const TableDef& def, std::vector<SchemaLintFinding>* out) {
  size_t width = def.schema().num_columns();
  for (const CheckConstraint& check : def.checks()) {
    std::vector<size_t> cols;
    check.predicate->CollectColumns(&cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    if (cols.size() != 1) continue;
    size_t ordinal = cols[0];
    if (ordinal >= width) continue;
    TestPointResult res = CheckExcludesPredicate(
        def, ordinal, check.predicate, ordinal, width, /*nullable=*/false);
    if (res != TestPointResult::kHolds) continue;
    const Column& col = def.schema().column(ordinal);
    std::string effect =
        col.nullable ? "the column can only ever hold NULL"
                     : "the NOT NULL column admits no value at all — the "
                       "table can hold no rows";
    out->push_back({SchemaLintKind::kUnsatisfiableCheck, def.name(),
                    check.name.empty() ? check.sql_text : check.name,
                    "no storable value of " + col.name +
                        " satisfies the CHECK; " + effect});
  }
}

void LintForeignKeys(const Catalog& catalog, const TableDef& def,
                     std::vector<SchemaLintFinding>* out) {
  for (const ForeignKeyConstraint& fk : def.foreign_keys()) {
    std::string fk_name = fk.name.empty() ? "FK -> " + fk.ref_table : fk.name;
    auto ref = catalog.GetTable(fk.ref_table);
    if (!ref.ok()) {
      out->push_back({SchemaLintKind::kDanglingForeignKey, def.name(),
                      fk_name,
                      "references unknown table " + fk.ref_table});
      continue;
    }
    const TableDef& rdef = *(*ref);
    if (fk.columns.size() != fk.ref_columns.size()) {
      out->push_back({SchemaLintKind::kDanglingForeignKey, def.name(),
                      fk_name, "source/target column counts differ"});
      continue;
    }
    std::vector<size_t> refs;
    bool resolved = true;
    for (const std::string& rc : fk.ref_columns) {
      auto ord = rdef.ColumnOrdinal(rc);
      if (!ord.ok()) {
        out->push_back({SchemaLintKind::kDanglingForeignKey, def.name(),
                        fk_name,
                        "references unknown column " + fk.ref_table + "." +
                            rc});
        resolved = false;
        break;
      }
      refs.push_back((*ord));
    }
    if (!resolved) continue;
    std::set<size_t> refset(refs.begin(), refs.end());
    bool is_key = false;
    for (const KeyConstraint& key : rdef.keys()) {
      std::set<size_t> ks(key.columns.begin(), key.columns.end());
      if (ks == refset) is_key = true;
    }
    if (!is_key) {
      out->push_back({SchemaLintKind::kDanglingForeignKey, def.name(),
                      fk_name,
                      "referenced columns " + ColumnList(rdef, refs) + " of " +
                          fk.ref_table +
                          " are not a declared candidate key — matches are "
                          "not guaranteed unique and join elimination "
                          "cannot fire"});
    }
    for (size_t j = 0; j < fk.columns.size(); ++j) {
      if (fk.columns[j] >= def.schema().num_columns()) continue;
      bool src_not_null = !def.schema().column(fk.columns[j]).nullable;
      bool ref_nullable = refs[j] < rdef.schema().num_columns() &&
                          rdef.schema().column(refs[j]).nullable;
      if (src_not_null && ref_nullable) {
        out->push_back(
            {SchemaLintKind::kNotNullFkConflict, def.name(), fk_name,
             "NOT NULL source column " +
                 def.schema().column(fk.columns[j]).name +
                 " references nullable key column " + fk.ref_table + "." +
                 rdef.schema().column(refs[j]).name +
                 " — rows with a NULL key can never be referenced; declare "
                 "the key column NOT NULL"});
      }
    }
  }
}

void LintCycles(const Catalog& catalog,
                std::vector<SchemaLintFinding>* out) {
  // Table-level FK graph; a cycle means the inclusion dependencies
  // compose into a loop. Each cycle is reported once, anchored at its
  // lexicographically smallest member.
  std::map<std::string, std::set<std::string>> edges;
  for (const std::string& name : catalog.TableNames()) {
    auto def = catalog.GetTable(name);
    if (!def.ok()) continue;
    for (const ForeignKeyConstraint& fk : (*def)->foreign_keys()) {
      if (catalog.HasTable(fk.ref_table)) {
        edges[(*def)->name()].insert(fk.ref_table);
      }
    }
  }
  std::set<std::string> reported;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::set<std::string> done;
  std::function<void(const std::string&)> dfs = [&](const std::string& t) {
    stack.push_back(t);
    on_stack.insert(t);
    for (const std::string& next : edges[t]) {
      if (on_stack.count(next) != 0) {
        auto it = std::find(stack.begin(), stack.end(), next);
        std::vector<std::string> cycle(it, stack.end());
        std::string anchor = *std::min_element(cycle.begin(), cycle.end());
        std::string path;
        for (const std::string& n : cycle) path += n + " -> ";
        path += next;
        if (reported.insert(anchor + "|" + std::to_string(cycle.size()))
                .second) {
          out->push_back(
              {SchemaLintKind::kForeignKeyCycle, anchor, "",
               "referential cycle " + path +
                   "; with NOT NULL sources on every edge the inclusion "
                   "dependencies compose into mutual functional "
                   "dependencies, implying each source column set is an "
                   "undeclared candidate key"});
        }
        continue;
      }
      if (done.count(next) == 0) dfs(next);
    }
    on_stack.erase(t);
    stack.pop_back();
    done.insert(t);
  };
  for (const std::string& name : catalog.TableNames()) {
    auto def = catalog.GetTable(name);
    if (def.ok() && done.count((*def)->name()) == 0) {
      dfs((*def)->name());
    }
  }
}

std::string LowerName(SchemaLintKind kind) {
  std::string s = SchemaLintKindName(kind);
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

const char* SchemaLintKindName(SchemaLintKind kind) {
  switch (kind) {
    case SchemaLintKind::kDuplicateKey:
      return "DUPLICATE_KEY";
    case SchemaLintKind::kRedundantKey:
      return "REDUNDANT_KEY";
    case SchemaLintKind::kNullableKeyColumn:
      return "NULLABLE_KEY_COLUMN";
    case SchemaLintKind::kNotNullFkConflict:
      return "NOT_NULL_FK_CONFLICT";
    case SchemaLintKind::kDanglingForeignKey:
      return "DANGLING_FOREIGN_KEY";
    case SchemaLintKind::kUnsatisfiableCheck:
      return "UNSATISFIABLE_CHECK";
    case SchemaLintKind::kForeignKeyCycle:
      return "FOREIGN_KEY_CYCLE";
  }
  return "UNKNOWN";
}

std::string SchemaLintFinding::ToString() const {
  std::string out = std::string(SchemaLintKindName(kind)) + " " + table;
  if (!object.empty()) out += " " + object;
  return out + ": " + detail;
}

std::vector<SchemaLintFinding> LintCatalog(const Catalog& catalog) {
  std::vector<SchemaLintFinding> findings;
  for (const std::string& name : catalog.TableNames()) {
    auto def = catalog.GetTable(name);
    if (!def.ok()) continue;
    LintKeys(*(*def), &findings);
    LintChecks(*(*def), &findings);
    LintForeignKeys(catalog, *(*def), &findings);
  }
  LintCycles(catalog, &findings);
  return findings;
}

size_t PublishSchemaFindings(const std::vector<SchemaLintFinding>& findings) {
  obs::AdvisorStore& store = obs::AdvisorStore::Global();
  size_t published = 0;
  for (const SchemaLintFinding& f : findings) {
    obs::NearMiss miss;
    miss.goal = "schema.lint." + LowerName(f.kind);
    miss.table = f.table;
    switch (f.kind) {
      case SchemaLintKind::kDuplicateKey:
      case SchemaLintKind::kRedundantKey:
        miss.kind = obs::MissingFactKind::kUniqueKey;
        break;
      case SchemaLintKind::kNullableKeyColumn:
      case SchemaLintKind::kNotNullFkConflict:
      case SchemaLintKind::kUnsatisfiableCheck:
        miss.kind = obs::MissingFactKind::kNotNull;
        break;
      case SchemaLintKind::kDanglingForeignKey:
      case SchemaLintKind::kForeignKeyCycle:
        miss.kind = obs::MissingFactKind::kFunctionalDependency;
        break;
    }
    miss.fact = f.object.empty() ? f.detail : f.object + ": " + f.detail;
    std::string sample = "-- schema lint: " + f.ToString();
    uint64_t fingerprint = std::hash<std::string>{}(miss.goal + "|" +
                                                    f.table + "|" + f.object);
    store.Record(miss, fingerprint, sample);
    ++published;
  }
  return published;
}

}  // namespace equiv
}  // namespace uniqopt
