
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/algorithm1.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/algorithm1.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/algorithm1.cc.o.d"
  "/root/repo/src/analysis/implication.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/implication.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/implication.cc.o.d"
  "/root/repo/src/analysis/properties.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/properties.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/properties.cc.o.d"
  "/root/repo/src/analysis/shape.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/shape.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/shape.cc.o.d"
  "/root/repo/src/analysis/subquery.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/subquery.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/subquery.cc.o.d"
  "/root/repo/src/analysis/uniqueness.cc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/uniqueness.cc.o" "gcc" "src/analysis/CMakeFiles/uniqopt_analysis.dir/uniqueness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/uniqopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/uniqopt_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/uniqopt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/uniqopt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/uniqopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/uniqopt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uniqopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
