#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "exec/operators.h"
#include "obs/metrics.h"

namespace uniqopt {

// ------------------------------------------------------ SharedJoinBuild
Status SharedJoinBuild::EnsureBuilt(Operator* build_side, ExecContext* ctx,
                                    const std::vector<size_t>& keys) {
  bool drainer = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kIdle) {
      state_ = State::kDraining;
      drainer = true;
    }
  }
  if (drainer) {
    // Drain the build side once (this worker's operator instance; the
    // other workers' build subtrees are never opened) and partition the
    // keyed rows by hash. NULL join keys never match under 3VL `=`, so
    // they are dropped here, exactly like the serial HashJoinOp build.
    Status drain_status = [&]() -> Status {
      UNIQOPT_RETURN_NOT_OK(build_side->Open(ctx));
      size_t partitions = rows_.size();
      auto add = [&](const Row& r) {
        Row key = r.Project(keys);
        bool has_null = false;
        for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
        if (has_null) return;
        size_t p = key.Hash() % partitions;
        rows_[p].emplace_back(std::move(key), r);
      };
      if (ctx->batch_size > 0) {
        RowBatch batch(ctx->batch_size);
        while (true) {
          UNIQOPT_ASSIGN_OR_RETURN(bool more,
                                   build_side->NextBatch(ctx, &batch));
          if (!more) break;
          for (size_t i = 0; i < batch.size(); ++i) add(batch.row(i));
        }
      } else {
        Row row;
        while (true) {
          UNIQOPT_ASSIGN_OR_RETURN(bool more, build_side->Next(ctx, &row));
          if (!more) break;
          add(row);
        }
      }
      build_side->Close();
      return Status::OK();
    }();
    std::unique_lock<std::mutex> lock(mu_);
    if (!drain_status.ok()) {
      state_ = State::kFailed;
      failure_ = drain_status;
      cv_.notify_all();
      return drain_status;
    }
    state_ = State::kBuilding;
    cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return state_ != State::kIdle && state_ != State::kDraining;
    });
    if (state_ == State::kFailed) return failure_;
    if (state_ == State::kPublished) return Status::OK();
  }
  // kBuilding: claim partitions and build their hash tables. The atomic
  // counter gives each partition exactly one builder, so the per-table
  // writes are unsynchronized; publication below transfers them via the
  // mutex.
  while (true) {
    size_t p = next_partition_.fetch_add(1, std::memory_order_relaxed);
    if (p >= tables_.size()) break;
    BuildTable& table = tables_[p];
    for (std::pair<Row, Row>& kv : rows_[p]) {
      ++ctx->stats.hash_build_rows;
      table.emplace(std::move(kv.first), std::move(kv.second));
    }
    rows_[p].clear();
    std::unique_lock<std::mutex> lock(mu_);
    if (++partitions_built_ == tables_.size()) {
      state_ = State::kPublished;
      cv_.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [&] { return state_ == State::kPublished ||
                        state_ == State::kFailed; });
  return state_ == State::kFailed ? failure_ : Status::OK();
}

// ------------------------------------------------ SharedHashJoinProbeOp
Status SharedHashJoinProbeOp::Open(ExecContext* ctx) {
  UNIQOPT_RETURN_NOT_OK(build_->EnsureBuilt(right_.get(), ctx, right_keys_));
  UNIQOPT_RETURN_NOT_OK(left_->Open(ctx));
  have_left_ = false;
  probe_batch_ = RowBatch(ctx->batch_size > 0 ? ctx->batch_size
                                              : RowBatch::kDefaultBatchSize);
  return Status::OK();
}

Result<bool> SharedHashJoinProbeOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    if (!have_left_) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &left_row_));
      if (!more) return false;
      Row key = left_row_.Project(left_keys_);
      bool has_null = false;
      for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
      ++ctx->stats.hash_probes;
      matches_ = has_null
                     ? std::pair<SharedJoinBuild::BuildTable::const_iterator,
                                 SharedJoinBuild::BuildTable::const_iterator>{}
                     : build_->Probe(key);
      have_left_ = true;
    }
    while (matches_.first != matches_.second) {
      Row candidate = Row::Concat(left_row_, matches_.first->second);
      ++matches_.first;
      if (residual_ == nullptr ||
          residual_->EvaluatePredicate(candidate, ctx->params) ==
              Tribool::kTrue) {
        *row = std::move(candidate);
        return true;
      }
    }
    have_left_ = false;
  }
}

Result<bool> SharedHashJoinProbeOp::NextBatch(ExecContext* ctx,
                                              RowBatch* out) {
  out->Reset();
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more,
                             left_->NextBatch(ctx, &probe_batch_));
    if (!more) return !out->empty();
    for (size_t i = 0; i < probe_batch_.size(); ++i) {
      const Row& probe = probe_batch_.row(i);
      Row key = probe.Project(left_keys_);
      bool has_null = false;
      for (size_t k = 0; k < key.size(); ++k) has_null |= key[k].is_null();
      ++ctx->stats.hash_probes;
      if (has_null) continue;
      auto [it, end] = build_->Probe(key);
      for (; it != end; ++it) {
        Row candidate = Row::Concat(probe, it->second);
        if (residual_ == nullptr ||
            residual_->EvaluatePredicate(candidate, ctx->params) ==
                Tribool::kTrue) {
          out->Append(std::move(candidate));
        }
      }
    }
    if (!out->empty()) return true;
  }
}

void SharedHashJoinProbeOp::Close() {
  // right_ is opened/closed inside SharedJoinBuild by the draining
  // worker only; closing it here would double-close.
  left_->Close();
}

// ----------------------------------------------------- parallel executor
namespace {

/// How the per-worker streams merge at the gather point.
enum class MergeMode {
  kConcat,     ///< order-insensitive concatenation of worker outputs
  kAggregate,  ///< thread-local pre-aggregation, merged then finalized
  kDistinct,   ///< thread-local dedup, merged into a global seen-set
};

/// The driving base-table Get of a worker pipeline: the scan whose rows
/// are split into morsels. Follows the probe/streaming side of each
/// node; bails (nullptr) on mid-pipeline breakers (DISTINCT,
/// aggregation, set ops), whose partial per-worker inputs would not
/// compose.
const PlanNode* FindDriver(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kGet:
      return plan.get();
    case PlanKind::kSelect:
      return FindDriver(As<SelectNode>(plan)->input());
    case PlanKind::kProject: {
      const ProjectNode* p = As<ProjectNode>(plan);
      if (p->mode() != DuplicateMode::kAll) return nullptr;
      return FindDriver(p->input());
    }
    case PlanKind::kProduct:
      // The planner probes with the left side; the right side is
      // drained/built per worker (or shared, for hash joins).
      return FindDriver(As<ProductNode>(plan)->left());
    case PlanKind::kExists:
      return FindDriver(As<ExistsNode>(plan)->outer());
    case PlanKind::kSetOp:
    case PlanKind::kAggregate:
      return nullptr;
  }
  return nullptr;
}

/// Occurrences of `target` (by pointer) in the plan. Rewrites may share
/// subtrees, so the driving Get can legitimately appear on both sides
/// of a self-join; splitting one cursor across two scan positions would
/// be wrong, so such plans fall back to serial.
size_t CountNode(const PlanPtr& plan, const PlanNode* target) {
  size_t n = plan.get() == target ? 1 : 0;
  switch (plan->kind()) {
    case PlanKind::kGet:
      break;
    case PlanKind::kSelect:
      n += CountNode(As<SelectNode>(plan)->input(), target);
      break;
    case PlanKind::kProject:
      n += CountNode(As<ProjectNode>(plan)->input(), target);
      break;
    case PlanKind::kProduct: {
      const ProductNode* p = As<ProductNode>(plan);
      n += CountNode(p->left(), target) + CountNode(p->right(), target);
      break;
    }
    case PlanKind::kExists: {
      const ExistsNode* e = As<ExistsNode>(plan);
      n += CountNode(e->outer(), target) + CountNode(e->sub(), target);
      break;
    }
    case PlanKind::kSetOp: {
      const SetOpNode* s = As<SetOpNode>(plan);
      n += CountNode(s->left(), target) + CountNode(s->right(), target);
      break;
    }
    case PlanKind::kAggregate:
      n += CountNode(As<AggregateNode>(plan)->input(), target);
      break;
  }
  return n;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<std::optional<std::vector<Row>>> TryParallelExecute(
    const PlanPtr& plan, const Database& db, ExecContext* ctx,
    const PhysicalOptions& options, ExecProfile* profile) {
  unsigned dop = std::min(options.dop, 64u);
  if (dop <= 1) return std::optional<std::vector<Row>>();

  // Pick the gather strategy from the root and derive the per-worker
  // pipeline. A root DISTINCT or aggregation is the pipeline breaker:
  // workers run the pipeline below it with thread-local state, and the
  // breaker itself happens once at the merge.
  MergeMode mode = MergeMode::kConcat;
  PlanPtr worker_plan = plan;
  const AggregateNode* agg_root = nullptr;
  const ProjectNode* distinct_root = nullptr;
  if (plan->kind() == PlanKind::kAggregate) {
    agg_root = As<AggregateNode>(plan);
    mode = MergeMode::kAggregate;
    worker_plan = agg_root->input();
  } else if (plan->kind() == PlanKind::kProject &&
             As<ProjectNode>(plan)->mode() == DuplicateMode::kDist) {
    distinct_root = As<ProjectNode>(plan);
    mode = MergeMode::kDistinct;
    // Workers project without eliminating; the dedup happens against
    // thread-local seen-sets merged at the gather point.
    worker_plan = ProjectNode::Make(distinct_root->input(),
                                    DuplicateMode::kAll,
                                    distinct_root->columns());
  }

  const PlanNode* driver = FindDriver(worker_plan);
  if (driver == nullptr) return std::optional<std::vector<Row>>();
  if (CountNode(worker_plan, driver) != 1) {
    return std::optional<std::vector<Row>>();
  }
  auto table =
      db.GetTable(static_cast<const GetNode*>(driver)->table().name());
  if (!table.ok()) return std::optional<std::vector<Row>>();

  TableSnapshot driver_snapshot = (*table)->Snapshot();
  MorselCursor cursor(driver_snapshot->rows.size());
  ParallelLoweringHooks hooks;
  hooks.driver = driver;
  hooks.driver_snapshot = std::move(driver_snapshot);
  hooks.cursor = &cursor;
  hooks.build_partitions = dop;

  // Lower all worker trees serially before any thread starts — the
  // shared-build map and profile need no locking, and plan-shape errors
  // surface before threads exist.
  std::vector<OperatorPtr> roots;
  roots.reserve(dop);
  for (unsigned w = 0; w < dop; ++w) {
    auto lowered = CreatePhysicalPlan(worker_plan, db, options,
                                     /*profile=*/nullptr, &hooks);
    if (!lowered.ok()) return lowered.status();
    roots.push_back(std::move(*lowered));
  }

  struct WorkerState {
    ExecContext ctx;
    Status status;
    std::vector<Row> rows;
    uint64_t produced = 0;
    uint64_t busy_ns = 0;
  };
  std::vector<WorkerState> workers(dop);
  std::vector<GroupedAggregator> aggs;
  std::vector<std::unordered_set<Row, RowHash, RowNullSafeEqual>> seen;
  if (mode == MergeMode::kAggregate) {
    aggs.reserve(dop);
    for (unsigned w = 0; w < dop; ++w) {
      aggs.emplace_back(agg_root->input()->schema(),
                        agg_root->group_columns(), agg_root->aggregates());
    }
  } else if (mode == MergeMode::kDistinct) {
    seen.resize(dop);
  }

  auto run_worker = [&](unsigned w) {
    WorkerState& ws = workers[w];
    ws.ctx.params = ctx->params;
    ws.ctx.batch_size = options.batch_size;
    uint64_t start = NowNs();
    Operator* root = roots[w].get();
    if (mode == MergeMode::kConcat) {
      auto r = ExecuteToVector(root, &ws.ctx);
      if (r.ok()) {
        ws.rows = std::move(*r);
        ws.produced = ws.rows.size();
      } else {
        ws.status = r.status();
      }
    } else {
      ws.status = [&]() -> Status {
        UNIQOPT_RETURN_NOT_OK(root->Open(&ws.ctx));
        auto consume = [&](const Row& row) {
          if (mode == MergeMode::kAggregate) {
            aggs[w].Accumulate(row, &ws.ctx.stats);
          } else {
            ++ws.ctx.stats.hash_probes;
            seen[w].insert(row);
          }
          ++ws.produced;
        };
        if (ws.ctx.batch_size > 0) {
          RowBatch batch(ws.ctx.batch_size);
          while (true) {
            UNIQOPT_ASSIGN_OR_RETURN(bool more,
                                     root->NextBatch(&ws.ctx, &batch));
            if (!more) break;
            for (size_t i = 0; i < batch.size(); ++i) consume(batch.row(i));
          }
        } else {
          Row row;
          while (true) {
            UNIQOPT_ASSIGN_OR_RETURN(bool more, root->Next(&ws.ctx, &row));
            if (!more) break;
            consume(row);
          }
        }
        root->Close();
        return Status::OK();
      }();
    }
    ws.busy_ns = NowNs() - start;
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(dop - 1);
    for (unsigned w = 1; w < dop; ++w) pool.emplace_back(run_worker, w);
    run_worker(0);
    for (std::thread& t : pool) t.join();
  }

  for (const WorkerState& ws : workers) {
    if (!ws.status.ok()) return ws.status;
  }

  // Merge thread-local stats into the caller's — totals stay exact
  // under parallelism (per-operator profiling and the class-window
  // exemplars read the same numbers serial execution would produce).
  uint64_t total_morsels = 0;
  for (WorkerState& ws : workers) {
    ctx->stats.Merge(ws.ctx.stats);
    total_morsels += ws.ctx.stats.morsels_claimed;
  }

  std::vector<Row> out;
  switch (mode) {
    case MergeMode::kConcat: {
      size_t total = 0;
      for (const WorkerState& ws : workers) total += ws.rows.size();
      out.reserve(total);
      for (WorkerState& ws : workers) {
        for (Row& r : ws.rows) out.push_back(std::move(r));
      }
      break;
    }
    case MergeMode::kAggregate: {
      for (unsigned w = 1; w < dop; ++w) aggs[0].MergeFrom(aggs[w]);
      out = aggs[0].Finalize();
      ctx->stats.rows_output += out.size();
      break;
    }
    case MergeMode::kDistinct: {
      auto& global = seen[0];
      for (unsigned w = 1; w < dop; ++w) {
        for (const Row& r : seen[w]) {
          ++ctx->stats.hash_probes;  // the merge is real dedup work
          global.insert(r);
        }
      }
      out.assign(global.begin(), global.end());
      ctx->stats.rows_output += out.size();
      break;
    }
  }

  // Feed the shared observability plane from the execution layer, so
  // every caller (optimizer, shell, benches) moves the same series the
  // \timeline plane and the regression sentinel watch.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("exec.morsels").Increment(total_morsels);
  obs::Histogram& busy = reg.GetHistogram("exec.worker.busy.ns");
  std::vector<WorkerProfile> worker_profiles;
  worker_profiles.reserve(dop);
  for (const WorkerState& ws : workers) {
    busy.Record(ws.busy_ns);
    worker_profiles.push_back(WorkerProfile{ws.ctx.stats.morsels_claimed,
                                            ws.produced, ws.busy_ns});
  }
  if (profile != nullptr) {
    profile->SetParallel(dop, options.batch_size,
                         std::move(worker_profiles));
  }
  return std::optional<std::vector<Row>>(std::move(out));
}

}  // namespace uniqopt
