// Plan cache benchmarks: what a prepared-query cache hit is worth.
//
//  - BM_PrepareCold: the full pipeline (parse → bind → Algorithm 1 →
//    rewrite → verify) with the cache disabled — the baseline every hit
//    avoids. Runs advisor-off (no near-miss collection, no publication)
//    so the gated `bench.plan_cache.cold.ns` p50 must stay within noise
//    of the pre-advisor baseline in bench/baselines/.
//  - BM_PrepareColdAdvisorOn: the same cold pipeline with near-miss
//    collection and advisor publication enabled — ungated, reported in
//    `bench.plan_cache.cold_advisor.ns` so the advisor's prepare-path
//    overhead is visible side by side with the gated number.
//  - BM_PrepareColdTickerOn: the cold pipeline with the time-series
//    plane's background ticker running (100ms windows) and the sample
//    feed enabled — `bench.plan_cache.cold_ticker.ns`. check.sh
//    --bench-gate compares its p50 against the ticker-off cold p50
//    (BENCH_pr9.json), bounding what live monitoring costs.
//  - BM_PrepareColdEquivOn: the cold pipeline with the symbolic
//    equivalence prover certifying every applied rewrite —
//    `bench.plan_cache.cold_equiv.ns`. check.sh --bench-gate bounds
//    its p50 at <= 1.3x the prover-off cold p50 (BENCH_pr9.json):
//    certifying rewrites must stay a small tax on prepare. The gated
//    BM_PrepareCold baseline runs prover-off so the number stays
//    comparable with pre-prover baselines in bench/baselines/.
//  - BM_PrepareWarmHit: the same corpus against a pre-warmed cache —
//    fingerprint + one shared-lock lookup. Latencies land in
//    `bench.plan_cache.warm.ns`; check.sh --bench-gate asserts warm p50
//    is ≥10× faster than cold p50 (BENCH_pr6.json).
//  - BM_PrepareMixed/<hit_pct>: K threads hammering one Optimizer at a
//    configurable hit ratio (misses are made unique via a fresh SNO
//    literal per miss, so they never start hitting).
//  - BM_PrepareBatch: PrepareBatch over the whole corpus on 8 threads.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/advisor.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "uniqopt/optimizer.h"
#include "workload/query_corpus.h"

namespace uniqopt {
namespace bench {
namespace {

/// The Optimizer mutates nothing, but takes a non-const Database*; the
/// bench keeps one mutable supplier instance alive for all runs.
Database* MutableSupplierDb() {
  static Database* db = [] {
    auto* d = new Database();
    SupplierSchemaOptions schema;
    schema.max_sno = 101;
    Status st = CreateSupplierSchema(d, schema);
    UNIQOPT_DCHECK_MSG(st.ok(), st.ToString().c_str());
    SupplierDataOptions data;
    data.num_suppliers = 100;
    data.parts_per_supplier = 10;
    data.num_agents = 50;
    st = PopulateSupplierDatabase(d, data);
    UNIQOPT_DCHECK_MSG(st.ok(), st.ToString().c_str());
    return d;
  }();
  return db;
}

std::vector<std::string> CorpusSql() {
  std::vector<std::string> out;
  for (const CorpusQuery& q : DistinctQueryCorpus()) out.push_back(q.sql);
  return out;
}

void BM_PrepareCold(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  cache::PlanCacheOptions no_cache;
  no_cache.enabled = false;
  RewriteOptions advisor_off;
  advisor_off.analysis.collect_near_misses = false;
  Optimizer optimizer(db, advisor_off, /*use_cost_model=*/false, no_cache);
  optimizer.set_advise(false);
  optimizer.set_check_equiv(false);
  std::vector<std::string> corpus = CorpusSql();
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("bench.plan_cache.cold.ns");
  size_t i = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    auto prepared = optimizer.PrepareShared(corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareCold);

void BM_PrepareColdEquivOn(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  cache::PlanCacheOptions no_cache;
  no_cache.enabled = false;
  RewriteOptions advisor_off;
  advisor_off.analysis.collect_near_misses = false;
  Optimizer optimizer(db, advisor_off, /*use_cost_model=*/false, no_cache);
  optimizer.set_advise(false);
  optimizer.set_check_equiv(true);
  std::vector<std::string> corpus = CorpusSql();
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "bench.plan_cache.cold_equiv.ns");
  size_t i = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    auto prepared = optimizer.PrepareShared(corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareColdEquivOn);

void BM_PrepareColdAdvisorOn(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  cache::PlanCacheOptions no_cache;
  no_cache.enabled = false;
  Optimizer optimizer(db, {}, /*use_cost_model=*/false, no_cache);
  optimizer.set_check_equiv(false);
  std::vector<std::string> corpus = CorpusSql();
  obs::AdvisorStore::Global().set_enabled(true);
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "bench.plan_cache.cold_advisor.ns");
  size_t i = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    auto prepared = optimizer.PrepareShared(corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations());
  obs::AdvisorStore::Global().Clear();
}
BENCHMARK(BM_PrepareColdAdvisorOn);

void BM_PrepareColdTickerOn(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  cache::PlanCacheOptions no_cache;
  no_cache.enabled = false;
  RewriteOptions advisor_off;
  advisor_off.analysis.collect_near_misses = false;
  Optimizer optimizer(db, advisor_off, /*use_cost_model=*/false, no_cache);
  optimizer.set_advise(false);
  optimizer.set_check_equiv(false);
  std::vector<std::string> corpus = CorpusSql();
  obs::TimeSeriesPlane& plane = obs::TimeSeriesPlane::Global();
  Status ticker = plane.StartTicker(100);
  UNIQOPT_DCHECK_MSG(
      ticker.ok() || ticker.code() == StatusCode::kAlreadyExists,
      ticker.ToString().c_str());
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "bench.plan_cache.cold_ticker.ns");
  size_t i = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    auto prepared = optimizer.PrepareShared(corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations());
  plane.StopTicker();
  plane.set_enabled(false);
  plane.Reset();
}
BENCHMARK(BM_PrepareColdTickerOn);

void BM_PrepareWarmHit(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  static Optimizer* optimizer = new Optimizer(MutableSupplierDb());
  (void)db;
  std::vector<std::string> corpus = CorpusSql();
  for (const std::string& sql : corpus) {  // pre-warm
    auto prepared = optimizer->PrepareShared(sql);
    UNIQOPT_DCHECK_MSG(prepared.ok(), prepared.status().ToString().c_str());
  }
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("bench.plan_cache.warm.ns");
  size_t i = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    auto prepared = optimizer->PrepareShared(corpus[i++ % corpus.size()]);
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareWarmHit);

void BM_PrepareMixed(benchmark::State& state) {
  static Optimizer* optimizer = new Optimizer(MutableSupplierDb());
  static std::atomic<uint64_t> unique_literal{1000};
  const uint64_t hit_pct = static_cast<uint64_t>(state.range(0));
  std::vector<std::string> corpus = CorpusSql();
  if (state.thread_index() == 0) {
    for (const std::string& sql : corpus) {
      auto prepared = optimizer->PrepareShared(sql);
      UNIQOPT_DCHECK_MSG(prepared.ok(),
                         prepared.status().ToString().c_str());
    }
  }
  uint64_t n = 0;
  for (auto _ : state) {
    ++n;
    if (n % 100 < hit_pct) {
      auto prepared =
          optimizer->PrepareShared(corpus[n % corpus.size()]);
      benchmark::DoNotOptimize(prepared);
    } else {
      // A literal nobody used before: guaranteed miss, full pipeline +
      // insert (and eventually eviction) under concurrency.
      std::string sql =
          "SELECT SNAME FROM SUPPLIER WHERE SNO = " +
          std::to_string(unique_literal.fetch_add(1));
      auto prepared = optimizer->PrepareShared(sql);
      benchmark::DoNotOptimize(prepared);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrepareMixed)->Arg(90)->Arg(50)->Threads(8);

void BM_PrepareBatch(benchmark::State& state) {
  Database* db = MutableSupplierDb();
  Optimizer optimizer(db);
  std::vector<std::string> corpus = CorpusSql();
  for (auto _ : state) {
    auto prepared = optimizer.PrepareBatch(corpus, 8);
    UNIQOPT_DCHECK_MSG(prepared.ok(), prepared.status().ToString().c_str());
    benchmark::DoNotOptimize(prepared);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_PrepareBatch);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
