#ifndef UNIQOPT_IMS_GATEWAY_H_
#define UNIQOPT_IMS_GATEWAY_H_

#include <vector>

#include "ims/dli.h"
#include "storage/table.h"

namespace uniqopt {
namespace ims {

/// Builds the Figure 2 hierarchy — SUPPLIER root with PARTS and AGENTS
/// children, root key SNO, child keys PNO / ANO — and loads it from the
/// relational supplier database (tables SUPPLIER, PARTS, AGENTS).
Result<std::unique_ptr<ImsDatabase>> BuildSupplierIms(
    const Database& relational);

/// Result of one gateway program: the rows output plus the DL/I work it
/// took to produce them.
struct GatewayResult {
  std::vector<Row> rows;  ///< SUPPLIER segment fields per output row
  DliCallStats stats;
};

/// Example 10's *join* strategy (lines 21–29): for the query
///   SELECT ALL S.* FROM SUPPLIER S, PARTS P
///   WHERE S.SNO = P.SNO AND P.PNO = :PARTNO
/// iterate all suppliers and, per supplier, GNP PARTS (PNO = :PARTNO)
/// until 'GE', emitting the supplier once per qualifying part. Because
/// PNO is the PARTS key, the second GNP per supplier always fails — the
/// wasted call the nested strategy avoids.
GatewayResult JoinStrategySuppliersForPart(const ImsDatabase& db,
                                           int64_t part_no);

/// Example 10's *nested* (EXISTS) strategy (lines 30–35), enabled by the
/// join→subquery rewrite: one GNP per supplier, stop at the first match.
GatewayResult NestedStrategySuppliersForPart(const ImsDatabase& db,
                                             int64_t part_no);

/// The non-key variant the paper sketches (line 35 discussion): the join
/// predicate qualifies the candidate key OEM-PNO, which is not the
/// sequence field, so the join strategy's second GNP scans all remaining
/// twins while the nested strategy halts at the first match.
GatewayResult JoinStrategySuppliersForOem(const ImsDatabase& db,
                                          int64_t oem_pno);
GatewayResult NestedStrategySuppliersForOem(const ImsDatabase& db,
                                            int64_t oem_pno);

}  // namespace ims
}  // namespace uniqopt

#endif  // UNIQOPT_IMS_GATEWAY_H_
