// Tests for the cost model and cost-based strategy choice — the piece
// the paper leaves to "the optimizer's cost model" (§5).

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "exec/cost_model.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    SupplierDataOptions data;
    data.num_suppliers = 200;
    data.parts_per_supplier = 10;
    ASSERT_OK(PopulateSupplierDatabase(&db_, data));
    estimator_ = std::make_unique<CostEstimator>(&db_);
  }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound->plan;
  }

  Database db_;
  std::unique_ptr<CostEstimator> estimator_;
};

TEST_F(CostModelTest, BaseTableCardinalities) {
  EXPECT_DOUBLE_EQ(estimator_->EstimateRows(Bind("SELECT * FROM SUPPLIER")),
                   200.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateRows(Bind("SELECT * FROM PARTS")),
                   2000.0);
}

TEST_F(CostModelTest, DistinctCountsFromLiveData) {
  // SNO is the key: 200 distinct. PARTS.PNO has 10 distinct values.
  EXPECT_DOUBLE_EQ(estimator_->DistinctCount("SUPPLIER", 0), 200.0);
  EXPECT_DOUBLE_EQ(estimator_->DistinctCount("PARTS", 1), 10.0);
}

TEST_F(CostModelTest, KeyEqualitySelectsOneRow) {
  double rows = estimator_->EstimateRows(
      Bind("SELECT * FROM SUPPLIER WHERE SNO = 7"));
  EXPECT_NEAR(rows, 1.0, 0.01);
}

TEST_F(CostModelTest, JoinCardinalityTracksKeys) {
  // S ⋈ P on SNO: |P| rows expected (each part one supplier).
  double rows = estimator_->EstimateRows(
      Bind("SELECT * FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO"));
  EXPECT_NEAR(rows, 2000.0, 100.0);
}

TEST_F(CostModelTest, HashJoinCheaperThanNestedLoop) {
  PlanPtr plan =
      Bind("SELECT * FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
  PhysicalOptions hash;
  hash.join = PhysicalOptions::JoinStrategy::kHash;
  PhysicalOptions nl;
  nl.join = PhysicalOptions::JoinStrategy::kNestedLoop;
  EXPECT_LT(estimator_->Estimate(plan, hash).cost,
            estimator_->Estimate(plan, nl).cost);
}

TEST_F(CostModelTest, EmptySelectionIsFree) {
  PlanPtr plan = Bind("SELECT * FROM SUPPLIER WHERE SNO = 600");
  auto rewritten = RewritePlan(plan);
  ASSERT_TRUE(rewritten.ok());
  PlanEstimate e = estimator_->Estimate(rewritten->plan, {});
  EXPECT_LT(e.cost, 10.0);
}

TEST_F(CostModelTest, DistinctRemovalLowersCost) {
  PlanPtr with = Bind(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  auto rewritten = RewritePlan(with);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_TRUE(rewritten->Applied(RewriteRuleId::kRemoveRedundantDistinct));
  PhysicalOptions sort;
  sort.distinct = PhysicalOptions::DistinctStrategy::kSort;
  EXPECT_LT(estimator_->Estimate(rewritten->plan, sort).cost,
            estimator_->Estimate(with, sort).cost);
}

TEST_F(CostModelTest, ChooserPrefersRewrittenExistsAtScale) {
  PlanPtr original = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 3)");
  auto rewritten = RewritePlan(original);
  ASSERT_TRUE(rewritten.ok());
  std::vector<PlanAlternative> alts =
      StandardAlternatives(original, rewritten->plan);
  size_t best = ChooseBestAlternative(*estimator_, &alts);
  // The winner must not be a nested-loop plan.
  EXPECT_EQ(alts[best].label.find("nested-loop"), std::string::npos)
      << alts[best].label;
}

TEST_F(CostModelTest, OptimizerFacadeCostBased) {
  Optimizer optimizer(&db_, RewriteOptions{}, /*use_cost_model=*/true);
  auto prepared = optimizer.Prepare(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared->cost_based);
  EXPECT_FALSE(prepared->chosen_label.empty());
  EXPECT_GT(prepared->chosen_estimate.cost, 0.0);
  EXPECT_NE(prepared->Explain().find("cost-based choice"),
            std::string::npos);
  // Executing uses the pinned strategy and produces correct results.
  auto rows = optimizer.Execute(*prepared);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2000u);
}

TEST_F(CostModelTest, EstimatesAreOrderOfMagnitudeSane) {
  // Compare estimated vs actual cardinalities across several queries;
  // heuristics should land within ~4x.
  const char* queries[] = {
      "SELECT * FROM SUPPLIER WHERE SCITY = 'Toronto'",
      "SELECT DISTINCT SNAME FROM SUPPLIER",
      "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
      "SELECT SNO FROM PARTS INTERSECT SELECT SNO FROM SUPPLIER",
  };
  for (const char* sql : queries) {
    PlanPtr plan = Bind(sql);
    double estimated = estimator_->EstimateRows(plan);
    ExecContext ctx;
    auto rows = ExecutePlan(plan, db_, &ctx);
    ASSERT_TRUE(rows.ok()) << sql;
    double actual = std::max<double>(1.0, static_cast<double>(rows->size()));
    EXPECT_LT(estimated / actual, 4.0) << sql;
    EXPECT_GT(estimated / actual, 0.25) << sql;
  }
}

TEST_F(CostModelTest, ConcurrentDistinctCountIsRaceFree) {
  // One estimator shared by many threads, all filling the NDV cache —
  // the exact situation concurrent PrepareBatch puts the cost phase in.
  // Run under TSan (scripts/check.sh --tsan) this is the regression
  // test for the formerly unguarded mutable ndv_cache_.
  std::vector<std::thread> pool;
  std::atomic<bool> mismatch{false};
  auto worker = [&] {
    for (int round = 0; round < 20; ++round) {
      if (estimator_->DistinctCount("SUPPLIER", 0) != 200.0 ||
          estimator_->DistinctCount("PARTS", 1) != 10.0 ||
          estimator_->DistinctCount("PARTS", 0) <= 0.0) {
        mismatch.store(true);
      }
    }
  };
  for (int t = 0; t < 7; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST_F(CostModelTest, ParallelAlternativeWinsOnlyForLargeWork) {
  // dop > 1 adds per-worker startup + gather cost: a big join should
  // prefer the parallel lowering, a one-row point lookup should not.
  PlanPtr big = Bind(
      "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
  std::vector<PlanAlternative> alts = StandardAlternatives(big, big, 8);
  size_t best = ChooseBestAlternative(*estimator_, &alts);
  EXPECT_EQ(alts[best].physical.dop, 8u) << alts[best].label;

  PlanPtr small = Bind("SELECT * FROM SUPPLIER WHERE SNO = 7");
  std::vector<PlanAlternative> small_alts =
      StandardAlternatives(small, small, 8);
  size_t small_best = ChooseBestAlternative(*estimator_, &small_alts);
  EXPECT_EQ(small_alts[small_best].physical.dop, 1u)
      << small_alts[small_best].label;
}

}  // namespace
}  // namespace uniqopt
