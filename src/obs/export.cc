#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace uniqopt {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Microseconds with sub-ns precision preserved (Chrome trace ts unit).
std::string FormatMicros(uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<MetricSample> SnapshotMetrics(const MetricsRegistry& registry) {
  std::vector<MetricSample> out;
  for (const auto& [name, value] : registry.Counters()) {
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kCounter;
    s.value = value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, value] : registry.Gauges()) {
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kGauge;
    s.value = value;
    out.push_back(std::move(s));
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* h = registry.FindHistogram(name);
    if (h == nullptr) continue;
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->Quantile(0.5);
    s.p90 = h->Quantile(0.9);
    s.p99 = h->Quantile(0.99);
    s.buckets = h->CumulativeBuckets();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = CanonicalMetricName(name);
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusHelpEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ToPrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& s : samples) {
    std::string pname = PrometheusName(s.name);
    if (s.type == MetricSample::Type::kCounter) {
      pname += "_total";
      out += "# HELP " + pname + " uniqopt counter " +
             PrometheusHelpEscape(s.name) + "\n";
      out += "# TYPE " + pname + " counter\n";
      out += pname + " " + std::to_string(s.value) + "\n";
    } else if (s.type == MetricSample::Type::kGauge) {
      out += "# HELP " + pname + " uniqopt gauge " +
             PrometheusHelpEscape(s.name) + "\n";
      out += "# TYPE " + pname + " gauge\n";
      out += pname + " " + std::to_string(s.value) + "\n";
    } else {
      out += "# HELP " + pname + " uniqopt histogram " +
             PrometheusHelpEscape(s.name) + "\n";
      out += "# TYPE " + pname + " histogram\n";
      for (const auto& [upper, cumulative] : s.buckets) {
        out += pname + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) +
             "\n";
      out += pname + "_sum " + std::to_string(s.sum) + "\n";
      out += pname + "_count " + std::to_string(s.count) + "\n";
    }
  }
  return out;
}

std::string ToMetricsJson(const std::vector<MetricSample>& samples) {
  std::string out = "{\"metrics\": [";
  bool first = true;
  for (const MetricSample& s : samples) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + JsonEscape(s.name) + "\", ";
    if (s.type == MetricSample::Type::kCounter ||
        s.type == MetricSample::Type::kGauge) {
      const char* type =
          s.type == MetricSample::Type::kCounter ? "counter" : "gauge";
      out += std::string("\"type\": \"") + type +
             "\", \"value\": " + std::to_string(s.value) + "}";
      continue;
    }
    out += "\"type\": \"histogram\", ";
    out += "\"count\": " + std::to_string(s.count) + ", ";
    out += "\"sum\": " + std::to_string(s.sum) + ", ";
    out += "\"min\": " + std::to_string(s.min) + ", ";
    out += "\"max\": " + std::to_string(s.max) + ", ";
    out += "\"mean\": " + FormatDouble(s.mean) + ", ";
    out += "\"p50\": " + std::to_string(s.p50) + ", ";
    out += "\"p90\": " + std::to_string(s.p90) + ", ";
    out += "\"p99\": " + std::to_string(s.p99) + ", ";
    out += "\"buckets\": [";
    bool bfirst = true;
    for (const auto& [upper, cumulative] : s.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "{\"le\": " + std::to_string(upper) +
             ", \"count\": " + std::to_string(cumulative) + "}";
    }
    out += "]}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", ";
    out += "\"cat\": \"uniqopt\", \"ph\": \"X\", ";
    out += "\"ts\": " + FormatMicros(e.start_ns) + ", ";
    out += "\"dur\": " + FormatMicros(e.duration_ns) + ", ";
    out += "\"pid\": 1, \"tid\": " + std::to_string(e.tid) + ", ";
    out += "\"args\": {";
    out += "\"span_id\": " + std::to_string(e.id) +
           ", \"parent_id\": " + std::to_string(e.parent_id);
    for (const auto& [key, value] : e.attrs) {
      out += ", \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
    }
    out += "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus lint
// ---------------------------------------------------------------------------

namespace {

bool IsPrometheusLegalName(const std::string& name) {
  if (name.empty()) return false;
  auto legal_first = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  auto legal = [&](char c) {
    return legal_first(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!legal_first(name[0])) return false;
  for (char c : name) {
    if (!legal(c)) return false;
  }
  return true;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

struct HistogramLintState {
  uint64_t last_bucket = 0;
  bool saw_inf = false;
  uint64_t inf_count = 0;
  bool saw_sum = false;
  bool saw_count = false;
  uint64_t count_value = 0;
};

}  // namespace

Status LintPrometheusText(const std::string& text) {
  std::map<std::string, std::string> types;  // family -> type
  std::map<std::string, bool> helps;         // family -> HELP seen
  std::map<std::string, HistogramLintState> histograms;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("prometheus lint: line " +
                                     std::to_string(line_no) + ": " + why +
                                     ": " + line);
    };
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      // "# TYPE name type" / "# HELP name text".
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) return fail("malformed TYPE");
        std::string family = rest.substr(0, sp);
        std::string type = rest.substr(sp + 1);
        if (!IsPrometheusLegalName(family)) {
          return fail("illegal family name in TYPE");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown metric type");
        }
        if (types.count(family) != 0) return fail("duplicate TYPE");
        types[family] = type;
      } else if (line.rfind("# HELP ", 0) == 0) {
        // "# HELP name text" (the text is optional and may use \\ and
        // \n escapes — only the family name is structural).
        std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        std::string family =
            sp == std::string::npos ? rest : rest.substr(0, sp);
        if (!IsPrometheusLegalName(family)) {
          return fail("illegal family name in HELP");
        }
        if (helps.count(family) != 0) return fail("duplicate HELP");
        helps[family] = true;
      } else {
        return fail("unknown comment directive");
      }
      continue;
    }
    // Sample: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("no value");
    std::string name = line.substr(0, name_end);
    if (!IsPrometheusLegalName(name)) return fail("illegal metric name");
    std::string labels;
    size_t value_start;
    if (line[name_end] == '{') {
      // Escape-aware scan for the closing brace: a '}' inside a quoted
      // label value must not close the label set, and \" / \\ inside a
      // value must not terminate it.
      size_t close = std::string::npos;
      bool in_string = false;
      for (size_t i = name_end + 1; i < line.size(); ++i) {
        char c = line[i];
        if (in_string) {
          if (c == '\\') {
            ++i;  // skip the escaped character
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '}') {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) return fail("unterminated labels");
      labels = line.substr(name_end + 1, close - name_end - 1);
      if (close + 1 >= line.size() || line[close + 1] != ' ') {
        return fail("no value after labels");
      }
      value_start = close + 2;
    } else {
      value_start = name_end + 1;
    }
    double value = 0;
    if (!ParseNumber(line.substr(value_start), &value)) {
      return fail("non-numeric value");
    }
    // Resolve the declaring family: exact, or histogram series suffix.
    std::string family = name;
    std::string suffix;
    for (const char* sfx : {"_bucket", "_sum", "_count"}) {
      size_t n = std::string(sfx).size();
      if (name.size() > n && name.compare(name.size() - n, n, sfx) == 0) {
        std::string base = name.substr(0, name.size() - n);
        auto it = types.find(base);
        if (it != types.end() && it->second == "histogram") {
          family = base;
          suffix = sfx;
          break;
        }
      }
    }
    auto it = types.find(family);
    if (it == types.end()) return fail("sample without preceding TYPE");
    if (helps.count(family) == 0) {
      return fail("sample without preceding HELP");
    }
    if (it->second == "histogram") {
      HistogramLintState& st = histograms[family];
      if (suffix == "_bucket") {
        size_t le = labels.find("le=\"");
        if (le == std::string::npos) return fail("bucket without le label");
        // Escape-aware close-quote scan (a bound is numeric or +Inf, but
        // the lint must not mis-split on an escaped quote).
        size_t end = le + 4;
        while (end < labels.size() && labels[end] != '"') {
          if (labels[end] == '\\') ++end;
          ++end;
        }
        if (end >= labels.size()) return fail("unterminated le label");
        std::string bound = labels.substr(le + 4, end - le - 4);
        uint64_t cumulative = static_cast<uint64_t>(value);
        if (cumulative < st.last_bucket) {
          return fail("histogram buckets not cumulative");
        }
        st.last_bucket = cumulative;
        if (bound == "+Inf") {
          st.saw_inf = true;
          st.inf_count = cumulative;
        } else {
          double b = 0;
          if (!ParseNumber(bound, &b)) return fail("non-numeric le bound");
          if (st.saw_inf) return fail("bucket after +Inf");
        }
      } else if (suffix == "_sum") {
        st.saw_sum = true;
      } else if (suffix == "_count") {
        st.saw_count = true;
        st.count_value = static_cast<uint64_t>(value);
      } else {
        return fail("bare sample for histogram family");
      }
    }
  }
  for (const auto& [family, st] : histograms) {
    if (!st.saw_inf) {
      return Status::InvalidArgument("prometheus lint: histogram " + family +
                                     " missing +Inf bucket");
    }
    if (!st.saw_sum || !st.saw_count) {
      return Status::InvalidArgument("prometheus lint: histogram " + family +
                                     " missing _sum/_count");
    }
    if (st.inf_count != st.count_value) {
      return Status::InvalidArgument("prometheus lint: histogram " + family +
                                     " +Inf bucket != _count");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

namespace {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  Status Check() {
    SkipWs();
    Status st = Value();
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return Status::OK();
  }

 private:
  Status Fail(const std::string& why) {
    return Status::InvalidArgument("json: " + why + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) { return pos_ < text_.size() && text_[pos_] == c; }

  Status Value() {
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == '-' || (c >= '0' && c <= '9')) return Number();
    for (const char* lit : {"true", "false", "null"}) {
      size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return Status::OK();
      }
    }
    return Fail("unexpected character");
  }

  Status Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (!Peek('"')) return Fail("expected object key");
      Status st = String();
      if (!st.ok()) return st;
      SkipWs();
      if (!Peek(':')) return Fail("expected ':'");
      ++pos_;
      SkipWs();
      st = Value();
      if (!st.ok()) return st;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek('}')) {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or '}'");
    }
  }

  Status Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Status st = Value();
      if (!st.ok()) return st;
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      if (Peek(']')) {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or ']'");
    }
  }

  Status String() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status Number() {
    size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0;
    if (!ParseNumber(text_.substr(start, pos_ - start), &v)) {
      return Fail("malformed number");
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(const std::string& text) {
  return JsonChecker(text).Check();
}

}  // namespace obs
}  // namespace uniqopt
