#ifndef UNIQOPT_IMS_DLI_H_
#define UNIQOPT_IMS_DLI_H_

#include <map>
#include <optional>
#include <string>

#include "expr/expr.h"
#include "ims/ims_database.h"
#include "obs/metrics.h"

namespace uniqopt {
namespace ims {

/// DL/I status codes (subset): '  ' OK, 'GE' not found, 'GB' end of
/// database.
enum class DliStatus { kOk, kNotFound, kEndOfDatabase };

const char* DliStatusToString(DliStatus s);

/// A qualification inside a segment search argument:
/// `(field op value)`.
struct Qualification {
  std::string field;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// A segment search argument: segment name plus optional qualification.
struct Ssa {
  std::string segment;
  std::optional<Qualification> qual;

  static Ssa Unqualified(std::string segment_name) {
    Ssa ssa;
    ssa.segment = std::move(segment_name);
    return ssa;
  }
  static Ssa Equal(std::string segment_name, std::string field, Value value) {
    Ssa ssa;
    ssa.segment = std::move(segment_name);
    ssa.qual = Qualification{std::move(field), CompareOp::kEq,
                             std::move(value)};
    return ssa;
  }
};

/// Work counters for one gateway program run. The §6.1 claims are about
/// these numbers: DL/I calls per segment type and segments physically
/// examined while satisfying them.
struct DliCallStats {
  size_t gu_calls = 0;
  size_t gn_calls = 0;
  size_t gnp_calls = 0;
  /// Segments examined while positioning/searching (pointer chases).
  size_t segments_visited = 0;
  /// DL/I calls per target segment type.
  std::map<std::string, size_t> calls_by_segment;

  size_t TotalCalls() const { return gu_calls + gn_calls + gnp_calls; }
  std::string ToString() const;
};

/// One DL/I program's view of an ImsDatabase: hierarchical position +
/// the three retrieval calls used by the paper's programs (GU, GN, GNP).
///
/// Semantics implemented (the subset the §6.1 programs need):
///  - GU <root ssa>: establish position at the first root segment that
///    satisfies the SSA. An equality qualification on the root key uses
///    the HIDAM key-sequenced index (one visit); otherwise roots are
///    scanned in key order.
///  - GN <root ssa>: advance to the next qualifying root after the
///    current position.
///  - GNP <child ssa>: retrieve the next qualifying child of the current
///    root, resuming after the previously returned child (twin-chain
///    order). Because twins are key-sequenced, an equality qualification
///    on the child's sequence field stops scanning as soon as a greater
///    key is seen — the early-halt behaviour the paper's Example 10
///    exploits. Qualifications on non-key fields (e.g. OEM-PNO) must
///    examine every remaining twin.
class DliSession {
 public:
  /// Call counts are kept twice: per-session in `stats()` (what one
  /// program run cost) and as `ims.dli.*` counters in `registry`
  /// (accumulating across sessions for \metrics and EXPLAIN ANALYZE
  /// deltas). Tests pass a private registry for isolated deltas.
  explicit DliSession(const ImsDatabase* db,
                      obs::MetricsRegistry* registry =
                          &obs::MetricsRegistry::Global())
      : db_(db),
        gu_counter_(&registry->GetCounter("ims.dli.gu_calls")),
        gn_counter_(&registry->GetCounter("ims.dli.gn_calls")),
        gnp_counter_(&registry->GetCounter("ims.dli.gnp_calls")),
        visited_counter_(
            &registry->GetCounter("ims.dli.segments_visited")) {}

  DliStatus GU(const Ssa& root_ssa);
  DliStatus GN(const Ssa& root_ssa);
  DliStatus GNP(const Ssa& child_ssa);

  /// Segment returned by the last successful call.
  const Segment* current() const { return current_; }
  /// Root segment the next GNP will search under.
  const Segment* parent_position() const { return parent_; }

  const DliCallStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DliCallStats(); }

 private:
  bool Matches(const Segment& seg, const Ssa& ssa) const;
  /// One segment examined while positioning/searching.
  void Visit() {
    ++stats_.segments_visited;
    visited_counter_->Increment();
  }

  const ImsDatabase* db_;
  obs::Counter* gu_counter_;
  obs::Counter* gn_counter_;
  obs::Counter* gnp_counter_;
  obs::Counter* visited_counter_;
  const Segment* current_ = nullptr;
  /// Parentage for GNP (set by GU/GN on a root).
  const Segment* parent_ = nullptr;
  /// GNP resume cursor: next twin to examine. Valid only when
  /// `gnp_active_` is set and `gnp_type_` matches the requested type; a
  /// null cursor with `gnp_active_` means the twin chain is exhausted
  /// (further GNPs of the same type keep returning 'GE').
  const Segment* gnp_cursor_ = nullptr;
  bool gnp_active_ = false;
  /// Segment type the GNP cursor belongs to.
  std::string gnp_type_;
  DliCallStats stats_;
};

}  // namespace ims
}  // namespace uniqopt

#endif  // UNIQOPT_IMS_DLI_H_
