file(REMOVE_RECURSE
  "libuniqopt_common.a"
)
