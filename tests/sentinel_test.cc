// Tests for the online regression sentinel: warm-up suppression, the
// EWMA + MAD band, exactly-once firing on a sustained step change with
// automatic re-arm, downward detection for firing ratios, exemplar
// propagation into alerts, the bounded alert ring — and a thread-safety
// hammer driving Tick() against an 8-thread PrepareBatch (the TSan
// build runs this under the race detector).

#include "obs/sentinel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/timeseries.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/query_corpus.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

/// One class-kind observation with the given window index and p50/p99.
obs::SeriesObservation ClassObs(uint64_t window, uint64_t p50,
                                uint64_t p99 = 0,
                                uint64_t exemplar_id = 0) {
  obs::SeriesObservation o;
  o.series = "class.test.execute.ns";
  o.kind = obs::SeriesKind::kClass;
  o.class_fingerprint = 0xfeed;
  o.stats.window = window;
  o.stats.count = 10;
  o.stats.p50 = p50;
  o.stats.p99 = p99 == 0 ? p50 : p99;
  o.stats.exemplar.record_id = exemplar_id;
  o.stats.exemplar.fingerprint = 0xbeef;
  o.stats.exemplar.value = o.stats.p99;
  return o;
}

obs::SeriesObservation RatioObs(uint64_t window, double ratio) {
  obs::SeriesObservation o;
  o.series = "rewrite.rule.X.firing_ratio";
  o.kind = obs::SeriesKind::kRatio;
  o.stats.window = window;
  o.stats.count = 20;
  o.stats.ratio = ratio;
  return o;
}

TEST(SentinelTest, WarmupWindowsNeverAlert) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  // A wild jump inside warm-up (3 windows by default) only feeds the
  // reference — the series is not armed yet.
  sentinel.ObserveTick({ClassObs(1, 100)});
  sentinel.ObserveTick({ClassObs(2, 100000)});
  sentinel.ObserveTick({ClassObs(3, 100)});
  EXPECT_EQ(sentinel.total_alerts(), 0u);
}

TEST(SentinelTest, StepChangeFiresExactlyOnceAndRearms) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  // Quiet reference: p50 = p99 = 1000 for well past warm-up.
  for (int i = 0; i < 6; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 1000)});
  }
  EXPECT_EQ(sentinel.total_alerts(), 0u);
  EXPECT_GE(sentinel.armed_series(), 2u);  // p50 and p99 tracks

  // 5x sustained step: each armed stat fires on the first regressed
  // window and then never again (the reference snaps to the new level).
  for (int i = 0; i < 6; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 5000)});
  }
  EXPECT_EQ(sentinel.total_alerts(), 2u);  // one p50 alert + one p99

  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].series, "class.test.execute.ns");
  EXPECT_EQ(alerts[0].window, 7u);  // the first regressed window
  EXPECT_DOUBLE_EQ(alerts[0].observed, 5000.0);
  EXPECT_NEAR(alerts[0].expected, 1000.0, 1.0);

  // Re-armed at the new level: a second step fires again.
  for (int i = 0; i < 6; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 25000)});
  }
  EXPECT_EQ(sentinel.total_alerts(), 4u);
}

TEST(SentinelTest, SlowDriftInsideBandNeverFires) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  // +2% per window stays inside the 10% relative band floor while the
  // EWMA tracks it.
  double level = 1000;
  for (uint64_t w = 1; w <= 40; ++w) {
    sentinel.ObserveTick(
        {ClassObs(w, static_cast<uint64_t>(level))});
    level *= 1.02;
  }
  EXPECT_EQ(sentinel.total_alerts(), 0u);
}

TEST(SentinelTest, FiringRatioCollapseAlertsDownwardOnly) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  for (int i = 0; i < 6; ++i) {
    sentinel.ObserveTick({RatioObs(++window, 0.9)});
  }
  EXPECT_EQ(sentinel.total_alerts(), 0u);
  // Upward movement of a ratio is fine (more rewrites firing).
  sentinel.ObserveTick({RatioObs(++window, 1.0)});
  EXPECT_EQ(sentinel.total_alerts(), 0u);
  // Collapse: the rule silently stopped firing.
  sentinel.ObserveTick({RatioObs(++window, 0.05)});
  EXPECT_EQ(sentinel.total_alerts(), 1u);
  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].stat, "ratio");
  EXPECT_EQ(alerts[0].series, "rewrite.rule.X.firing_ratio");
}

TEST(SentinelTest, AlertCarriesTheWindowExemplar) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  for (int i = 0; i < 5; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 1000, 1000, 41)});
  }
  sentinel.ObserveTick({ClassObs(++window, 9000, 9000, 42)});
  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].exemplar.record_id, 42u);
  EXPECT_EQ(alerts[0].exemplar.fingerprint, 0xbeefu);
  EXPECT_NE(alerts[0].ToString().find("exemplar=#42"), std::string::npos);
}

TEST(SentinelTest, HugeDeviationIsCritical) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  for (int i = 0; i < 5; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 1000)});
  }
  sentinel.ObserveTick({ClassObs(++window, 100000)});
  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_GE(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].severity, "critical");
}

TEST(SentinelTest, DisabledSentinelObservesNothing) {
  obs::Sentinel sentinel;
  for (uint64_t w = 1; w <= 10; ++w) {
    sentinel.ObserveTick({ClassObs(w, w % 2 == 0 ? 100 : 100000)});
  }
  EXPECT_EQ(sentinel.ticks(), 0u);
  EXPECT_EQ(sentinel.total_alerts(), 0u);
  EXPECT_EQ(sentinel.armed_series(), 0u);
}

TEST(SentinelTest, AlertRingIsBoundedButTotalKeepsCounting) {
  obs::SentinelOptions options;
  options.max_alerts = 4;
  options.warmup_windows = 1;
  obs::Sentinel sentinel(options);
  sentinel.set_enabled(true);
  // Ten independent ratio series, each collapsing once: one baseline
  // window, then the drop — ten alerts total, only the last 4 retained.
  uint64_t window = 0;
  for (int i = 0; i < 10; ++i) {
    obs::SeriesObservation healthy = RatioObs(++window, 0.9);
    healthy.series = "rule." + std::to_string(i) + ".firing_ratio";
    sentinel.ObserveTick({healthy});
    obs::SeriesObservation collapsed = RatioObs(++window, 0.05);
    collapsed.series = healthy.series;
    sentinel.ObserveTick({collapsed});
  }
  EXPECT_EQ(sentinel.total_alerts(), 10u);
  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_EQ(alerts.size(), 4u);
  // Oldest first, and eviction dropped the first six.
  EXPECT_EQ(alerts[0].series, "rule.6.firing_ratio");
  EXPECT_EQ(alerts[3].series, "rule.9.firing_ratio");
}

TEST(SentinelTest, ResetClearsTracksAndAlerts) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  for (int i = 0; i < 5; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 1000)});
  }
  sentinel.ObserveTick({ClassObs(++window, 9000)});
  EXPECT_GT(sentinel.total_alerts(), 0u);
  EXPECT_GT(sentinel.armed_series(), 0u);
  sentinel.Reset();
  EXPECT_EQ(sentinel.Alerts().size(), 0u);
  EXPECT_EQ(sentinel.armed_series(), 0u);
  // A fresh step needs a fresh warm-up.
  sentinel.ObserveTick({ClassObs(++window, 50000)});
  EXPECT_EQ(sentinel.Alerts().size(), 0u);
}

TEST(SentinelTest, ToJsonIsValid) {
  obs::Sentinel sentinel;
  sentinel.set_enabled(true);
  uint64_t window = 0;
  for (int i = 0; i < 5; ++i) {
    sentinel.ObserveTick({ClassObs(++window, 1000, 1000, 41)});
  }
  sentinel.ObserveTick({ClassObs(++window, 9000, 9000, 42)});
  std::string json = sentinel.ToJson();
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"sentinel\""), std::string::npos);
  EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
}

// End-to-end through the plane: quiet per-class windows, then an
// injected 5x slowdown on the class. Exactly one armed p50 alert whose
// exemplar resolves to the worst sample's record id.
TEST(SentinelPlaneTest, InjectedSlowdownRaisesOneAlertWithExemplar) {
  obs::ManualWindowClock clock;
  obs::MetricsRegistry registry;
  obs::TimeSeriesPlane plane(16, &clock, &registry);
  obs::Sentinel sentinel;
  plane.AttachSentinel(&sentinel);
  plane.set_enabled(true);
  sentinel.set_enabled(true);

  const uint64_t kClass = 0xc1a55;
  uint64_t record_id = 100;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 10; ++i) {
      plane.RecordClassSample(kClass, "execute.ns", 1000, ++record_id,
                              0x77);
    }
    clock.Advance(1000000000);
    plane.Tick();
  }
  ASSERT_EQ(sentinel.total_alerts(), 0u);

  // The 5x window: one sample is the worst (the last one recorded).
  for (int i = 0; i < 9; ++i) {
    plane.RecordClassSample(kClass, "execute.ns", 5000, ++record_id,
                            0x77);
  }
  uint64_t worst_id = ++record_id;
  plane.RecordClassSample(kClass, "execute.ns", 5500, worst_id, 0x77);
  clock.Advance(1000000000);
  plane.Tick();

  std::vector<obs::Alert> alerts = sentinel.Alerts();
  ASSERT_GE(alerts.size(), 1u);
  bool found_p50 = false;
  for (const obs::Alert& a : alerts) {
    if (a.stat != "p50") continue;
    found_p50 = true;
    EXPECT_EQ(a.class_fingerprint, kClass);
    EXPECT_EQ(a.exemplar.record_id, worst_id);
    EXPECT_EQ(a.exemplar.value, 5500u);
  }
  EXPECT_TRUE(found_p50);

  // Sustained at the new level: no further alerts (exactly-once).
  uint64_t after_step = sentinel.total_alerts();
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) {
      plane.RecordClassSample(kClass, "execute.ns", 5000, ++record_id,
                              0x77);
    }
    clock.Advance(1000000000);
    plane.Tick();
  }
  EXPECT_EQ(sentinel.total_alerts(), after_step);
}

// Thread-safety hammer: a dedicated thread spins Tick() while 8 worker
// threads run PrepareBatch against one Optimizer with the class-sample
// feed enabled. The TSan ctest configuration runs this under the race
// detector; here it must simply not crash and the plane must have
// closed windows.
TEST(SentinelPlaneTest, TickHammerAgainstPrepareBatch) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);

  obs::TimeSeriesPlane& plane = obs::TimeSeriesPlane::Global();
  obs::Sentinel& sentinel = obs::Sentinel::Global();
  plane.AttachSentinel(&sentinel);
  plane.Reset();
  plane.set_enabled(true);
  sentinel.set_enabled(true);

  std::vector<std::string> corpus;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    corpus.push_back(q.sql);
  }
  ASSERT_GE(corpus.size(), 10u);

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      plane.Tick();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 8; ++round) {
    auto batch = optimizer.PrepareBatch(corpus, 8);
    ASSERT_OK(batch.status());
  }
  stop.store(true, std::memory_order_relaxed);
  ticker.join();
  plane.Tick();  // close the final window

  EXPECT_GT(plane.ticks(), 0u);
  bool saw_class_series = false;
  for (const obs::SeriesSnapshot& s : plane.Snapshot()) {
    saw_class_series = saw_class_series ||
                       s.kind == obs::SeriesKind::kClass;
  }
  EXPECT_TRUE(saw_class_series);

  sentinel.set_enabled(false);
  plane.set_enabled(false);
  plane.Reset();
  sentinel.Reset();
}

}  // namespace
}  // namespace uniqopt
