#ifndef UNIQOPT_EXEC_PLANNER_H_
#define UNIQOPT_EXEC_PLANNER_H_

#include <vector>

#include "exec/operator.h"
#include "exec/profile.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace uniqopt {

/// Physical strategy knobs. The logical rewrites of the paper expand the
/// strategy space; these options let benchmarks pin each strategy and
/// compare (the optimizer's cost model is out of the paper's scope).
struct PhysicalOptions {
  enum class JoinStrategy { kNestedLoop, kHash };
  enum class DistinctStrategy { kSort, kHash };

  JoinStrategy join = JoinStrategy::kHash;
  /// The paper assumes duplicate elimination costs a sort (§1); kSort is
  /// therefore the default baseline implementation.
  DistinctStrategy distinct = DistinctStrategy::kSort;
  /// Execute INTERSECT (DISTINCT) by the classic evaluate-sort-merge
  /// strategy (§5.3) instead of hashing.
  bool sort_merge_intersect = false;
  /// Push single-side conjuncts of a Select-over-Product below the join.
  bool predicate_pushdown = true;
};

/// Lowers a logical plan to an executable operator tree over `db`. With
/// `profile` non-null every lowered plan node is wrapped in a metering
/// ProfileOp feeding that profile (EXPLAIN ANALYZE).
Result<OperatorPtr> CreatePhysicalPlan(const PlanPtr& plan,
                                       const Database& db,
                                       const PhysicalOptions& options = {},
                                       ExecProfile* profile = nullptr);

/// Lower + execute in one step.
Result<std::vector<Row>> ExecutePlan(const PlanPtr& plan, const Database& db,
                                     ExecContext* ctx,
                                     const PhysicalOptions& options = {},
                                     ExecProfile* profile = nullptr);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_PLANNER_H_
