// Index-backed execution vs scan-based baselines, measured end to end
// over a 100k-row SUPPLIER table (×1 part each):
//
//   keyed point query `WHERE SNO = <const>` executed as a unique-index
//   hash probe (use_indexes on) vs the full scan+filter baseline
//   (use_indexes off);
//
//   PARTS ⋈ SUPPLIER on SUPPLIER's key executed as a build-free
//   unique-index join (the committed index IS the hash table) vs the
//   classic build-then-probe hash join.
//
// Histograms (consumed by scripts/bench_compare.py --index-exec and the
// BENCH_pr10.json gate):
//   bench.index.point_lookup.ns   index probe        (gate: scan/probe >= 10x)
//   bench.index.full_scan.ns      scan+filter baseline
//   bench.index.join_unique.ns    build-free index join (gate: >= hash join)
//   bench.index.join_hash.ns      classic hash join baseline

#include "bench_util.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr size_t kSuppliers = 100000;
constexpr size_t kPartsPerSupplier = 1;

PhysicalOptions MakePhysical(bool use_indexes) {
  PhysicalOptions physical;
  physical.use_indexes = use_indexes;
  return physical;
}

// Probes the middle of the key space so neither strategy wins by data
// placement: the scan pays ~kSuppliers row visits either way, the probe
// pays one bucket.
const char* kPointSql = "SELECT SNAME FROM SUPPLIER WHERE SNO = 50000";

void RunPoint(::benchmark::State& state, const char* series,
              bool use_indexes) {
  const Database& db = GetSupplierDb(kSuppliers, kPartsPerSupplier);
  PlanPtr plan = MustBind(db, kPointSql);
  PhysicalOptions physical = MakePhysical(use_indexes);
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram(series);
  size_t rows = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    rows += MustExecute(plan, db, physical);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_PointLookup_Index(::benchmark::State& state) {
  RunPoint(state, "bench.index.point_lookup.ns", /*use_indexes=*/true);
}
BENCHMARK(BM_PointLookup_Index);

void BM_PointLookup_FullScan(::benchmark::State& state) {
  RunPoint(state, "bench.index.full_scan.ns", /*use_indexes=*/false);
}
BENCHMARK(BM_PointLookup_FullScan);

// The join's build side (SUPPLIER) is a bare keyed Get: with indexes on
// the build phase disappears entirely — no build-side scan, no hash
// table materialization, just one committed-index probe per PARTS row.
const char* kJoinSql =
    "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S "
    "WHERE P.SNO = S.SNO AND P.PNO < 20000";

void RunJoin(::benchmark::State& state, const char* series,
             bool use_indexes) {
  const Database& db = GetSupplierDb(kSuppliers, kPartsPerSupplier);
  PlanPtr plan = MustBind(db, kJoinSql);
  PhysicalOptions physical = MakePhysical(use_indexes);
  obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram(series);
  size_t rows = 0;
  for (auto _ : state) {
    obs::ScopedLatencyTimer timer(&latency);
    rows += MustExecute(plan, db, physical);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Join_UniqueIndex(::benchmark::State& state) {
  RunJoin(state, "bench.index.join_unique.ns", /*use_indexes=*/true);
}
BENCHMARK(BM_Join_UniqueIndex);

void BM_Join_HashBuild(::benchmark::State& state) {
  RunJoin(state, "bench.index.join_hash.ns", /*use_indexes=*/false);
}
BENCHMARK(BM_Join_HashBuild);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
