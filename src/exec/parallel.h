#ifndef UNIQOPT_EXEC_PARALLEL_H_
#define UNIQOPT_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/planner.h"
#include "exec/profile.h"
#include "expr/expr.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace uniqopt {

/// Morsel-driven scan parallelism (Leis et al. style, scaled to this
/// engine): the driving base-table scan is split into fixed-size row
/// ranges ("morsels") claimed from an atomic cursor, so workers
/// self-balance — a worker stalled on an expensive morsel simply claims
/// fewer of them.
class MorselCursor {
 public:
  static constexpr size_t kDefaultMorselRows = 4096;

  explicit MorselCursor(size_t total_rows,
                        size_t morsel_rows = kDefaultMorselRows)
      : total_(total_rows),
        morsel_(morsel_rows == 0 ? kDefaultMorselRows : morsel_rows) {}

  /// Claims the next unclaimed morsel into [*begin, *end); returns
  /// false when the table is exhausted.
  bool Claim(size_t* begin, size_t* end) {
    size_t b = next_.fetch_add(morsel_, std::memory_order_relaxed);
    if (b >= total_) return false;
    *begin = b;
    *end = std::min(b + morsel_, total_);
    return true;
  }

  size_t total_rows() const { return total_; }
  size_t morsel_rows() const { return morsel_; }

 private:
  const size_t total_;
  const size_t morsel_;
  std::atomic<size_t> next_{0};
};

/// The parallel replacement for the driving TableScanOp: every claimed
/// morsel is handed out as a zero-copy borrowed batch (or iterated
/// tuple-at-a-time). All workers share one cursor; each op instance
/// belongs to one worker.
class MorselScanOp final : public Operator {
 public:
  /// All workers receive the SAME snapshot (pinned once by the
  /// coordinator before sizing the cursor), so a DML commit racing the
  /// query can never tear the morsel range or mix table versions.
  MorselScanOp(TableSnapshot snapshot, Schema schema, MorselCursor* cursor)
      : Operator(std::move(schema)),
        snapshot_(std::move(snapshot)),
        cursor_(cursor) {}

  Status Open(ExecContext*) override {
    begin_ = end_ = 0;
    return Status::OK();
  }

  Result<bool> Next(ExecContext* ctx, Row* row) override {
    while (begin_ >= end_) {
      if (!cursor_->Claim(&begin_, &end_)) return false;
      ++ctx->stats.morsels_claimed;
    }
    *row = snapshot_->rows[begin_++];
    ++ctx->stats.rows_scanned;
    return true;
  }

  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override {
    out->Reset();
    while (begin_ >= end_) {
      if (!cursor_->Claim(&begin_, &end_)) return false;
      ++ctx->stats.morsels_claimed;
    }
    size_t n = std::min(out->capacity(), end_ - begin_);
    out->Borrow(snapshot_->rows.data() + begin_, n);
    begin_ += n;
    ctx->stats.rows_scanned += n;
    return true;
  }

  void Close() override {}
  std::string name() const override { return "MorselScan"; }

 private:
  TableSnapshot snapshot_;
  MorselCursor* cursor_;
  size_t begin_ = 0;
  size_t end_ = 0;
};

/// A hash-join build shared across workers: the first worker to arrive
/// drains the build side once and partitions its rows by key hash; all
/// present workers then claim partitions and build the per-partition
/// hash tables; once every partition is built the table is published
/// read-only and probing proceeds in parallel with no further
/// synchronization.
class SharedJoinBuild {
 public:
  using BuildTable =
      std::unordered_multimap<Row, Row, RowHash, RowNullSafeEqual>;

  explicit SharedJoinBuild(size_t partitions)
      : rows_(partitions == 0 ? 1 : partitions),
        tables_(partitions == 0 ? 1 : partitions) {}

  /// Blocks until the shared table is published (participating in the
  /// drain/partition-build work as needed). `build_side` is the calling
  /// worker's own build-side operator; only the first caller's instance
  /// is ever opened. Build rows are counted into the caller's stats for
  /// the partitions this caller built.
  Status EnsureBuilt(Operator* build_side, ExecContext* ctx,
                     const std::vector<size_t>& keys);

  /// Matches for a non-NULL probe key; only valid after EnsureBuilt
  /// succeeded.
  std::pair<BuildTable::const_iterator, BuildTable::const_iterator>
  Probe(const Row& key) const {
    const BuildTable& t = tables_[key.Hash() % tables_.size()];
    return t.equal_range(key);
  }

 private:
  enum class State { kIdle, kDraining, kBuilding, kPublished, kFailed };

  std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  Status failure_;
  /// Partitioned build rows (keyed rows, NULL keys already dropped),
  /// written by the draining worker, consumed by partition builders.
  std::vector<std::vector<std::pair<Row, Row>>> rows_;
  std::vector<BuildTable> tables_;
  std::atomic<size_t> next_partition_{0};
  size_t partitions_built_ = 0;
};

/// Hash equi-join probing a SharedJoinBuild. Mirrors HashJoinOp's probe
/// semantics (NULL keys never match, residual applied per candidate);
/// the build side is drained/partitioned once per query, not per
/// worker.
class SharedHashJoinProbeOp final : public Operator {
 public:
  SharedHashJoinProbeOp(OperatorPtr left, OperatorPtr right,
                        std::vector<size_t> left_keys,
                        std::vector<size_t> right_keys, ExprPtr residual,
                        std::shared_ptr<SharedJoinBuild> build)
      : Operator(Schema::Concat(left->schema(), right->schema())),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        build_(std::move(build)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "SharedHashJoinProbe"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  std::shared_ptr<SharedJoinBuild> build_;
  Row left_row_;
  bool have_left_ = false;
  std::pair<SharedJoinBuild::BuildTable::const_iterator,
            SharedJoinBuild::BuildTable::const_iterator>
      matches_;
  RowBatch probe_batch_;
};

/// Hooks handed to the Lowering by the parallel executor. All worker
/// trees are lowered serially on the coordinator before any worker
/// thread starts, so the maps need no locking.
struct ParallelLoweringHooks {
  /// The driving GetNode (pointer identity — plan nodes are immutable
  /// and shared across the worker lowerings); lowered to a MorselScanOp
  /// instead of a TableScanOp.
  const PlanNode* driver = nullptr;
  /// One snapshot shared by every worker's MorselScanOp — pinned before
  /// the cursor is sized so ranges and rows come from the same version.
  TableSnapshot driver_snapshot;
  MorselCursor* cursor = nullptr;
  /// Shared hash-join builds keyed by the SelectNode that lowers to the
  /// join; created lazily by the first worker lowering, reused by the
  /// rest.
  std::unordered_map<const PlanNode*, std::shared_ptr<SharedJoinBuild>>
      shared_builds;
  /// Partition count for new shared builds (usually = dop).
  size_t build_partitions = 1;
};

/// Attempts morsel-driven parallel execution of `plan` at
/// `options.dop` workers. Returns std::nullopt when the plan shape is
/// not supported (no driving base-table scan, or a pipeline breaker
/// mid-pipeline) — the caller then falls back to the serial executor.
/// On success the caller's ctx->stats holds the merged per-worker
/// counters, and `profile` (when non-null) carries the per-worker
/// Gather section.
Result<std::optional<std::vector<Row>>> TryParallelExecute(
    const PlanPtr& plan, const Database& db, ExecContext* ctx,
    const PhysicalOptions& options, ExecProfile* profile = nullptr);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_PARALLEL_H_
