#include "analysis/algorithm1.h"

#include "analysis/near_miss.h"
#include "expr/equality.h"
#include "expr/normalize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniqopt {

std::string Algorithm1Result::TraceToString() const {
  std::string out;
  for (const std::string& line : trace) {
    out += line;
    out += "\n";
  }
  return out;
}

AttributeSet BoundColumnClosure(const std::vector<ExprPtr>& conjuncts,
                                const AttributeSet& initially_bound,
                                const AnalysisOptions& options,
                                std::vector<std::string>* trace,
                                bool* any_equality_kept,
                                ProofTrace* proof) {
  // Lines 6–9: keep only conjuncts that are single atomic Type 1 / Type 2
  // equalities. A conjunct that is a disjunction ("X = 5 OR X = 10") or a
  // non-equality atom is deleted; deletion weakens C, so the final test
  // remains sufficient.
  std::vector<EqualityAtom> kept;
  std::vector<std::string> kept_text;  // aligned with `kept`, for the proof
  auto record_conjunct = [proof](const ExprPtr& conj,
                                 ConjunctDisposition disposition) {
    if (proof != nullptr) {
      proof->conjuncts.push_back({conj->ToString(), disposition});
    }
  };
  for (const ExprPtr& conj : conjuncts) {
    std::vector<ExprPtr> disjuncts = FlattenOr(conj);
    if (disjuncts.size() > 1) {
      if (trace != nullptr) {
        trace->push_back("  delete disjunctive conjunct: " + conj->ToString());
      }
      record_conjunct(conj, ConjunctDisposition::kDeletedDisjunction);
      continue;
    }
    if (conj->IsTrueLiteral()) continue;
    EqualityAtom atom = ClassifyAtom(conj);
    if (atom.type == AtomType::kOther) {
      if (trace != nullptr) {
        trace->push_back("  delete non-equality conjunct: " +
                         conj->ToString());
      }
      record_conjunct(conj, ConjunctDisposition::kDeletedNonEquality);
      continue;
    }
    if (atom.type == AtomType::kType1ColumnConstant &&
        !options.bind_constants) {
      record_conjunct(conj, ConjunctDisposition::kDeletedBySwitch);
      continue;
    }
    if (atom.type == AtomType::kType2ColumnColumn &&
        !options.use_column_equivalence) {
      record_conjunct(conj, ConjunctDisposition::kDeletedBySwitch);
      continue;
    }
    if (trace != nullptr) {
      trace->push_back(
          std::string("  keep ") +
          (atom.type == AtomType::kType1ColumnConstant ? "Type 1" : "Type 2") +
          " conjunct: " + conj->ToString());
    }
    record_conjunct(conj, atom.type == AtomType::kType1ColumnConstant
                              ? ConjunctDisposition::kKeptType1
                              : ConjunctDisposition::kKeptType2);
    kept.push_back(atom);
    if (proof != nullptr) kept_text.push_back(conj->ToString());
  }
  if (any_equality_kept != nullptr) *any_equality_kept = !kept.empty();
  if (proof != nullptr) {
    for (size_t pos : initially_bound.ToVector()) {
      proof->initially_bound.push_back(proof->NameOf(pos));
    }
  }

  // Line 13–14: V starts as the projection attributes plus every column
  // equated to a constant or host variable.
  AttributeSet bound = initially_bound;
  for (size_t i = 0; i < kept.size(); ++i) {
    const EqualityAtom& atom = kept[i];
    if (atom.type != AtomType::kType1ColumnConstant) continue;
    if (proof != nullptr && !bound.Contains(atom.column)) {
      proof->closure_steps.push_back(
          {atom.column, proof->NameOf(atom.column), kept_text[i], 0});
    }
    bound.Add(atom.column);
  }
  // Lines 15–16: transitive closure of V over Type 2 conditions.
  bool changed = true;
  int round = 0;
  while (changed) {
    changed = false;
    ++round;
    for (size_t i = 0; i < kept.size(); ++i) {
      const EqualityAtom& atom = kept[i];
      if (atom.type != AtomType::kType2ColumnColumn) continue;
      size_t added;
      if (bound.Contains(atom.column) && !bound.Contains(atom.other_column)) {
        added = atom.other_column;
      } else if (bound.Contains(atom.other_column) &&
                 !bound.Contains(atom.column)) {
        added = atom.column;
      } else {
        continue;
      }
      bound.Add(added);
      changed = true;
      if (proof != nullptr) {
        proof->closure_steps.push_back(
            {added, proof->NameOf(added), kept_text[i], round});
      }
    }
  }
  if (proof != nullptr) {
    for (size_t pos : bound.ToVector()) {
      proof->closure.push_back(proof->NameOf(pos));
    }
  }
  return bound;
}

namespace {

// Frame display names for a spec shape: position p belongs to the table
// whose [offset, offset + arity) range contains it.
std::vector<std::string> ShapeColumnNames(const SpecShape& shape) {
  std::vector<std::string> names(shape.width);
  for (const SpecShape::BaseTable& bt : shape.tables) {
    const Schema& schema = bt.get->schema();
    for (size_t j = 0; j < schema.num_columns(); ++j) {
      size_t pos = bt.offset + j;
      if (pos < names.size()) names[pos] = schema.column(j).QualifiedName();
    }
  }
  return names;
}

// Records one key-coverage outcome in the proof.
void RecordKeyOutcome(ProofTrace* proof, const SpecShape::BaseTable& bt,
                      const KeyConstraint& key, size_t shift,
                      const AttributeSet& bound, bool covered) {
  if (proof == nullptr) return;
  ProofKeyOutcome outcome;
  outcome.table = bt.get->table().name();
  outcome.alias = bt.get->alias();
  outcome.key_name = key.name;
  outcome.covered = covered;
  for (size_t col : key.columns) {
    size_t pos = shift + col;
    outcome.key_columns.push_back(proof->NameOf(pos));
    if (!bound.Contains(pos)) {
      outcome.missing_columns.push_back(proof->NameOf(pos));
    }
  }
  proof->keys.push_back(std::move(outcome));
}

}  // namespace

Result<Algorithm1Result> RunAlgorithm1(const SpecShape& shape,
                                       const Algorithm1Options& options) {
  obs::Span span("analysis.algorithm1");
  obs::MetricsRegistry::Global().GetCounter("analysis.algorithm1.runs")
      .Increment();
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("analysis.algorithm1.ns");
  obs::ScopedLatencyTimer timer(&latency);
  Algorithm1Result result;
  ProofTrace* proof = nullptr;
  if (options.record_proof) {
    proof = &result.proof;
    proof->recorded = true;
    proof->column_names = ShapeColumnNames(shape);
  }
  // Line 5: C := C_R ∧ C_S ∧ C_{R,S} ∧ T, in CNF. Top-level conjuncts of
  // each Select predicate are CNF-normalized individually so that e.g.
  // `a = b AND (x = 1 OR y = 2)` keeps its useful first conjunct.
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : shape.predicates) {
    Result<ExprPtr> cnf = ToCnf(pred, options.normalize_budget);
    if (!cnf.ok()) {
      // Predicate too complex to normalize: give up conservatively.
      result.yes = false;
      result.trace.push_back("CNF budget exceeded; answer NO");
      if (proof != nullptr) proof->conclusion = "NO: CNF budget exceeded";
      span.AddAttr("answer", "NO");
      return result;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }
  result.trace.push_back("C has " + std::to_string(conjuncts.size()) +
                         " conjunct(s)");

  // Projection attribute positions (over the product schema).
  AttributeSet projection =
      AttributeSet::FromVector(shape.project->columns());
  result.trace.push_back("V initialized to projection attributes " +
                         projection.ToString());

  bool any_kept = false;
  AttributeSet bound = BoundColumnClosure(conjuncts, projection, options,
                                          &result.trace, &any_kept, proof);
  if (!any_kept && options.verbatim_line10) {
    // Line 10 of the published algorithm: C reduced to T ⇒ NO.
    result.yes = false;
    result.bound_columns = bound;
    result.trace.push_back("C = T after deletions; verbatim line 10: NO");
    if (proof != nullptr) {
      proof->conclusion = "NO: C = T after deletions (verbatim line 10)";
    }
    span.AddAttr("answer", "NO");
    return result;
  }
  result.bound_columns = bound;
  result.trace.push_back("closure V = " + bound.ToString());

  // Line 17: Key(R) ⊕ Key(S) ⊆ V — generalized: every FROM table must
  // have at least one candidate key fully inside V.
  for (const SpecShape::BaseTable& bt : shape.tables) {
    const TableDef& table = bt.get->table();
    if (!table.HasAnyKey()) {
      result.yes = false;
      result.trace.push_back("table " + table.name() +
                             " has no declared key: NO");
      if (proof != nullptr) {
        proof->conclusion = "NO: table " + table.name() +
                            " has no declared candidate key";
      }
      if (options.collect_near_misses) {
        ComputeTableNearMiss(options.near_miss_goal, table, bt.get->alias(),
                             bt.offset, bound, projection, options,
                             &result.near_misses);
      }
      span.AddAttr("answer", "NO");
      return result;
    }
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      AttributeSet key_set =
          AttributeSet::FromVector(key.columns).Shifted(bt.offset);
      bool this_covered = key_set.IsSubsetOf(bound);
      RecordKeyOutcome(proof, bt, key, bt.offset, bound, this_covered);
      if (this_covered) {
        result.trace.push_back("key " + key.name + " of " + table.name() +
                               " covered by V");
        covered = true;
        break;
      }
    }
    if (!covered) {
      result.yes = false;
      result.trace.push_back("no candidate key of " + table.name() +
                             " (" + bt.get->alias() + ") is covered: NO");
      if (proof != nullptr) {
        proof->conclusion = "NO: no candidate key of " + table.name() + " (" +
                            bt.get->alias() + ") is covered by V";
      }
      if (options.collect_near_misses) {
        ComputeTableNearMiss(options.near_miss_goal, table, bt.get->alias(),
                             bt.offset, bound, projection, options,
                             &result.near_misses);
      }
      span.AddAttr("answer", "NO");
      return result;
    }
  }
  result.yes = true;
  result.trace.push_back("all table keys covered: YES");
  if (proof != nullptr) {
    proof->conclusion =
        "YES: every FROM table has a candidate key covered by V; "
        "duplicate elimination is unnecessary (Theorem 1)";
  }
  obs::MetricsRegistry::Global().GetCounter("analysis.algorithm1.yes")
      .Increment();
  span.AddAttr("answer", "YES");
  return result;
}

}  // namespace uniqopt
