#include "exec/operators.h"

#include <algorithm>
#include <utility>

namespace uniqopt {

std::string ExecStats::ToString() const {
  std::string out;
  out += "rows_scanned=" + std::to_string(rows_scanned);
  out += " rows_sorted=" + std::to_string(rows_sorted);
  out += " sort_comparisons=" + std::to_string(sort_comparisons);
  out += " hash_probes=" + std::to_string(hash_probes);
  out += " hash_build_rows=" + std::to_string(hash_build_rows);
  out += " inner_loop_rows=" + std::to_string(inner_loop_rows);
  out += " rows_output=" + std::to_string(rows_output);
  out += " morsels_claimed=" + std::to_string(morsels_claimed);
  out += " index_probes=" + std::to_string(index_probes);
  return out;
}

Result<std::vector<Row>> ExecuteToVector(Operator* op, ExecContext* ctx) {
  UNIQOPT_RETURN_NOT_OK(op->Open(ctx));
  std::vector<Row> out;
  if (ctx->batch_size > 0) {
    RowBatch batch(ctx->batch_size);
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, op->NextBatch(ctx, &batch));
      if (!more) break;
      for (size_t i = 0; i < batch.size(); ++i) out.push_back(batch.row(i));
    }
  } else {
    Row row;
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, op->Next(ctx, &row));
      if (!more) break;
      out.push_back(row);
    }
  }
  op->Close();
  ctx->stats.rows_output += out.size();
  return out;
}

namespace {

size_t BatchCapacity(const ExecContext* ctx) {
  return ctx->batch_size > 0 ? ctx->batch_size : RowBatch::kDefaultBatchSize;
}

/// Drains a child operator into a vector, via the batch path when the
/// context enables it.
Result<std::vector<Row>> Drain(Operator* op, ExecContext* ctx) {
  UNIQOPT_RETURN_NOT_OK(op->Open(ctx));
  std::vector<Row> rows;
  if (ctx->batch_size > 0) {
    RowBatch batch(ctx->batch_size);
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, op->NextBatch(ctx, &batch));
      if (!more) break;
      for (size_t i = 0; i < batch.size(); ++i) rows.push_back(batch.row(i));
    }
  } else {
    Row row;
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, op->Next(ctx, &row));
      if (!more) break;
      rows.push_back(row);
    }
  }
  op->Close();
  return rows;
}

}  // namespace

// ---------------------------------------------------------------- TableScan
Status TableScanOp::Open(ExecContext*) {
  // Pin the committed version for the whole execution: concurrent DML
  // publishes new versions, but this scan keeps reading the immutable
  // state it opened against (snapshot isolation for readers). The pin
  // is held past Close() so batches that borrowed storage slices stay
  // valid until the operator tree is destroyed.
  snapshot_ = table_->Snapshot();
  pos_ = 0;
  return Status::OK();
}

Result<bool> TableScanOp::Next(ExecContext* ctx, Row* row) {
  if (pos_ >= snapshot_->rows.size()) return false;
  *row = snapshot_->rows[pos_++];
  ++ctx->stats.rows_scanned;
  return true;
}

Result<bool> TableScanOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Reset();
  const std::vector<Row>& rows = snapshot_->rows;
  if (pos_ >= rows.size()) return false;
  size_t n = std::min(out->capacity(), rows.size() - pos_);
  out->Borrow(rows.data() + pos_, n);
  pos_ += n;
  ctx->stats.rows_scanned += n;
  return true;
}

void TableScanOp::Close() {}

// ------------------------------------------------------------------- Filter
Status FilterOp::Open(ExecContext* ctx) {
  if (ctx->batch_size > 0) program_ = PredicateProgram::Compile(predicate_);
  return child_->Open(ctx);
}

Result<bool> FilterOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
    if (!more) return false;
    if (predicate_->EvaluatePredicate(*row, ctx->params) == Tribool::kTrue) {
      return true;
    }
  }
}

Result<bool> FilterOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, out));
    if (!more) return false;
    program_.FilterSel(out->data(), &out->selection(), ctx->params);
    if (!out->selection().empty()) return true;  // else pull the next batch
  }
}

void FilterOp::Close() { child_->Close(); }

// ------------------------------------------------------------------ Project
Status ProjectOp::Open(ExecContext* ctx) {
  input_batch_ = RowBatch(BatchCapacity(ctx));
  return child_->Open(ctx);
}

Result<bool> ProjectOp::Next(ExecContext* ctx, Row* row) {
  Row input;
  UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &input));
  if (!more) return false;
  *row = input.Project(columns_);
  return true;
}

Result<bool> ProjectOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Reset();
  UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &input_batch_));
  if (!more) return false;
  for (size_t i = 0; i < input_batch_.size(); ++i) {
    out->Append(input_batch_.row(i).Project(columns_));
  }
  return true;
}

void ProjectOp::Close() { child_->Close(); }

// ------------------------------------------------------------- SortDistinct
Status SortDistinctOp::Open(ExecContext* ctx) {
  UNIQOPT_ASSIGN_OR_RETURN(rows_, Drain(child_.get(), ctx));
  ctx->stats.rows_sorted += rows_.size();
  size_t* comparisons = &ctx->stats.sort_comparisons;
  std::sort(rows_.begin(), rows_.end(), [comparisons](const Row& a,
                                                      const Row& b) {
    ++*comparisons;
    return a.Compare(b) < 0;
  });
  // Compact to one row per `=!`-equal group (Row::Compare treats NULLs
  // as equal, matching `=!`); emission is then a plain slice, shared by
  // the tuple and batch paths.
  rows_.erase(std::unique(rows_.begin(), rows_.end(),
                          [](const Row& a, const Row& b) {
                            return a.Compare(b) == 0;
                          }),
              rows_.end());
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortDistinctOp::Next(ExecContext*, Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

Result<bool> SortDistinctOp::NextBatch(ExecContext*, RowBatch* out) {
  out->Reset();
  if (pos_ >= rows_.size()) return false;
  size_t n = std::min(out->capacity(), rows_.size() - pos_);
  out->Borrow(rows_.data() + pos_, n);
  pos_ += n;
  return true;
}

void SortDistinctOp::Close() { rows_.clear(); }

// ------------------------------------------------------------- HashDistinct
Status HashDistinctOp::Open(ExecContext* ctx) {
  seen_.clear();
  input_batch_ = RowBatch(BatchCapacity(ctx));
  return child_->Open(ctx);
}

Result<bool> HashDistinctOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
    if (!more) return false;
    ++ctx->stats.hash_probes;
    if (seen_.insert(*row).second) return true;
  }
}

Result<bool> HashDistinctOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Reset();
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more,
                             child_->NextBatch(ctx, &input_batch_));
    if (!more) return !out->empty();
    for (size_t i = 0; i < input_batch_.size(); ++i) {
      const Row& row = input_batch_.row(i);
      ++ctx->stats.hash_probes;
      if (seen_.insert(row).second) out->Append(row);
    }
    if (out->size() >= out->capacity()) return true;
    if (!out->empty()) return true;
  }
}

void HashDistinctOp::Close() {
  seen_.clear();
  child_->Close();
}

// ------------------------------------------------------ NestedLoopProduct
Status NestedLoopProductOp::Open(ExecContext* ctx) {
  UNIQOPT_ASSIGN_OR_RETURN(right_rows_, Drain(right_.get(), ctx));
  UNIQOPT_RETURN_NOT_OK(left_->Open(ctx));
  have_left_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopProductOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    if (!have_left_ || right_pos_ >= right_rows_.size()) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &left_row_));
      if (!more) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ < right_rows_.size()) {
      ++ctx->stats.inner_loop_rows;
      *row = Row::Concat(left_row_, right_rows_[right_pos_++]);
      return true;
    }
  }
}

void NestedLoopProductOp::Close() {
  left_->Close();
  right_rows_.clear();
}

// ----------------------------------------------------------------- HashJoin
Status HashJoinOp::Open(ExecContext* ctx) {
  build_.clear();
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows, Drain(right_.get(), ctx));
  for (Row& r : rows) {
    Row key = r.Project(right_keys_);
    bool has_null = false;
    for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
    if (has_null) continue;  // NULL join keys never match under 3VL `=`.
    ++ctx->stats.hash_build_rows;
    build_.emplace(std::move(key), std::move(r));
  }
  UNIQOPT_RETURN_NOT_OK(left_->Open(ctx));
  have_left_ = false;
  probe_batch_ = RowBatch(BatchCapacity(ctx));
  return Status::OK();
}

Result<bool> HashJoinOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    if (!have_left_) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &left_row_));
      if (!more) return false;
      Row key = left_row_.Project(left_keys_);
      bool has_null = false;
      for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
      ++ctx->stats.hash_probes;
      matches_ = has_null ? std::make_pair(build_.end(), build_.end())
                          : build_.equal_range(key);
      have_left_ = true;
    }
    while (matches_.first != matches_.second) {
      Row candidate = Row::Concat(left_row_, matches_.first->second);
      ++matches_.first;
      if (residual_ == nullptr ||
          residual_->EvaluatePredicate(candidate, ctx->params) ==
              Tribool::kTrue) {
        *row = std::move(candidate);
        return true;
      }
    }
    have_left_ = false;
  }
}

Result<bool> HashJoinOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Reset();
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more,
                             left_->NextBatch(ctx, &probe_batch_));
    if (!more) return !out->empty();
    for (size_t i = 0; i < probe_batch_.size(); ++i) {
      const Row& probe = probe_batch_.row(i);
      Row key = probe.Project(left_keys_);
      bool has_null = false;
      for (size_t k = 0; k < key.size(); ++k) has_null |= key[k].is_null();
      ++ctx->stats.hash_probes;
      if (has_null) continue;
      auto [it, end] = build_.equal_range(key);
      for (; it != end; ++it) {
        Row candidate = Row::Concat(probe, it->second);
        if (residual_ == nullptr ||
            residual_->EvaluatePredicate(candidate, ctx->params) ==
                Tribool::kTrue) {
          out->Append(std::move(candidate));
        }
      }
    }
    if (!out->empty()) return true;  // else probe the next batch
  }
}

void HashJoinOp::Close() {
  left_->Close();
  build_.clear();
}

// ------------------------------------------------------ NestedLoopSemiJoin
Status NestedLoopSemiJoinOp::Open(ExecContext* ctx) {
  UNIQOPT_ASSIGN_OR_RETURN(inner_rows_, Drain(inner_.get(), ctx));
  return outer_->Open(ctx);
}

Result<bool> NestedLoopSemiJoinOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, outer_->Next(ctx, row));
    if (!more) return false;
    bool found = false;
    for (const Row& inner : inner_rows_) {
      ++ctx->stats.inner_loop_rows;
      Row combined = Row::Concat(*row, inner);
      if (correlation_->EvaluatePredicate(combined, ctx->params) ==
          Tribool::kTrue) {
        found = true;
        break;  // EXISTS needs only one witness.
      }
    }
    if (found != negated_) return true;
  }
}

void NestedLoopSemiJoinOp::Close() {
  outer_->Close();
  inner_rows_.clear();
}

// ---------------------------------------------------------- HashSemiJoin
Status HashSemiJoinOp::Open(ExecContext* ctx) {
  build_.clear();
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows, Drain(inner_.get(), ctx));
  for (Row& r : rows) {
    Row key = r.Project(inner_keys_);
    bool has_null = false;
    for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
    if (has_null) continue;
    ++ctx->stats.hash_build_rows;
    build_.emplace(std::move(key), std::move(r));
  }
  return outer_->Open(ctx);
}

Result<bool> HashSemiJoinOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, outer_->Next(ctx, row));
    if (!more) return false;
    Row key = row->Project(outer_keys_);
    bool has_null = false;
    for (size_t i = 0; i < key.size(); ++i) has_null |= key[i].is_null();
    bool found = false;
    if (!has_null) {
      ++ctx->stats.hash_probes;
      auto [it, end] = build_.equal_range(key);
      for (; it != end; ++it) {
        if (residual_ == nullptr) {
          found = true;
          break;
        }
        Row combined = Row::Concat(*row, it->second);
        if (residual_->EvaluatePredicate(combined, ctx->params) ==
            Tribool::kTrue) {
          found = true;
          break;
        }
      }
    }
    if (found != negated_) return true;
  }
}

void HashSemiJoinOp::Close() {
  outer_->Close();
  build_.clear();
}

// -------------------------------------------------------------------- SetOp
Status SetOpOp::Open(ExecContext* ctx) {
  right_counts_.clear();
  emitted_.clear();
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> rows, Drain(right_.get(), ctx));
  for (Row& r : rows) {
    ++ctx->stats.hash_build_rows;
    ++right_counts_[std::move(r)];
  }
  return left_->Open(ctx);
}

Result<bool> SetOpOp::Next(ExecContext* ctx, Row* row) {
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, row));
    if (!more) return false;
    ++ctx->stats.hash_probes;
    auto it = right_counts_.find(*row);
    size_t right_count = it == right_counts_.end() ? 0 : it->second;
    if (op_ == SetOpAlgebra::kIntersect) {
      if (mode_ == DuplicateMode::kDist) {
        // r0 ∈ result iff it occurs in both; emit once.
        if (right_count > 0 && emitted_.insert(*row).second) return true;
      } else {
        // INTERSECT ALL: min(j, k) occurrences.
        if (right_count > 0) {
          --it->second;
          return true;
        }
      }
    } else {  // EXCEPT
      if (mode_ == DuplicateMode::kDist) {
        if (right_count == 0 && emitted_.insert(*row).second) return true;
      } else {
        // EXCEPT ALL: max(j − k, 0) occurrences.
        if (right_count > 0) {
          --it->second;
        } else {
          return true;
        }
      }
    }
  }
}

void SetOpOp::Close() {
  left_->Close();
  right_counts_.clear();
  emitted_.clear();
}

// --------------------------------------------------- GroupedAggregator
GroupedAggregator::GroupedAggregator(const Schema& input_schema,
                                     std::vector<size_t> group_columns,
                                     std::vector<AggregateItem> aggregates)
    : group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {
  arg_types_.reserve(aggregates_.size());
  for (const AggregateItem& agg : aggregates_) {
    arg_types_.push_back(agg.func == AggFunc::kCountStar
                             ? TypeId::kInteger
                             : input_schema.column(agg.arg_column).type);
  }
}

size_t GroupedAggregator::GroupSlot(const Row& key_source) {
  // Scalar aggregate: one global group, no per-row key projection or
  // hashing. group_index_ still learns the (empty) key so MergeFrom
  // finds the same slot.
  if (group_columns_.empty()) {
    if (states_.empty()) {
      group_index_.emplace(Row(), 0);
      group_keys_.emplace_back();
      states_.emplace_back(aggregates_.size());
    }
    return 0;
  }
  Row key = key_source.Project(group_columns_);
  auto [it, inserted] = group_index_.emplace(std::move(key),
                                             group_keys_.size());
  if (inserted) {
    group_keys_.push_back(key_source.Project(group_columns_));
    states_.emplace_back(aggregates_.size());
  }
  return it->second;
}

void GroupedAggregator::Fold(std::vector<AggState>* group,
                             const Row& row) const {
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    const AggregateItem& agg = aggregates_[a];
    AggState& st = (*group)[a];
    if (agg.func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    const Value& v = row[agg.arg_column];
    if (v.is_null()) continue;  // SQL: aggregates ignore NULLs
    ++st.count;
    st.any = true;
    switch (agg.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == TypeId::kInteger) {
          st.sum_int += v.AsInteger();
        }
        st.sum_double += v.AsNumeric();
        break;
      case AggFunc::kMin:
        if (st.count == 1) {
          st.min = v;
        } else if (v.type() == TypeId::kInteger &&
                   st.min.type() == TypeId::kInteger) {
          // Integer fast path: both sides non-NULL here, compare inline.
          if (v.AsInteger() < st.min.AsInteger()) st.min = v;
        } else if (v.Compare(st.min) < 0) {
          st.min = v;
        }
        break;
      case AggFunc::kMax:
        if (st.count == 1) {
          st.max = v;
        } else if (v.type() == TypeId::kInteger &&
                   st.max.type() == TypeId::kInteger) {
          if (v.AsInteger() > st.max.AsInteger()) st.max = v;
        } else if (v.Compare(st.max) > 0) {
          st.max = v;
        }
        break;
      default:
        break;
    }
  }
}

void GroupedAggregator::Accumulate(const Row& row, ExecStats* stats) {
  ++stats->hash_probes;
  Fold(&states_[GroupSlot(row)], row);
}

void GroupedAggregator::MergeFrom(const GroupedAggregator& other) {
  for (size_t g = 0; g < other.group_keys_.size(); ++g) {
    // other.group_keys_[g] is already projected onto the group columns.
    auto [it, inserted] = group_index_.emplace(other.group_keys_[g],
                                               group_keys_.size());
    if (inserted) {
      group_keys_.push_back(other.group_keys_[g]);
      states_.emplace_back(aggregates_.size());
    }
    std::vector<AggState>& mine = states_[it->second];
    const std::vector<AggState>& theirs = other.states_[g];
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      AggState& st = mine[a];
      const AggState& o = theirs[a];
      st.count += o.count;
      st.sum_int += o.sum_int;
      st.sum_double += o.sum_double;
      if (o.any) {
        if (!st.any || o.min.Compare(st.min) < 0) st.min = o.min;
        if (!st.any || o.max.Compare(st.max) > 0) st.max = o.max;
        st.any = true;
      }
    }
  }
}

std::vector<Row> GroupedAggregator::Finalize() const {
  std::vector<Row> out_rows;
  // A scalar aggregate always yields one group, even over empty input.
  const bool scalar_empty = group_columns_.empty() && group_keys_.empty();
  size_t groups = scalar_empty ? 1 : group_keys_.size();
  const std::vector<AggState> empty_states(aggregates_.size());
  for (size_t g = 0; g < groups; ++g) {
    Row out = scalar_empty ? Row() : group_keys_[g];
    const std::vector<AggState>& group =
        scalar_empty ? empty_states : states_[g];
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateItem& agg = aggregates_[a];
      const AggState& st = group[a];
      TypeId arg_type = arg_types_[a];
      switch (agg.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          out.Append(Value::Integer(st.count));
          break;
        case AggFunc::kSum:
          if (!st.any) {
            out.Append(Value::Null(arg_type));
          } else if (arg_type == TypeId::kInteger) {
            out.Append(Value::Integer(st.sum_int));
          } else {
            out.Append(Value::Double(st.sum_double));
          }
          break;
        case AggFunc::kAvg:
          out.Append(st.any ? Value::Double(st.sum_double /
                                            static_cast<double>(st.count))
                            : Value::Null(TypeId::kDouble));
          break;
        case AggFunc::kMin:
          out.Append(st.any ? st.min : Value::Null(arg_type));
          break;
        case AggFunc::kMax:
          out.Append(st.any ? st.max : Value::Null(arg_type));
          break;
      }
    }
    out_rows.push_back(std::move(out));
  }
  return out_rows;
}

// ------------------------------------------------------- HashAggregate
Status HashAggregateOp::Open(ExecContext* ctx) {
  output_.clear();
  pos_ = 0;
  GroupedAggregator agg(child_->schema(), group_columns_, aggregates_);
  UNIQOPT_RETURN_NOT_OK(child_->Open(ctx));
  if (ctx->batch_size > 0) {
    // Accumulate straight off borrowed batches — no materialization of
    // the input, no per-row copies.
    RowBatch batch(ctx->batch_size);
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &batch));
      if (!more) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        agg.Accumulate(batch.row(i), &ctx->stats);
      }
    }
  } else {
    Row row;
    while (true) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &row));
      if (!more) break;
      agg.Accumulate(row, &ctx->stats);
    }
  }
  child_->Close();
  output_ = agg.Finalize();
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(ExecContext*, Row* row) {
  if (pos_ >= output_.size()) return false;
  *row = output_[pos_++];
  return true;
}

Result<bool> HashAggregateOp::NextBatch(ExecContext*, RowBatch* out) {
  out->Reset();
  if (pos_ >= output_.size()) return false;
  size_t n = std::min(out->capacity(), output_.size() - pos_);
  out->Borrow(output_.data() + pos_, n);
  pos_ += n;
  return true;
}

void HashAggregateOp::Close() { output_.clear(); }

// ------------------------------------------------------ SortMergeIntersect
Status SortMergeIntersectOp::Open(ExecContext* ctx) {
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> left, Drain(left_.get(), ctx));
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Row> right, Drain(right_.get(), ctx));
  ctx->stats.rows_sorted += left.size() + right.size();
  size_t* comparisons = &ctx->stats.sort_comparisons;
  auto by_compare = [comparisons](const Row& a, const Row& b) {
    ++*comparisons;
    return a.Compare(b) < 0;
  };
  std::sort(left.begin(), left.end(), by_compare);
  std::sort(right.begin(), right.end(), by_compare);
  out_.clear();
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() && j < right.size()) {
    ++*comparisons;
    int c = left[i].Compare(right[j]);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit one copy per distinct value (DISTINCT semantics).
      out_.push_back(left[i]);
      const Row& v = out_.back();
      while (i < left.size() && left[i].Compare(v) == 0) ++i;
      while (j < right.size() && right[j].Compare(v) == 0) ++j;
    }
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortMergeIntersectOp::Next(ExecContext*, Row* row) {
  if (pos_ >= out_.size()) return false;
  *row = out_[pos_++];
  return true;
}

Result<bool> SortMergeIntersectOp::NextBatch(ExecContext*, RowBatch* out) {
  out->Reset();
  if (pos_ >= out_.size()) return false;
  size_t n = std::min(out->capacity(), out_.size() - pos_);
  out->Borrow(out_.data() + pos_, n);
  pos_ += n;
  return true;
}

void SortMergeIntersectOp::Close() { out_.clear(); }

}  // namespace uniqopt
