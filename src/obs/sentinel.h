#ifndef UNIQOPT_OBS_SENTINEL_H_
#define UNIQOPT_OBS_SENTINEL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace uniqopt {
namespace obs {

/// One closed window handed from the time-series plane to the sentinel:
/// which series it belongs to, what kind of series that is (which
/// decides the statistics checked), and the window's folded stats.
struct SeriesObservation {
  std::string series;
  SeriesKind kind = SeriesKind::kCounter;
  uint64_t class_fingerprint = 0;
  WindowStats stats;
};

/// One regression the sentinel detected: a closed window whose observed
/// statistic left the rolling reference band. The exemplar (when the
/// series carries one) points at the worst sample's QueryRecord, so an
/// alert resolves straight to an entry in `\history` / GET /queries.
struct Alert {
  uint64_t id = 0;        ///< monotonic per sentinel
  uint64_t window = 0;    ///< tick index of the offending window
  std::string series;     ///< e.g. "class.ab12....prepare.ns"
  uint64_t class_fingerprint = 0;  ///< class series only
  std::string stat;       ///< "p50" | "p99" | "ratio"
  double observed = 0.0;
  double expected = 0.0;  ///< EWMA reference at detection time
  double band = 0.0;      ///< allowed absolute deviation
  std::string severity;   ///< "warn" | "critical"
  Exemplar exemplar;
  uint64_t end_ns = 0;    ///< window close, monotonic clock

  std::string ToString() const;
};

struct SentinelOptions {
  /// EWMA smoothing of the reference level (per observed window).
  double alpha = 0.3;
  /// EWMA smoothing of the absolute deviation (the MAD estimate).
  double mad_alpha = 0.3;
  /// Alert when |observed - reference| > band_k * max(mad, floors).
  double band_k = 4.0;
  /// Band floors, so a dead-flat warm-up (mad → 0) stays armed without
  /// firing on measurement noise: relative to the reference level, and
  /// absolute.
  double min_band_fraction = 0.10;
  double min_band_abs = 1.0;
  /// Absolute floor for ratio statistics. Ratios live in [0,1], so the
  /// latency-scale min_band_abs would swallow any collapse.
  double min_band_abs_ratio = 0.05;
  /// Windows a series must be observed before it arms. Warm-up windows
  /// only feed the reference.
  uint64_t warmup_windows = 3;
  /// Retained alert ring bound (oldest evicted; total keeps counting).
  size_t max_alerts = 128;
};

/// Online regression sentinel over the windowed time-series plane.
///
/// For every observed series statistic — window p50/p99 of histogram
/// and per-query-class series, rewrite firing ratios — the sentinel
/// keeps an EWMA reference level and an EWMA of absolute deviation (a
/// MAD estimate). After `warmup_windows` observations the series arms;
/// a window whose statistic leaves the `band_k * mad` band (with
/// relative/absolute floors) raises one bounded structured Alert.
/// Latency statistics alert on upward deviation, firing ratios on
/// downward collapse.
///
/// On firing, the reference snaps to the observed level: a sustained
/// step change alerts exactly once, then the series re-arms at the new
/// level (a later second step fires again). Disabled (the default),
/// ObserveTick returns immediately.
///
/// Exposes `sentinel.alerts` / `sentinel.ticks` counters and the
/// `sentinel.armed` gauge (armed series while enabled).
class Sentinel {
 public:
  explicit Sentinel(SentinelOptions options = {});
  Sentinel(const Sentinel&) = delete;
  Sentinel& operator=(const Sentinel&) = delete;

  /// The process-wide sentinel (`\sentinel on|off|reset`, GET /alerts).
  static Sentinel& Global();

  void set_enabled(bool on);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every reference track and retained alert (total_alerts and
  /// the enabled flag survive).
  void Reset();

  /// Feeds one tick's closed windows (the plane calls this; tests feed
  /// synthetic series directly).
  void ObserveTick(const std::vector<SeriesObservation>& observations);

  /// Retained alerts, oldest first.
  std::vector<Alert> Alerts() const;
  /// Alerts ever raised (retained or evicted).
  uint64_t total_alerts() const {
    return total_alerts_.load(std::memory_order_relaxed);
  }
  /// Series past warm-up (armed) right now.
  size_t armed_series() const;
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  const SentinelOptions& options() const { return options_; }

  /// `\alerts` rendering.
  std::string ToText() const;
  /// {"sentinel": {...}} — the GET /alerts payload.
  std::string ToJson() const;

 private:
  /// Rolling reference for one (series, stat) pair.
  struct Track {
    double ewma = 0.0;
    double mad = 0.0;
    uint64_t windows = 0;  // observations absorbed so far
  };

  /// Returns true when an alert fired for this observation.
  bool ObserveStat(const SeriesObservation& obs, const char* stat,
                   double observed, bool upward);
  void PushAlertLocked(Alert alert);

  const SentinelOptions options_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> total_alerts_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> next_alert_id_{1};

  mutable std::mutex mu_;
  std::map<std::string, Track> tracks_;  // key: "<series>|<stat>"
  std::vector<Alert> alerts_;            // ring, oldest at alert_head_
  size_t alert_head_ = 0;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_SENTINEL_H_
