#include "catalog/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace uniqopt {

Status Catalog::AddTable(TableDef def) {
  std::string key = ToUpperAscii(def.name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + def.name());
  }
  // Validate inclusion dependencies: the referenced table must exist
  // (self-references allowed) and the referenced columns must form a
  // declared candidate key — otherwise the dependency cannot license
  // join elimination or be enforced cheaply.
  for (const ForeignKeyConstraint& fk : def.foreign_keys()) {
    const TableDef* ref = nullptr;
    if (fk.ref_table == key) {
      ref = &def;
    } else {
      auto it = tables_.find(fk.ref_table);
      if (it == tables_.end()) {
        return Status::NotFound("foreign key " + fk.name +
                                " references unknown table " + fk.ref_table);
      }
      ref = &it->second;
    }
    std::vector<size_t> ref_ordinals;
    for (const std::string& rc : fk.ref_columns) {
      UNIQOPT_ASSIGN_OR_RETURN(size_t ord, ref->ColumnOrdinal(rc));
      ref_ordinals.push_back(ord);
    }
    std::vector<size_t> sorted = ref_ordinals;
    std::sort(sorted.begin(), sorted.end());
    bool is_key = false;
    for (const KeyConstraint& k : ref->keys()) {
      std::vector<size_t> kc = k.columns;
      std::sort(kc.begin(), kc.end());
      if (kc == sorted) {
        is_key = true;
        break;
      }
    }
    if (!is_key) {
      return Status::InvalidArgument(
          "foreign key " + fk.name + " must reference a candidate key of " +
          fk.ref_table);
    }
    // Type compatibility between referencing and referenced columns.
    for (size_t i = 0; i < fk.columns.size(); ++i) {
      if (!Value::Comparable(def.schema().column(fk.columns[i]).type,
                             ref->schema().column(ref_ordinals[i]).type)) {
        return Status::InvalidArgument("foreign key " + fk.name +
                                       " column type mismatch");
      }
    }
  }
  order_.push_back(key);
  tables_.emplace(std::move(key), std::move(def));
  BumpVersion();
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &it->second;
}

Result<TableDef*> Catalog::GetTableMutable(const std::string& name) {
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToUpperAscii(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToUpperAscii(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  tables_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  BumpVersion();
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const { return order_; }

}  // namespace uniqopt
