#ifndef UNIQOPT_VERIFY_PLAN_LINT_H_
#define UNIQOPT_VERIFY_PLAN_LINT_H_

#include "verify/verify.h"

namespace uniqopt {
namespace verify {

/// Structural lint of the optimized plan tree:
///  - every column reference binds to a column its producing child
///    actually outputs;
///  - each operator's recorded output schema is the one its children
///    imply (width and column types, operator by operator);
///  - a top-level DISTINCT present in the original plan may be absent
///    from the optimized plan only when a duplicate-affecting rewrite
///    fired with proof or derived-fact evidence attached;
///  - every applied rewrite carries complete evidence (before/after
///    subtrees, condition_proven), and the Theorem 2 rules carry a
///    recorded ProofTrace.
/// Appends findings to `report`.
void LintPlan(const VerifyInput& input, VerifyReport* report);

}  // namespace verify
}  // namespace uniqopt

#endif  // UNIQOPT_VERIFY_PLAN_LINT_H_
