#include "workload/supplier_schema.h"

#include <random>
#include <string>

namespace uniqopt {

namespace {

const char* kCities[] = {"Chicago", "New York", "Toronto"};
const char* kAgentCities[] = {"Ottawa", "Hull", "Toronto", "Montreal"};
const char* kColors[] = {"RED", "GREEN", "BLUE", "YELLOW"};

}  // namespace

Status CreateSupplierSchema(Database* db,
                            const SupplierSchemaOptions& options) {
  // Foreign keys reference SUPPLIER (SNO); without that key they are
  // not declarable, so dropping the PK suppresses them too.
  const bool with_foreign_keys =
      options.with_foreign_keys && options.with_supplier_primary_key;
  std::string supplier_ddl =
      "CREATE TABLE SUPPLIER ("
      "  SNO INTEGER NOT NULL,"
      "  SNAME VARCHAR(30),"
      "  SCITY VARCHAR(20),"
      "  BUDGET DOUBLE,"
      "  STATUS VARCHAR(10)";
  if (options.with_supplier_primary_key) {
    supplier_ddl += ", PRIMARY KEY (SNO)";
  }
  if (options.with_check_constraints) {
    supplier_ddl +=
        ", CHECK (SNO BETWEEN 1 AND " + std::to_string(options.max_sno) +
        ")"
        ", CHECK (SCITY IN ('Chicago', 'New York', 'Toronto'))"
        ", CHECK (BUDGET > 0 OR STATUS = 'Inactive')";
  }
  supplier_ddl += ")";
  UNIQOPT_RETURN_NOT_OK(db->ExecuteDdl(supplier_ddl));

  std::string parts_ddl =
      "CREATE TABLE PARTS ("
      "  SNO INTEGER NOT NULL,"
      "  PNO INTEGER NOT NULL,"
      "  PNAME VARCHAR(30),"
      "  OEM_PNO INTEGER,"
      "  COLOR VARCHAR(10),"
      "  PRIMARY KEY (SNO, PNO)";
  if (options.with_oem_unique) parts_ddl += ", UNIQUE (OEM_PNO)";
  if (options.with_check_constraints) {
    parts_ddl += ", CHECK (SNO BETWEEN 1 AND " +
                 std::to_string(options.max_sno) + ")";
  }
  if (with_foreign_keys) {
    parts_ddl += ", FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO)";
  }
  parts_ddl += ")";
  UNIQOPT_RETURN_NOT_OK(db->ExecuteDdl(parts_ddl));

  std::string agents_ddl =
      "CREATE TABLE AGENTS ("
      "  SNO INTEGER NOT NULL,"
      "  ANO INTEGER NOT NULL,"
      "  ANAME VARCHAR(30),"
      "  ACITY VARCHAR(20),"
      "  PRIMARY KEY (ANO)";
  if (with_foreign_keys) {
    agents_ddl += ", FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO)";
  }
  agents_ddl += ")";
  return db->ExecuteDdl(agents_ddl);
}

Status PopulateSupplierDatabase(Database* db,
                                const SupplierDataOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  UNIQOPT_ASSIGN_OR_RETURN(Table * supplier, db->GetTable("SUPPLIER"));
  UNIQOPT_ASSIGN_OR_RETURN(Table * parts, db->GetTable("PARTS"));
  UNIQOPT_ASSIGN_OR_RETURN(Table * agents, db->GetTable("AGENTS"));

  // SUPPLIER: duplicate names are drawn from a small pool so that
  // Example 2's SNAME projection genuinely produces duplicate rows.
  const size_t name_pool =
      std::max<size_t>(1, static_cast<size_t>(options.num_suppliers *
                                              (1.0 -
                                               options.duplicate_sname_fraction)));
  auto maybe_null = [&](Value v) {
    if (options.null_fraction > 0 && unit(rng) < options.null_fraction) {
      return Value::Null(v.type());
    }
    return v;
  };
  for (size_t i = 1; i <= options.num_suppliers; ++i) {
    size_t name_id = 1 + rng() % name_pool;
    bool inactive = unit(rng) < 0.1;
    UNIQOPT_RETURN_NOT_OK(supplier->InsertValues(
        {Value::Integer(static_cast<int64_t>(i)),
         maybe_null(Value::String("SUPPLIER-" + std::to_string(name_id))),
         maybe_null(Value::String(kCities[rng() % 3])),
         inactive ? Value::Double(0.0)
                  : maybe_null(Value::Double(
                        1000.0 + static_cast<double>(rng() % 9000))),
         Value::String(inactive ? "Inactive" : "Active")}));
  }

  // PARTS: key (SNO, PNO); part numbers repeat across suppliers so that
  // one part may have several suppliers (Example 10's premise).
  int64_t next_oem = 1;
  bool used_null_oem = !options.one_null_oem;
  for (size_t s = 1; s <= options.num_suppliers; ++s) {
    for (size_t p = 1; p <= options.parts_per_supplier; ++p) {
      Value oem = Value::Integer(next_oem++);
      if (!used_null_oem && unit(rng) < 0.002) {
        oem = Value::Null(TypeId::kInteger);
        used_null_oem = true;
      }
      const char* color =
          unit(rng) < options.red_fraction ? "RED" : kColors[1 + rng() % 3];
      UNIQOPT_RETURN_NOT_OK(parts->InsertValues(
          {Value::Integer(static_cast<int64_t>(s)),
           Value::Integer(static_cast<int64_t>(p)),
           maybe_null(Value::String("PART-" + std::to_string(p))),
           std::move(oem), maybe_null(Value::String(color))}));
    }
  }

  // AGENTS: each agent represents one supplier.
  for (size_t a = 1; a <= options.num_agents; ++a) {
    UNIQOPT_RETURN_NOT_OK(agents->InsertValues(
        {Value::Integer(static_cast<int64_t>(1 + rng() %
                                             options.num_suppliers)),
         Value::Integer(static_cast<int64_t>(a)),
         maybe_null(Value::String("AGENT-" + std::to_string(a))),
         maybe_null(Value::String(kAgentCities[rng() % 4]))}));
  }
  return Status::OK();
}

Status MakeTestSupplierDatabase(Database* db) {
  UNIQOPT_RETURN_NOT_OK(CreateSupplierSchema(db));
  return PopulateSupplierDatabase(db);
}

}  // namespace uniqopt
