# Empty compiler generated dependencies file for uniqopt_rewrite.
# This may be replaced when dependencies are built.
