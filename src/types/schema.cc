#include "types/schema.h"

#include "common/string_util.h"

namespace uniqopt {

std::string Column::QualifiedName() const {
  if (qualifier.empty()) return name;
  return qualifier + "." + name;
}

Result<size_t> Schema::Resolve(std::string_view qualifier,
                               std::string_view name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found.has_value()) {
      return Status::BindError("ambiguous column reference: " +
                               std::string(name));
    }
    found = i;
  }
  if (!found.has_value()) {
    std::string full = qualifier.empty()
                           ? std::string(name)
                           : std::string(qualifier) + "." + std::string(name);
    return Status::NotFound("column not found: " + full);
  }
  return *found;
}

std::optional<size_t> Schema::Find(std::string_view qualifier,
                                   std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name) &&
        EqualsIgnoreCase(columns_[i].qualifier, qualifier)) {
      return i;
    }
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<size_t>& indexes) const {
  std::vector<Column> cols;
  cols.reserve(indexes.size());
  for (size_t i : indexes) cols.push_back(columns_.at(i));
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(std::string_view alias) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.qualifier = std::string(alias);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    const Column& c = columns_[i];
    out += c.QualifiedName();
    out += " ";
    out += TypeIdToString(c.type);
    if (c.nullable) out += " NULL";
  }
  out += ")";
  return out;
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (num_columns() != other.num_columns()) return false;
  for (size_t i = 0; i < num_columns(); ++i) {
    if (!Value::Comparable(columns_[i].type, other.columns_[i].type)) {
      return false;
    }
  }
  return true;
}

}  // namespace uniqopt
