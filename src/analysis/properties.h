#ifndef UNIQOPT_ANALYSIS_PROPERTIES_H_
#define UNIQOPT_ANALYSIS_PROPERTIES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fd/functional_dependency.h"
#include "plan/plan.h"

namespace uniqopt {

/// Knobs controlling which semantic information property derivation may
/// exploit. Each switch corresponds to an ingredient of the paper's
/// Algorithm 1 (and its extensions); the ablation benchmark toggles them.
struct AnalysisOptions {
  /// Consider UNIQUE candidate keys in addition to the primary key.
  bool use_unique_keys = true;
  /// Harvest `col = constant` / `col = :hostvar` predicates (Type 1).
  bool bind_constants = true;
  /// Harvest `col = col` predicates and close transitively (Type 2).
  bool use_column_equivalence = true;
  /// Derive constant columns from CHECK table constraints that pin a
  /// NOT NULL column to a single value (paper §3.2: "inferred through
  /// ... table constraints"). CHECKs are true-interpreted, so a nullable
  /// column pinned by CHECK may still be NULL and is NOT constant
  /// under `=!`.
  bool use_check_constraints = false;
  /// Budget for CNF/DNF normalization.
  size_t normalize_budget = 4096;
  /// Emit structured NearMiss records (minimal missing key/FD facts) at
  /// proof-failure sites, feeding the constraint advisor. Off by default
  /// so raw analyzer callers (benches, the verifier's reference checker)
  /// pay nothing; Optimizer::Prepare switches it on while advising.
  bool collect_near_misses = false;
};

/// Derived-table properties of a plan node: the functional dependencies
/// (over the node's output columns, null-aware per Definition 1) and the
/// derived candidate keys (attribute sets no two output rows agree on
/// under `=!` — the paper's derived key dependencies).
struct DerivedProperties {
  size_t width = 0;
  FdSet fds;
  std::vector<AttributeSet> keys;

  /// True when some derived key exists, i.e. the output provably
  /// contains no duplicate rows (the precondition of Theorem 3 and
  /// Corollaries 1–2).
  bool IsDuplicateFree() const { return !keys.empty(); }

  std::string ToString() const;
};

/// Bottom-up derivation of FDs and keys for every operator of the §2.2
/// algebra. Sound: every reported FD/key holds in all instances; not
/// complete (exact derivation is undecidable / exponential — Klug,
/// Darwen).
DerivedProperties DeriveProperties(const PlanPtr& plan,
                                   const AnalysisOptions& options = {});

/// Convenience: true when `plan`'s output provably has no duplicates.
bool IsProvablyDuplicateFree(const PlanPtr& plan,
                             const AnalysisOptions& options = {});

/// Harvests FDs implied by a WHERE predicate holding (false-interpreted)
/// on every row of a table with `width` columns:
///   - Type 1 atoms (`col = const`, `col = :hv`) yield ∅ → col;
///   - Type 2 atoms (`col1 = col2`) yield col1 ↔ col2.
/// Only top-level conjuncts contribute; disjunctions are ignored
/// (soundly). Controlled by `options.bind_constants` /
/// `options.use_column_equivalence`.
void HarvestPredicateFds(const ExprPtr& predicate,
                         const AnalysisOptions& options, FdSet* fds);

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_PROPERTIES_H_
