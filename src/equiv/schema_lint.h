#ifndef UNIQOPT_EQUIV_SCHEMA_LINT_H_
#define UNIQOPT_EQUIV_SCHEMA_LINT_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace uniqopt {
namespace equiv {

/// Statically detectable catalog inconsistencies. The linter never
/// blocks DDL — every finding is advisory and also feeds the constraint
/// advisor store so `\advisor` and GET /advisor surface it next to the
/// query-driven near-misses.
enum class SchemaLintKind {
  /// Two keys declare the same column set.
  kDuplicateKey,
  /// A declared key's column set strictly contains another key's — the
  /// wider key is implied and every proof it powers is already powered
  /// by the narrower one.
  kRedundantKey,
  /// A PRIMARY KEY column is declared nullable: the NOT NULL half of
  /// the primary-key contract is missing and null-safe joins degrade.
  kNullableKeyColumn,
  /// A NOT NULL foreign-key source references a nullable key column of
  /// the target — rows of the target with a NULL key can never be
  /// referenced, and Theorem 2/3 gates lose the NOT NULL fact.
  kNotNullFkConflict,
  /// A foreign key whose referenced column set is not a declared
  /// candidate key of the target (matches are not guaranteed unique).
  kDanglingForeignKey,
  /// A single-column CHECK admits no storable value: on a NOT NULL
  /// column the table can hold no rows at all.
  kUnsatisfiableCheck,
  /// Foreign keys form a referential cycle; with NOT NULL sources on
  /// every edge the inclusion dependencies compose into functional
  /// dependencies both ways, implying each source column set is an
  /// undeclared candidate key.
  kForeignKeyCycle,
};

const char* SchemaLintKindName(SchemaLintKind kind);

struct SchemaLintFinding {
  SchemaLintKind kind = SchemaLintKind::kDuplicateKey;
  std::string table;   ///< Table the finding is anchored to.
  std::string object;  ///< Offending key/check/FK name (may be empty).
  std::string detail;  ///< Human-readable explanation.

  /// "KIND table object: detail" one-liner.
  std::string ToString() const;
};

/// Analyzes every table of `catalog`; deterministic order (registration
/// order, then constraint order). Pure — no store side effects.
std::vector<SchemaLintFinding> LintCatalog(const Catalog& catalog);

/// Folds the findings into the process-wide advisor store under
/// "schema.lint.<kind>" goals so they rank alongside query-driven
/// near-misses. Returns the number of findings published.
size_t PublishSchemaFindings(const std::vector<SchemaLintFinding>& findings);

}  // namespace equiv
}  // namespace uniqopt

#endif  // UNIQOPT_EQUIV_SCHEMA_LINT_H_
