#ifndef UNIQOPT_CACHE_SHARDED_LRU_H_
#define UNIQOPT_CACHE_SHARDED_LRU_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace uniqopt {
namespace cache {

struct LruOptions {
  /// Number of independently locked shards; a key's shard is fixed by
  /// its high fingerprint bits, so contention scales down with shards.
  size_t shards = 8;
  /// Maximum entries across all shards (enforced per shard as
  /// ceil(capacity / shards)).
  size_t capacity = 1024;
  /// Approximate byte budget across all shards (caller-supplied sizes;
  /// same per-shard split).
  size_t byte_budget = 64ull << 20;
};

struct LruStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;  ///< current
  uint64_t bytes = 0;    ///< current, approximate
};

/// Thread-safe sharded LRU keyed by a 64-bit fingerprint, holding
/// immutable `shared_ptr<const V>` values. The hit path takes only a
/// shard-level *shared* lock plus relaxed atomics (the recency stamp and
/// the hit counter) — concurrent readers never serialize against each
/// other. Writers (insert, eviction, invalidation) take the shard's
/// exclusive lock. Recency is approximate-LRU: entries carry a stamp
/// from a global atomic clock and eviction removes the stalest entry of
/// the over-budget shard, which preserves LRU order exactly under
/// single-threaded use and within one shard's interleaving otherwise.
///
/// `V` may be an incomplete type: the container only ever copies and
/// destroys type-erased shared_ptrs.
template <typename V>
class ShardedLru {
 public:
  using Ptr = std::shared_ptr<const V>;

  explicit ShardedLru(LruOptions options = {}) : options_(options) {
    if (options_.shards == 0) options_.shards = 1;
    if (options_.capacity == 0) options_.capacity = 1;
    shard_capacity_ =
        (options_.capacity + options_.shards - 1) / options_.shards;
    shard_bytes_ = options_.byte_budget / options_.shards;
    if (shard_bytes_ == 0) shard_bytes_ = 1;
    shards_ = std::vector<Shard>(options_.shards);
  }

  ShardedLru(const ShardedLru&) = delete;
  ShardedLru& operator=(const ShardedLru&) = delete;

  /// Returns the cached value and refreshes its recency, or nullptr.
  Ptr Get(uint64_t key) {
    Shard& shard = ShardFor(key);
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    it->second->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                            std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, then evicts stalest entries while the
  /// shard exceeds its entry or byte budget. Returns entries evicted.
  size_t Put(uint64_t key, Ptr value, size_t bytes, uint64_t version) {
    Shard& shard = ShardFor(key);
    size_t evicted = 0;
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      RemoveLocked(shard, it);
    }
    auto entry = std::make_unique<Entry>();
    entry->value = std::move(value);
    entry->bytes = bytes;
    entry->version = version;
    entry->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed),
                       std::memory_order_relaxed);
    shard.bytes += bytes;
    shard.map.emplace(key, std::move(entry));
    entries_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    while (shard.map.size() > shard_capacity_ ||
           (shard.bytes > shard_bytes_ && shard.map.size() > 1)) {
      auto stalest = shard.map.end();
      uint64_t min_stamp = UINT64_MAX;
      for (auto e = shard.map.begin(); e != shard.map.end(); ++e) {
        uint64_t s = e->second->stamp.load(std::memory_order_relaxed);
        if (e->first != key && s <= min_stamp) {
          min_stamp = s;
          stalest = e;
        }
      }
      if (stalest == shard.map.end()) break;  // only the new entry left
      RemoveLocked(shard, stalest);
      ++evicted;
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    return evicted;
  }

  /// Purges every entry stored under a version older than
  /// `min_version`; returns how many were dropped. Entries are already
  /// unreachable once the version is part of the key — this reclaims
  /// their memory eagerly after a catalog bump.
  size_t InvalidateBefore(uint64_t min_version) {
    size_t dropped = 0;
    for (Shard& shard : shards_) {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->second->version < min_version) {
          it = RemoveLocked(shard, it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  bool Erase(uint64_t key) {
    Shard& shard = ShardFor(key);
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    RemoveLocked(shard, it);
    return true;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        it = RemoveLocked(shard, it);
      }
    }
  }

  LruStats Stats() const {
    LruStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    return s;
  }

  const LruOptions& options() const { return options_; }

 private:
  struct Entry {
    Ptr value;
    size_t bytes = 0;
    uint64_t version = 0;
    std::atomic<uint64_t> stamp{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<Entry>> map;
    size_t bytes = 0;  // guarded by mu
  };

  Shard& ShardFor(uint64_t key) {
    // High bits: the FNV fingerprint mixes well, and low bits often
    // carry the version mix-in pattern.
    return shards_[(key >> 48) % shards_.size()];
  }

  /// Requires the shard's exclusive lock; returns the next iterator.
  typename std::unordered_map<uint64_t, std::unique_ptr<Entry>>::iterator
  RemoveLocked(
      Shard& shard,
      typename std::unordered_map<uint64_t,
                                  std::unique_ptr<Entry>>::iterator it) {
    shard.bytes -= it->second->bytes;
    bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    return shard.map.erase(it);
  }

  LruOptions options_;
  size_t shard_capacity_ = 0;
  size_t shard_bytes_ = 0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> clock_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace cache
}  // namespace uniqopt

#endif  // UNIQOPT_CACHE_SHARDED_LRU_H_
