file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_catalog.dir/catalog.cc.o"
  "CMakeFiles/uniqopt_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/uniqopt_catalog.dir/table_def.cc.o"
  "CMakeFiles/uniqopt_catalog.dir/table_def.cc.o.d"
  "libuniqopt_catalog.a"
  "libuniqopt_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
