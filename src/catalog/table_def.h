#ifndef UNIQOPT_CATALOG_TABLE_DEF_H_
#define UNIQOPT_CATALOG_TABLE_DEF_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace uniqopt {

/// Key constraint kind. SQL2 distinguishes them only by nullability:
/// PRIMARY KEY columns are implicitly NOT NULL; UNIQUE (candidate key)
/// columns may be NULL, with NULL treated as one "special value" (§2.1:
/// at most one row may carry NULL in a single-column candidate key).
enum class KeyKind { kPrimary, kUnique };

/// A declared candidate key: the paper's U_i(R).
struct KeyConstraint {
  KeyKind kind = KeyKind::kUnique;
  std::string name;
  /// Column ordinals within the owning table.
  std::vector<size_t> columns;
};

/// An inclusion dependency (FOREIGN KEY): the listed columns of this
/// table reference a candidate key of `ref_table`. The paper's §7 names
/// inclusion dependencies as the enabler of King's join elimination,
/// which `rewrite/` implements.
struct ForeignKeyConstraint {
  std::string name;
  /// Referencing column ordinals within the owning table.
  std::vector<size_t> columns;
  std::string ref_table;
  /// Referenced column names (must form a candidate key of ref_table;
  /// validated when the table is added to a catalog).
  std::vector<std::string> ref_columns;
};

/// A table CHECK constraint (the paper's T_R): a predicate over the
/// table's own columns, bound positionally against the table schema,
/// true-interpreted (a row satisfies the constraint unless the predicate
/// is FALSE — SQL2 CHECK semantics).
struct CheckConstraint {
  std::string name;
  ExprPtr predicate;
  /// Original SQL text when parsed from CREATE TABLE (for display).
  std::string sql_text;
};

/// Definition of a base table: schema plus declared constraints.
class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Declares the primary key. PRIMARY KEY columns become NOT NULL.
  Status SetPrimaryKey(std::vector<std::string> column_names);
  /// Declares an additional candidate key (UNIQUE).
  Status AddUniqueKey(std::vector<std::string> column_names);
  /// Declares a UNIQUE candidate key under an explicit name (CREATE
  /// UNIQUE INDEX). Fails if the name or the exact column set is
  /// already taken by a declared key.
  Status AddNamedUniqueKey(std::string key_name,
                           std::vector<std::string> column_names);
  /// Adds a CHECK table constraint over this table's columns.
  void AddCheck(CheckConstraint check) {
    checks_.push_back(std::move(check));
  }
  /// Declares an inclusion dependency; referenced-key validation happens
  /// at catalog registration (the referenced table must already exist).
  Status AddForeignKey(std::vector<std::string> column_names,
                       std::string ref_table,
                       std::vector<std::string> ref_columns);

  const std::vector<KeyConstraint>& keys() const { return keys_; }
  const std::vector<CheckConstraint>& checks() const { return checks_; }
  const std::vector<ForeignKeyConstraint>& foreign_keys() const {
    return foreign_keys_;
  }

  /// The primary key, if declared.
  const KeyConstraint* primary_key() const;

  /// True when the table has at least one declared candidate key —
  /// a precondition of every theorem in the paper.
  bool HasAnyKey() const { return !keys_.empty(); }

  /// Ordinal of `column_name` (case-insensitive), or error.
  Result<size_t> ColumnOrdinal(const std::string& column_name) const;

  /// "CREATE TABLE"-like rendering for diagnostics.
  std::string ToString() const;

 private:
  Status AddKey(KeyKind kind, std::vector<std::string> column_names);

  std::string name_;
  Schema schema_;
  std::vector<KeyConstraint> keys_;
  std::vector<CheckConstraint> checks_;
  std::vector<ForeignKeyConstraint> foreign_keys_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_CATALOG_TABLE_DEF_H_
