#!/usr/bin/env bash
# Repo verification: the tier-1 test suite, plus an ASan/UBSan build of
# the observability tests (the registry, tracer and flight recorder are
# the concurrent code in the tree — sanitize them every time).
#
# Optional modes:
#   --tsan        additionally build & run the concurrent obs tests and
#                 the plan-cache / advisor / time-series hammers
#                 (cache_test + concurrent_prepare_test + advisor_test +
#                 sentinel_test, whose hammer drives the plane's Tick()
#                 against an 8-thread PrepareBatch) under ThreadSanitizer,
#                 plus the parallel-execution hammers: cost_model_test
#                 (the formerly racy NDV cache under concurrent
#                 DistinctCount) and parallel_exec_test (concurrent
#                 PrepareBatch + morsel-parallel Execute, shared join
#                 builds, the differential serial-vs-parallel sweep),
#                 plus the DML plane hammers: dml_test and
#                 dml_oracle_test (8 threads of single-writer commits
#                 racing snapshot readers over the COW table versions)
#   --bench-gate  run the gated benchmarks with --metrics-json, compare
#                 against bench/baselines/*.json via
#                 scripts/bench_compare.py, and write BENCH_pr10.json
#                 (including the plan-cache warm/cold p50 speedup, which
#                 must be >= 10x, the ticker-on vs ticker-off
#                 cold-prepare p50 ratio, which must stay <= 1.5x — live
#                 monitoring must not tax the prepare path — the
#                 equiv-prover-on vs prover-off cold-prepare p50 ratio,
#                 which must stay <= 1.3x: certifying every rewrite must
#                 remain a small tax — the parallel-exec scaling
#                 gates: batch dop-1 p50 >= 1.5x over tuple-at-a-time
#                 serial and morsel-parallel dop-8 p50 >= 3x, via
#                 bench_compare.py --exec-scaling — and the index-exec
#                 gates: unique-index point lookup p50 >= 10x over the
#                 full scan and the build-free unique-index join no
#                 slower than the classic hash join, via
#                 bench_compare.py --index-exec)
#   --equiv-sweep run only the symbolic-equivalence sweep: the random
#                 workload at the pinned seeds must yield zero
#                 EQUIV_REFUTED certificates and an UNPROVEN share under
#                 the pinned ceiling, plus the paper Examples 1-11 all
#                 EQUIV_PROVEN
#   --tidy        run only the clang-tidy gate (the default path runs it
#                 too; it skips with a warning when clang-tidy is not
#                 installed)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_TSAN=0
RUN_BENCH_GATE=0
TIDY_ONLY=0
EQUIV_SWEEP_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --bench-gate) RUN_BENCH_GATE=1 ;;
    --equiv-sweep) EQUIV_SWEEP_ONLY=1 ;;
    --tidy) TIDY_ONLY=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

# clang-tidy over every first-party translation unit, driven by the
# compilation database the build exports (CMAKE_EXPORT_COMPILE_COMMANDS).
# Containers without a clang-tidy binary skip the gate with a warning
# rather than failing — the -Werror verify module and the runtime plan
# verifier still run everywhere.
run_tidy() {
  echo "== clang-tidy: .clang-tidy checks via build/compile_commands.json =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "warning: clang-tidy not found on PATH; skipping the tidy gate" >&2
    return 0
  fi
  cmake -B build -S . >/dev/null  # (re)generate compile_commands.json
  git ls-files 'src/*.cc' 'src/**/*.cc' | \
    xargs clang-tidy -p build --quiet
}

if [[ "$TIDY_ONLY" == 1 ]]; then
  run_tidy
  echo "== tidy gate done =="
  exit 0
fi

# The equivalence-prover sweep: refuting a production rewrite is a
# prover (or rewriter) soundness bug, so the sweep test hard-fails on
# any EQUIV_REFUTED certificate and pins the honest-UNPROVEN share.
run_equiv_sweep() {
  echo "== equiv sweep: zero refuted over the random workload, Examples 1-11 proven =="
  ./build/tests/equiv_test \
    --gtest_filter='*RandomSweep*:*PaperExample*' --gtest_brief=1
}

if [[ "$EQUIV_SWEEP_ONLY" == 1 ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target equiv_test
  run_equiv_sweep
  echo "== equiv sweep done =="
  exit 0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== plan verifier: differential sweep over the random workload =="
./build/tests/verify_test --gtest_filter='*VerifySweepTest*' \
  --gtest_brief=1

echo "== advisor smoke: sweep finds dropped key, full schema is quiet =="
./build/tests/advisor_test --gtest_filter='*SmokeSweep*' \
  --gtest_brief=1

echo "== sentinel smoke: injected slowdown alerts, quiet run stays silent =="
# Scripted shell sessions against the real plane + sentinel: six quiet
# windows of synthetic latency arm the series; a quiet run must raise 0
# alerts, and a 5x injected slowdown must raise at least one.
quiet_script=$'\\sentinel on\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\alerts\n\\q\n'
slow_script=$'\\sentinel on\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 1000 50\n\\tick\n\\inject smoke.op.ns 5000 50\n\\tick\n\\alerts\n\\q\n'
quiet_alerts=$(printf '%s' "$quiet_script" | ./build/examples/uniqopt_shell 2>/dev/null | grep -c "ALERT #" || true)
slow_alerts=$(printf '%s' "$slow_script" | ./build/examples/uniqopt_shell 2>/dev/null | grep -c "ALERT #" || true)
if [[ "$quiet_alerts" != 0 ]]; then
  echo "sentinel smoke FAILED: quiet run raised $quiet_alerts alert(s)" >&2
  exit 1
fi
if [[ "$slow_alerts" == 0 ]]; then
  echo "sentinel smoke FAILED: 5x slowdown raised no alert" >&2
  exit 1
fi
echo "sentinel smoke ok: quiet=0 alerts, 5x slowdown=${slow_alerts} alert(s)"

echo "== parallel exec smoke: paper Examples 1-11 at dop 8, merged stats non-zero =="
./build/tests/parallel_exec_test \
  --gtest_filter='*PaperExamplesDop8MergedStatsNonZero*' --gtest_brief=1

echo "== dml smoke: unique-violation rollback leaves the table byte-identical =="
# Two scripted shell sessions against the same seed database: one just
# dumps SUPPLIER, the other first runs an INSERT that collides with a
# committed primary key. The violating statement must report a
# ConstraintViolation and change nothing — after dropping that one error
# line the two transcripts must match byte for byte.
clean_dump=$(printf 'SELECT * FROM SUPPLIER;\n\\q\n' \
  | ./build/examples/uniqopt_shell 2>/dev/null)
violated_run=$(printf "INSERT INTO SUPPLIER VALUES (90, 'Dup', 'Chicago', 10.0, 'Active');\nSELECT * FROM SUPPLIER;\n\\q\n" \
  | ./build/examples/uniqopt_shell 2>/dev/null)
if ! grep -q 'error: ConstraintViolation: duplicate key' <<< "$violated_run"; then
  echo "dml smoke FAILED: duplicate insert did not raise ConstraintViolation" >&2
  exit 1
fi
violated_dump=$(grep -v 'error: ConstraintViolation' <<< "$violated_run")
if [[ "$clean_dump" != "$violated_dump" ]]; then
  echo "dml smoke FAILED: table changed after a rolled-back INSERT" >&2
  diff <(echo "$clean_dump") <(echo "$violated_dump") >&2 || true
  exit 1
fi
echo "dml smoke ok: duplicate-key INSERT rolled back, transcript byte-identical"
./build/tests/dml_test --gtest_filter='*RollsBack*' --gtest_brief=1

run_equiv_sweep

run_tidy

echo "== sanitizers: ASan/UBSan build of obs + analysis tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-asan -j --target obs_test analysis_test \
  export_test recorder_test http_endpoint_test advisor_test \
  timeseries_test sentinel_test equiv_test cost_model_test \
  parallel_exec_test dml_test index_exec_test dml_oracle_test
./build-asan/tests/obs_test
./build-asan/tests/analysis_test
./build-asan/tests/export_test
./build-asan/tests/recorder_test
./build-asan/tests/http_endpoint_test
./build-asan/tests/advisor_test
./build-asan/tests/timeseries_test
./build-asan/tests/sentinel_test
./build-asan/tests/equiv_test
./build-asan/tests/cost_model_test
./build-asan/tests/parallel_exec_test
./build-asan/tests/dml_test
./build-asan/tests/index_exec_test
./build-asan/tests/dml_oracle_test

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: ThreadSanitizer build of concurrent obs tests =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    >/dev/null
  cmake --build build-tsan -j --target obs_test recorder_test \
    cache_test concurrent_prepare_test advisor_test \
    timeseries_test sentinel_test equiv_test cost_model_test \
    parallel_exec_test dml_test dml_oracle_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/recorder_test
  ./build-tsan/tests/cache_test
  ./build-tsan/tests/concurrent_prepare_test
  ./build-tsan/tests/advisor_test
  ./build-tsan/tests/timeseries_test
  ./build-tsan/tests/sentinel_test
  ./build-tsan/tests/equiv_test
  ./build-tsan/tests/cost_model_test
  ./build-tsan/tests/parallel_exec_test
  ./build-tsan/tests/dml_test
  ./build-tsan/tests/dml_oracle_test
fi

if [[ "$RUN_BENCH_GATE" == 1 ]]; then
  echo "== bench gate: run benchmarks vs bench/baselines =="
  cmake --build build -j --target \
    bench_distinct_removal bench_ims_gateway bench_analyzer \
    bench_plan_cache bench_parallel_exec bench_index_exec
  mkdir -p build/bench-gate
  gate_ok=1
  summaries=()
  for bench in bench_distinct_removal bench_ims_gateway bench_analyzer \
               bench_plan_cache bench_parallel_exec bench_index_exec; do
    current="build/bench-gate/${bench}.json"
    summary="build/bench-gate/${bench}.summary.json"
    "./build/bench/${bench}" --benchmark_min_time=0.05 \
      --metrics-json="$current" >/dev/null
    if ! python3 scripts/bench_compare.py \
        --baseline "bench/baselines/${bench}.json" \
        --current "$current" \
        --summary "$summary"; then
      gate_ok=0
    fi
    summaries+=("$summary")
  done
  # Scaling invariants of the parallel execution layer: ratios within
  # one run, so they gate on any machine speed.
  if ! python3 scripts/bench_compare.py --exec-scaling \
      --current build/bench-gate/bench_parallel_exec.json \
      --summary build/bench-gate/exec_scaling.summary.json; then
    gate_ok=0
  fi
  # Index-exec invariants: the unique-index point probe must beat the
  # full scan by >= 10x, and dropping the join build phase must never be
  # slower than building. Ratios within one run, machine-independent.
  if ! python3 scripts/bench_compare.py --index-exec \
      --current build/bench-gate/bench_index_exec.json \
      --summary build/bench-gate/index_exec.summary.json; then
    gate_ok=0
  fi
  python3 - "${summaries[@]}" <<'EOF' > BENCH_pr10.json
import json, sys
benches = {}
ok = True
for path in sys.argv[1:]:
    with open(path) as f:
        s = json.load(f)
    name = path.rsplit("/", 1)[-1].removesuffix(".summary.json")
    benches[name] = s
    ok = ok and s["ok"]

# Plan-cache headline number: a warm hit must be >= 10x faster than a
# cold prepare (p50 over p50, from the bench's own histograms).
plan_cache = None
ticker = None
equiv = None
try:
    with open("build/bench-gate/bench_plan_cache.json") as f:
        metrics = {m["name"]: m for m in json.load(f)["metrics"]}
    cold = metrics["bench.plan_cache.cold.ns"]["p50"]
    warm = metrics["bench.plan_cache.warm.ns"]["p50"]
    speedup = cold / warm if warm else 0.0
    plan_cache = {
        "cold_p50_ns": cold,
        "warm_p50_ns": warm,
        "speedup": round(speedup, 2),
        "ok": speedup >= 10.0,
    }
    ok = ok and plan_cache["ok"]
    # Live monitoring must be near-free: cold prepare with the plane's
    # background ticker + sample feed on vs the ticker-off cold path.
    cold_ticker = metrics["bench.plan_cache.cold_ticker.ns"]["p50"]
    overhead = cold_ticker / cold if cold else 0.0
    ticker = {
        "cold_p50_ns": cold,
        "cold_ticker_p50_ns": cold_ticker,
        "overhead": round(overhead, 3),
        "ok": overhead <= 1.5,
    }
    ok = ok and ticker["ok"]
    # Certifying every rewrite with the symbolic equivalence prover must
    # stay a small tax on the cold prepare path.
    cold_equiv = metrics["bench.plan_cache.cold_equiv.ns"]["p50"]
    equiv_overhead = cold_equiv / cold if cold else 0.0
    equiv = {
        "cold_p50_ns": cold,
        "cold_equiv_p50_ns": cold_equiv,
        "overhead": round(equiv_overhead, 3),
        "ok": equiv_overhead <= 1.3,
    }
    ok = ok and equiv["ok"]
except (OSError, KeyError) as e:
    plan_cache = plan_cache or {"ok": False, "error": str(e)}
    ticker = ticker or {"ok": False, "error": str(e)}
    equiv = equiv or {"ok": False, "error": str(e)}
    ok = False

# Parallel execution scaling: batch dop-1 >= 1.5x and morsel-parallel
# dop-8 >= 3x over the tuple-at-a-time serial p50, as judged by
# bench_compare.py --exec-scaling on the same metrics dump.
try:
    with open("build/bench-gate/exec_scaling.summary.json") as f:
        s = json.load(f)
    exec_scaling = {
        "speedups_vs_serial": s["exec_scaling"]["speedups_vs_serial"],
        "batch_speedup_floor": s["exec_scaling"]["batch_speedup_floor"],
        "parallel_speedup_floor":
            s["exec_scaling"]["parallel_speedup_floor"],
        "regressions": s["regressions"],
        "ok": s["ok"],
    }
    ok = ok and exec_scaling["ok"]
except (OSError, KeyError) as e:
    exec_scaling = {"ok": False, "error": str(e)}
    ok = False

# Index-backed execution: point probe >= 10x over the full scan and the
# build-free unique-index join no slower than the classic hash join, as
# judged by bench_compare.py --index-exec on the same metrics dump.
try:
    with open("build/bench-gate/index_exec.summary.json") as f:
        s = json.load(f)
    index_exec = {
        "speedups_vs_scan": s["index_exec"]["speedups_vs_scan"],
        "index_lookup_speedup_floor":
            s["index_exec"]["index_lookup_speedup_floor"],
        "index_join_speedup_floor":
            s["index_exec"]["index_join_speedup_floor"],
        "regressions": s["regressions"],
        "ok": s["ok"],
    }
    ok = ok and index_exec["ok"]
except (OSError, KeyError) as e:
    index_exec = {"ok": False, "error": str(e)}
    ok = False

json.dump({"gate": "bench_compare", "ok": ok, "benches": benches,
           "plan_cache": plan_cache, "timeseries_ticker": ticker,
           "equiv_prover": equiv, "exec_scaling": exec_scaling,
           "index_exec": index_exec},
          sys.stdout, indent=2)
sys.stdout.write("\n")
EOF
  echo "bench gate summary written to BENCH_pr10.json"
  if ! python3 -c "import json,sys; sys.exit(0 if json.load(open('BENCH_pr10.json'))['ok'] else 1)"; then
    gate_ok=0
  fi
  if [[ "$gate_ok" != 1 ]]; then
    echo "== bench gate FAILED =="
    exit 1
  fi
fi

echo "== all checks passed =="
