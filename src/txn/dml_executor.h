#ifndef UNIQOPT_TXN_DML_EXECUTOR_H_
#define UNIQOPT_TXN_DML_EXECUTOR_H_

#include <string>
#include <utility>
#include <vector>

#include "txn/dml.h"
#include "types/value.h"

namespace uniqopt {
namespace txn {

/// Outcome of one committed (or no-op) DML statement.
struct DmlResult {
  DmlKind kind = DmlKind::kInsert;
  size_t rows_affected = 0;
  /// Catalog version after the statement: bumped iff the statement
  /// committed a new table version (so the plan cache provably
  /// invalidates), unchanged for a no-op (0-row UPDATE/DELETE).
  uint64_t catalog_version = 0;

  /// "INSERT 3" / "UPDATE 0" / "CREATE UNIQUE INDEX (12 rows validated)".
  std::string ToString() const;
};

/// Executes DML statements over copy-on-write table versions.
///
/// Transaction contract (single-statement transactions):
///  - one writer per table: the statement holds the table's writer
///    mutex for its whole read-validate-publish cycle;
///  - snapshot isolation for readers: the next version is built off the
///    committed snapshot and published atomically, so concurrent
///    readers only ever observe fully committed states;
///  - atomic rollback: every constraint (arity/type, NOT NULL, CHECK,
///    FOREIGN KEY — including RESTRICT checks against referencing
///    children on UPDATE/DELETE — and key uniqueness under `=!`) is
///    validated against the pending version before publication; any
///    violation aborts the statement with a structured error and the
///    committed version, its rows, and its indexes are untouched —
///    byte-identical, since they were never written;
///  - every commit bumps Catalog::version(), which plan-cache
///    fingerprints mix in, so stale cached plans become unreachable.
class DmlExecutor {
 public:
  explicit DmlExecutor(Database* db) : db_(db) {}

  /// Executes a bound statement. `params[i]` supplies host variable
  /// `stmt.host_vars[i]`.
  Result<DmlResult> Execute(const BoundDml& stmt,
                            const std::vector<Value>& params = {});

  /// Parses, binds, maps named parameters (case-insensitive host
  /// variable names) and executes in one step.
  Result<DmlResult> ExecuteSql(
      std::string_view sql,
      const std::vector<std::pair<std::string, Value>>& named_params = {});

 private:
  Result<DmlResult> ExecuteInsert(const BoundInsert& stmt,
                                  const std::vector<Value>& params);
  Result<DmlResult> ExecuteUpdate(const BoundUpdate& stmt,
                                  const std::vector<Value>& params);
  Result<DmlResult> ExecuteDelete(const BoundDelete& stmt,
                                  const std::vector<Value>& params);

  Database* db_;
};

}  // namespace txn
}  // namespace uniqopt

#endif  // UNIQOPT_TXN_DML_EXECUTOR_H_
