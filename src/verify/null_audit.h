#ifndef UNIQOPT_VERIFY_NULL_AUDIT_H_
#define UNIQOPT_VERIFY_NULL_AUDIT_H_

#include "verify/verify.h"

namespace uniqopt {
namespace verify {

/// Theorem 3 null-semantics audit. The set-operation rewrites
/// (INTERSECT [ALL] → EXISTS, EXCEPT [ALL] → NOT EXISTS) and their
/// converse compare tuples under the paper's null-safe `=!` operator —
/// NULL matches NULL — while WHERE-clause equality is 3VL `=` where
/// NULL matches nothing. The audit walks every rewriter-generated
/// correlation predicate and flags
///  - a plain `=` over a column pair where either side is nullable
///    (rows with NULLs would silently vanish from the set operation's
///    result);
///  - a column pair with no correlation conjunct at all;
///  - conjuncts that are neither the plain-equality nor the null-safe
///    `(L IS NULL AND R IS NULL) OR L = R` shape.
/// Only evidence-carrying rewrites are audited: user-written EXISTS
/// subqueries legitimately use 3VL `=` and are out of scope.
/// Appends findings to `report`.
void AuditNullSemantics(const VerifyInput& input, VerifyReport* report);

/// Audits one EXISTS correlation against the Theorem 3 tuple-equality
/// contract. Exposed for tests.
void AuditCorrelation(const ExistsNode& exists, const std::string& origin,
                      VerifyReport* report);

}  // namespace verify
}  // namespace uniqopt

#endif  // UNIQOPT_VERIFY_NULL_AUDIT_H_
