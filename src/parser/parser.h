#ifndef UNIQOPT_PARSER_PARSER_H_
#define UNIQOPT_PARSER_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "parser/ast.h"

namespace uniqopt {

/// Parses one SQL statement (query or CREATE TABLE); trailing `;` is
/// accepted, trailing garbage is an error.
Result<StatementPtr> ParseStatement(std::string_view sql);

/// Parses a query expression (SELECT ... [INTERSECT/EXCEPT ...]).
Result<QueryPtr> ParseQuery(std::string_view sql);

/// Parses a scalar/boolean expression in isolation (used for CHECK
/// constraint construction in tests and fixtures).
Result<AstExprPtr> ParseExpression(std::string_view sql);

}  // namespace uniqopt

#endif  // UNIQOPT_PARSER_PARSER_H_
