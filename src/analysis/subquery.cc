#include "analysis/subquery.h"

#include "analysis/algorithm1.h"
#include "analysis/near_miss.h"
#include "analysis/shape.h"
#include "expr/normalize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniqopt {

std::string SubqueryVerdict::ExplainProof() const {
  std::string out = "Theorem 2 verdict: ";
  out += at_most_one_match
             ? "at most one inner row matches each outer row"
             : "more than one inner match possible (condition not proven)";
  out += "\n";
  if (proof.recorded) {
    out += proof.ToText();
  } else {
    for (const std::string& line : trace) out += line + "\n";
  }
  return out;
}

namespace {

// Display names for the combined outer ⊕ inner frame.
std::vector<std::string> CombinedColumnNames(const ExistsNode& node) {
  std::vector<std::string> names;
  const Schema& outer = node.outer()->schema();
  for (size_t i = 0; i < outer.num_columns(); ++i) {
    names.push_back(outer.column(i).QualifiedName());
  }
  const Schema& inner = node.sub()->schema();
  for (size_t i = 0; i < inner.num_columns(); ++i) {
    names.push_back(inner.column(i).QualifiedName());
  }
  return names;
}

}  // namespace

Result<SubqueryVerdict> TestSubqueryAtMostOneMatch(
    const ExistsNode& node, const AnalysisOptions& options) {
  obs::Span span("analysis.subquery_theorem2");
  obs::MetricsRegistry::Global().GetCounter("analysis.subquery.runs")
      .Increment();
  SubqueryVerdict verdict;
  if (node.negated()) {
    return Status::InvalidArgument(
        "Theorem 2 applies to positive existential subqueries");
  }
  size_t outer_width = node.outer()->schema().num_columns();
  verdict.proof.recorded = true;
  verdict.proof.column_names = CombinedColumnNames(node);
  ProofTrace* proof = &verdict.proof;

  // Decompose the inner plan into base tables and inner-local predicates.
  UNIQOPT_ASSIGN_OR_RETURN(SpecShape inner_shape,
                           ExtractProductShape(node.sub()));

  // Assemble the full C_S ∧ C_{R,S}: inner-local predicates shifted into
  // the combined (outer ⊕ inner) frame, plus the correlation predicate.
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : inner_shape.predicates) {
    Result<ExprPtr> cnf =
        ToCnf(ShiftColumns(pred, outer_width), options.normalize_budget);
    if (!cnf.ok()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("CNF budget exceeded; condition not proven");
      proof->conclusion = "NOT PROVEN: CNF budget exceeded";
      span.AddAttr("at_most_one_match", false);
      return verdict;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }
  {
    Result<ExprPtr> cnf = ToCnf(node.correlation(), options.normalize_budget);
    if (!cnf.ok()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("CNF budget exceeded; condition not proven");
      proof->conclusion = "NOT PROVEN: CNF budget exceeded";
      span.AddAttr("at_most_one_match", false);
      return verdict;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }

  // Outer columns are constants for each candidate outer row.
  AttributeSet initially_bound = AttributeSet::AllUpTo(outer_width);
  verdict.trace.push_back("outer columns bound: " +
                          initially_bound.ToString());
  AttributeSet bound = BoundColumnClosure(conjuncts, initially_bound, options,
                                          &verdict.trace, nullptr, proof);
  verdict.trace.push_back("closure V = " + bound.ToString());

  // Every inner base table must have a covered candidate key.
  for (const SpecShape::BaseTable& bt : inner_shape.tables) {
    const TableDef& table = bt.get->table();
    if (!table.HasAnyKey()) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("inner table " + table.name() +
                              " has no declared key");
      proof->conclusion = "NOT PROVEN: inner table " + table.name() +
                          " has no declared candidate key";
      if (options.collect_near_misses) {
        ComputeTableNearMiss("theorem2.subquery_to_join", table,
                             bt.get->alias(), outer_width + bt.offset, bound,
                             AttributeSet(), options, &verdict.near_misses);
      }
      span.AddAttr("at_most_one_match", false);
      return verdict;
    }
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      size_t shift = outer_width + bt.offset;
      AttributeSet key_set =
          AttributeSet::FromVector(key.columns).Shifted(shift);
      bool this_covered = key_set.IsSubsetOf(bound);
      {
        ProofKeyOutcome outcome;
        outcome.table = table.name();
        outcome.alias = bt.get->alias();
        outcome.key_name = key.name;
        outcome.covered = this_covered;
        for (size_t col : key.columns) {
          size_t pos = shift + col;
          outcome.key_columns.push_back(proof->NameOf(pos));
          if (!bound.Contains(pos)) {
            outcome.missing_columns.push_back(proof->NameOf(pos));
          }
        }
        proof->keys.push_back(std::move(outcome));
      }
      if (this_covered) {
        verdict.trace.push_back("key " + key.name + " of inner table " +
                                table.name() + " covered");
        covered = true;
        break;
      }
    }
    if (!covered) {
      verdict.at_most_one_match = false;
      verdict.trace.push_back("no key of inner table " + table.name() +
                              " is bound: more than one match possible");
      proof->conclusion = "NOT PROVEN: no candidate key of inner table " +
                          table.name() + " is covered by V";
      if (options.collect_near_misses) {
        ComputeTableNearMiss("theorem2.subquery_to_join", table,
                             bt.get->alias(), outer_width + bt.offset, bound,
                             AttributeSet(), options, &verdict.near_misses);
      }
      span.AddAttr("at_most_one_match", false);
      return verdict;
    }
  }
  verdict.at_most_one_match = true;
  verdict.trace.push_back(
      "every inner key bound: at most one inner row matches");
  proof->conclusion =
      "PROVEN: every inner table's candidate key is bound; at most one "
      "inner row matches each outer row (Theorem 2)";
  obs::MetricsRegistry::Global().GetCounter("analysis.subquery.proven")
      .Increment();
  span.AddAttr("at_most_one_match", true);
  return verdict;
}

}  // namespace uniqopt
