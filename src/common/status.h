#ifndef UNIQOPT_COMMON_STATUS_H_
#define UNIQOPT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace uniqopt {

/// Error categories used across the library. Mirrors the coarse error
/// taxonomy of production database engines: a `Status` travels up through
/// parser, binder, analyzer, and executor layers without exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something structurally wrong.
  kParseError,        ///< SQL text could not be lexed/parsed.
  kBindError,         ///< Name resolution or type checking failed.
  kNotFound,          ///< Catalog object or attribute missing.
  kAlreadyExists,     ///< Catalog object name collision.
  kConstraintViolation,  ///< Insert violated a key or CHECK constraint.
  kTypeMismatch,      ///< Runtime value of unexpected type.
  kUnsupported,       ///< Valid SQL outside the implemented subset.
  kLimitExceeded,     ///< Normalization or search blew a size budget.
  kInternal,          ///< Invariant breach; indicates a library bug.
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a message otherwise. Follows the Arrow/RocksDB
/// convention: no exceptions anywhere in the library.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define UNIQOPT_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::uniqopt::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_STATUS_H_
