// Tests for the GROUP BY / aggregation extension (§7: "expanding the
// suite of SQL queries considered"), including the uniqueness tie-ins:
// group columns are a derived key, and grouping on a key collapses to a
// projection.

#include <gtest/gtest.h>

#include "analysis/uniqueness.h"
#include "exec/cost_model.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  Database db_;
};

TEST_F(GroupByTest, ParsesAndPrints) {
  auto q = ParseQuery(
      "SELECT SNO, COUNT(*), SUM(PNO) FROM PARTS GROUP BY SNO");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->specs[0]->group_by.size(), 1u);
  auto q2 = ParseQuery((*q)->ToString());
  ASSERT_TRUE(q2.ok()) << (*q)->ToString();
}

TEST_F(GroupByTest, CountPerGroup) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT SNO, COUNT(*) FROM PARTS GROUP BY SNO"));
  ASSERT_EQ(rows.size(), 100u);  // one group per supplier
  for (const Row& r : rows) {
    EXPECT_EQ(r[1].AsInteger(), 10);  // parts_per_supplier
  }
}

TEST_F(GroupByTest, ScalarAggregates) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT COUNT(*), MIN(PNO), MAX(PNO), SUM(PNO), AVG(PNO) "
                  "FROM PARTS"));
  ASSERT_EQ(rows.size(), 1u);
  const Row& r = rows[0];
  EXPECT_EQ(r[0].AsInteger(), 1000);
  EXPECT_EQ(r[1].AsInteger(), 1);
  EXPECT_EQ(r[2].AsInteger(), 10);
  EXPECT_EQ(r[3].AsInteger(), 5500);  // 100 × (1+..+10)
  EXPECT_DOUBLE_EQ(r[4].AsDouble(), 5.5);
}

TEST_F(GroupByTest, ScalarAggregateOnEmptyInput) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db, "SELECT COUNT(*), COUNT(X), SUM(X), MIN(X) FROM T"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInteger(), 0);
  EXPECT_EQ(rows[0][1].AsInteger(), 0);
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_TRUE(rows[0][3].is_null());
}

TEST_F(GroupByTest, GroupedOnEmptyInputYieldsNoRows) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (G INTEGER, X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db, "SELECT G, COUNT(*) FROM T GROUP BY G"));
  EXPECT_TRUE(rows.empty());
}

TEST_F(GroupByTest, AggregatesIgnoreNulls) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (G INTEGER, X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  ASSERT_OK(t->InsertValues({Value::Integer(1), Value::Integer(10)}));
  ASSERT_OK(t->InsertValues({Value::Integer(1), Value::Null(TypeId::kInteger)}));
  ASSERT_OK(t->InsertValues({Value::Integer(2), Value::Null(TypeId::kInteger)}));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db,
             "SELECT G, COUNT(*), COUNT(X), SUM(X), AVG(X) FROM T "
             "GROUP BY G"));
  ASSERT_EQ(rows.size(), 2u);
  std::sort(rows.begin(), rows.end());
  // Group 1: two rows, one non-NULL X.
  EXPECT_EQ(rows[0][1].AsInteger(), 2);
  EXPECT_EQ(rows[0][2].AsInteger(), 1);
  EXPECT_EQ(rows[0][3].AsInteger(), 10);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 10.0);
  // Group 2: all-NULL X ⇒ SUM/AVG NULL, COUNT(X) 0.
  EXPECT_EQ(rows[1][2].AsInteger(), 0);
  EXPECT_TRUE(rows[1][3].is_null());
  EXPECT_TRUE(rows[1][4].is_null());
}

TEST_F(GroupByTest, NullGroupKeysCollapse) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (G INTEGER, X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  ASSERT_OK(t->InsertValues({Value::Null(TypeId::kInteger), Value::Integer(1)}));
  ASSERT_OK(t->InsertValues({Value::Null(TypeId::kInteger), Value::Integer(2)}));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       RunSql(db, "SELECT G, COUNT(*) FROM T GROUP BY G"));
  // GROUP BY treats NULLs as equal (same =! as DISTINCT).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_EQ(rows[0][1].AsInteger(), 2);
}

TEST_F(GroupByTest, SelectListValidation) {
  Binder binder(&db_.catalog());
  // Non-grouped column in the select list.
  EXPECT_FALSE(
      binder.BindSql("SELECT SNAME, COUNT(*) FROM SUPPLIER GROUP BY SNO")
          .ok());
  // Aggregates not allowed in WHERE.
  EXPECT_FALSE(
      binder.BindSql("SELECT SNO FROM SUPPLIER WHERE COUNT(*) = 1").ok());
  // Star in grouped query.
  EXPECT_FALSE(
      binder.BindSql("SELECT * FROM SUPPLIER GROUP BY SNO").ok());
  // SUM over a string column.
  EXPECT_FALSE(
      binder.BindSql("SELECT SUM(SNAME) FROM SUPPLIER").ok());
}

TEST_F(GroupByTest, GroupColumnsAreDerivedKey) {
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT DISTINCT SNO, COUNT(*) FROM PARTS GROUP BY SNO");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // DISTINCT over GROUP BY output is redundant: group cols are a key.
  UniquenessVerdict verdict = AnalyzeDistinctFd(bound->plan);
  EXPECT_TRUE(verdict.has_distinct);
  EXPECT_TRUE(verdict.distinct_unnecessary)
      << testing::PrintToString(verdict.trace);
}

TEST_F(GroupByTest, GroupByOnKeyCollapsesToProjection) {
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT SNO, SUM(BUDGET) FROM SUPPLIER GROUP BY SNO");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto rewritten = RewritePlan(bound->plan);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->Applied(RewriteRuleId::kEliminateGroupByOnKey))
      << rewritten->plan->ToString();
  // Results agree.
  ExecContext c1;
  ExecContext c2;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> before,
                       ExecutePlan(bound->plan, db_, &c1));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> after,
                       ExecutePlan(rewritten->plan, db_, &c2));
  EXPECT_TRUE(MultisetEquals(before, after));
  EXPECT_EQ(before.size(), 100u);
}

TEST_F(GroupByTest, GroupByOnKeyWithCountNotCollapsed) {
  // COUNT(*) over a single-row group is 1, not the column value: the
  // projection rewrite must not fire.
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT SNO, COUNT(*) FROM SUPPLIER GROUP BY SNO");
  ASSERT_TRUE(bound.ok());
  auto rewritten = RewritePlan(bound->plan);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(rewritten->Applied(RewriteRuleId::kEliminateGroupByOnKey));
}

TEST_F(GroupByTest, GroupByOnNonKeyNotCollapsed) {
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT SNAME, MIN(BUDGET) FROM SUPPLIER GROUP BY SNAME");
  ASSERT_TRUE(bound.ok());
  auto rewritten = RewritePlan(bound->plan);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(rewritten->Applied(RewriteRuleId::kEliminateGroupByOnKey));
}

TEST_F(GroupByTest, GroupByKeyViaEqualityClosure) {
  // Grouping PARTS by (SNO, PNO) — its key — after a join: the closure
  // machinery sees the key through the select predicates.
  Binder binder(&db_.catalog());
  auto bound = binder.BindSql(
      "SELECT P.SNO, P.PNO, MAX(P.OEM_PNO) FROM PARTS P "
      "WHERE P.COLOR = 'RED' GROUP BY P.SNO, P.PNO");
  ASSERT_TRUE(bound.ok());
  auto rewritten = RewritePlan(bound->plan);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->Applied(RewriteRuleId::kEliminateGroupByOnKey));
  ExecContext c1;
  ExecContext c2;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> before,
                       ExecutePlan(bound->plan, db_, &c1));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> after,
                       ExecutePlan(rewritten->plan, db_, &c2));
  EXPECT_TRUE(MultisetEquals(before, after));
}

TEST_F(GroupByTest, JoinedGroupBy) {
  // Red parts per city: join + group.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_,
             "SELECT S.SCITY, COUNT(*) FROM SUPPLIER S, PARTS P "
             "WHERE S.SNO = P.SNO AND P.COLOR = 'RED' GROUP BY S.SCITY"));
  ASSERT_LE(rows.size(), 3u);
  int64_t total = 0;
  for (const Row& r : rows) total += r[1].AsInteger();
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> red,
      RunSql(db_,
             "SELECT P.PNO FROM SUPPLIER S, PARTS P "
             "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"));
  EXPECT_EQ(static_cast<size_t>(total), red.size());
}

TEST_F(GroupByTest, MinMaxOnStrings) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT MIN(COLOR), MAX(COLOR) FROM PARTS"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "BLUE");
  EXPECT_EQ(rows[0][1].AsString(), "YELLOW");
}

TEST_F(GroupByTest, CostModelEstimatesGroups) {
  CostEstimator estimator(&db_);
  Binder binder(&db_.catalog());
  auto bound =
      binder.BindSql("SELECT SCITY, COUNT(*) FROM SUPPLIER GROUP BY SCITY");
  ASSERT_TRUE(bound.ok());
  double rows = estimator.EstimateRows(bound->plan);
  EXPECT_NEAR(rows, 3.0, 1.0);
}

}  // namespace
}  // namespace uniqopt
