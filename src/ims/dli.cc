#include "ims/dli.h"

#include "common/string_util.h"

namespace uniqopt {
namespace ims {

const char* DliStatusToString(DliStatus s) {
  switch (s) {
    case DliStatus::kOk:
      return "  ";
    case DliStatus::kNotFound:
      return "GE";
    case DliStatus::kEndOfDatabase:
      return "GB";
  }
  return "??";
}

std::string DliCallStats::ToString() const {
  std::string out = "GU=" + std::to_string(gu_calls) +
                    " GN=" + std::to_string(gn_calls) +
                    " GNP=" + std::to_string(gnp_calls) +
                    " visited=" + std::to_string(segments_visited);
  for (const auto& [seg, calls] : calls_by_segment) {
    out += " " + seg + "=" + std::to_string(calls);
  }
  return out;
}

bool DliSession::Matches(const Segment& seg, const Ssa& ssa) const {
  if (!ssa.qual.has_value()) return true;
  auto field = seg.type->FieldIndex(ssa.qual->field);
  if (!field.ok()) return false;
  const Value& actual = seg.fields[*field];
  if (actual.is_null() || ssa.qual->value.is_null()) return false;
  int c = actual.Compare(ssa.qual->value);
  switch (ssa.qual->op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

DliStatus DliSession::GU(const Ssa& root_ssa) {
  ++stats_.gu_calls;
  gu_counter_->Increment();
  ++stats_.calls_by_segment[ToUpperAscii(root_ssa.segment)];
  current_ = nullptr;
  parent_ = nullptr;
  gnp_cursor_ = nullptr;
  gnp_active_ = false;

  // Equality on the root key: HIDAM index lookup (one visit).
  const SegmentTypeDef& root_type = db_->def().root();
  if (root_ssa.qual.has_value() && root_ssa.qual->op == CompareOp::kEq &&
      EqualsIgnoreCase(root_ssa.qual->field,
                       root_type.fields[root_type.key_field].name)) {
    Segment* root = db_->FindRoot(root_ssa.qual->value);
    Visit();
    if (root == nullptr) return DliStatus::kNotFound;
    current_ = root;
    parent_ = root;
    return DliStatus::kOk;
  }

  for (Segment* root = db_->FirstRoot(); root != nullptr;
       root = db_->NextRoot(root)) {
    Visit();
    if (Matches(*root, root_ssa)) {
      current_ = root;
      parent_ = root;
      return DliStatus::kOk;
    }
  }
  return DliStatus::kNotFound;
}

DliStatus DliSession::GN(const Ssa& root_ssa) {
  ++stats_.gn_calls;
  gn_counter_->Increment();
  ++stats_.calls_by_segment[ToUpperAscii(root_ssa.segment)];
  if (parent_ == nullptr) return DliStatus::kEndOfDatabase;
  for (Segment* root = db_->NextRoot(parent_); root != nullptr;
       root = db_->NextRoot(root)) {
    Visit();
    if (Matches(*root, root_ssa)) {
      current_ = root;
      parent_ = root;
      gnp_cursor_ = nullptr;
      gnp_active_ = false;
      return DliStatus::kOk;
    }
  }
  current_ = nullptr;
  parent_ = nullptr;
  gnp_cursor_ = nullptr;
  gnp_active_ = false;
  return DliStatus::kEndOfDatabase;
}

DliStatus DliSession::GNP(const Ssa& child_ssa) {
  ++stats_.gnp_calls;
  gnp_counter_->Increment();
  ++stats_.calls_by_segment[ToUpperAscii(child_ssa.segment)];
  if (parent_ == nullptr) return DliStatus::kNotFound;

  auto type = db_->def().GetType(child_ssa.segment);
  if (!type.ok()) return DliStatus::kNotFound;
  auto ordinal = db_->def().TypeOrdinal(child_ssa.segment);
  if (!ordinal.ok()) return DliStatus::kNotFound;

  // Resume from the cursor when continuing the same child type;
  // otherwise start at the first child. An exhausted cursor (active but
  // null) keeps answering 'GE' until position is re-established.
  const Segment* cursor;
  if (gnp_active_ && EqualsIgnoreCase(gnp_type_, child_ssa.segment)) {
    cursor = gnp_cursor_;
  } else {
    cursor = parent_->first_child[*ordinal];
  }

  // Key-sequenced early halt: equality on the sequence field lets the
  // scan stop as soon as a greater key appears.
  const SegmentTypeDef& ctype = **type;
  bool key_equality =
      child_ssa.qual.has_value() && child_ssa.qual->op == CompareOp::kEq &&
      EqualsIgnoreCase(child_ssa.qual->field,
                       ctype.fields[ctype.key_field].name);

  while (cursor != nullptr) {
    Visit();
    if (key_equality) {
      int c = cursor->KeyValue().Compare(child_ssa.qual->value);
      if (c > 0) break;  // keys only grow from here: not found
      if (c == 0) {
        current_ = cursor;
        gnp_cursor_ = cursor->next_twin;
        gnp_active_ = true;
        gnp_type_ = child_ssa.segment;
        return DliStatus::kOk;
      }
    } else if (Matches(*cursor, child_ssa)) {
      current_ = cursor;
      gnp_cursor_ = cursor->next_twin;
      gnp_active_ = true;
      gnp_type_ = child_ssa.segment;
      return DliStatus::kOk;
    }
    cursor = cursor->next_twin;
  }
  gnp_cursor_ = nullptr;
  gnp_active_ = true;
  gnp_type_ = child_ssa.segment;
  return DliStatus::kNotFound;
}

}  // namespace ims
}  // namespace uniqopt
