#ifndef UNIQOPT_OBS_EXPORT_H_
#define UNIQOPT_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniqopt {
namespace obs {

/// One exported metric in the stable export schema. Everything that
/// leaves the process — Prometheus text, `--metrics-json` dumps, the
/// HTTP endpoint — renders from this struct, so baselines and exporters
/// cannot drift apart.
struct MetricSample {
  enum class Type { kCounter, kGauge, kHistogram };

  std::string name;  ///< internal dotted name (ims.dli.gnp_calls)
  Type type = Type::kCounter;

  // Counter / gauge.
  uint64_t value = 0;

  // Histogram.
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  /// Occupied buckets as (inclusive upper bound, cumulative count),
  /// ascending. The +Inf bucket is implicit (== count).
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// Point-in-time snapshot of every metric in `registry`, sorted by name
/// (counters, gauges and histograms interleaved).
std::vector<MetricSample> SnapshotMetrics(const MetricsRegistry& registry);

/// The Prometheus-legal exposition name for an internal dotted name:
/// dots map to underscores, anything else illegal to '_'.
std::string PrometheusName(const std::string& name);

/// Escapes a label value for the text exposition format: backslash to
/// `\\`, double quote to `\"`, line feed to `\n` (the three characters
/// the Prometheus spec requires escaping inside label values).
std::string PrometheusLabelEscape(const std::string& value);

/// Escapes `# HELP` docstring text: backslash to `\\` and line feed to
/// `\n` (quotes are legal in HELP text and stay raw).
std::string PrometheusHelpEscape(const std::string& text);

/// Prometheus text exposition format (version 0.0.4): `# HELP` /
/// `# TYPE` headers, `<name>_total` counters, bare-sample gauges,
/// histograms with cumulative `_bucket{le=...}` series plus `_sum` /
/// `_count`.
std::string ToPrometheusText(const std::vector<MetricSample>& samples);

/// Structural lint of a Prometheus text page: legal metric names, every
/// sample preceded by its `# TYPE` *and* `# HELP`, numeric values,
/// histogram buckets cumulative and terminated by `le="+Inf"` matching
/// `_count`. Label parsing is escape-aware: `\"` and `\\` inside a
/// quoted label value do not terminate it, and a `}` inside a value
/// does not close the label set.
Status LintPrometheusText(const std::string& text);

/// The stable JSON schema, one object per metric:
///   {"metrics": [
///     {"name": "...", "type": "counter", "value": 3},
///     {"name": "...", "type": "gauge", "value": 7},
///     {"name": "...", "type": "histogram", "count": ..., "sum": ...,
///      "min": ..., "max": ..., "mean": ..., "p50": ..., "p90": ...,
///      "p99": ..., "buckets": [{"le": 1023, "count": 4}, ...]}]}
std::string ToMetricsJson(const std::vector<MetricSample>& samples);

/// Chrome trace-event JSON (the format Perfetto / chrome://tracing
/// load): complete-event ("ph":"X") entries with microsecond ts/dur,
/// span attributes as args. Spans from different threads land on
/// different tid lanes.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

/// Minimal RFC 8259 syntax check (objects, arrays, strings, numbers,
/// literals). Used by tests to assert exported JSON actually parses and
/// by the bench gate before trusting a dump.
Status ValidateJson(const std::string& text);

/// JSON string-body escaping ('"', '\\', control characters).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_EXPORT_H_
