#include "analysis/properties.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "expr/equality.h"
#include "expr/normalize.h"

namespace uniqopt {

std::string DerivedProperties::ToString() const {
  std::string out = "width=" + std::to_string(width);
  out += " fds=" + fds.ToString();
  out += " keys=[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i].ToString();
  }
  out += "]";
  return out;
}

void HarvestPredicateFds(const ExprPtr& predicate,
                         const AnalysisOptions& options, FdSet* fds) {
  for (const ExprPtr& atom : FlattenAnd(predicate)) {
    EqualityAtom a = ClassifyAtom(atom);
    switch (a.type) {
      case AtomType::kType1ColumnConstant:
        // WHERE is false-interpreted: the row passed only if the
        // comparison was TRUE, so the column is non-NULL and pinned.
        if (options.bind_constants) fds->AddConstant(a.column);
        break;
      case AtomType::kType2ColumnColumn:
        if (options.use_column_equivalence) {
          fds->AddEquivalence(a.column, a.other_column);
        }
        break;
      case AtomType::kOther:
        break;
    }
  }
}

namespace {

void DedupeKeys(std::vector<AttributeSet>* keys) {
  // Drop keys that are supersets of other keys, and exact duplicates.
  std::vector<AttributeSet> out;
  for (const AttributeSet& k : *keys) {
    bool dominated = false;
    for (const AttributeSet& other : *keys) {
      if (&other == &k) continue;
      if (other.IsSubsetOf(k) && other != k) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (std::find(out.begin(), out.end(), k) == out.end()) {
      out.push_back(k);
    }
  }
  *keys = std::move(out);
}

DerivedProperties DeriveGet(const GetNode& get,
                            const AnalysisOptions& options) {
  DerivedProperties props;
  const TableDef& table = get.table();
  props.width = table.schema().num_columns();
  AttributeSet universe = AttributeSet::AllUpTo(props.width);
  for (const KeyConstraint& key : table.keys()) {
    if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
    AttributeSet key_set = AttributeSet::FromVector(key.columns);
    FunctionalDependency fd;
    fd.lhs = key_set;
    fd.rhs = universe.Difference(key_set);
    props.fds.Add(std::move(fd));
    props.keys.push_back(std::move(key_set));
  }
  if (options.use_check_constraints) {
    // A CHECK that pins a NOT NULL column to a single value makes the
    // column constant under `=!`. (True-interpretation: a nullable
    // column may still be NULL, which differs from the pinned value.)
    for (const CheckConstraint& check : table.checks()) {
      for (const ExprPtr& atom : FlattenAnd(check.predicate)) {
        EqualityAtom a = ClassifyAtom(atom);
        if (a.type == AtomType::kType1ColumnConstant &&
            !table.schema().column(a.column).nullable) {
          props.fds.AddConstant(a.column);
        }
      }
    }
  }
  return props;
}

DerivedProperties DeriveSelect(const SelectNode& select,
                               const DerivedProperties& input,
                               const AnalysisOptions& options) {
  DerivedProperties props = input;
  HarvestPredicateFds(select.predicate(), options, &props.fds);
  DedupeKeys(&props.keys);
  return props;
}

DerivedProperties DeriveProduct(const DerivedProperties& left,
                                const DerivedProperties& right) {
  DerivedProperties props;
  props.width = left.width + right.width;
  props.fds = left.fds;
  props.fds.Append(right.fds.Shifted(left.width));
  // Key(R × S) = Key(R) ⊕ Key(S), the paper's concatenation.
  for (const AttributeSet& kl : left.keys) {
    for (const AttributeSet& kr : right.keys) {
      props.keys.push_back(kl.Union(kr.Shifted(left.width)));
    }
  }
  return props;
}

DerivedProperties DeriveProject(const ProjectNode& project,
                                const DerivedProperties& input) {
  DerivedProperties props;
  const std::vector<size_t>& cols = project.columns();
  props.width = cols.size();
  props.fds = input.fds.ProjectTo(cols);

  AttributeSet kept = AttributeSet::FromVector(cols);
  std::map<size_t, size_t> renumber;
  for (size_t i = 0; i < cols.size(); ++i) renumber[cols[i]] = i;
  auto renumber_set = [&](const AttributeSet& s) {
    AttributeSet out;
    for (size_t a : s.ToVector()) {
      auto it = renumber.find(a);
      if (it != renumber.end()) out.Add(it->second);
    }
    return out;
  };

  // A key of the input that is functionally determined by the kept
  // columns makes the projection duplicate-free; the determining subset
  // of kept columns is then a derived key of the output.
  for (const AttributeSet& key : input.keys) {
    AttributeSet kept_closure = input.fds.Closure(kept);
    if (key.IsSubsetOf(kept_closure)) {
      // Whole projected row is a key; try to shrink to kept∩closure
      // seeds for a smaller one.
      AttributeSet seed = key.Intersect(kept);
      if (key.IsSubsetOf(input.fds.Closure(seed))) {
        props.keys.push_back(renumber_set(seed));
      } else {
        props.keys.push_back(AttributeSet::AllUpTo(props.width));
      }
    }
  }
  if (project.mode() == DuplicateMode::kDist) {
    // π_Dist output has no duplicate rows by construction.
    props.keys.push_back(AttributeSet::AllUpTo(props.width));
  }
  DedupeKeys(&props.keys);
  return props;
}

DerivedProperties DeriveExists(const ExistsNode& exists,
                               const DerivedProperties& outer,
                               const AnalysisOptions& options) {
  // Semi/anti join: output rows are a sub-multiset of outer rows, so all
  // outer FDs and keys still hold. For a positive EXISTS, correlation
  // conjuncts that reference only outer columns additionally filter the
  // output like a Select.
  DerivedProperties props = outer;
  if (!exists.negated()) {
    for (const ExprPtr& atom : FlattenAnd(exists.correlation())) {
      std::vector<size_t> cols;
      atom->CollectColumns(&cols);
      bool outer_only = true;
      for (size_t c : cols) outer_only = outer_only && c < outer.width;
      if (!outer_only) continue;
      FdSet harvested;
      HarvestPredicateFds(atom, options, &harvested);
      props.fds.Append(harvested);
    }
  }
  return props;
}

DerivedProperties DeriveSetOp(const SetOpNode& setop,
                              const DerivedProperties& left) {
  // INTERSECT [ALL]: counts are min(j,k) ≤ j; EXCEPT [ALL]: max(j−k,0)
  // ≤ j. Either way the result is a sub-multiset of the left input (up
  // to `=!` value identity), so left FDs and keys carry over.
  DerivedProperties props = left;
  if (setop.mode() == DuplicateMode::kDist) {
    props.keys.push_back(AttributeSet::AllUpTo(props.width));
    DedupeKeys(&props.keys);
  }
  return props;
}

}  // namespace

DerivedProperties DeriveProperties(const PlanPtr& plan,
                                   const AnalysisOptions& options) {
  switch (plan->kind()) {
    case PlanKind::kGet:
      return DeriveGet(*As<GetNode>(plan), options);
    case PlanKind::kSelect: {
      const SelectNode& node = *As<SelectNode>(plan);
      return DeriveSelect(node, DeriveProperties(node.input(), options),
                          options);
    }
    case PlanKind::kProduct: {
      const ProductNode& node = *As<ProductNode>(plan);
      return DeriveProduct(DeriveProperties(node.left(), options),
                           DeriveProperties(node.right(), options));
    }
    case PlanKind::kProject: {
      const ProjectNode& node = *As<ProjectNode>(plan);
      return DeriveProject(node, DeriveProperties(node.input(), options));
    }
    case PlanKind::kExists: {
      const ExistsNode& node = *As<ExistsNode>(plan);
      return DeriveExists(node, DeriveProperties(node.outer(), options),
                          options);
    }
    case PlanKind::kSetOp: {
      const SetOpNode& node = *As<SetOpNode>(plan);
      return DeriveSetOp(node, DeriveProperties(node.left(), options));
    }
    case PlanKind::kAggregate: {
      // Grouping makes the group-column list a key of the output by
      // construction (one row per `=!`-distinct key). FDs among the
      // group columns survive from the input; a scalar aggregate has at
      // most one row (the empty set is a key).
      const AggregateNode& node = *As<AggregateNode>(plan);
      DerivedProperties input = DeriveProperties(node.input(), options);
      DerivedProperties props;
      props.width =
          node.group_columns().size() + node.aggregates().size();
      props.fds = input.fds.ProjectTo(node.group_columns());
      AttributeSet group_set;
      for (size_t i = 0; i < node.group_columns().size(); ++i) {
        group_set.Add(i);
      }
      // Group columns determine the aggregate outputs.
      AttributeSet agg_cols;
      for (size_t i = node.group_columns().size(); i < props.width; ++i) {
        agg_cols.Add(i);
      }
      if (!agg_cols.Empty()) props.fds.Add(group_set, agg_cols);
      props.keys.push_back(std::move(group_set));
      return props;
    }
  }
  UNIQOPT_DCHECK_MSG(false, "unhandled plan kind");
  return {};
}

bool IsProvablyDuplicateFree(const PlanPtr& plan,
                             const AnalysisOptions& options) {
  return DeriveProperties(plan, options).IsDuplicateFree();
}

}  // namespace uniqopt
