#include "ims/gateway.h"

#include "obs/metrics.h"

namespace uniqopt {
namespace ims {

Result<std::unique_ptr<ImsDatabase>> BuildSupplierIms(
    const Database& relational) {
  ImsDatabaseDef def;
  {
    SegmentTypeDef supplier;
    supplier.name = "SUPPLIER";
    supplier.fields = {{"SNO", TypeId::kInteger},
                       {"SNAME", TypeId::kString},
                       {"SCITY", TypeId::kString},
                       {"BUDGET", TypeId::kDouble},
                       {"STATUS", TypeId::kString}};
    supplier.key_field = 0;
    UNIQOPT_RETURN_NOT_OK(def.AddSegmentType(std::move(supplier)));
  }
  {
    // SNO is a virtual column in the relational view (Figure 2): the
    // hierarchy encodes it, so the segment stores only the rest.
    SegmentTypeDef parts;
    parts.name = "PARTS";
    parts.fields = {{"PNO", TypeId::kInteger},
                    {"PNAME", TypeId::kString},
                    {"OEM_PNO", TypeId::kInteger},
                    {"COLOR", TypeId::kString}};
    parts.key_field = 0;
    parts.parent = "SUPPLIER";
    UNIQOPT_RETURN_NOT_OK(def.AddSegmentType(std::move(parts)));
  }
  {
    SegmentTypeDef agents;
    agents.name = "AGENTS";
    agents.fields = {{"ANO", TypeId::kInteger},
                     {"ANAME", TypeId::kString},
                     {"ACITY", TypeId::kString}};
    agents.key_field = 0;
    agents.parent = "SUPPLIER";
    UNIQOPT_RETURN_NOT_OK(def.AddSegmentType(std::move(agents)));
  }

  auto ims = std::make_unique<ImsDatabase>(std::move(def));
  UNIQOPT_ASSIGN_OR_RETURN(const Table* supplier,
                           relational.GetTable("SUPPLIER"));
  for (const Row& row : supplier->rows()) {
    UNIQOPT_RETURN_NOT_OK(ims->InsertRoot(row).status());
  }
  UNIQOPT_ASSIGN_OR_RETURN(const Table* parts, relational.GetTable("PARTS"));
  for (const Row& row : parts->rows()) {
    // PARTS(SNO, PNO, PNAME, OEM_PNO, COLOR): SNO locates the parent.
    Segment* parent = ims->FindRoot(row[0]);
    if (parent == nullptr) {
      return Status::ConstraintViolation("PARTS row references missing "
                                         "supplier " +
                                         row[0].ToString());
    }
    UNIQOPT_RETURN_NOT_OK(
        ims->InsertChild(parent, "PARTS",
                         Row({row[1], row[2], row[3], row[4]}))
            .status());
  }
  UNIQOPT_ASSIGN_OR_RETURN(const Table* agents, relational.GetTable("AGENTS"));
  for (const Row& row : agents->rows()) {
    // AGENTS(SNO, ANO, ANAME, ACITY).
    Segment* parent = ims->FindRoot(row[0]);
    if (parent == nullptr) {
      return Status::ConstraintViolation("AGENTS row references missing "
                                         "supplier " +
                                         row[0].ToString());
    }
    UNIQOPT_RETURN_NOT_OK(
        ims->InsertChild(parent, "AGENTS", Row({row[1], row[2], row[3]}))
            .status());
  }
  return ims;
}

namespace {

/// Shared skeleton for the four Example 10 programs. `stop_at_first`
/// distinguishes the nested strategy (line 33's single probe) from the
/// join strategy's emit-per-match loop.
GatewayResult RunSupplierProbe(const ImsDatabase& db, const Ssa& part_ssa,
                               bool stop_at_first) {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("ims.gateway.run.ns");
  obs::ScopedLatencyTimer timer(&latency);
  GatewayResult result;
  DliSession dli(&db);
  Ssa supplier = Ssa::Unqualified("SUPPLIER");

  DliStatus status = dli.GU(supplier);  // line 21 / 30: GU SUPPLIER
  while (status == DliStatus::kOk) {    // while status = '  '
    if (stop_at_first) {
      // Lines 32–33: GNP PARTS (...); if found, output SUPPLIER tuple.
      if (dli.GNP(part_ssa) == DliStatus::kOk) {
        result.rows.push_back(dli.parent_position()->fields);
      }
    } else {
      // Lines 23–27: emit once per qualifying PARTS twin; the final
      // GNP always returns 'GE'.
      DliStatus part_status = dli.GNP(part_ssa);
      while (part_status == DliStatus::kOk) {
        result.rows.push_back(dli.parent_position()->fields);
        part_status = dli.GNP(part_ssa);
      }
    }
    status = dli.GN(supplier);  // line 28 / 34: GN SUPPLIER
  }
  result.stats = dli.stats();
  return result;
}

}  // namespace

GatewayResult JoinStrategySuppliersForPart(const ImsDatabase& db,
                                           int64_t part_no) {
  return RunSupplierProbe(
      db, Ssa::Equal("PARTS", "PNO", Value::Integer(part_no)),
      /*stop_at_first=*/false);
}

GatewayResult NestedStrategySuppliersForPart(const ImsDatabase& db,
                                             int64_t part_no) {
  return RunSupplierProbe(
      db, Ssa::Equal("PARTS", "PNO", Value::Integer(part_no)),
      /*stop_at_first=*/true);
}

GatewayResult JoinStrategySuppliersForOem(const ImsDatabase& db,
                                          int64_t oem_pno) {
  return RunSupplierProbe(
      db, Ssa::Equal("PARTS", "OEM_PNO", Value::Integer(oem_pno)),
      /*stop_at_first=*/false);
}

GatewayResult NestedStrategySuppliersForOem(const ImsDatabase& db,
                                            int64_t oem_pno) {
  return RunSupplierProbe(
      db, Ssa::Equal("PARTS", "OEM_PNO", Value::Integer(oem_pno)),
      /*stop_at_first=*/true);
}

}  // namespace ims
}  // namespace uniqopt
