file(REMOVE_RECURSE
  "CMakeFiles/join_elimination_test.dir/join_elimination_test.cc.o"
  "CMakeFiles/join_elimination_test.dir/join_elimination_test.cc.o.d"
  "join_elimination_test"
  "join_elimination_test.pdb"
  "join_elimination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_elimination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
