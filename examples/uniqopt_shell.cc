// Interactive shell over the uniqopt facade: type SQL against the
// supplier database (or your own CREATE TABLE ... ), see the rewrite
// audit trail (EXPLAIN) and the results.
//
//   $ uniqopt_shell
//   uniqopt> EXPLAIN SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P
//            WHERE S.SNO = P.SNO;
//   uniqopt> SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS;
//   uniqopt> \q
//
// Commands: `EXPLAIN <query>` shows plans (with the uniqueness proof)
// without executing; `EXPLAIN ANALYZE <query>` executes with
// per-operator metering and shows the profile plus the metrics the run
// moved; `CREATE TABLE ...` extends the catalog; `\metrics` dumps the
// metrics registry; `\trace on|off` toggles pipeline tracing (spans
// print as they close); `\q` quits. Host variables are not supported
// interactively (use the library API).

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "uniqopt/uniqopt.h"

namespace {

using namespace uniqopt;

/// Prints each span as it closes, indented by nesting depth.
class StdoutTraceSink : public obs::TraceSink {
 public:
  void OnSpanEnd(obs::TraceEvent event) override {
    std::printf("[trace] %s\n", event.ToString().c_str());
  }
};

void PrintResult(const PreparedQuery& prepared,
                 const std::vector<Row>& rows, const ExecStats& stats) {
  const Schema& schema = prepared.optimized_plan->schema();
  std::string header;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) header += " | ";
    header += schema.column(i).QualifiedName();
  }
  std::printf("%s\n", header.c_str());
  std::printf("%s\n", std::string(header.size(), '-').c_str());
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= 25) {
      std::printf("... (%zu more rows)\n", rows.size() - 25);
      break;
    }
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("(%zu rows)  [%s]\n", rows.size(), stats.ToString().c_str());
}

int Run() {
  Database db;
  if (!MakeTestSupplierDatabase(&db).ok()) return 1;
  Optimizer optimizer(&db);
  StdoutTraceSink trace_sink;
  std::printf(
      "uniqopt shell — supplier database loaded "
      "(SUPPLIER/PARTS/AGENTS).\n"
      "EXPLAIN <q> shows the rewrite trail and uniqueness proof; "
      "EXPLAIN ANALYZE <q> executes\nwith per-operator metering. "
      "\\metrics dumps counters; \\trace on|off toggles spans; "
      "\\q quits.\n");

  std::string line;
  while (true) {
    std::printf("uniqopt> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(StripAsciiWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\q" || EqualsIgnoreCase(trimmed, "quit")) break;
    if (trimmed == "\\metrics") {
      std::printf("%s", obs::MetricsRegistry::Global().ToText().c_str());
      continue;
    }
    if (trimmed == "\\trace on") {
      obs::Tracer::Global().Enable(&trace_sink);
      std::printf("tracing on\n");
      continue;
    }
    if (trimmed == "\\trace off") {
      obs::Tracer::Global().Disable();
      std::printf("tracing off\n");
      continue;
    }

    bool explain_only = false;
    bool explain_analyze = false;
    std::string upper = ToUpperAscii(trimmed);
    if (upper.rfind("EXPLAIN ANALYZE ", 0) == 0) {
      explain_analyze = true;
      trimmed = trimmed.substr(16);
    } else if (upper.rfind("EXPLAIN ", 0) == 0) {
      explain_only = true;
      trimmed = trimmed.substr(8);
    }
    if (upper.rfind("CREATE ", 0) == 0) {
      Status st = db.ExecuteDdl(trimmed);
      std::printf("%s\n", st.ToString().c_str());
      continue;
    }

    auto prepared = optimizer.Prepare(trimmed);
    if (!prepared.ok()) {
      std::printf("error: %s\n", prepared.status().ToString().c_str());
      continue;
    }
    if (!prepared->host_vars.empty()) {
      std::printf(
          "error: interactive mode cannot bind host variables (:%s)\n",
          prepared->host_vars[0].name.c_str());
      continue;
    }
    if (explain_only) {
      std::printf("%s", prepared->Explain().c_str());
      continue;
    }
    if (explain_analyze) {
      auto report = optimizer.ExplainAnalyze(*prepared);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s", report->c_str());
      continue;
    }
    ExecStats stats;
    auto rows = optimizer.Execute(*prepared, {}, {}, &stats);
    if (!rows.ok()) {
      std::printf("error: %s\n", rows.status().ToString().c_str());
      continue;
    }
    PrintResult(*prepared, *rows, stats);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
