#ifndef UNIQOPT_FD_ATTRIBUTE_SET_H_
#define UNIQOPT_FD_ATTRIBUTE_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace uniqopt {

/// A set of attribute positions (column ordinals of some derived-table
/// schema), implemented as a growable bitset. Attribute identity is
/// positional: attribute i is column i of the schema under analysis.
class AttributeSet {
 public:
  AttributeSet() = default;
  AttributeSet(std::initializer_list<size_t> attrs) {
    for (size_t a : attrs) Add(a);
  }
  static AttributeSet FromVector(const std::vector<size_t>& attrs) {
    AttributeSet s;
    for (size_t a : attrs) s.Add(a);
    return s;
  }
  /// The set {0, 1, ..., n-1}.
  static AttributeSet AllUpTo(size_t n) {
    AttributeSet s;
    for (size_t i = 0; i < n; ++i) s.Add(i);
    return s;
  }

  void Add(size_t attr);
  void Remove(size_t attr);
  bool Contains(size_t attr) const;

  bool Empty() const;
  size_t Count() const;

  /// Set algebra; operands need not have equal capacity.
  AttributeSet Union(const AttributeSet& other) const;
  AttributeSet Intersect(const AttributeSet& other) const;
  AttributeSet Difference(const AttributeSet& other) const;
  bool IsSubsetOf(const AttributeSet& other) const;
  bool Intersects(const AttributeSet& other) const;

  void UnionInPlace(const AttributeSet& other);

  /// Members in ascending order.
  std::vector<size_t> ToVector() const;

  /// Every member shifted up by `offset` (product re-basing).
  AttributeSet Shifted(size_t offset) const;

  bool operator==(const AttributeSet& other) const;
  bool operator!=(const AttributeSet& other) const {
    return !(*this == other);
  }

  /// "{0, 3, 7}" rendering.
  std::string ToString() const;

 private:
  void Trim();

  std::vector<uint64_t> words_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_FD_ATTRIBUTE_SET_H_
