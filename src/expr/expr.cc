#include "expr/expr.h"

#include <algorithm>

#include "common/logging.h"

namespace uniqopt {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->type_ = v.type();
  e->nullable_ = v.is_null();
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(size_t index, std::string display_name, TypeId type,
                        bool nullable) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->index_ = index;
  e->name_ = std::move(display_name);
  e->type_ = type;
  e->nullable_ = nullable;
  return e;
}

ExprPtr Expr::HostVar(size_t index, std::string name, TypeId type) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kHostVar;
  e->index_ = index;
  e->name_ = std::move(name);
  e->type_ = type;
  e->nullable_ = true;  // Host variable values are unknown until runtime.
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kComparison;
  e->op_ = op;
  e->nullable_ = left->nullable() || right->nullable();
  e->type_ = TypeId::kBoolean;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  for (ExprPtr& c : children) {
    if (c->kind() == ExprKind::kAnd) {
      for (const ExprPtr& g : c->children()) flat.push_back(g);
    } else if (c->IsTrueLiteral()) {
      // drop neutral element
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return TrueLiteral();
  if (flat.size() == 1) return flat[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->type_ = TypeId::kBoolean;
  e->nullable_ = std::any_of(flat.begin(), flat.end(),
                             [](const ExprPtr& c) { return c->nullable(); });
  e->children_ = std::move(flat);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  for (ExprPtr& c : children) {
    if (c->kind() == ExprKind::kOr) {
      for (const ExprPtr& g : c->children()) flat.push_back(g);
    } else if (c->IsFalseLiteral()) {
      // drop neutral element
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return FalseLiteral();
  if (flat.size() == 1) return flat[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->type_ = TypeId::kBoolean;
  e->nullable_ = std::any_of(flat.begin(), flat.end(),
                             [](const ExprPtr& c) { return c->nullable(); });
  e->children_ = std::move(flat);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->type_ = TypeId::kBoolean;
  e->nullable_ = child->nullable();
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIsNull;
  e->type_ = TypeId::kBoolean;
  e->nullable_ = false;  // IS NULL never yields UNKNOWN.
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::IsNotNull(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIsNotNull;
  e->type_ = TypeId::kBoolean;
  e->nullable_ = false;
  e->children_ = {std::move(child)};
  return e;
}

bool Expr::IsTrueLiteral() const {
  return kind_ == ExprKind::kLiteral && type_ == TypeId::kBoolean &&
         !literal_.is_null() && literal_.AsBoolean();
}

bool Expr::IsFalseLiteral() const {
  return kind_ == ExprKind::kLiteral && type_ == TypeId::kBoolean &&
         !literal_.is_null() && !literal_.AsBoolean();
}

Value Expr::Evaluate(const Row& row, const std::vector<Value>& params) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kColumnRef:
      return row.at(index_);
    case ExprKind::kHostVar:
      UNIQOPT_DCHECK_MSG(index_ < params.size(), "missing host variable");
      return params[index_];
    default: {
      Tribool t = EvaluatePredicate(row, params);
      if (t == Tribool::kUnknown) return Value::Null(TypeId::kBoolean);
      return Value::Boolean(t == Tribool::kTrue);
    }
  }
}

Tribool Expr::EvaluatePredicate(const Row& row,
                                const std::vector<Value>& params) const {
  switch (kind_) {
    case ExprKind::kLiteral: {
      UNIQOPT_DCHECK(type_ == TypeId::kBoolean);
      if (literal_.is_null()) return Tribool::kUnknown;
      return FromBool(literal_.AsBoolean());
    }
    case ExprKind::kColumnRef: {
      const Value& v = row.at(index_);
      if (v.is_null()) return Tribool::kUnknown;
      return FromBool(v.AsBoolean());
    }
    case ExprKind::kHostVar: {
      UNIQOPT_DCHECK_MSG(index_ < params.size(), "missing host variable");
      const Value& v = params[index_];
      if (v.is_null()) return Tribool::kUnknown;
      return FromBool(v.AsBoolean());
    }
    case ExprKind::kComparison: {
      Value l = children_[0]->Evaluate(row, params);
      Value r = children_[1]->Evaluate(row, params);
      if (l.is_null() || r.is_null()) return Tribool::kUnknown;
      int c = l.Compare(r);
      switch (op_) {
        case CompareOp::kEq:
          return FromBool(c == 0);
        case CompareOp::kNe:
          return FromBool(c != 0);
        case CompareOp::kLt:
          return FromBool(c < 0);
        case CompareOp::kLe:
          return FromBool(c <= 0);
        case CompareOp::kGt:
          return FromBool(c > 0);
        case CompareOp::kGe:
          return FromBool(c >= 0);
      }
      return Tribool::kUnknown;
    }
    case ExprKind::kAnd: {
      Tribool acc = Tribool::kTrue;
      for (const ExprPtr& c : children_) {
        acc = And(acc, c->EvaluatePredicate(row, params));
        if (acc == Tribool::kFalse) return acc;
      }
      return acc;
    }
    case ExprKind::kOr: {
      Tribool acc = Tribool::kFalse;
      for (const ExprPtr& c : children_) {
        acc = Or(acc, c->EvaluatePredicate(row, params));
        if (acc == Tribool::kTrue) return acc;
      }
      return acc;
    }
    case ExprKind::kNot:
      return Not(children_[0]->EvaluatePredicate(row, params));
    case ExprKind::kIsNull:
      return FromBool(children_[0]->Evaluate(row, params).is_null());
    case ExprKind::kIsNotNull:
      return FromBool(!children_[0]->Evaluate(row, params).is_null());
  }
  return Tribool::kUnknown;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return name_.empty() ? "#" + std::to_string(index_) : name_;
    case ExprKind::kHostVar:
      return ":" + name_;
    case ExprKind::kComparison:
      return children_[0]->ToString() + " " + CompareOpToString(op_) + " " +
             children_[1]->ToString();
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* sep = kind_ == ExprKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return children_[0]->ToString() + " IS NULL";
    case ExprKind::kIsNotNull:
      return children_[0]->ToString() + " IS NOT NULL";
  }
  return "?";
}

void Expr::CollectColumns(std::vector<size_t>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(index_);
    return;
  }
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

size_t Expr::MaxColumnIndexPlusOne() const {
  std::vector<size_t> cols;
  CollectColumns(&cols);
  size_t max_plus_one = 0;
  for (size_t c : cols) max_plus_one = std::max(max_plus_one, c + 1);
  return max_plus_one;
}

size_t Expr::MaxHostVarIndexPlusOne() const {
  if (kind_ == ExprKind::kHostVar) return index_ + 1;
  size_t m = 0;
  for (const ExprPtr& c : children_) {
    m = std::max(m, c->MaxHostVarIndexPlusOne());
  }
  return m;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.type() == other.literal_.type() &&
             literal_.NullSafeEquals(other.literal_);
    case ExprKind::kColumnRef:
    case ExprKind::kHostVar:
      return index_ == other.index_;
    case ExprKind::kComparison:
      if (op_ != other.op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

namespace {

ExprPtr Rebuild(const ExprPtr& expr, std::vector<ExprPtr> children) {
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(expr->compare_op(), std::move(children[0]),
                           std::move(children[1]));
    case ExprKind::kAnd:
      return Expr::MakeAnd(std::move(children));
    case ExprKind::kOr:
      return Expr::MakeOr(std::move(children));
    case ExprKind::kNot:
      return Expr::MakeNot(std::move(children[0]));
    case ExprKind::kIsNull:
      return Expr::IsNull(std::move(children[0]));
    case ExprKind::kIsNotNull:
      return Expr::IsNotNull(std::move(children[0]));
    default:
      return expr;
  }
}

}  // namespace

ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<size_t>& mapping) {
  if (expr->kind() == ExprKind::kColumnRef) {
    UNIQOPT_DCHECK_MSG(expr->column_index() < mapping.size(),
                       "unmapped column in RemapColumns");
    return Expr::ColumnRef(mapping[expr->column_index()],
                           expr->display_name(), expr->value_type(),
                           expr->nullable());
  }
  if (expr->num_children() == 0) return expr;
  std::vector<ExprPtr> children;
  children.reserve(expr->num_children());
  for (const ExprPtr& c : expr->children()) {
    children.push_back(RemapColumns(c, mapping));
  }
  return Rebuild(expr, std::move(children));
}

ExprPtr ShiftColumns(const ExprPtr& expr, size_t offset) {
  if (expr->kind() == ExprKind::kColumnRef) {
    return Expr::ColumnRef(expr->column_index() + offset,
                           expr->display_name(), expr->value_type(),
                           expr->nullable());
  }
  if (expr->num_children() == 0) return expr;
  std::vector<ExprPtr> children;
  children.reserve(expr->num_children());
  for (const ExprPtr& c : expr->children()) {
    children.push_back(ShiftColumns(c, offset));
  }
  return Rebuild(expr, std::move(children));
}

ExprPtr TrueLiteral() { return Expr::Literal(Value::Boolean(true)); }
ExprPtr FalseLiteral() { return Expr::Literal(Value::Boolean(false)); }

}  // namespace uniqopt
