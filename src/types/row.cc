#include "types/row.h"

#include "common/hash.h"

namespace uniqopt {

Row Row::Concat(const Row& left, const Row& right) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(values));
}

Row Row::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> values;
  values.reserve(indexes.size());
  for (size_t i : indexes) values.push_back(values_.at(i));
  return Row(std::move(values));
}

bool Row::NullSafeEquals(const Row& other) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (!values_[i].NullSafeEquals(other.values_[i])) return false;
  }
  return true;
}

size_t Row::Hash() const {
  size_t seed = 0x345678;
  for (const Value& v : values_) HashCombine(&seed, v.Hash());
  return seed;
}

int Row::Compare(const Row& other) const {
  size_t n = std::min(size(), other.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (size() < other.size()) return -1;
  if (size() > other.size()) return 1;
  return 0;
}

std::string Row::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace uniqopt
