#include "oodb/navigator.h"

#include <chrono>

#include "obs/recorder.h"

namespace uniqopt {
namespace oodb {

namespace {

/// Flight-recorder entry for one navigation strategy run: the OODB
/// sessions log through the same plane as the relational optimizer.
void RecordStrategy(const char* strategy, const StrategyResult& result,
                    std::chrono::steady_clock::time_point start) {
  obs::QueryRecord rec;
  rec.source = "oodb.nav";
  rec.query = strategy;
  rec.plan_hash = obs::FingerprintPlanText(strategy);
  rec.rows_out = result.rows.size();
  rec.rows_scanned =
      static_cast<uint64_t>(result.stats.objects_retrieved);
  rec.proof_summary = result.stats.ToString();
  rec.total_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  rec.phase_ns.emplace_back("navigate", rec.total_ns);
  obs::QueryRecorder::Global().Record(std::move(rec));
}

}  // namespace

Result<std::unique_ptr<ObjectStore>> BuildSupplierObjectStore(
    const Database& relational) {
  auto store = std::make_unique<ObjectStore>();
  ClassDef supplier;
  supplier.name = "Supplier";
  supplier.fields = {{"SNO", TypeId::kInteger},
                     {"SNAME", TypeId::kString},
                     {"SCITY", TypeId::kString},
                     {"BUDGET", TypeId::kDouble},
                     {"STATUS", TypeId::kString}};
  UNIQOPT_ASSIGN_OR_RETURN(size_t supplier_id,
                           store->AddClass(std::move(supplier)));

  ClassDef parts;
  parts.name = "Parts";
  // SNO is implied by the parent pointer (Figure 3): not stored.
  parts.fields = {{"PNO", TypeId::kInteger},
                  {"PNAME", TypeId::kString},
                  {"OEM_PNO", TypeId::kInteger},
                  {"COLOR", TypeId::kString}};
  parts.parent_class = "Supplier";
  UNIQOPT_ASSIGN_OR_RETURN(size_t parts_id, store->AddClass(std::move(parts)));

  ClassDef agent;
  agent.name = "Agent";
  agent.fields = {{"ANO", TypeId::kInteger},
                  {"ANAME", TypeId::kString},
                  {"ACITY", TypeId::kString}};
  agent.parent_class = "Supplier";
  UNIQOPT_ASSIGN_OR_RETURN(size_t agent_id, store->AddClass(std::move(agent)));

  // Load from the relational instance; remember supplier OIDs by SNO.
  std::map<int64_t, Oid> supplier_oids;
  UNIQOPT_ASSIGN_OR_RETURN(const Table* suppliers,
                           relational.GetTable("SUPPLIER"));
  for (const Row& row : suppliers->rows()) {
    UNIQOPT_ASSIGN_OR_RETURN(Oid oid, store->Insert(supplier_id, row));
    supplier_oids[row[0].AsInteger()] = oid;
  }
  UNIQOPT_ASSIGN_OR_RETURN(const Table* parts_table,
                           relational.GetTable("PARTS"));
  for (const Row& row : parts_table->rows()) {
    auto it = supplier_oids.find(row[0].AsInteger());
    if (it == supplier_oids.end()) {
      return Status::ConstraintViolation("PARTS row references missing "
                                         "supplier");
    }
    UNIQOPT_RETURN_NOT_OK(
        store
            ->Insert(parts_id, Row({row[1], row[2], row[3], row[4]}),
                     it->second)
            .status());
  }
  UNIQOPT_ASSIGN_OR_RETURN(const Table* agents, relational.GetTable("AGENTS"));
  for (const Row& row : agents->rows()) {
    auto it = supplier_oids.find(row[0].AsInteger());
    if (it == supplier_oids.end()) {
      return Status::ConstraintViolation("AGENTS row references missing "
                                         "supplier");
    }
    UNIQOPT_RETURN_NOT_OK(
        store->Insert(agent_id, Row({row[1], row[2], row[3]}), it->second)
            .status());
  }

  // The indexes Example 11 assumes.
  UNIQOPT_RETURN_NOT_OK(store->CreateIndex(supplier_id, "SNO"));
  UNIQOPT_RETURN_NOT_OK(store->CreateIndex(parts_id, "PNO"));
  return store;
}

StrategyResult ChildDrivenSuppliersForPart(const ObjectStore& store,
                                           int64_t part_no, int64_t sno_lo,
                                           int64_t sno_hi) {
  auto start = std::chrono::steady_clock::now();
  StrategyResult result;
  NavigationSession nav(&store);
  size_t parts_id = *store.ClassId("Parts");
  // Line 36: retrieve PARTS (PNO = :PARTNO) via the PNO index.
  auto parts = nav.IndexEq(parts_id, 0, Value::Integer(part_no));
  if (!parts.ok()) return result;
  for (Oid part_oid : *parts) {
    const StoredObject& part = nav.Retrieve(part_oid);
    // Line 38: retrieve PARTS.SUPPLIER — chase the parent pointer.
    const StoredObject& supplier = nav.Deref(part.parent);
    // Lines 39–40: test the range predicate only after the fetch.
    int64_t sno = supplier.fields[0].AsInteger();
    if (sno >= sno_lo && sno <= sno_hi) {
      result.rows.push_back(supplier.fields);
    }
  }
  result.stats = nav.stats();
  RecordStrategy("child-driven suppliers-for-part", result, start);
  return result;
}

StrategyResult ParentDrivenSuppliersForPart(const ObjectStore& store,
                                            int64_t part_no, int64_t sno_lo,
                                            int64_t sno_hi) {
  auto start = std::chrono::steady_clock::now();
  StrategyResult result;
  NavigationSession nav(&store);
  size_t supplier_id = *store.ClassId("Supplier");
  size_t parts_id = *store.ClassId("Parts");
  // Line 43: retrieve SUPPLIER (SNO between lo and hi) — index range scan.
  auto suppliers = nav.IndexRange(supplier_id, 0, Value::Integer(sno_lo),
                                  Value::Integer(sno_hi));
  if (!suppliers.ok()) return result;
  // Line 45: per supplier, look for a part with the given PNO whose
  // parent OID matches. The OID qualification needs only the candidate
  // part's header (PeekParent), not a full object fault, and EXISTS
  // semantics stop at the first witness.
  for (Oid supplier_oid : *suppliers) {
    auto parts = nav.IndexEq(parts_id, 0, Value::Integer(part_no));
    if (!parts.ok()) continue;
    bool found = false;
    for (Oid part_oid : *parts) {
      if (nav.PeekParent(part_oid) == supplier_oid) {
        found = true;
        break;
      }
    }
    if (found) {
      result.rows.push_back(nav.Retrieve(supplier_oid).fields);
    }
  }
  result.stats = nav.stats();
  RecordStrategy("parent-driven suppliers-for-part", result, start);
  return result;
}

}  // namespace oodb
}  // namespace uniqopt
