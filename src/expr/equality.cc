#include "expr/equality.h"

#include "expr/normalize.h"

namespace uniqopt {

bool IsAtom(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
      return false;
    default:
      return true;
  }
}

EqualityAtom ClassifyAtom(const ExprPtr& atom) {
  EqualityAtom out;
  if (atom->kind() != ExprKind::kComparison ||
      atom->compare_op() != CompareOp::kEq) {
    return out;
  }
  const ExprPtr& l = atom->child(0);
  const ExprPtr& r = atom->child(1);
  auto classify_pair = [&](const ExprPtr& col, const ExprPtr& other) -> bool {
    if (col->kind() != ExprKind::kColumnRef) return false;
    switch (other->kind()) {
      case ExprKind::kLiteral:
        out.type = AtomType::kType1ColumnConstant;
        out.column = col->column_index();
        out.constant = other->literal();
        return true;
      case ExprKind::kHostVar:
        out.type = AtomType::kType1ColumnConstant;
        out.column = col->column_index();
        out.host_var = other->host_var_index();
        return true;
      case ExprKind::kColumnRef:
        out.type = AtomType::kType2ColumnColumn;
        out.column = col->column_index();
        out.other_column = other->column_index();
        return true;
      default:
        return false;
    }
  };
  if (classify_pair(l, r)) return out;
  if (l->kind() != ExprKind::kColumnRef && classify_pair(r, l)) return out;
  return out;
}

std::vector<EqualityAtom> ExtractEqualities(const ExprPtr& conjunction,
                                            bool* has_other) {
  std::vector<EqualityAtom> out;
  if (has_other != nullptr) *has_other = false;
  for (const ExprPtr& atom : FlattenAnd(conjunction)) {
    if (atom->IsTrueLiteral()) continue;
    EqualityAtom a = ClassifyAtom(atom);
    if (a.type == AtomType::kOther) {
      if (has_other != nullptr) *has_other = true;
      continue;
    }
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace uniqopt
