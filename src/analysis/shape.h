#ifndef UNIQOPT_ANALYSIS_SHAPE_H_
#define UNIQOPT_ANALYSIS_SHAPE_H_

#include <vector>

#include "common/result.h"
#include "plan/plan.h"

namespace uniqopt {

/// Structural view of a bound query specification in the paper's normal
/// form π_d[A](σ[C](R1 × ... × Rn)), possibly interleaved with
/// existential semi-joins (which Algorithm 1 soundly ignores: dropping a
/// conjunct of C only weakens the tested condition).
struct SpecShape {
  /// The projection on top.
  const ProjectNode* project = nullptr;
  /// All Select conjuncts below the projection, bound against the full
  /// product schema.
  std::vector<ExprPtr> predicates;
  /// Existential subquery filters encountered on the way down.
  std::vector<const ExistsNode*> exists_filters;

  struct BaseTable {
    const GetNode* get = nullptr;
    /// First column of this table within the product schema.
    size_t offset = 0;
  };
  /// FROM tables left to right.
  std::vector<BaseTable> tables;
  /// Total width of the product schema.
  size_t width = 0;
};

/// Decomposes `plan` (a bound spec) into SpecShape. Fails with
/// kUnsupported when the plan is not projection/selection/semijoin over a
/// product of base tables (e.g. a set operation).
Result<SpecShape> ExtractSpecShape(const PlanPtr& plan);

/// Decomposes a FROM-product subtree (Selects and Exists filters allowed
/// above/between products) into tables + predicates. Used for subquery
/// (Theorem 2) analysis where there is no projection on top.
Result<SpecShape> ExtractProductShape(const PlanPtr& plan);

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_SHAPE_H_
