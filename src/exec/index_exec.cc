#include "exec/index_exec.h"

#include <map>
#include <set>
#include <utility>

#include "expr/equality.h"
#include "expr/normalize.h"
#include "index/unique_index.h"

namespace uniqopt {

namespace {

/// Coerces a probe value to the indexed column's type. The index stores
/// column-typed values, so an INTEGER literal probing a DOUBLE key (or
/// vice versa) must be widened/narrowed before hashing. Returns nullopt
/// when no value of the column type can equal the probe (e.g. 1.5
/// against an INTEGER column) — the lookup then matches nothing, which
/// is exactly what the equivalent filter would produce.
std::optional<Value> CoerceProbe(const Value& v, TypeId want) {
  if (v.is_null() || v.type() == want) return v;
  if (v.type() == TypeId::kInteger && want == TypeId::kDouble) {
    return Value::Double(static_cast<double>(v.AsInteger()));
  }
  if (v.type() == TypeId::kDouble && want == TypeId::kInteger) {
    double d = v.AsDouble();
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Value::Integer(i);
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<IndexLookupMatch> MatchIndexLookup(const TableDef& def,
                                                 const ExprPtr& predicate) {
  if (!def.HasAnyKey() || predicate == nullptr) return std::nullopt;
  std::vector<ExprPtr> conjuncts = FlattenAnd(predicate);
  // First Type-1 atom per column wins; later duplicates stay residual.
  std::map<size_t, std::pair<IndexProbe, size_t>> by_column;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    EqualityAtom atom = ClassifyAtom(conjuncts[i]);
    if (atom.type != AtomType::kType1ColumnConstant) continue;
    IndexProbe probe;
    probe.constant = atom.constant;
    probe.host_var = atom.host_var;
    by_column.emplace(atom.column, std::make_pair(std::move(probe), i));
  }
  if (by_column.empty()) return std::nullopt;
  for (size_t k = 0; k < def.keys().size(); ++k) {
    const KeyConstraint& key = def.keys()[k];
    bool covered = true;
    for (size_t col : key.columns) {
      if (by_column.find(col) == by_column.end()) {
        covered = false;
        break;
      }
    }
    if (!covered) continue;
    IndexLookupMatch match;
    match.key_index = k;
    std::set<size_t> consumed;
    for (size_t col : key.columns) {
      const auto& entry = by_column.at(col);
      match.probes.push_back(entry.first);
      consumed.insert(entry.second);
    }
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (consumed.count(i) == 0) match.residual.push_back(conjuncts[i]);
    }
    return match;
  }
  return std::nullopt;
}

std::optional<IndexJoinMatch> MatchUniqueIndexJoin(
    const TableDef& right_def, const std::vector<size_t>& left_keys,
    const std::vector<size_t>& right_keys) {
  if (right_keys.empty() || right_keys.size() != left_keys.size()) {
    return std::nullopt;
  }
  std::set<size_t> right_set(right_keys.begin(), right_keys.end());
  if (right_set.size() != right_keys.size()) return std::nullopt;
  for (size_t k = 0; k < right_def.keys().size(); ++k) {
    const KeyConstraint& key = right_def.keys()[k];
    if (key.columns.size() != right_set.size()) continue;
    std::set<size_t> key_set(key.columns.begin(), key.columns.end());
    if (key_set != right_set) continue;
    IndexJoinMatch match;
    match.key_index = k;
    for (size_t col : key.columns) {
      for (size_t i = 0; i < right_keys.size(); ++i) {
        if (right_keys[i] == col) {
          match.left_keys.push_back(left_keys[i]);
          break;
        }
      }
    }
    return match;
  }
  return std::nullopt;
}

std::string KeyDisplayName(const TableDef& def, size_t key_index) {
  const KeyConstraint& key = def.keys().at(key_index);
  if (!key.name.empty()) return key.name;
  std::string out = def.name() + "(";
  for (size_t i = 0; i < key.columns.size(); ++i) {
    if (i > 0) out += ",";
    out += def.schema().column(key.columns[i]).name;
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// IndexLookupOp

IndexLookupOp::IndexLookupOp(const Table* table, Schema schema,
                             size_t key_index,
                             std::vector<IndexProbe> probes, ExprPtr residual,
                             std::string key_name)
    : Operator(std::move(schema)),
      table_(table),
      key_index_(key_index),
      probes_(std::move(probes)),
      residual_(std::move(residual)),
      key_name_(std::move(key_name)) {}

Status IndexLookupOp::Open(ExecContext* ctx) {
  match_.reset();
  snapshot_ = table_->Snapshot();
  const UniqueIndex& index = snapshot_->indexes.at(key_index_);
  std::vector<Value> key_values;
  key_values.reserve(probes_.size());
  for (size_t i = 0; i < probes_.size(); ++i) {
    Value v = probes_[i].Resolve(ctx->params);
    // SQL `=` never matches a NULL probe, even though the index files
    // NULL keys as ordinary values under `=!`.
    if (v.is_null()) return Status::OK();
    TypeId want =
        table_->def().schema().column(index.key_columns()[i]).type;
    std::optional<Value> coerced = CoerceProbe(v, want);
    if (!coerced.has_value()) return Status::OK();
    key_values.push_back(std::move(*coerced));
  }
  ctx->stats.index_probes++;
  std::optional<size_t> ordinal = index.Lookup(Row(std::move(key_values)));
  if (!ordinal.has_value()) return Status::OK();
  const Row& row = snapshot_->rows.at(*ordinal);
  if (residual_ != nullptr &&
      residual_->EvaluatePredicate(row, ctx->params) != Tribool::kTrue) {
    return Status::OK();
  }
  match_ = row;
  return Status::OK();
}

Result<bool> IndexLookupOp::Next(ExecContext* ctx, Row* row) {
  (void)ctx;
  if (!match_.has_value()) return false;
  *row = std::move(*match_);
  match_.reset();
  return true;
}

void IndexLookupOp::Close() { match_.reset(); }

// ---------------------------------------------------------------------------
// UniqueIndexJoinOp

UniqueIndexJoinOp::UniqueIndexJoinOp(OperatorPtr left,
                                     const Table* right_table,
                                     const Schema& right_schema,
                                     size_t key_index,
                                     std::vector<size_t> left_keys,
                                     ExprPtr right_filter, ExprPtr residual,
                                     std::string key_name)
    : Operator(Schema::Concat(left->schema(), right_schema)),
      left_(std::move(left)),
      right_table_(right_table),
      key_index_(key_index),
      left_keys_(std::move(left_keys)),
      right_filter_(std::move(right_filter)),
      residual_(std::move(residual)),
      key_name_(std::move(key_name)) {}

Status UniqueIndexJoinOp::Open(ExecContext* ctx) {
  snapshot_ = right_table_->Snapshot();
  const UniqueIndex& index = snapshot_->indexes.at(key_index_);
  key_types_.clear();
  for (size_t col : index.key_columns()) {
    key_types_.push_back(right_table_->def().schema().column(col).type);
  }
  return left_->Open(ctx);
}

Result<bool> UniqueIndexJoinOp::Next(ExecContext* ctx, Row* row) {
  const UniqueIndex& index = snapshot_->indexes.at(key_index_);
  Row left_row;
  while (true) {
    UNIQOPT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &left_row));
    if (!more) return false;
    std::vector<Value> key_values;
    key_values.reserve(left_keys_.size());
    bool probeable = true;
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      const Value& v = left_row[left_keys_[i]];
      if (v.is_null()) {
        probeable = false;  // SQL `=` join keys never match on NULL
        break;
      }
      std::optional<Value> coerced = CoerceProbe(v, key_types_[i]);
      if (!coerced.has_value()) {
        probeable = false;
        break;
      }
      key_values.push_back(std::move(*coerced));
    }
    if (!probeable) continue;
    ctx->stats.index_probes++;
    std::optional<size_t> ordinal = index.Lookup(Row(std::move(key_values)));
    if (!ordinal.has_value()) continue;
    const Row& right_row = snapshot_->rows.at(*ordinal);
    if (right_filter_ != nullptr &&
        right_filter_->EvaluatePredicate(right_row, ctx->params) !=
            Tribool::kTrue) {
      continue;
    }
    Row out = Row::Concat(left_row, right_row);
    if (residual_ != nullptr &&
        residual_->EvaluatePredicate(out, ctx->params) != Tribool::kTrue) {
      continue;
    }
    *row = std::move(out);
    return true;
  }
}

void UniqueIndexJoinOp::Close() { left_->Close(); }

}  // namespace uniqopt
