#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    binder_ = std::make_unique<Binder>(&db_.catalog());
  }

  Result<BoundQuery> Bind(const std::string& sql) {
    return binder_->BindSql(sql);
  }

  Database db_;
  std::unique_ptr<Binder> binder_;
};

TEST_F(BinderTest, ResolvesQualifiedColumns) {
  auto bound = Bind("SELECT S.SNO FROM SUPPLIER S");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const Schema& schema = bound->plan->schema();
  ASSERT_EQ(schema.num_columns(), 1u);
  EXPECT_EQ(schema.column(0).qualifier, "S");
  EXPECT_EQ(schema.column(0).name, "SNO");
  EXPECT_FALSE(schema.column(0).nullable);  // primary key column
}

TEST_F(BinderTest, AmbiguousUnqualifiedColumnRejected) {
  auto bound = Bind("SELECT SNO FROM SUPPLIER S, PARTS P");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(Bind("SELECT X FROM NOSUCH").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT NOSUCH FROM SUPPLIER").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT Q.SNO FROM SUPPLIER S").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  auto bound = Bind("SELECT S.SNO FROM SUPPLIER S, PARTS S");
  ASSERT_FALSE(bound.ok());
}

TEST_F(BinderTest, StarExpansion) {
  auto all = Bind("SELECT * FROM SUPPLIER S, PARTS P");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->plan->schema().num_columns(), 10u);
  auto one = Bind("SELECT P.* FROM SUPPLIER S, PARTS P");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->plan->schema().num_columns(), 5u);
  EXPECT_EQ(one->plan->schema().column(0).qualifier, "P");
}

TEST_F(BinderTest, HostVariablesGetSlotsAndTypes) {
  auto bound = Bind(
      "SELECT S.SNO FROM SUPPLIER S "
      "WHERE S.SNO = :NUM AND S.SNAME = :NAME AND S.SNO = :NUM");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->host_vars.size(), 2u);  // :NUM deduplicated
  auto num = bound->HostVarSlot("NUM");
  auto name = bound->HostVarSlot("NAME");
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(bound->host_vars[*num].type, TypeId::kInteger);
  EXPECT_EQ(bound->host_vars[*name].type, TypeId::kString);
  EXPECT_FALSE(bound->HostVarSlot("MISSING").ok());
}

TEST_F(BinderTest, TypeMismatchRejected) {
  auto bound = Bind("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 'RED'");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, NumericWideningAccepted) {
  EXPECT_TRUE(Bind("SELECT S.SNO FROM SUPPLIER S WHERE S.BUDGET > 100").ok());
}

TEST_F(BinderTest, PlanShapeForSpec) {
  auto bound = Bind(
      "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO");
  ASSERT_TRUE(bound.ok());
  const ProjectNode* project = As<ProjectNode>(bound->plan);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->mode(), DuplicateMode::kDist);
  const SelectNode* select = As<SelectNode>(project->input());
  ASSERT_NE(select, nullptr);
  EXPECT_NE(As<ProductNode>(select->input()), nullptr);
}

TEST_F(BinderTest, ExistsSplitsInnerOnlyConjuncts) {
  auto bound = Bind(
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const ProjectNode* project = As<ProjectNode>(bound->plan);
  ASSERT_NE(project, nullptr);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  // COLOR conjunct references only the inner table and is pushed into
  // the subplan; the correlation keeps only the crossing conjunct.
  const SelectNode* inner_select = As<SelectNode>(exists->sub());
  ASSERT_NE(inner_select, nullptr);
  EXPECT_NE(inner_select->predicate()->ToString().find("COLOR"),
            std::string::npos);
  EXPECT_EQ(exists->correlation()->ToString().find("COLOR"),
            std::string::npos);
}

TEST_F(BinderTest, InnerColumnsShadowOuter) {
  // Inside the subquery, unqualified PNO resolves to the inner PARTS
  // even though the outer also has a PARTS instance.
  auto bound = Bind(
      "SELECT P.PNO FROM PARTS P WHERE EXISTS "
      "(SELECT * FROM SUPPLIER S WHERE S.SNO = P.SNO AND SNAME IS NOT NULL)");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
}

TEST_F(BinderTest, NotInSubqueryUnsupported) {
  auto bound = Bind(
      "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO NOT IN "
      "(SELECT P.SNO FROM PARTS P)");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinderTest, NestedSubqueryInsideSubqueryUnsupported) {
  auto bound = Bind(
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE EXISTS "
      "(SELECT * FROM AGENTS A WHERE A.SNO = P.SNO))");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinderTest, ExistsUnderOrUnsupported) {
  auto bound = Bind(
      "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 OR EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinderTest, SetOpRequiresUnionCompatibility) {
  auto ok = Bind("SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM PARTS");
  EXPECT_TRUE(ok.ok());
  auto bad = Bind(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT PNAME FROM PARTS");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kBindError);
  auto arity =
      Bind("SELECT SNO, SNAME FROM SUPPLIER INTERSECT SELECT SNO FROM PARTS");
  EXPECT_FALSE(arity.ok());
}

TEST_F(BinderTest, CheckWithHostVarRejected) {
  Database db;
  Status st = db.ExecuteDdl("CREATE TABLE T (A INTEGER, CHECK (A = :X))");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, BetweenDesugarsToRangeConjunction) {
  auto bound =
      Bind("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO BETWEEN 5 AND 9");
  ASSERT_TRUE(bound.ok());
  const ProjectNode* project = As<ProjectNode>(bound->plan);
  const SelectNode* select = As<SelectNode>(project->input());
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->predicate()->ToString(),
            "(S.SNO >= 5 AND S.SNO <= 9)");
}

TEST_F(BinderTest, InListDesugarsToDisjunction) {
  auto bound =
      Bind("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO IN (1, 2)");
  ASSERT_TRUE(bound.ok());
  const SelectNode* select =
      As<SelectNode>(As<ProjectNode>(bound->plan)->input());
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->predicate()->ToString(), "(S.SNO = 1 OR S.SNO = 2)");
}

}  // namespace
}  // namespace uniqopt
