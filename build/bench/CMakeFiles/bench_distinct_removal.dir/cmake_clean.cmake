file(REMOVE_RECURSE
  "CMakeFiles/bench_distinct_removal.dir/bench_distinct_removal.cc.o"
  "CMakeFiles/bench_distinct_removal.dir/bench_distinct_removal.cc.o.d"
  "bench_distinct_removal"
  "bench_distinct_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distinct_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
