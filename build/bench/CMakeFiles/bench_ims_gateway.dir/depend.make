# Empty dependencies file for bench_ims_gateway.
# This may be replaced when dependencies are built.
