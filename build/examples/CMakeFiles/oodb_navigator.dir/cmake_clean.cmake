file(REMOVE_RECURSE
  "CMakeFiles/oodb_navigator.dir/oodb_navigator.cc.o"
  "CMakeFiles/oodb_navigator.dir/oodb_navigator.cc.o.d"
  "oodb_navigator"
  "oodb_navigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_navigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
