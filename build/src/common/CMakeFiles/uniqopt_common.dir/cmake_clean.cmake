file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_common.dir/status.cc.o"
  "CMakeFiles/uniqopt_common.dir/status.cc.o.d"
  "CMakeFiles/uniqopt_common.dir/string_util.cc.o"
  "CMakeFiles/uniqopt_common.dir/string_util.cc.o.d"
  "libuniqopt_common.a"
  "libuniqopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
