// A brute-force semantic oracle for Theorem 1: enumerate *all* small
// instances of a two-table schema and check, per query:
//   - soundness: whenever a detector answers YES, no instance produces
//     duplicate rows (the sufficiency direction);
//   - witness existence: for queries whose condition genuinely fails,
//     some instance produces duplicates (the necessity direction — the
//     paper's Theorem 1 proof constructs exactly such instances).
//
// Schema: R(A key, B nullable), S(C key, D nullable); domains {1, 2}
// for keys, {1, 2, NULL} for non-keys; instances of up to 2 rows per
// table. This is small enough to enumerate exhaustively (≈ 21 instances
// per table including the empty one) yet rich enough to exercise keys,
// equality closure, and NULL behaviour.

#include <gtest/gtest.h>

#include "analysis/uniqueness.h"
#include "test_util.h"

namespace uniqopt {
namespace {

/// All valid instances of a table (K NOT NULL key, V nullable): the
/// empty instance, all single rows, and all two-row combinations with
/// distinct keys.
std::vector<std::vector<Row>> EnumerateInstances() {
  std::vector<Value> keys = {Value::Integer(1), Value::Integer(2)};
  std::vector<Value> values = {Value::Integer(1), Value::Integer(2),
                               Value::Null(TypeId::kInteger)};
  std::vector<Row> tuples;
  for (const Value& k : keys) {
    for (const Value& v : values) {
      tuples.push_back(Row({k, v}));
    }
  }
  std::vector<std::vector<Row>> instances;
  instances.push_back({});
  for (const Row& t : tuples) instances.push_back({t});
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      if (tuples[i][0].NullSafeEquals(tuples[j][0])) continue;  // key!
      instances.push_back({tuples[i], tuples[j]});
    }
  }
  return instances;
}

struct OracleCase {
  const char* sql;
  /// Ground truth: is DISTINCT redundant over *all* valid instances?
  bool redundant;
};

class OracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleTest, ExhaustiveInstanceEnumeration) {
  const OracleCase& test_case = GetParam();
  std::vector<std::vector<Row>> instances = EnumerateInstances();

  bool found_duplicate_witness = false;
  bool analyzer_yes = false;
  size_t executed = 0;

  for (const std::vector<Row>& r_rows : instances) {
    for (const std::vector<Row>& s_rows : instances) {
      Database db;
      ASSERT_OK(db.ExecuteDdl(
          "CREATE TABLE R (A INTEGER NOT NULL, B INTEGER, "
          "PRIMARY KEY (A))"));
      ASSERT_OK(db.ExecuteDdl(
          "CREATE TABLE S (C INTEGER NOT NULL, D INTEGER, "
          "PRIMARY KEY (C))"));
      ASSERT_OK_AND_ASSIGN(Table * r, db.GetTable("R"));
      ASSERT_OK_AND_ASSIGN(Table * s, db.GetTable("S"));
      for (const Row& row : r_rows) ASSERT_OK(r->Insert(row));
      for (const Row& row : s_rows) ASSERT_OK(s->Insert(row));

      Binder binder(&db.catalog());
      auto bound = binder.BindSql(test_case.sql);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      if (executed == 0) {
        // The analyzer verdict is instance-independent; compute once.
        UniquenessVerdict verdict = AnalyzeDistinct(bound->plan);
        ASSERT_TRUE(verdict.has_distinct);
        analyzer_yes = verdict.distinct_unnecessary;
      }
      // Execute the ALL-mode variant and look for duplicates.
      const ProjectNode* project = As<ProjectNode>(bound->plan);
      ASSERT_NE(project, nullptr);
      PlanPtr all_mode = ProjectNode::Make(
          project->input(), DuplicateMode::kAll, project->columns());
      ExecContext ctx;
      auto rows = ExecutePlan(all_mode, db, &ctx);
      ASSERT_TRUE(rows.ok());
      if (HasDuplicates(*rows)) {
        found_duplicate_witness = true;
        // Soundness would already be violated; fail fast with context.
        ASSERT_FALSE(analyzer_yes)
            << test_case.sql << "\nanalyzer said YES but instance R="
            << RowsToString(std::vector<Row>(r_rows)) << "S="
            << RowsToString(std::vector<Row>(s_rows)) << "duplicates:\n"
            << RowsToString(*rows);
      }
      ++executed;
    }
  }

  // 16 instances per table (1 empty + 6 singletons + 9 key-distinct
  // pairs) ⇒ 256 combinations.
  EXPECT_EQ(executed, 256u);
  if (test_case.redundant) {
    EXPECT_FALSE(found_duplicate_witness) << test_case.sql;
  } else {
    // Necessity direction: Theorem 1's construction guarantees a
    // witness exists among small instances.
    EXPECT_TRUE(found_duplicate_witness) << test_case.sql;
    EXPECT_FALSE(analyzer_yes) << test_case.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, OracleTest,
    ::testing::Values(
        // Key projected: never duplicates.
        OracleCase{"SELECT DISTINCT A FROM R", true},
        OracleCase{"SELECT DISTINCT A, B FROM R", true},
        // Non-key projected: duplicates possible (two keys, same B —
        // including both NULL, which DISTINCT treats as equal).
        OracleCase{"SELECT DISTINCT B FROM R", false},
        // Constant-bound key.
        OracleCase{"SELECT DISTINCT B FROM R WHERE A = 1", true},
        // Join with both keys covered.
        OracleCase{"SELECT DISTINCT R.A, S.C FROM R, S "
                   "WHERE R.B = S.C",
                   true},
        // Join on non-key B = D: same (A, C) pair can only appear once
        // (keys of both sides projected) — still unique.
        OracleCase{"SELECT DISTINCT R.A, S.C FROM R, S WHERE R.B = S.D",
                   true},
        // Join projecting only one side's key: the other side may
        // match twice.
        OracleCase{"SELECT DISTINCT R.A FROM R, S WHERE R.B = S.D",
                   false},
        // Equality closure binds the S key through the join.
        OracleCase{"SELECT DISTINCT R.A, R.B FROM R, S WHERE R.B = S.C",
                   true},
        // Cross product without predicate: key ⊕ key is projected.
        OracleCase{"SELECT DISTINCT R.A, S.C FROM R, S", true},
        // Non-key columns only, joined: duplicates possible.
        OracleCase{"SELECT DISTINCT R.B, S.D FROM R, S WHERE R.A = S.C",
                   false}));

}  // namespace
}  // namespace uniqopt
