#include "verify/verify.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/null_audit.h"
#include "verify/plan_lint.h"
#include "verify/proof_checker.h"

namespace uniqopt {
namespace verify {

const char* AnalyzerName(Analyzer a) {
  switch (a) {
    case Analyzer::kPlanLint:
      return "plan-lint";
    case Analyzer::kProofChecker:
      return "proof-checker";
    case Analyzer::kNullAudit:
      return "null-audit";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::string out = std::string("[") + AnalyzerName(analyzer) + "/" + code +
                    "] " + message;
  if (!context.empty()) {
    out += "\n    ";
    // Indent multi-line context (plan renderings) under the finding.
    for (char c : context) {
      out += c;
      if (c == '\n') out += "    ";
    }
    while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
      out.pop_back();
    }
  }
  return out;
}

std::string VerifyReport::Summary() const {
  std::string out =
      Clean() ? "clean"
              : std::to_string(violations.size()) + " violation(s)";
  out += " (" + std::to_string(nodes_checked) + " node(s), " +
         std::to_string(proofs_checked) + " proof(s), " +
         std::to_string(correlations_audited) + " correlation(s))";
  return out;
}

std::string VerifyReport::ToString() const {
  std::string out = Summary() + "\n";
  for (const Violation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

VerifyReport VerifyPlan(const VerifyInput& input) {
  obs::Span span("verify.plan");
  VerifyReport report;
  LintPlan(input, &report);
  CheckProofs(input, &report);
  AuditNullSemantics(input, &report);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("verify.runs").Increment();
  if (report.Clean()) {
    reg.GetCounter("verify.clean").Increment();
  } else {
    reg.GetCounter("verify.plan.violations")
        .Increment(report.violations.size());
  }
  span.AddAttr("violations", static_cast<uint64_t>(report.violations.size()));
  span.AddAttr("nodes_checked",
               static_cast<uint64_t>(report.nodes_checked));
  return report;
}

}  // namespace verify
}  // namespace uniqopt
