# Empty dependencies file for uniqopt_facade.
# This may be replaced when dependencies are built.
