#ifndef UNIQOPT_ANALYSIS_SUBQUERY_H_
#define UNIQOPT_ANALYSIS_SUBQUERY_H_

#include <string>
#include <vector>

#include "analysis/proof.h"
#include "analysis/properties.h"
#include "common/result.h"
#include "obs/advisor.h"
#include "plan/plan.h"

namespace uniqopt {

/// Result of testing Theorem 2's condition on an existential subquery.
struct SubqueryVerdict {
  /// Theorem 2: for every outer row, at most one inner row can satisfy
  /// C_S ∧ C_{R,S} (every inner table's key is bound by constants, host
  /// variables, outer columns, or transitively via equalities). When
  /// true, EXISTS ⇔ plain join under ALL semantics.
  bool at_most_one_match = false;
  std::vector<std::string> trace;
  /// Structured closure/key-coverage proof over the outer ⊕ inner frame.
  ProofTrace proof;
  /// On NOT PROVEN: the minimal missing facts for the first inner table
  /// whose key coverage failed (feeds the constraint advisor).
  std::vector<obs::NearMiss> near_misses;

  /// Multi-line explanation of the Theorem 2 test.
  std::string ExplainProof() const;
};

/// Tests Theorem 2's uniqueness condition for `node` (a positive
/// existential semi-join). The outer columns [0, outer_width) act as
/// per-row constants; the test runs the Algorithm-1 bound-column closure
/// over the combined correlation predicate and checks key coverage of
/// every inner base table.
Result<SubqueryVerdict> TestSubqueryAtMostOneMatch(
    const ExistsNode& node, const AnalysisOptions& options = {});

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_SUBQUERY_H_
