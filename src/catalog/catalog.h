#ifndef UNIQOPT_CATALOG_CATALOG_H_
#define UNIQOPT_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "common/result.h"

namespace uniqopt {

/// Registry of base-table definitions. Names are case-insensitive and
/// canonicalized to upper case, mirroring SQL identifier folding.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table definition; fails on name collision.
  Status AddTable(TableDef def);

  /// Looks up a table by (case-insensitive) name.
  Result<const TableDef*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table; fails if absent.
  Status DropTable(const std::string& name);

  /// All table names in registration order.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

  /// Monotonic schema version: starts at 1 and bumps on every
  /// successful DDL (AddTable/DropTable). The plan cache mixes it into
  /// its fingerprints, so any schema change makes every cached plan's
  /// key unreachable. Safe to read concurrently with prepares; DDL
  /// itself is not thread-safe against concurrent catalog mutation
  /// (same contract as the table map).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Advances the schema version. Called internally by DDL, and by the
  /// storage layer on every committed DML statement and CREATE UNIQUE
  /// INDEX so cached plans (whose fingerprints mix the version) can
  /// never serve results computed against superseded constraints.
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  /// Mutable definition access for in-place constraint DDL (CREATE
  /// UNIQUE INDEX). The map node is stable, so pointers held by Table
  /// instances stay valid across the mutation; callers must serialize
  /// against concurrent prepares (same contract as AddTable/DropTable).
  Result<TableDef*> GetTableMutable(const std::string& name);

 private:
  std::map<std::string, TableDef> tables_;  // keyed by upper-cased name
  std::vector<std::string> order_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace uniqopt

#endif  // UNIQOPT_CATALOG_CATALOG_H_
