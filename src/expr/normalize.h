#ifndef UNIQOPT_EXPR_NORMALIZE_H_
#define UNIQOPT_EXPR_NORMALIZE_H_

#include <vector>

#include "common/result.h"
#include "expr/expr.h"

namespace uniqopt {

/// Default budget for CNF/DNF expansion. Distribution is worst-case
/// exponential; Algorithm 1 is abandoned (NO is returned by callers) when
/// a predicate exceeds the budget rather than stalling the optimizer.
inline constexpr size_t kDefaultNormalizeBudget = 4096;

/// Negation normal form: NOT is pushed onto atoms. Comparisons absorb the
/// negation into the operator (¬(a = b) ⇒ a <> b — sound in 3VL because
/// ¬UNKNOWN = UNKNOWN); IS NULL flips to IS NOT NULL.
ExprPtr ToNnf(const ExprPtr& expr);

/// Conjunctive normal form: AND of ORs of atoms. Fails with
/// kLimitExceeded when more than `budget` clauses would be produced.
Result<ExprPtr> ToCnf(const ExprPtr& expr,
                      size_t budget = kDefaultNormalizeBudget);

/// Disjunctive normal form: OR of ANDs of atoms. Fails with
/// kLimitExceeded when more than `budget` terms would be produced.
Result<ExprPtr> ToDnf(const ExprPtr& expr,
                      size_t budget = kDefaultNormalizeBudget);

/// Returns the top-level conjuncts (the expression itself if not an AND).
std::vector<ExprPtr> FlattenAnd(const ExprPtr& expr);
/// Returns the top-level disjuncts (the expression itself if not an OR).
std::vector<ExprPtr> FlattenOr(const ExprPtr& expr);

}  // namespace uniqopt

#endif  // UNIQOPT_EXPR_NORMALIZE_H_
