#ifndef UNIQOPT_OBS_HTTP_ENDPOINT_H_
#define UNIQOPT_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace uniqopt {
namespace obs {

/// Minimal blocking HTTP/1.1 observability endpoint: one listener
/// thread, one request per connection, loopback only. Serves
///
///   GET /metrics     Prometheus text exposition of the metrics registry
///   GET /trace       Chrome trace-event JSON of the attached trace sink
///   GET /queries     flight-recorder history as JSON
///   GET /advisor     uniqueness constraint advisor suggestions as JSON
///   GET /timeseries  windowed time-series plane snapshot (JSON)
///   GET /alerts      regression-sentinel alert ring (JSON)
///   GET /healthz     liveness: uptime + background ticker state (JSON)
///   GET /            plain-text index
///
/// HEAD is answered with the same headers and no body; unknown paths
/// get a 404 with an application/json error body so scrapers never have
/// to sniff the content type of a failure.
///
/// This is an operational plane for scrapes and debugging, not a web
/// server: no keep-alive, no TLS, bounded request size. Started from
/// the shell's \serve or embedded by a host process.
class HttpEndpoint {
 public:
  /// `sink` (optional) backs /trace; `recorder` defaults to the global
  /// flight recorder.
  explicit HttpEndpoint(CollectingSink* sink = nullptr,
                        QueryRecorder* recorder = nullptr);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds 127.0.0.1:`port` (0 ⇒ kernel-assigned, see port()) and
  /// starts the listener thread.
  Status Start(uint16_t port);

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// The bound port (resolved when Start was given 0).
  uint16_t port() const { return port_; }

  /// Renders the response body for `path` — the exact payloads the
  /// routes serve, exposed for file dumps (\export) and tests.
  /// Unknown paths yield an empty string.
  std::string RenderPath(const std::string& path) const;

 private:
  void Serve();
  void HandleConnection(int fd);

  CollectingSink* sink_;
  QueryRecorder* recorder_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> serving_{false};
  /// Steady-clock ns when Start() succeeded; /healthz reports uptime
  /// relative to this.
  std::atomic<uint64_t> start_steady_ns_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_HTTP_ENDPOINT_H_
