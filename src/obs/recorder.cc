#include "obs/recorder.h"

#include <chrono>
#include <cstdio>

#include <ctime>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace uniqopt {
namespace obs {

namespace {

/// "2026-08-09T12:34:56Z" (UTC) for a microseconds-since-epoch stamp;
/// empty when the record was never stamped.
std::string FormatWallTimeUs(uint64_t wall_time_us) {
  if (wall_time_us == 0) return "";
  std::time_t secs = static_cast<std::time_t>(wall_time_us / 1000000);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &secs);
#else
  gmtime_r(&secs, &tm_utc);
#endif
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

uint64_t NowWallTimeUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

uint64_t FingerprintPlanText(const std::string& canonical_plan_text) {
  // FNV-1a, 64-bit: stable across runs (unlike std::hash), cheap, and
  // good enough to treat equal hashes as equal plans in practice.
  uint64_t h = UINT64_C(0xcbf29ce484222325);
  for (char c : canonical_plan_text) {
    h ^= static_cast<unsigned char>(c);
    h *= UINT64_C(0x100000001b3);
  }
  return h;
}

std::string QueryRecord::ToString() const {
  char hash_buf[32];
  std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                static_cast<unsigned long long>(plan_hash));
  std::string when = FormatWallTimeUs(wall_time_us);
  std::string out = "#" + std::to_string(id) + " [" + source + "] " +
                    (ok ? "ok" : "ERROR") + " " +
                    std::to_string(total_ns / 1000) + "us" +
                    (cache_hit ? " (cached)" : "") +
                    (when.empty() ? "" : " @" + when) + "  " + query + "\n";
  if (!ok) {
    out += "    error: " + error + "\n";
    return out;
  }
  out += "    plan_hash=" + std::string(hash_buf) +
         " rows_out=" + std::to_string(rows_out);
  if (rows_scanned > 0) {
    out += " rows_scanned=" + std::to_string(rows_scanned);
  }
  out += "\n";
  if (!phase_ns.empty()) {
    out += "    phases:";
    for (const auto& [phase, ns] : phase_ns) {
      out += " " + phase + "=" + std::to_string(ns / 1000) + "us";
    }
    out += "\n";
  }
  if (!rewrites.empty()) {
    for (const auto& [rule, description] : rewrites) {
      out += "    rewrite " + rule + ": " + description + "\n";
    }
  } else {
    out += "    rewrites: none\n";
  }
  if (!proof_summary.empty()) {
    out += "    analysis: " + proof_summary + "\n";
  }
  if (!verify_summary.empty()) {
    out += "    verify: " + verify_summary + "\n";
  }
  if (equiv_proven + equiv_unproven + equiv_refuted > 0) {
    out += "    equiv: " + std::to_string(equiv_proven) + " proven / " +
           std::to_string(equiv_unproven) + " unproven / " +
           std::to_string(equiv_refuted) + " refuted\n";
  }
  for (const std::string& miss : near_misses) {
    out += "    near-miss: " + miss + "\n";
  }
  return out;
}

QueryRecorder::QueryRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryRecorder& QueryRecorder::Global() {
  static QueryRecorder* recorder = new QueryRecorder();
  return *recorder;
}

uint64_t QueryRecorder::Record(QueryRecord record) {
  uint64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  bool slow = threshold > 0 && record.total_ns >= threshold;
  uint64_t slow_id = 0;
  uint64_t slow_ns = record.total_ns;
  std::string slow_source, slow_query;
  if (slow) {
    slow_source = record.source;
    slow_query = record.query;
  }
  {
    // The id is assigned under the ring lock so snapshot order (oldest
    // first) always agrees with id order, even with concurrent writers.
    std::lock_guard<std::mutex> lock(mu_);
    record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    if (record.wall_time_us == 0) record.wall_time_us = NowWallTimeUs();
    if (record.steady_ns == 0) record.steady_ns = NowSteadyNs();
    slow_id = record.id;
    total_.fetch_add(1, std::memory_order_relaxed);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[head_] = std::move(record);
      head_ = (head_ + 1) % capacity_;
    }
  }
  if (slow) {
    UNIQOPT_LOG(kWarning) << "slow query #" << slow_id << " ["
                          << slow_source << "] " << slow_ns / 1000000
                          << "ms >= " << threshold / 1000000
                          << "ms: " << slow_query;
    MetricsRegistry::Global().GetCounter("recorder.slow_queries")
        .Increment();
  }
  return slow_id;
}

std::vector<QueryRecord> QueryRecorder::SnapshotLocked() const {
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<QueryRecord> QueryRecorder::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

std::vector<QueryRecord> QueryRecorder::SlowQueries() const {
  uint64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  std::vector<QueryRecord> out;
  if (threshold == 0) return out;
  for (QueryRecord& r : History()) {
    if (r.total_ns >= threshold) out.push_back(std::move(r));
  }
  return out;
}

void QueryRecorder::SetCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> ordered = SnapshotLocked();
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.end() - static_cast<ptrdiff_t>(capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(ordered);
  head_ = 0;
}

void QueryRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  // Ids keep counting (never reused); the total restarts so that
  // "retained of recorded" reads relative to the last clear.
  total_.store(0, std::memory_order_relaxed);
}

std::string QueryRecorder::ToText() const {
  std::vector<QueryRecord> records = History();
  if (records.empty()) return "(no queries recorded)\n";
  std::string out;
  for (const QueryRecord& r : records) out += r.ToString();
  out += "(" + std::to_string(records.size()) + " of " +
         std::to_string(total_recorded()) + " recorded queries retained)\n";
  return out;
}

std::string QueryRecorder::ToJson() const {
  std::vector<QueryRecord> records = History();
  std::string out = "{\"queries\": [";
  bool first = true;
  for (const QueryRecord& r : records) {
    out += first ? "\n" : ",\n";
    first = false;
    char hash_buf[32];
    std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                  static_cast<unsigned long long>(r.plan_hash));
    out += "  {\"id\": " + std::to_string(r.id) + ", ";
    out += "\"source\": \"" + JsonEscape(r.source) + "\", ";
    out += "\"query\": \"" + JsonEscape(r.query) + "\", ";
    out += "\"ok\": " + std::string(r.ok ? "true" : "false") + ", ";
    if (!r.ok) out += "\"error\": \"" + JsonEscape(r.error) + "\", ";
    out += "\"plan_hash\": \"" + std::string(hash_buf) + "\", ";
    out += "\"cache_hit\": " + std::string(r.cache_hit ? "true" : "false") +
           ", ";
    out += "\"total_ns\": " + std::to_string(r.total_ns) + ", ";
    out += "\"wall_time_us\": " + std::to_string(r.wall_time_us) + ", ";
    out += "\"wall_time\": \"" +
           JsonEscape(FormatWallTimeUs(r.wall_time_us)) + "\", ";
    out += "\"steady_ns\": " + std::to_string(r.steady_ns) + ", ";
    out += "\"rows_out\": " + std::to_string(r.rows_out) + ", ";
    out += "\"rows_scanned\": " + std::to_string(r.rows_scanned) + ", ";
    out += "\"phases\": {";
    bool pfirst = true;
    for (const auto& [phase, ns] : r.phase_ns) {
      if (!pfirst) out += ", ";
      pfirst = false;
      out += "\"" + JsonEscape(phase) + "\": " + std::to_string(ns);
    }
    out += "}, \"rewrites\": [";
    bool rfirst = true;
    for (const auto& [rule, description] : r.rewrites) {
      if (!rfirst) out += ", ";
      rfirst = false;
      out += "{\"rule\": \"" + JsonEscape(rule) + "\", \"description\": \"" +
             JsonEscape(description) + "\"}";
    }
    out += "], \"near_misses\": [";
    bool nfirst = true;
    for (const std::string& miss : r.near_misses) {
      if (!nfirst) out += ", ";
      nfirst = false;
      out += "\"" + JsonEscape(miss) + "\"";
    }
    out += "], \"analysis\": \"" + JsonEscape(r.proof_summary) + "\", ";
    out += "\"verify\": \"" + JsonEscape(r.verify_summary) + "\", ";
    out += "\"verify_violations\": " + std::to_string(r.verify_violations) +
           ", ";
    out += "\"equiv\": {\"proven\": " + std::to_string(r.equiv_proven) +
           ", \"unproven\": " + std::to_string(r.equiv_unproven) +
           ", \"refuted\": " + std::to_string(r.equiv_refuted) + "}}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace uniqopt
