#ifndef UNIQOPT_VERIFY_PROOF_CHECKER_H_
#define UNIQOPT_VERIFY_PROOF_CHECKER_H_

#include "fd/attribute_set.h"
#include "verify/verify.h"

namespace uniqopt {
namespace verify {

/// Re-verifies every uniqueness claim attached to the prepared query
/// with a deliberately simple reference implementation, independent of
/// the production Algorithm 1 machinery:
///  - a naive O(n^2) fixpoint bound-column closure that classifies
///    equality atoms by direct ExprKind inspection (no CNF normalizer,
///    no shared ClassifyAtom);
///  - an exhaustive candidate-key coverage scan (every key of every
///    table, no early exit);
///  - a recursive duplicate-freeness judgment for the Theorem 3 /
///    Corollary operand claims.
/// Any divergence from the production verdict — in either direction —
/// is a violation, plus internal-consistency checks of the recorded
/// ProofTrace itself. Appends findings to `report`.
void CheckProofs(const VerifyInput& input, VerifyReport* report);

/// Reference bound-column closure, exposed for tests: starting from
/// `initially_bound` over a `width`-column frame, binds every column
/// equated to a literal/host variable and closes transitively over
/// column=column equalities, honoring the ablation switches in
/// `options`. Conjuncts that are not atomic equalities are skipped.
AttributeSet ReferenceClosure(const std::vector<ExprPtr>& conjuncts,
                              const AttributeSet& initially_bound,
                              const AnalysisOptions& options,
                              bool* any_equality_kept = nullptr);

/// Reference duplicate-freeness judgment, exposed for tests: a sound,
/// possibly weaker re-derivation of IsProvablyDuplicateFree by
/// structural recursion (π_Dist / ∩_Dist / GROUP BY / keyed base
/// tables / reference Algorithm 1 for π_All specifications).
bool ReferenceDuplicateFree(const PlanPtr& plan,
                            const Algorithm1Options& options);

}  // namespace verify
}  // namespace uniqopt

#endif  // UNIQOPT_VERIFY_PROOF_CHECKER_H_
