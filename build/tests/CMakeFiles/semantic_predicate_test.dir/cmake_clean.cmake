file(REMOVE_RECURSE
  "CMakeFiles/semantic_predicate_test.dir/semantic_predicate_test.cc.o"
  "CMakeFiles/semantic_predicate_test.dir/semantic_predicate_test.cc.o.d"
  "semantic_predicate_test"
  "semantic_predicate_test.pdb"
  "semantic_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
