#!/usr/bin/env python3
"""Diff a benchmark --metrics-json dump against a checked-in baseline.

Both files use the stable export schema emitted by obs::ToMetricsJson
(bench_util.h --metrics-json and the Prometheus exporter render from the
same snapshot):

    {"metrics": [
      {"name": "...", "type": "counter", "value": 3},
      {"name": "...", "type": "histogram", "count": ..., "sum": ...,
       "min": ..., "max": ..., "mean": ..., "p50": ..., "p90": ...,
       "p99": ..., "buckets": [{"le": ..., "count": ...}, ...]}]}

Two regression classes fail the gate (exit code 1):

 * latency: a `.ns` histogram whose p50 grew by more than
   --latency-tolerance percent over baseline (histograms with a baseline
   p50 under --min-latency-ns are skipped as noise);
 * rewrite counts: a `rewrite.rule.<Rule>.fired` counter whose firing
   ratio (fired / considered, iteration-count invariant) dropped by more
   than --ratio-tolerance percent, or that stopped firing entirely while
   the baseline had firings;
 * cache hit ratio: any `<prefix>.hits` counter with a `<prefix>.misses`
   sibling whose hit ratio (hits / (hits + misses), iteration-count
   invariant) fell more than --cache-hit-tolerance percentage points
   below the baseline ratio — a cache that silently stopped hitting is
   a perf regression even if no single latency histogram trips.

Missing-in-current metrics that the baseline gates on are regressions
too: a deleted counter must be removed from the baseline deliberately.

A second input mode ingests the windowed time-series plane instead of a
cumulative metrics dump: --timeline takes the JSON written by the
shell's `\\export timeline` (or GET /timeseries) and reports, per
series, the retained window span, the median/worst window p50, the
last-window statistics, and the worst exemplar (the QueryRecord id to
look up in `\\history`). With --baseline pointing at an earlier timeline
export, the gate compares per-series median window p50 under the same
--latency-tolerance and fails on regressions (exit code 1).

A third mode gates the parallel execution layer's scaling invariants
rather than a baseline diff: --exec-scaling reads --current (a
bench_parallel_exec --metrics-json dump) and checks the speedup ratios
between the bench.exec.* histograms' p50s:

 * serial / parallel (dop 8)  >= --parallel-speedup-floor (default 3.0)
 * serial / batch    (dop 1)  >= --batch-speedup-floor    (default 1.5)

These are ratios within one run, so they hold on any machine speed; a
baseline diff alone would not catch the batch path silently degrading
into the tuple path when both got faster. Combine with --baseline to
also run the ordinary regression diff.

A fourth mode gates the index-backed execution layer the same way:
--index-exec reads --current (a bench_index_exec --metrics-json dump)
and checks the within-run p50 ratios of the bench.index.* histograms:

 * full_scan / point_lookup >= --index-lookup-speedup-floor (default 10.0)
 * join_hash / join_unique  >= --index-join-speedup-floor   (default 1.0)

i.e. a unique-index point probe must beat the equivalent full scan by
an order of magnitude, and dropping the hash-join build phase must
never be slower than building.
"""

import argparse
import fnmatch
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise SystemExit(
            f"{path}: not a stable-schema metrics dump (no 'metrics' key)")
    out = {}
    for m in doc["metrics"]:
        out[m["name"]] = m
    return out


def histogram_latency(metric):
    """Representative latency of a histogram sample: p50, mean fallback."""
    if metric.get("count", 0) == 0:
        return None
    p50 = metric.get("p50", 0)
    return p50 if p50 > 0 else metric.get("mean", 0)


def firing_ratio(metrics, fired_name):
    """fired / considered for a rewrite.rule counter, None if unknowable."""
    fired = metrics[fired_name]["value"]
    considered_name = fired_name.replace(".fired", ".considered")
    considered = metrics.get(considered_name, {}).get("value", 0)
    if considered == 0:
        return None
    return fired / considered


def hit_ratio(metrics, hits_name):
    """hits / (hits + misses) for a cache counter pair, None if unknowable."""
    hits = metrics[hits_name]["value"]
    misses_name = hits_name[: -len(".hits")] + ".misses"
    misses = metrics.get(misses_name, {}).get("value")
    if misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def compare(baseline, current, args):
    regressions = []
    checked = {"latency": 0, "rewrite": 0, "cache": 0}

    for name, base in sorted(baseline.items()):
        if base.get("type") != "histogram" or not name.endswith(".ns"):
            continue
        base_lat = histogram_latency(base)
        if base_lat is None or base_lat < args.min_latency_ns:
            continue
        cur = current.get(name)
        if cur is None:
            regressions.append(
                f"latency {name}: present in baseline, missing in current")
            continue
        cur_lat = histogram_latency(cur)
        if cur_lat is None:
            regressions.append(
                f"latency {name}: baseline has samples, current has none")
            continue
        checked["latency"] += 1
        limit = base_lat * (1 + args.latency_tolerance / 100.0)
        if cur_lat > limit:
            regressions.append(
                f"latency {name}: p50 {cur_lat:.0f}ns > {limit:.0f}ns "
                f"(baseline {base_lat:.0f}ns + {args.latency_tolerance}%)")

    for name, base in sorted(baseline.items()):
        if base.get("type") != "counter":
            continue
        if not fnmatch.fnmatch(name, "rewrite.rule.*.fired"):
            continue
        if base["value"] == 0:
            continue
        cur = current.get(name)
        if cur is None:
            regressions.append(
                f"rewrite {name}: fired in baseline, missing in current")
            continue
        checked["rewrite"] += 1
        if cur["value"] == 0:
            regressions.append(
                f"rewrite {name}: fired {base['value']}x in baseline, "
                f"stopped firing")
            continue
        base_ratio = firing_ratio(baseline, name)
        cur_ratio = firing_ratio(current, name)
        if base_ratio is None or cur_ratio is None:
            continue  # no considered counter: can't normalize iterations
        floor = base_ratio * (1 - args.ratio_tolerance / 100.0)
        if cur_ratio < floor:
            regressions.append(
                f"rewrite {name}: firing ratio {cur_ratio:.3f} < "
                f"{floor:.3f} (baseline {base_ratio:.3f} - "
                f"{args.ratio_tolerance}%)")

    for name, base in sorted(baseline.items()):
        if base.get("type") != "counter" or not name.endswith(".hits"):
            continue
        base_ratio = hit_ratio(baseline, name)
        if base_ratio is None:
            continue
        if name not in current:
            regressions.append(
                f"cache {name}: present in baseline, missing in current")
            continue
        cur_ratio = hit_ratio(current, name)
        if cur_ratio is None:
            regressions.append(
                f"cache {name}: baseline has traffic, current has none")
            continue
        checked["cache"] += 1
        floor = base_ratio - args.cache_hit_tolerance / 100.0
        if cur_ratio < floor:
            regressions.append(
                f"cache {name}: hit ratio {cur_ratio:.3f} < {floor:.3f} "
                f"(baseline {base_ratio:.3f} - "
                f"{args.cache_hit_tolerance} points)")

    return checked, regressions


def exec_scaling(current, args):
    """--exec-scaling mode: check speedup-ratio invariants between the
    bench.exec.* series of one bench_parallel_exec run."""
    failures = []
    ratios = {}

    def p50(name):
        m = current.get(name)
        if m is None or m.get("type") != "histogram":
            return None
        return histogram_latency(m)

    serial = p50("bench.exec.serial.ns")
    if serial is None:
        return {}, [f"exec-scaling: bench.exec.serial.ns missing from "
                    f"{args.current}"]

    for name in ("bench.exec.batch.ns", "bench.exec.dop2.ns",
                 "bench.exec.dop4.ns", "bench.exec.parallel.ns",
                 "bench.exec.join_distinct.ns",
                 "bench.exec.join_eliminated.ns",
                 "bench.exec.join_distinct_dop8.ns",
                 "bench.exec.join_eliminated_dop8.ns"):
        lat = p50(name)
        if lat is not None and lat > 0:
            ratios[name] = serial / lat

    def gate(name, floor, label):
        lat = p50(name)
        if lat is None:
            failures.append(f"exec-scaling: {name} missing (needed for the "
                            f"{label} gate)")
            return
        speedup = serial / lat
        if speedup < floor:
            failures.append(
                f"exec-scaling: {label} speedup {speedup:.2f}x < "
                f"{floor:.2f}x floor (serial p50 {serial:.0f}ns, "
                f"{name} p50 {lat:.0f}ns)")

    gate("bench.exec.parallel.ns", args.parallel_speedup_floor,
         "parallel dop-8")
    gate("bench.exec.batch.ns", args.batch_speedup_floor, "batch dop-1")
    return ratios, failures


def index_exec(current, args):
    """--index-exec mode: check speedup-ratio invariants between the
    bench.index.* series of one bench_index_exec run."""
    failures = []
    ratios = {}

    def p50(name):
        m = current.get(name)
        if m is None or m.get("type") != "histogram":
            return None
        return histogram_latency(m)

    def gate(fast_name, slow_name, floor, label):
        fast = p50(fast_name)
        slow = p50(slow_name)
        if fast is None or slow is None:
            missing = fast_name if fast is None else slow_name
            failures.append(f"index-exec: {missing} missing from "
                            f"{args.current} (needed for the {label} gate)")
            return
        if fast <= 0:
            failures.append(f"index-exec: {fast_name} p50 is zero")
            return
        speedup = slow / fast
        ratios[label] = speedup
        if speedup < floor:
            failures.append(
                f"index-exec: {label} speedup {speedup:.2f}x < "
                f"{floor:.2f}x floor ({slow_name} p50 {slow:.0f}ns, "
                f"{fast_name} p50 {fast:.0f}ns)")

    gate("bench.index.point_lookup.ns", "bench.index.full_scan.ns",
         args.index_lookup_speedup_floor, "point-lookup")
    gate("bench.index.join_unique.ns", "bench.index.join_hash.ns",
         args.index_join_speedup_floor, "unique-index-join")
    return ratios, failures


def load_timeline(path):
    """Loads a `\\export timeline` / GET /timeseries JSON document."""
    with open(path) as f:
        doc = json.load(f)
    ts = doc.get("timeseries") if isinstance(doc, dict) else None
    if not isinstance(ts, dict) or "series" not in ts:
        raise SystemExit(
            f"{path}: not a timeline export (no 'timeseries.series' key)")
    return ts


def timeline_series_summary(series):
    """Folds one series' retained windows into a gateable summary."""
    windows = [w for w in series.get("windows", []) if w.get("valid", True)]
    if not windows:
        return None
    p50s = sorted(w.get("p50", 0) for w in windows)
    worst = None
    for w in windows:
        ex = w.get("exemplar")
        if ex and (worst is None or ex["value"] > worst["value"]):
            worst = ex
    last = windows[-1]
    return {
        "kind": series.get("kind", ""),
        "windows": len(windows),
        "first_window": windows[0]["window"],
        "last_window": last["window"],
        "median_p50": p50s[len(p50s) // 2],
        "worst_p50": p50s[-1],
        "last_count": last.get("count", 0),
        "last_p50": last.get("p50", 0),
        "last_p99": last.get("p99", 0),
        "last_rate": last.get("rate", 0.0),
        "last_ratio": last.get("ratio", 0.0),
        "worst_exemplar": worst,
    }


def run_timeline(args):
    """--timeline mode: report a timeline export, optionally gated
    against a baseline export's per-series median window p50."""
    ts = load_timeline(args.timeline)
    summaries = {}
    for s in ts["series"]:
        folded = timeline_series_summary(s)
        if folded is not None:
            summaries[s["name"]] = folded

    print(f"bench_compare --timeline: {args.timeline} "
          f"({ts.get('ticks', 0)} tick(s), {len(summaries)} series)")
    for name, s in sorted(summaries.items()):
        line = (f"  {name} [{s['kind']}] windows {s['first_window']}"
                f"..{s['last_window']}")
        if s["kind"] in ("histogram", "class"):
            line += (f" median_p50={s['median_p50']}ns"
                     f" worst_p50={s['worst_p50']}ns"
                     f" last_p99={s['last_p99']}ns")
        elif s["kind"] == "ratio":
            line += f" last_ratio={s['last_ratio']:.3f}"
        else:
            line += f" last_rate={s['last_rate']:.1f}/s"
        if s["worst_exemplar"]:
            ex = s["worst_exemplar"]
            line += (f" exemplar=#{ex['record_id']}"
                     f" ({ex['value']}ns, plan {ex['fingerprint']})")
        print(line)

    regressions = []
    checked = 0
    if args.baseline:
        base = {}
        for s in load_timeline(args.baseline)["series"]:
            folded = timeline_series_summary(s)
            if folded is not None:
                base[s["name"]] = folded
        for name, b in sorted(base.items()):
            if b["kind"] not in ("histogram", "class"):
                continue
            if b["median_p50"] < args.min_latency_ns:
                continue
            cur = summaries.get(name)
            if cur is None:
                regressions.append(
                    f"timeline {name}: present in baseline, "
                    f"missing in current")
                continue
            checked += 1
            limit = b["median_p50"] * (1 + args.latency_tolerance / 100.0)
            if cur["median_p50"] > limit:
                regressions.append(
                    f"timeline {name}: median window p50 "
                    f"{cur['median_p50']}ns > {limit:.0f}ns (baseline "
                    f"{b['median_p50']}ns + {args.latency_tolerance}%)")
        print(f"  checked {checked} series against {args.baseline}")
        for r in regressions:
            print(f"  REGRESSION: {r}")
        print(f"  verdict: {'FAIL' if regressions else 'OK'}")

    if args.summary:
        with open(args.summary, "w") as f:
            json.dump(
                {
                    "timeline": args.timeline,
                    "ticks": ts.get("ticks", 0),
                    "series": summaries,
                    "checked": checked,
                    "regressions": regressions,
                    "ok": not regressions,
                },
                f,
                indent=2,
            )
            f.write("\n")
    return 1 if regressions else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--timeline",
                        help="ingest a `\\export timeline` / GET "
                             "/timeseries JSON instead of a metrics dump; "
                             "--baseline (another timeline export) is "
                             "optional in this mode")
    parser.add_argument("--latency-tolerance", type=float, default=50.0,
                        help="max p50 growth in percent (default 50)")
    parser.add_argument("--ratio-tolerance", type=float, default=10.0,
                        help="max firing-ratio drop in percent (default 10)")
    parser.add_argument("--min-latency-ns", type=float, default=500.0,
                        help="skip histograms with baseline p50 below this")
    parser.add_argument("--cache-hit-tolerance", type=float, default=15.0,
                        help="max hit-ratio drop in percentage points "
                             "(default 15)")
    parser.add_argument("--summary", default=None,
                        help="write a JSON verdict summary to this path")
    parser.add_argument("--exec-scaling", action="store_true",
                        help="gate the bench.exec.* speedup ratios of "
                             "--current instead of diffing a baseline")
    parser.add_argument("--parallel-speedup-floor", type=float, default=3.0,
                        help="min serial/parallel p50 ratio (default 3.0)")
    parser.add_argument("--batch-speedup-floor", type=float, default=1.5,
                        help="min serial/batch p50 ratio (default 1.5)")
    parser.add_argument("--index-exec", action="store_true",
                        help="gate the bench.index.* speedup ratios of "
                             "--current instead of diffing a baseline")
    parser.add_argument("--index-lookup-speedup-floor", type=float,
                        default=10.0,
                        help="min full-scan/point-lookup p50 ratio "
                             "(default 10.0)")
    parser.add_argument("--index-join-speedup-floor", type=float,
                        default=1.0,
                        help="min hash-join/unique-index-join p50 ratio "
                             "(default 1.0)")
    args = parser.parse_args()

    if args.timeline:
        return run_timeline(args)
    if args.exec_scaling:
        if not args.current:
            parser.error("--exec-scaling requires --current")
        current = load_metrics(args.current)
        ratios, failures = exec_scaling(current, args)
        print(f"bench_compare --exec-scaling: {args.current}")
        for name in sorted(ratios):
            print(f"  {name}: {ratios[name]:.2f}x vs serial")
        for f in failures:
            print(f"  REGRESSION: {f}")
        verdict = "FAIL" if failures else "OK"
        print(f"  verdict: {verdict}")
        if args.summary:
            with open(args.summary, "w") as f:
                json.dump(
                    {
                        "current": args.current,
                        "exec_scaling": {
                            "speedups_vs_serial": ratios,
                            "parallel_speedup_floor":
                                args.parallel_speedup_floor,
                            "batch_speedup_floor": args.batch_speedup_floor,
                        },
                        "regressions": failures,
                        "ok": not failures,
                    },
                    f,
                    indent=2,
                )
                f.write("\n")
        return 1 if failures else 0
    if args.index_exec:
        if not args.current:
            parser.error("--index-exec requires --current")
        current = load_metrics(args.current)
        ratios, failures = index_exec(current, args)
        print(f"bench_compare --index-exec: {args.current}")
        for name in sorted(ratios):
            print(f"  {name}: {ratios[name]:.2f}x vs scan baseline")
        for f in failures:
            print(f"  REGRESSION: {f}")
        verdict = "FAIL" if failures else "OK"
        print(f"  verdict: {verdict}")
        if args.summary:
            with open(args.summary, "w") as f:
                json.dump(
                    {
                        "current": args.current,
                        "index_exec": {
                            "speedups_vs_scan": ratios,
                            "index_lookup_speedup_floor":
                                args.index_lookup_speedup_floor,
                            "index_join_speedup_floor":
                                args.index_join_speedup_floor,
                        },
                        "regressions": failures,
                        "ok": not failures,
                    },
                    f,
                    indent=2,
                )
                f.write("\n")
        return 1 if failures else 0
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --timeline)")

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)
    checked, regressions = compare(baseline, current, args)

    print(f"bench_compare: {args.current} vs {args.baseline}")
    print(f"  checked {checked['latency']} latency histogram(s), "
          f"{checked['rewrite']} rewrite counter(s), "
          f"{checked['cache']} cache hit ratio(s)")
    for r in regressions:
        print(f"  REGRESSION: {r}")
    verdict = "FAIL" if regressions else "OK"
    print(f"  verdict: {verdict}")

    if args.summary:
        with open(args.summary, "w") as f:
            json.dump(
                {
                    "baseline": args.baseline,
                    "current": args.current,
                    "checked": checked,
                    "regressions": regressions,
                    "ok": not regressions,
                },
                f,
                indent=2,
            )
            f.write("\n")

    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
