# Empty dependencies file for uniqopt_workload.
# This may be replaced when dependencies are built.
