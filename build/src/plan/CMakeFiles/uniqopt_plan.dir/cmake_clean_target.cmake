file(REMOVE_RECURSE
  "libuniqopt_plan.a"
)
