#include "workload/query_corpus.h"

namespace uniqopt {

const std::vector<CorpusQuery>& DistinctQueryCorpus() {
  static const std::vector<CorpusQuery>* kCorpus = new std::vector<
      CorpusQuery>{
      // -- The paper's worked examples --------------------------------
      {"example1",
       "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
       true, true, true},
      {"example2",
       "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
       false, false, false},
      {"example4",
       "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
       "WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO",
       true, true, true},
      {"example6",
       "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P "
       "WHERE S.SNAME = :SUPPLIER_NAME AND S.SNO = P.SNO",
       true, true, true},
      // -- Single-table projections -----------------------------------
      {"single-pk-no-pred",  // C = T: verbatim line 10 answers NO.
       "SELECT DISTINCT SNO, SNAME FROM SUPPLIER", true, false, true},
      {"single-pk-pred",
       "SELECT DISTINCT SNO, SNAME FROM SUPPLIER WHERE SCITY = 'Toronto'",
       true, true, true},
      {"single-nonkey", "SELECT DISTINCT SNAME FROM SUPPLIER", false, false,
       false},
      {"const-bound-key",
       "SELECT DISTINCT SNAME FROM SUPPLIER WHERE SNO = :X", true, true,
       true},
      {"const-bound-key-lit",
       "SELECT DISTINCT S.SNAME, S.SCITY FROM SUPPLIER S WHERE S.SNO = 7",
       true, true, true},
      {"full-star-no-pred",  // C = T again.
       "SELECT DISTINCT * FROM PARTS", true, false, true},
      {"pk-partial",
       "SELECT DISTINCT P.SNO, P.PNAME FROM PARTS P WHERE P.PNO = :X", true,
       true, true},
      {"pk-partial-miss", "SELECT DISTINCT P.SNO, P.PNAME FROM PARTS P",
       false, false, false},
      // -- Candidate (UNIQUE) keys ------------------------------------
      {"unique-key-only",  // UNIQUE(OEM_PNO); C = T defeats verbatim.
       "SELECT DISTINCT P.OEM_PNO FROM PARTS P", true, false, true},
      {"unique-key-pred",
       "SELECT DISTINCT P.OEM_PNO, P.PNAME FROM PARTS P "
       "WHERE P.COLOR = 'RED'",
       true, true, true},
      // -- Predicate shapes -------------------------------------------
      {"range-conjunct-harmless",
       "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
       "WHERE S.SNO = P.SNO AND P.PNO > 5",
       true, true, true},
      {"between-harmless",  // All conjuncts are ranges ⇒ C = T ⇒ the
                            // verbatim algorithm answers NO (line 10).
       "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S "
       "WHERE S.BUDGET BETWEEN 100 AND 20000",
       true, false, true},
      {"disjunction-defeats",
       "SELECT DISTINCT SNAME FROM SUPPLIER WHERE SNO = 1 OR SNO = 2",
       false, false, false},
      {"in-list-defeats",
       "SELECT DISTINCT SNAME FROM SUPPLIER WHERE SNO IN (1, 2, 3)", false,
       false, false},
      {"no-join-pred",
       "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P", false, false,
       false},
      // -- Transitivity and FD-only detection -------------------------
      {"fd-only-chain",  // ANO → SNO → P.SNO needs FD reasoning beyond
                         // Algorithm 1's bound-column closure.
       "SELECT DISTINCT A.ANO, P.PNAME FROM AGENTS A, PARTS P "
       "WHERE A.SNO = P.SNO AND P.PNO = :P",
       true, false, true},
      {"three-table",
       "SELECT DISTINCT S.SNO, P.PNO, A.ANO "
       "FROM SUPPLIER S, PARTS P, AGENTS A "
       "WHERE S.SNO = P.SNO AND A.SNO = S.SNO",
       true, true, true},
      {"three-table-miss",
       "SELECT DISTINCT S.SNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A "
       "WHERE S.SNO = P.SNO AND A.SNO = S.SNO",
       false, false, false},
      {"agents-nonkey",
       "SELECT DISTINCT A.ANAME FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
       false, false, false},
  };
  return *kCorpus;
}

}  // namespace uniqopt
