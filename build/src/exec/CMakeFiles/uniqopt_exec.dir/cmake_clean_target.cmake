file(REMOVE_RECURSE
  "libuniqopt_exec.a"
)
