#include "index/unique_index.h"

namespace uniqopt {

Status UniqueIndex::Insert(const Row& row, size_t ordinal,
                           const std::string& key_name,
                           const std::string& table_name) {
  Row key = row.Project(key_columns_);
  auto [it, inserted] = map_.emplace(std::move(key), ordinal);
  if (!inserted) {
    return Status::ConstraintViolation(
        "duplicate key " + it->first.ToString() + " for " + key_name +
        " on " + table_name);
  }
  return Status::OK();
}

Result<UniqueIndex> UniqueIndex::Build(const std::vector<Row>& rows,
                                       std::vector<size_t> key_columns,
                                       const std::string& key_name,
                                       const std::string& table_name) {
  UniqueIndex index(std::move(key_columns));
  index.map_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    UNIQOPT_RETURN_NOT_OK(index.Insert(rows[i], i, key_name, table_name));
  }
  return index;
}

}  // namespace uniqopt
