#include "analysis/uniqueness.h"

namespace uniqopt {

std::string UniquenessVerdict::ExplainProof() const {
  std::string out = "uniqueness verdict: ";
  if (!has_distinct) {
    out += distinct_unnecessary
               ? "output is duplicate-free (no DISTINCT present)"
               : "no DISTINCT present";
  } else {
    out += distinct_unnecessary ? "DISTINCT is unnecessary"
                                : "DISTINCT is required (not proven redundant)";
  }
  out += "\ndetector: ";
  out += detector == DetectorKind::kAlgorithm1 ? "Algorithm 1 (paper §4)"
                                               : "FD/key propagation";
  out += "\n";
  if (proof.recorded) {
    out += proof.ToText();
  } else {
    for (const std::string& line : trace) out += line + "\n";
  }
  return out;
}

Result<UniquenessVerdict> AnalyzeDistinctAlgorithm1(
    const PlanPtr& plan, const Algorithm1Options& options) {
  UniquenessVerdict verdict;
  verdict.detector = DetectorKind::kAlgorithm1;
  const ProjectNode* project = As<ProjectNode>(plan);
  if (project == nullptr) {
    return Status::Unsupported("plan does not end in a projection");
  }
  verdict.has_distinct = project->mode() == DuplicateMode::kDist;
  UNIQOPT_ASSIGN_OR_RETURN(SpecShape shape, ExtractSpecShape(plan));
  UNIQOPT_ASSIGN_OR_RETURN(Algorithm1Result result,
                           RunAlgorithm1(shape, options));
  verdict.distinct_unnecessary = result.yes;
  verdict.trace = std::move(result.trace);
  verdict.proof = std::move(result.proof);
  // Missing facts only matter when there is a DISTINCT to eliminate.
  if (verdict.has_distinct) {
    verdict.near_misses = std::move(result.near_misses);
  }
  return verdict;
}

UniquenessVerdict AnalyzeDistinctFd(const PlanPtr& plan,
                                    const AnalysisOptions& options) {
  UniquenessVerdict verdict;
  verdict.detector = DetectorKind::kFdPropagation;
  const ProjectNode* project = As<ProjectNode>(plan);
  PlanPtr all_mode = plan;
  if (project != nullptr) {
    verdict.has_distinct = project->mode() == DuplicateMode::kDist;
    if (verdict.has_distinct) {
      // Ask whether the *ALL-mode* projection is already duplicate-free;
      // analyzing the Dist node itself would trivially report a key.
      all_mode = ProjectNode::Make(project->input(), DuplicateMode::kAll,
                                   project->columns());
    }
    // For ALL-mode projections the question "would a DISTINCT here be
    // redundant" is still well-defined (and what Algorithm 1 answers);
    // fall through and compute it.
    DerivedProperties props = DeriveProperties(all_mode, options);
    verdict.distinct_unnecessary = props.IsDuplicateFree();
    verdict.trace.push_back("derived properties: " + props.ToString());
    verdict.trace.push_back(verdict.distinct_unnecessary
                                ? "derived key exists: duplicates impossible"
                                : "no derived key: duplicates possible");
    return verdict;
  } else if (const SetOpNode* setop = As<SetOpNode>(plan);
             setop != nullptr && setop->mode() == DuplicateMode::kDist) {
    verdict.has_distinct = true;
    // Corollary 2 direction: ∩_Dist ≡ ∩_All when either operand is
    // duplicate-free (and likewise the result of −_All over a
    // duplicate-free left operand has no duplicates).
    all_mode = nullptr;
    DerivedProperties left = DeriveProperties(setop->left(), options);
    DerivedProperties right = DeriveProperties(setop->right(), options);
    bool dup_free = setop->op() == SetOpAlgebra::kIntersect
                        ? (left.IsDuplicateFree() || right.IsDuplicateFree())
                        : left.IsDuplicateFree();
    verdict.distinct_unnecessary = dup_free;
    verdict.trace.push_back(
        std::string("set operation operands duplicate-free: left=") +
        (left.IsDuplicateFree() ? "yes" : "no") + " right=" +
        (right.IsDuplicateFree() ? "yes" : "no"));
    return verdict;
  }
  // Other shapes (bare set-op in ALL mode, Exists, ...): analyze the
  // plan's own output directly.
  DerivedProperties props = DeriveProperties(all_mode, options);
  verdict.distinct_unnecessary = props.IsDuplicateFree();
  verdict.trace.push_back("derived properties: " + props.ToString());
  verdict.trace.push_back(verdict.distinct_unnecessary
                              ? "derived key exists: duplicates impossible"
                              : "no derived key: duplicates possible");
  return verdict;
}

UniquenessVerdict AnalyzeDistinct(const PlanPtr& plan,
                                  const Algorithm1Options& options) {
  Result<UniquenessVerdict> a1 = AnalyzeDistinctAlgorithm1(plan, options);
  if (a1.ok() && (a1->distinct_unnecessary || !a1->has_distinct)) {
    return *a1;
  }
  UniquenessVerdict fd = AnalyzeDistinctFd(plan, options);
  if (a1.ok() && !fd.distinct_unnecessary) {
    // Keep the (more readable) Algorithm 1 trace for NO verdicts.
    return *a1;
  }
  return fd;
}

}  // namespace uniqopt
