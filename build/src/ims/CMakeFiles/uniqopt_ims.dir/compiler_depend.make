# Empty compiler generated dependencies file for uniqopt_ims.
# This may be replaced when dependencies are built.
