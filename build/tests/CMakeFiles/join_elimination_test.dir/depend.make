# Empty dependencies file for join_elimination_test.
# This may be replaced when dependencies are built.
