#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace uniqopt {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-';  // Permit SQL-in-the-paper names like OEM-PNO.
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      ++i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      // A trailing '-' belongs to an operator/comment, not the identifier.
      while (i > start + 1 && sql[i - 1] == '-') --i;
      tok.type = TokenType::kIdentifier;
      tok.original = std::string(sql.substr(start, i - start));
      tok.text = ToUpperAscii(tok.original);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      bool is_double = false;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tok.type = is_double ? TokenType::kDouble : TokenType::kInteger;
      tok.text = std::string(sql.substr(start, i - start));
      tok.original = tok.text;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            content += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        content += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = content;
      tok.original = content;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == ':') {
      size_t start = i + 1;
      if (start >= n || !IsIdentStart(sql[start])) {
        return Status::ParseError("expected host variable name after ':'");
      }
      size_t j = start + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      while (j > start + 1 && sql[j - 1] == '-') --j;
      tok.type = TokenType::kHostVar;
      tok.original = std::string(sql.substr(start, j - start));
      tok.text = ToUpperAscii(tok.original);
      i = j;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-character operators.
    auto symbol = [&](std::string s) {
      tok.type = TokenType::kSymbol;
      tok.text = std::move(s);
      tok.original = tok.text;
      tokens.push_back(tok);
    };
    if (c == '<') {
      if (i + 1 < n && sql[i + 1] == '>') {
        symbol("<>");
        i += 2;
      } else if (i + 1 < n && sql[i + 1] == '=') {
        symbol("<=");
        i += 2;
      } else {
        symbol("<");
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        symbol(">=");
        i += 2;
      } else {
        symbol(">");
        ++i;
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < n && sql[i + 1] == '=') {
        symbol("<>");
        i += 2;
        continue;
      }
      return Status::ParseError("unexpected character '!' at offset " +
                                std::to_string(i));
    }
    switch (c) {
      case '=':
      case '(':
      case ')':
      case ',':
      case '.':
      case '*':
      case ';':
        symbol(std::string(1, c));
        ++i;
        continue;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(i));
    }
  }
  Token end;
  end.type = TokenType::kEndOfInput;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace uniqopt
