#include "analysis/algorithm1.h"

#include "expr/equality.h"
#include "expr/normalize.h"

namespace uniqopt {

std::string Algorithm1Result::TraceToString() const {
  std::string out;
  for (const std::string& line : trace) {
    out += line;
    out += "\n";
  }
  return out;
}

AttributeSet BoundColumnClosure(const std::vector<ExprPtr>& conjuncts,
                                const AttributeSet& initially_bound,
                                const AnalysisOptions& options,
                                std::vector<std::string>* trace,
                                bool* any_equality_kept) {
  // Lines 6–9: keep only conjuncts that are single atomic Type 1 / Type 2
  // equalities. A conjunct that is a disjunction ("X = 5 OR X = 10") or a
  // non-equality atom is deleted; deletion weakens C, so the final test
  // remains sufficient.
  std::vector<EqualityAtom> kept;
  for (const ExprPtr& conj : conjuncts) {
    std::vector<ExprPtr> disjuncts = FlattenOr(conj);
    if (disjuncts.size() > 1) {
      if (trace != nullptr) {
        trace->push_back("  delete disjunctive conjunct: " + conj->ToString());
      }
      continue;
    }
    if (conj->IsTrueLiteral()) continue;
    EqualityAtom atom = ClassifyAtom(conj);
    if (atom.type == AtomType::kOther) {
      if (trace != nullptr) {
        trace->push_back("  delete non-equality conjunct: " +
                         conj->ToString());
      }
      continue;
    }
    if (atom.type == AtomType::kType1ColumnConstant &&
        !options.bind_constants) {
      continue;
    }
    if (atom.type == AtomType::kType2ColumnColumn &&
        !options.use_column_equivalence) {
      continue;
    }
    if (trace != nullptr) {
      trace->push_back(
          std::string("  keep ") +
          (atom.type == AtomType::kType1ColumnConstant ? "Type 1" : "Type 2") +
          " conjunct: " + conj->ToString());
    }
    kept.push_back(atom);
  }
  if (any_equality_kept != nullptr) *any_equality_kept = !kept.empty();

  // Line 13–14: V starts as the projection attributes plus every column
  // equated to a constant or host variable.
  AttributeSet bound = initially_bound;
  for (const EqualityAtom& atom : kept) {
    if (atom.type == AtomType::kType1ColumnConstant) bound.Add(atom.column);
  }
  // Lines 15–16: transitive closure of V over Type 2 conditions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EqualityAtom& atom : kept) {
      if (atom.type != AtomType::kType2ColumnColumn) continue;
      if (bound.Contains(atom.column) && !bound.Contains(atom.other_column)) {
        bound.Add(atom.other_column);
        changed = true;
      } else if (bound.Contains(atom.other_column) &&
                 !bound.Contains(atom.column)) {
        bound.Add(atom.column);
        changed = true;
      }
    }
  }
  return bound;
}

Result<Algorithm1Result> RunAlgorithm1(const SpecShape& shape,
                                       const Algorithm1Options& options) {
  Algorithm1Result result;
  // Line 5: C := C_R ∧ C_S ∧ C_{R,S} ∧ T, in CNF. Top-level conjuncts of
  // each Select predicate are CNF-normalized individually so that e.g.
  // `a = b AND (x = 1 OR y = 2)` keeps its useful first conjunct.
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : shape.predicates) {
    Result<ExprPtr> cnf = ToCnf(pred, options.normalize_budget);
    if (!cnf.ok()) {
      // Predicate too complex to normalize: give up conservatively.
      result.yes = false;
      result.trace.push_back("CNF budget exceeded; answer NO");
      return result;
    }
    for (const ExprPtr& c : FlattenAnd(*cnf)) conjuncts.push_back(c);
  }
  result.trace.push_back("C has " + std::to_string(conjuncts.size()) +
                         " conjunct(s)");

  // Projection attribute positions (over the product schema).
  AttributeSet projection =
      AttributeSet::FromVector(shape.project->columns());
  result.trace.push_back("V initialized to projection attributes " +
                         projection.ToString());

  bool any_kept = false;
  AttributeSet bound = BoundColumnClosure(conjuncts, projection, options,
                                          &result.trace, &any_kept);
  if (!any_kept && options.verbatim_line10) {
    // Line 10 of the published algorithm: C reduced to T ⇒ NO.
    result.yes = false;
    result.bound_columns = bound;
    result.trace.push_back("C = T after deletions; verbatim line 10: NO");
    return result;
  }
  result.bound_columns = bound;
  result.trace.push_back("closure V = " + bound.ToString());

  // Line 17: Key(R) ⊕ Key(S) ⊆ V — generalized: every FROM table must
  // have at least one candidate key fully inside V.
  for (const SpecShape::BaseTable& bt : shape.tables) {
    const TableDef& table = bt.get->table();
    if (!table.HasAnyKey()) {
      result.yes = false;
      result.trace.push_back("table " + table.name() +
                             " has no declared key: NO");
      return result;
    }
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      AttributeSet key_set =
          AttributeSet::FromVector(key.columns).Shifted(bt.offset);
      if (key_set.IsSubsetOf(bound)) {
        result.trace.push_back("key " + key.name + " of " + table.name() +
                               " covered by V");
        covered = true;
        break;
      }
    }
    if (!covered) {
      result.yes = false;
      result.trace.push_back("no candidate key of " + table.name() +
                             " (" + bt.get->alias() + ") is covered: NO");
      return result;
    }
  }
  result.yes = true;
  result.trace.push_back("all table keys covered: YES");
  return result;
}

}  // namespace uniqopt
