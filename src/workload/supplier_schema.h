#ifndef UNIQOPT_WORKLOAD_SUPPLIER_SCHEMA_H_
#define UNIQOPT_WORKLOAD_SUPPLIER_SCHEMA_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace uniqopt {

/// Options for the hypothetical supplier database of Figure 1.
struct SupplierSchemaOptions {
  /// Upper bound of the `CHECK (SNO BETWEEN 1 AND max_sno)` constraint.
  /// The paper uses 499; benchmarks raise it to scale the data.
  int64_t max_sno = 499;
  /// Include the CHECK table constraints of §2.1 (SNO range, SCITY city
  /// list, BUDGET/STATUS implication).
  bool with_check_constraints = true;
  /// Declare the UNIQUE (OEM_PNO) candidate key on PARTS.
  bool with_oem_unique = true;
  /// Declare PRIMARY KEY (SNO) on SUPPLIER. Turning this off yields the
  /// constraint advisor's canonical near-miss fixture: DISTINCT-on-SNO
  /// proofs fail exactly for want of this key. Implies suppressing the
  /// PARTS/AGENTS foreign keys (they reference SUPPLIER (SNO)).
  bool with_supplier_primary_key = true;
  /// Declare the Figure 1 inclusion dependencies ("Tuples in PARTS
  /// reference the SUPPLIER who supply them; tuples in AGENTS reference
  /// the SUPPLIER they represent"): PARTS.SNO → SUPPLIER.SNO and
  /// AGENTS.SNO → SUPPLIER.SNO.
  bool with_foreign_keys = true;
};

/// Creates the paper's example schema (Figure 1) in `db`:
///   SUPPLIER(SNO, SNAME, SCITY, BUDGET, STATUS)        PK (SNO)
///   PARTS(SNO, PNO, PNAME, OEM_PNO, COLOR)             PK (SNO, PNO),
///                                                      UNIQUE (OEM_PNO)
///   AGENTS(SNO, ANO, ANAME, ACITY)                     PK (ANO)
/// with the CHECK constraints of §2.1.
Status CreateSupplierSchema(Database* db,
                            const SupplierSchemaOptions& options = {});

/// Data-population knobs. Generation is deterministic for a given seed.
struct SupplierDataOptions {
  size_t num_suppliers = 100;
  size_t parts_per_supplier = 10;
  size_t num_agents = 50;
  /// Fraction of suppliers sharing a name with another supplier — makes
  /// Example 2's duplicate-producing query actually produce duplicates.
  double duplicate_sname_fraction = 0.3;
  /// Fraction of parts colored 'RED' (the predicate the paper's examples
  /// filter on).
  double red_fraction = 0.25;
  /// Give (at most) one part a NULL OEM_PNO — the most a candidate key
  /// admits under the paper's `=!` reading of UNIQUE.
  bool one_null_oem = true;
  /// Probability that any nullable non-key column is NULL. CHECK
  /// constraints are true-interpreted, so NULLs always pass them.
  double null_fraction = 0.0;
  uint64_t seed = 42;
};

/// Fills SUPPLIER/PARTS/AGENTS with synthetic rows satisfying every
/// declared constraint. Requires max_sno >= num_suppliers.
Status PopulateSupplierDatabase(Database* db,
                                const SupplierDataOptions& options = {});

/// Convenience: schema + data sized for unit tests (the defaults above).
Status MakeTestSupplierDatabase(Database* db);

}  // namespace uniqopt

#endif  // UNIQOPT_WORKLOAD_SUPPLIER_SCHEMA_H_
