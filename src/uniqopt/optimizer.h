#ifndef UNIQOPT_UNIQOPT_OPTIMIZER_H_
#define UNIQOPT_UNIQOPT_OPTIMIZER_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/uniqueness.h"
#include "cache/plan_cache.h"
#include "common/result.h"
#include "exec/cost_model.h"
#include "exec/planner.h"
#include "obs/advisor.h"
#include "plan/binder.h"
#include "rewrite/rewriter.h"
#include "storage/table.h"
#include "verify/verify.h"

namespace uniqopt {

/// Whether Prepare runs the post-optimization verifier automatically.
/// Debug and test builds (the CMake default, UNIQOPT_VERIFY_PLANS=ON)
/// verify every plan; builds configured with -DUNIQOPT_VERIFY_PLANS=OFF
/// leave it to the sweep tests, Optimizer::set_verify_plans(true), or
/// an explicit Verify() call.
#if defined(UNIQOPT_VERIFY_PLANS_DEFAULT) && UNIQOPT_VERIFY_PLANS_DEFAULT == 0
inline constexpr bool kVerifyPlansByDefault = false;
#else
inline constexpr bool kVerifyPlansByDefault = true;
#endif

/// A fully prepared query: logical plan before/after rewriting, the
/// rewrites that fired, and the host-variable signature.
struct PreparedQuery {
  std::string sql;
  PlanPtr original_plan;
  PlanPtr optimized_plan;
  std::vector<AppliedRewrite> rewrites;
  std::vector<HostVariable> host_vars;
  /// DISTINCT analysis of the bound (pre-rewrite) plan, proof included;
  /// EXPLAIN renders it via UniquenessVerdict::ExplainProof().
  UniquenessVerdict analysis;
  /// Proofs that failed by one missing fact, merged from the standalone
  /// analysis and the rewriter's gating verdicts and deduplicated by
  /// (goal, table, fact). Also published to the global AdvisorStore.
  std::vector<obs::NearMiss> near_misses;
  /// Filled by cost-based preparation: the physical strategy selected
  /// for `optimized_plan`, its label, and the estimate that won.
  bool cost_based = false;
  PhysicalOptions chosen_physical;
  std::string chosen_label;
  PlanEstimate chosen_estimate;
  /// Flight-recorder payload: per-phase preparation latencies in
  /// pipeline order, and the FNV-1a fingerprint of the optimized plan's
  /// canonical printed form (equal hash ⇒ structurally equal plan).
  std::vector<std::pair<std::string, uint64_t>> phase_ns;
  uint64_t plan_hash = 0;
  /// Canonical-shape fingerprint of the SQL (literals parameterized,
  /// catalog-version independent) — the query *class* key shared with
  /// the advisor and the plan cache's canonical form. The time-series
  /// plane buckets per-class prepare/execute latencies under it. 0 when
  /// the SQL did not lex.
  uint64_t class_fingerprint = 0;
  /// Post-optimization static verification (plan lint, proof checker,
  /// null-semantics audit). `verified` tells whether the pass ran.
  bool verified = false;
  verify::VerifyReport verification;
  /// Whether this prepare was served from the plan cache (parse,
  /// Algorithm 1, rewriting and verification all skipped). Only set on
  /// by-value copies handed out by Prepare; the cached master stays
  /// false.
  bool cache_hit = false;

  /// EXPLAIN-style report: both plans and the rewrite audit trail.
  std::string Explain() const;
};

/// The end-to-end facade: parse → bind → semantic rewrite → execute.
/// This is the API the examples and a downstream embedder use; the
/// individual layers remain available for finer control.
class Optimizer {
 public:
  /// When `use_cost_model` is set, Prepare additionally costs the
  /// original and rewritten plans under the standard physical
  /// alternatives (§5: "choose the most appropriate strategy on the
  /// basis of its cost model") and pins the winner.
  explicit Optimizer(Database* db, RewriteOptions rewrite_options = {},
                     bool use_cost_model = false,
                     cache::PlanCacheOptions cache_options = {})
      : db_(db),
        rewrite_options_(std::move(rewrite_options)),
        use_cost_model_(use_cost_model),
        cache_(std::make_shared<cache::PlanCache>(cache_options)) {}

  /// Parses, binds and rewrites `sql` (and cost-chooses, when enabled).
  /// Served from the plan cache when a prepare of the same canonical
  /// SQL under the same catalog version is cached (`cache_hit` set on
  /// the returned copy).
  Result<PreparedQuery> Prepare(const std::string& sql) const;

  /// The zero-copy prepare: returns the immutable cached entry itself
  /// (or the freshly prepared one, which is simultaneously inserted).
  /// This is the hot path — a hit costs one fingerprint plus a
  /// shard-level shared lock, no plan copies. `cache_hit`, when
  /// non-null, reports whether the entry came from the cache.
  ///
  /// Thread-safe: concurrent PrepareShared calls on one Optimizer are
  /// supported (concurrent DDL is not — same contract as Catalog).
  Result<std::shared_ptr<const PreparedQuery>> PrepareShared(
      const std::string& sql, bool* cache_hit = nullptr) const;

  /// Prepares a whole workload on `threads` worker threads (0 ⇒
  /// hardware concurrency), preserving input order in the result.
  /// Fails with the lowest-index error if any prepare fails.
  Result<std::vector<std::shared_ptr<const PreparedQuery>>> PrepareBatch(
      std::span<const std::string> sqls, unsigned threads = 0) const;

  /// Executes a prepared query's optimized plan. `params` supplies host
  /// variables by name (case-insensitive); all declared host variables
  /// must be bound. With `profile` non-null, every operator is metered
  /// into it (rows in/out and time per operator).
  Result<std::vector<Row>> Execute(
      const PreparedQuery& query,
      const std::vector<std::pair<std::string, Value>>& params = {},
      const PhysicalOptions& physical = {}, ExecStats* stats = nullptr,
      ExecProfile* profile = nullptr) const;

  /// EXPLAIN ANALYZE: executes the prepared query with per-operator
  /// metering and reports the plans/rewrites, the operator profile, the
  /// executor work counters, and the registry counters this execution
  /// moved (e.g. ims.dli.* for gateway programs run in the same scope).
  Result<std::string> ExplainAnalyze(
      const PreparedQuery& query,
      const std::vector<std::pair<std::string, Value>>& params = {},
      const PhysicalOptions& physical = {}) const;

  /// One-shot convenience: Prepare + Execute.
  Result<std::vector<Row>> Query(
      const std::string& sql,
      const std::vector<std::pair<std::string, Value>>& params = {},
      const PhysicalOptions& physical = {}, ExecStats* stats = nullptr) const;

  /// Runs the DISTINCT analysis without rewriting (diagnostics).
  Result<UniquenessVerdict> AnalyzeSql(const std::string& sql) const;

  /// Runs the post-optimization verifier over an already-prepared query
  /// (the shell's \verify, and anyone who prepared with auto-verify
  /// off). Prepare calls this internally when verify_plans() is set.
  verify::VerifyReport Verify(const PreparedQuery& query) const;

  /// Toggles automatic verification inside Prepare (defaults to
  /// kVerifyPlansByDefault: on in debug builds, off in release).
  void set_verify_plans(bool on) { verify_plans_ = on; }
  bool verify_plans() const { return verify_plans_; }

  /// Toggles publication of near-miss records to the global advisor
  /// store (on by default; the advisor-off bench path disables it).
  void set_advise(bool on) { advise_ = on; }
  bool advise() const { return advise_; }

  /// Toggles the symbolic equivalence prover inside verification
  /// (defaults to equiv::kCheckEquivByDefault, the CMake
  /// UNIQOPT_CHECK_EQUIV option). Only consulted when verification
  /// runs at all.
  void set_check_equiv(bool on) { check_equiv_ = on; }
  bool check_equiv() const { return check_equiv_; }

  /// Default physical options for this optimizer: the shell's \set
  /// dop/batch land here. Folded (via CacheSalt) into plan-cache
  /// fingerprints so entries prepared under different physical defaults
  /// never collide, and consulted by cost-based preparation (dop > 1
  /// adds parallel alternatives to the candidate pool).
  void set_default_physical(const PhysicalOptions& physical) {
    default_physical_ = physical;
  }
  const PhysicalOptions& default_physical() const { return default_physical_; }

  /// Extra salt ORed into plan-cache fingerprints. What-if replay sets
  /// a private bit so hypothetical-catalog prepares can never be served
  /// from (or pollute) entries keyed to the real catalog.
  void set_extra_fingerprint_salt(uint64_t salt) {
    extra_fingerprint_salt_ = salt;
  }
  uint64_t extra_fingerprint_salt() const { return extra_fingerprint_salt_; }

  Database* database() const { return db_; }
  const RewriteOptions& rewrite_options() const { return rewrite_options_; }

  /// The optimizer's plan cache (never null; may be disabled). The
  /// cache is also bypassed while the cost model is on: cost estimates
  /// depend on live table sizes, which the catalog version does not
  /// track.
  cache::PlanCache* plan_cache() const { return cache_.get(); }

 private:
  /// The full parse → bind → analyze → rewrite → [cost] → [verify]
  /// pipeline, no cache involvement.
  Result<PreparedQuery> PrepareUncached(const std::string& sql) const;

  bool CacheUsable() const { return cache_->enabled() && !use_cost_model_; }

  Database* db_;
  RewriteOptions rewrite_options_;
  bool use_cost_model_ = false;
  bool verify_plans_ = kVerifyPlansByDefault;
  bool check_equiv_ = equiv::kCheckEquivByDefault;
  bool advise_ = true;
  PhysicalOptions default_physical_;
  uint64_t extra_fingerprint_salt_ = 0;
  std::shared_ptr<cache::PlanCache> cache_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_UNIQOPT_OPTIMIZER_H_
