#include <gtest/gtest.h>

#include "storage/table.h"
#include "test_util.h"

namespace uniqopt {
namespace {

TEST(StorageTest, InsertEnforcesArityAndTypes) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (A INTEGER, B VARCHAR(10))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(1), Value::String("x")}));
  // Arity mismatch.
  EXPECT_FALSE(t->InsertValues({Value::Integer(1)}).ok());
  // Type mismatch.
  Status st = t->InsertValues({Value::String("no"), Value::String("x")});
  EXPECT_EQ(st.code(), StatusCode::kTypeMismatch);
  // Numeric widening allowed.
  EXPECT_OK(t->InsertValues({Value::Double(2.5), Value::String("y")}));
}

TEST(StorageTest, NotNullEnforced) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (A INTEGER NOT NULL)"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  Status st = t->InsertValues({Value::Null(TypeId::kInteger)});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(StorageTest, PrimaryKeyImpliesNotNullAndUnique) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(1), Value::Integer(1)}));
  // PRIMARY KEY columns become NOT NULL even without the clause.
  EXPECT_FALSE(
      t->InsertValues({Value::Null(TypeId::kInteger), Value::Integer(2)})
          .ok());
  // Duplicate key rejected.
  Status st = t->InsertValues({Value::Integer(1), Value::Integer(9)});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(StorageTest, UniqueTreatsNullAsSpecialValue) {
  // §2.1: "any instance of PARTS may have only one tuple with
  // OEM-PNO = NULL" — NULL is one value under =!.
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (A INTEGER, UNIQUE (A))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Null(TypeId::kInteger)}));
  Status st = t->InsertValues({Value::Null(TypeId::kInteger)});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_OK(t->InsertValues({Value::Integer(1)}));
}

TEST(StorageTest, CompositeKeyUniqueness) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A, B))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(1), Value::Integer(1)}));
  EXPECT_OK(t->InsertValues({Value::Integer(1), Value::Integer(2)}));
  EXPECT_OK(t->InsertValues({Value::Integer(2), Value::Integer(1)}));
  EXPECT_FALSE(
      t->InsertValues({Value::Integer(1), Value::Integer(1)}).ok());
}

TEST(StorageTest, CheckConstraintsAreTrueInterpreted) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER, CHECK (A BETWEEN 1 AND 10))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(5)}));
  // FALSE rejects.
  EXPECT_EQ(t->InsertValues({Value::Integer(11)}).code(),
            StatusCode::kConstraintViolation);
  // UNKNOWN (NULL) passes — SQL2 CHECK semantics (⌈·⌉, Table 2).
  EXPECT_OK(t->InsertValues({Value::Null(TypeId::kInteger)}));
}

TEST(StorageTest, ImplicationCheckFromPaper) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE S (BUDGET DOUBLE, STATUS VARCHAR(10), "
      "CHECK (BUDGET > 0 OR STATUS = 'Inactive'))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("S"));
  EXPECT_OK(t->InsertValues({Value::Double(100.0), Value::String("Active")}));
  EXPECT_OK(t->InsertValues({Value::Double(0.0), Value::String("Inactive")}));
  EXPECT_FALSE(
      t->InsertValues({Value::Double(0.0), Value::String("Active")}).ok());
}

TEST(StorageTest, FailedInsertLeavesNoTrace) {
  // Failure injection: a row that passes the first key but violates the
  // second must not corrupt either key set.
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A), UNIQUE (B))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(1), Value::Integer(10)}));
  // New A, duplicate B: rejected.
  EXPECT_FALSE(t->InsertValues({Value::Integer(2), Value::Integer(10)}).ok());
  // A=2 must still be insertable (no phantom key entry from the failed
  // attempt).
  EXPECT_OK(t->InsertValues({Value::Integer(2), Value::Integer(20)}));
  EXPECT_EQ(t->size(), 2u);
}

TEST(StorageTest, DatabaseCatalogLifecycle) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE A (X INTEGER)"));
  EXPECT_TRUE(db.catalog().HasTable("a"));  // case-insensitive
  EXPECT_FALSE(db.ExecuteDdl("CREATE TABLE A (Y INTEGER)").ok());
  EXPECT_FALSE(db.GetTable("MISSING").ok());
  EXPECT_FALSE(db.ExecuteDdl("SELECT * FROM A").ok());
}

TEST(StorageTest, ClearResetsKeySets) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (A INTEGER, PRIMARY KEY (A))"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  EXPECT_OK(t->InsertValues({Value::Integer(1)}));
  t->Clear();
  EXPECT_EQ(t->size(), 0u);
  EXPECT_OK(t->InsertValues({Value::Integer(1)}));
}

}  // namespace
}  // namespace uniqopt
