file(REMOVE_RECURSE
  "libuniqopt_expr.a"
)
