#ifndef UNIQOPT_OODB_NAVIGATOR_H_
#define UNIQOPT_OODB_NAVIGATOR_H_

#include <memory>
#include <vector>

#include "oodb/object_store.h"
#include "storage/table.h"

namespace uniqopt {
namespace oodb {

/// Builds the Figure 3 object model — classes Supplier, Parts, Agent
/// with child→parent OIDs replacing foreign keys — from the relational
/// supplier database, with indexes on SUPPLIER.SNO and PARTS.PNO (the
/// indexes Example 11 assumes).
Result<std::unique_ptr<ObjectStore>> BuildSupplierObjectStore(
    const Database& relational);

/// Result of an Example 11 strategy: supplier rows plus navigation cost.
struct StrategyResult {
  std::vector<Row> rows;
  NavStats stats;
};

/// Example 11's query:
///   SELECT ALL S.* FROM SUPPLIER S, PARTS P
///   WHERE S.SNO BETWEEN :LO AND :HI AND S.SNO = P.SNO AND P.PNO = :PARTNO
///
/// Child-driven strategy (lines 36–42): probe the PARTS index on PNO,
/// chase each part's parent pointer to its Supplier, test the range.
/// Inefficient when the range predicate is selective — many parents are
/// retrieved only to be discarded.
StrategyResult ChildDrivenSuppliersForPart(const ObjectStore& store,
                                           int64_t part_no, int64_t sno_lo,
                                           int64_t sno_hi);

/// Parent-driven strategy (lines 43–48), enabled by the join→subquery
/// rewrite of Theorem 2: range-probe the SUPPLIER index, and for each
/// supplier look for a qualifying part (PNO index, filtered by parent
/// OID), stopping at the first witness.
StrategyResult ParentDrivenSuppliersForPart(const ObjectStore& store,
                                            int64_t part_no, int64_t sno_lo,
                                            int64_t sno_hi);

}  // namespace oodb
}  // namespace uniqopt

#endif  // UNIQOPT_OODB_NAVIGATOR_H_
