#include <gtest/gtest.h>

#include "fd/attribute_set.h"
#include "fd/functional_dependency.h"

namespace uniqopt {
namespace {

TEST(AttributeSetTest, BasicOps) {
  AttributeSet s{1, 3, 200};
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(200));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.Count(), 3u);
  s.Remove(3);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_EQ(s.ToVector(), (std::vector<size_t>{1, 200}));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{0, 1, 2};
  AttributeSet b{2, 3};
  EXPECT_EQ(a.Union(b).Count(), 4u);
  EXPECT_EQ(a.Intersect(b).ToVector(), (std::vector<size_t>{2}));
  EXPECT_EQ(a.Difference(b).ToVector(), (std::vector<size_t>{0, 1}));
  EXPECT_TRUE((AttributeSet{1, 2}).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((AttributeSet{7}).Intersects(a));
  EXPECT_TRUE(AttributeSet{}.IsSubsetOf(b));
  EXPECT_TRUE(AttributeSet{}.Empty());
}

TEST(AttributeSetTest, ShiftAndEquality) {
  AttributeSet a{0, 63, 64};
  AttributeSet shifted = a.Shifted(5);
  EXPECT_EQ(shifted.ToVector(), (std::vector<size_t>{5, 68, 69}));
  EXPECT_EQ(a, (AttributeSet{64, 63, 0}));
  EXPECT_NE(a, shifted);
  // Equality across different capacities.
  AttributeSet big{1};
  big.Add(500);
  big.Remove(500);
  EXPECT_EQ(big, AttributeSet{1});
}

TEST(AttributeSetTest, ShiftedAcrossWordBoundaries) {
  // The word-wise shift must carry bits that cross a 64-bit word edge.
  AttributeSet a{0, 1, 62, 63, 64, 127, 128};
  for (size_t offset : {1u, 63u, 64u, 65u, 100u, 128u, 129u}) {
    AttributeSet shifted = a.Shifted(offset);
    std::vector<size_t> expected;
    for (size_t member : a.ToVector()) expected.push_back(member + offset);
    EXPECT_EQ(shifted.ToVector(), expected) << "offset " << offset;
  }
  // Zero offset is the identity; shifting the empty set stays empty.
  EXPECT_EQ(a.Shifted(0), a);
  EXPECT_TRUE(AttributeSet{}.Shifted(77).Empty());
  // Count survives any shift (no bits lost or duplicated).
  EXPECT_EQ(a.Shifted(191).Count(), a.Count());
}

TEST(FdSetTest, ClosureBasics) {
  // A → B, B → C: closure({A}) = {A, B, C}.
  FdSet fds;
  fds.Add(AttributeSet{0}, AttributeSet{1});
  fds.Add(AttributeSet{1}, AttributeSet{2});
  EXPECT_EQ(fds.Closure(AttributeSet{0}), (AttributeSet{0, 1, 2}));
  EXPECT_EQ(fds.Closure(AttributeSet{1}), (AttributeSet{1, 2}));
  EXPECT_EQ(fds.Closure(AttributeSet{2}), (AttributeSet{2}));
}

TEST(FdSetTest, ClosureProperties) {
  // Closure must be extensive, monotone and idempotent.
  FdSet fds;
  fds.Add(AttributeSet{0, 1}, AttributeSet{2});
  fds.Add(AttributeSet{2}, AttributeSet{3});
  fds.AddConstant(4);
  AttributeSet x{0};
  AttributeSet y{0, 1};
  AttributeSet cx = fds.Closure(x);
  AttributeSet cy = fds.Closure(y);
  EXPECT_TRUE(x.IsSubsetOf(cx));                       // extensive
  EXPECT_TRUE(cx.IsSubsetOf(cy));                      // monotone
  EXPECT_EQ(fds.Closure(cy), cy);                      // idempotent
  EXPECT_TRUE(cx.Contains(4));  // constants are in every closure
}

TEST(FdSetTest, EquivalenceIsBidirectional) {
  FdSet fds;
  fds.AddEquivalence(0, 5);
  EXPECT_TRUE(fds.Closure(AttributeSet{0}).Contains(5));
  EXPECT_TRUE(fds.Closure(AttributeSet{5}).Contains(0));
}

TEST(FdSetTest, SuperkeyAndImplies) {
  FdSet fds;
  fds.Add(AttributeSet{0}, AttributeSet{1, 2, 3});
  AttributeSet universe = AttributeSet::AllUpTo(4);
  EXPECT_TRUE(fds.IsSuperkey(AttributeSet{0}, universe));
  EXPECT_FALSE(fds.IsSuperkey(AttributeSet{1}, universe));
  EXPECT_TRUE(fds.Implies(AttributeSet{0}, AttributeSet{2}));
  EXPECT_FALSE(fds.Implies(AttributeSet{2}, AttributeSet{0}));
}

TEST(FdSetTest, ShiftedPreservesStructure) {
  FdSet fds;
  fds.Add(AttributeSet{0}, AttributeSet{1});
  FdSet shifted = fds.Shifted(10);
  EXPECT_TRUE(shifted.Closure(AttributeSet{10}).Contains(11));
  EXPECT_FALSE(shifted.Closure(AttributeSet{0}).Contains(1));
}

TEST(FdSetTest, ProjectToRenumbersAndKeepsDependencies) {
  // Schema (A=0, B=1, C=2, D=3); FDs: A→B, B→C. Project onto {A, C}.
  FdSet fds;
  fds.Add(AttributeSet{0}, AttributeSet{1});
  fds.Add(AttributeSet{1}, AttributeSet{2});
  FdSet projected = fds.ProjectTo({0, 2});
  // In the projection, A is column 0 and C is column 1; A→C survives.
  EXPECT_TRUE(projected.Closure(AttributeSet{0}).Contains(1));
  EXPECT_FALSE(projected.Closure(AttributeSet{1}).Contains(0));
}

TEST(FdSetTest, ProjectToKeepsConstants) {
  FdSet fds;
  fds.AddConstant(2);
  FdSet projected = fds.ProjectTo({2, 3});
  EXPECT_TRUE(projected.Closure(AttributeSet{}).Contains(0));
  EXPECT_FALSE(projected.Closure(AttributeSet{}).Contains(1));
}

TEST(FdSetTest, ProjectToDropsOutOfScopeLhs) {
  // B→C with B projected away must not leak.
  FdSet fds;
  fds.Add(AttributeSet{1}, AttributeSet{2});
  FdSet projected = fds.ProjectTo({0, 2});
  EXPECT_FALSE(projected.Closure(AttributeSet{0}).Contains(1));
  EXPECT_EQ(projected.Closure(AttributeSet{0}), AttributeSet{0});
}

TEST(FdTest, ToStringRendering) {
  FunctionalDependency fd{AttributeSet{0, 1}, AttributeSet{2}};
  EXPECT_EQ(fd.ToString(), "{0, 1} -> {2}");
  FdSet fds;
  fds.Add(fd.lhs, fd.rhs);
  EXPECT_EQ(fds.ToString(), "[{0, 1} -> {2}]");
}

}  // namespace
}  // namespace uniqopt
