#ifndef UNIQOPT_PLAN_PLAN_H_
#define UNIQOPT_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "common/result.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace uniqopt {

/// The paper's §2.2 multiset algebra, as an immutable logical plan.
/// Nodes are shared (rewrites reuse untouched subtrees).
enum class PlanKind {
  kGet,      ///< base table access
  kSelect,   ///< σ[C] — no duplicate elimination, 3VL false-interpreted
  kProject,  ///< π_All / π_Dist onto a column list
  kProduct,  ///< extended Cartesian product
  kExists,   ///< positive/negative existential subquery (semi/anti join)
  kSetOp,    ///< INTERSECT [ALL] / EXCEPT [ALL]
  kAggregate,  ///< GROUP BY + aggregate functions (§7 extension)
};

/// Duplicate handling of projections and set operations (`d` in π_d, ∩_d,
/// −_d).
enum class DuplicateMode { kAll, kDist };

enum class SetOpAlgebra { kIntersect, kExcept };

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Base class of all logical operators.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }

  virtual size_t num_children() const = 0;
  virtual const PlanPtr& child(size_t i) const = 0;

  /// Pretty tree rendering.
  std::string ToString() const;
  virtual void AppendTo(std::string* out, int indent) const = 0;

 protected:
  PlanNode(PlanKind kind, Schema schema)
      : kind_(kind), schema_(std::move(schema)) {}

  static void Indent(std::string* out, int indent);

 private:
  PlanKind kind_;
  Schema schema_;
};

/// Base table access. Output schema is the table schema with the FROM
/// clause correlation name as qualifier.
class GetNode final : public PlanNode {
 public:
  static PlanPtr Make(const TableDef* table, std::string alias);

  const TableDef& table() const { return *table_; }
  const std::string& alias() const { return alias_; }

  size_t num_children() const override { return 0; }
  const PlanPtr& child(size_t) const override;
  void AppendTo(std::string* out, int indent) const override;

 private:
  GetNode(const TableDef* table, std::string alias, Schema schema)
      : PlanNode(PlanKind::kGet, std::move(schema)),
        table_(table),
        alias_(std::move(alias)) {}

  const TableDef* table_;
  std::string alias_;
};

/// σ[C](input): rows of input for which C is TRUE (UNKNOWN rejects).
class SelectNode final : public PlanNode {
 public:
  static PlanPtr Make(PlanPtr input, ExprPtr predicate);

  const PlanPtr& input() const { return input_; }
  const ExprPtr& predicate() const { return predicate_; }

  size_t num_children() const override { return 1; }
  const PlanPtr& child(size_t) const override { return input_; }
  void AppendTo(std::string* out, int indent) const override;

 private:
  SelectNode(PlanPtr input, ExprPtr predicate, Schema schema)
      : PlanNode(PlanKind::kSelect, std::move(schema)),
        input_(std::move(input)),
        predicate_(std::move(predicate)) {}

  PlanPtr input_;
  ExprPtr predicate_;
};

/// π_d[A](input): projection onto a column list; d = Dist eliminates
/// duplicates under the null-equality operator `=!`.
class ProjectNode final : public PlanNode {
 public:
  static PlanPtr Make(PlanPtr input, DuplicateMode mode,
                      std::vector<size_t> columns);

  const PlanPtr& input() const { return input_; }
  DuplicateMode mode() const { return mode_; }
  const std::vector<size_t>& columns() const { return columns_; }

  size_t num_children() const override { return 1; }
  const PlanPtr& child(size_t) const override { return input_; }
  void AppendTo(std::string* out, int indent) const override;

 private:
  ProjectNode(PlanPtr input, DuplicateMode mode, std::vector<size_t> columns,
              Schema schema)
      : PlanNode(PlanKind::kProject, std::move(schema)),
        input_(std::move(input)),
        mode_(mode),
        columns_(std::move(columns)) {}

  PlanPtr input_;
  DuplicateMode mode_;
  std::vector<size_t> columns_;
};

/// Extended Cartesian product; output schema is left ++ right.
class ProductNode final : public PlanNode {
 public:
  static PlanPtr Make(PlanPtr left, PlanPtr right);

  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }

  size_t num_children() const override { return 2; }
  const PlanPtr& child(size_t i) const override {
    return i == 0 ? left_ : right_;
  }
  void AppendTo(std::string* out, int indent) const override;

 private:
  ProductNode(PlanPtr left, PlanPtr right, Schema schema)
      : PlanNode(PlanKind::kProduct, std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  PlanPtr left_;
  PlanPtr right_;
};

/// σ[∃(σ[C](sub))](outer) — a semi-join (anti-join when `negated`). The
/// correlation predicate is bound against Concat(outer.schema,
/// sub.schema); output rows are outer rows with at least one (resp. no)
/// matching sub row. Output schema = outer schema.
class ExistsNode final : public PlanNode {
 public:
  static PlanPtr Make(PlanPtr outer, PlanPtr sub, ExprPtr correlation,
                      bool negated);

  const PlanPtr& outer() const { return outer_; }
  const PlanPtr& sub() const { return sub_; }
  /// Predicate over outer⊕sub concatenated schema (C_S ∧ C_{R,S} parts
  /// that reference both sides; sub-only conjuncts may be pushed into
  /// `sub` by the binder).
  const ExprPtr& correlation() const { return correlation_; }
  bool negated() const { return negated_; }

  size_t num_children() const override { return 2; }
  const PlanPtr& child(size_t i) const override {
    return i == 0 ? outer_ : sub_;
  }
  void AppendTo(std::string* out, int indent) const override;

 private:
  ExistsNode(PlanPtr outer, PlanPtr sub, ExprPtr correlation, bool negated,
             Schema schema)
      : PlanNode(PlanKind::kExists, std::move(schema)),
        outer_(std::move(outer)),
        sub_(std::move(sub)),
        correlation_(std::move(correlation)),
        negated_(negated) {}

  PlanPtr outer_;
  PlanPtr sub_;
  ExprPtr correlation_;
  bool negated_;
};

/// INTERSECT [ALL] / EXCEPT [ALL] over union-compatible inputs, with the
/// paper's tuple-equivalence semantics (`=!`: NULLs match NULLs).
class SetOpNode final : public PlanNode {
 public:
  static Result<PlanPtr> Make(SetOpAlgebra op, DuplicateMode mode,
                              PlanPtr left, PlanPtr right);

  SetOpAlgebra op() const { return op_; }
  DuplicateMode mode() const { return mode_; }
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }

  size_t num_children() const override { return 2; }
  const PlanPtr& child(size_t i) const override {
    return i == 0 ? left_ : right_;
  }
  void AppendTo(std::string* out, int indent) const override;

 private:
  SetOpNode(SetOpAlgebra op, DuplicateMode mode, PlanPtr left, PlanPtr right,
            Schema schema)
      : PlanNode(PlanKind::kSetOp, std::move(schema)),
        op_(op),
        mode_(mode),
        left_(std::move(left)),
        right_(std::move(right)) {}

  SetOpAlgebra op_;
  DuplicateMode mode_;
  PlanPtr left_;
  PlanPtr right_;
};

/// Aggregate functions of the GROUP BY extension. NULL handling follows
/// SQL: COUNT(col) counts non-NULL values; SUM/MIN/MAX/AVG ignore NULLs
/// and return NULL for all-NULL (or empty) groups; COUNT(*) counts rows.
enum class AggFunc { kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc f);

/// One aggregate of an AggregateNode.
struct AggregateItem {
  AggFunc func = AggFunc::kCountStar;
  /// Argument column within the input schema (ignored for COUNT(*)).
  size_t arg_column = 0;
  /// Display name, e.g. "SUM(S.BUDGET)".
  std::string name;
};

/// GROUP BY: partitions input rows by the group columns under the
/// null-equality operator `=!` (SQL: GROUP BY treats NULLs as equal —
/// the same comparison DISTINCT uses, §3.1) and evaluates aggregates per
/// group. Output schema: group columns (input metadata preserved)
/// followed by one column per aggregate. The whole group-column list is
/// a derived key of the output — the property the uniqueness analysis
/// exploits.
class AggregateNode final : public PlanNode {
 public:
  static PlanPtr Make(PlanPtr input, std::vector<size_t> group_columns,
                      std::vector<AggregateItem> aggregates);

  const PlanPtr& input() const { return input_; }
  const std::vector<size_t>& group_columns() const { return group_columns_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }

  size_t num_children() const override { return 1; }
  const PlanPtr& child(size_t) const override { return input_; }
  void AppendTo(std::string* out, int indent) const override;

  /// Result type of an aggregate over an argument of type `arg`.
  static TypeId ResultType(AggFunc func, TypeId arg);

 private:
  AggregateNode(PlanPtr input, std::vector<size_t> group_columns,
                std::vector<AggregateItem> aggregates, Schema schema)
      : PlanNode(PlanKind::kAggregate, std::move(schema)),
        input_(std::move(input)),
        group_columns_(std::move(group_columns)),
        aggregates_(std::move(aggregates)) {}

  PlanPtr input_;
  std::vector<size_t> group_columns_;
  std::vector<AggregateItem> aggregates_;
};

/// Checked downcast helpers.
template <typename T>
const T* As(const PlanPtr& node);
template <>
inline const GetNode* As<GetNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kGet ? static_cast<const GetNode*>(n.get())
                                     : nullptr;
}
template <>
inline const SelectNode* As<SelectNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kSelect
             ? static_cast<const SelectNode*>(n.get())
             : nullptr;
}
template <>
inline const ProjectNode* As<ProjectNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kProject
             ? static_cast<const ProjectNode*>(n.get())
             : nullptr;
}
template <>
inline const ProductNode* As<ProductNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kProduct
             ? static_cast<const ProductNode*>(n.get())
             : nullptr;
}
template <>
inline const ExistsNode* As<ExistsNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kExists
             ? static_cast<const ExistsNode*>(n.get())
             : nullptr;
}
template <>
inline const SetOpNode* As<SetOpNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kSetOp
             ? static_cast<const SetOpNode*>(n.get())
             : nullptr;
}
template <>
inline const AggregateNode* As<AggregateNode>(const PlanPtr& n) {
  return n->kind() == PlanKind::kAggregate
             ? static_cast<const AggregateNode*>(n.get())
             : nullptr;
}

}  // namespace uniqopt

#endif  // UNIQOPT_PLAN_PLAN_H_
