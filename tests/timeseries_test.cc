// Tests for the windowed time-series plane: counter deltas/rates, gauge
// last-value windows, histogram snapshot-diff percentiles, the
// generation-guarded reset straddle, per-class accumulators with
// exemplars, firing-ratio synthesis, ring bounds, the background
// ticker, and JSON validity of the export.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sentinel.h"
#include "test_util.h"

namespace uniqopt {
namespace {

/// Finds a series by exact name; nullptr when absent.
const obs::SeriesSnapshot* Find(
    const std::vector<obs::SeriesSnapshot>& series,
    const std::string& name) {
  for (const obs::SeriesSnapshot& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

class TimeSeriesTest : public ::testing::Test {
 protected:
  TimeSeriesTest() : plane_(8, &clock_, &registry_) {
    plane_.set_enabled(true);
  }

  /// Snapshots the plane and finds a series by exact name. The snapshot
  /// is kept alive in the fixture so the returned pointer stays valid
  /// for the assertions that follow (a pointer into a temporary
  /// Snapshot() would dangle).
  const obs::SeriesSnapshot* Find(const std::string& name) {
    snapshot_ = plane_.Snapshot();
    return uniqopt::Find(snapshot_, name);
  }

  obs::ManualWindowClock clock_;
  obs::MetricsRegistry registry_;
  obs::TimeSeriesPlane plane_;
  std::vector<obs::SeriesSnapshot> snapshot_;
};

TEST_F(TimeSeriesTest, CounterFirstTickOnlyEstablishesBaseline) {
  registry_.GetCounter("work.done").Increment(100);
  clock_.Advance(1000000000);
  plane_.Tick();
  // The cumulative 100 is not a window delta — no window yet.
  EXPECT_EQ(Find("work.done"), nullptr);

  registry_.GetCounter("work.done").Increment(40);
  clock_.Advance(2000000000);  // 2s window
  plane_.Tick();
  const obs::SeriesSnapshot* s = Find("work.done");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::SeriesKind::kCounter);
  ASSERT_EQ(s->windows.size(), 1u);
  EXPECT_EQ(s->windows[0].value, 40u);
  EXPECT_NEAR(s->windows[0].rate, 20.0, 0.001);  // 40 over 2s
}

TEST_F(TimeSeriesTest, GaugeWindowKeepsLastValue) {
  registry_.GetGauge("cache.bytes").Set(5000);
  clock_.Advance(1000000000);
  plane_.Tick();
  registry_.GetGauge("cache.bytes").Set(7777);
  clock_.Advance(1000000000);
  plane_.Tick();
  const obs::SeriesSnapshot* s = Find("cache.bytes");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::SeriesKind::kGauge);
  ASSERT_EQ(s->windows.size(), 2u);
  EXPECT_EQ(s->windows[0].value, 5000u);
  EXPECT_EQ(s->windows[1].value, 7777u);
}

TEST_F(TimeSeriesTest, HistogramWindowPercentilesComeFromWindowSamplesOnly) {
  obs::Histogram& h = registry_.GetHistogram("op.ns");
  // Old regime: slow samples, folded into the baseline.
  for (int i = 0; i < 100; ++i) h.Record(100000);
  clock_.Advance(1000000000);
  plane_.Tick();  // baseline for op.ns
  // New window: fast samples only. A cumulative p50 would still sit
  // near 100000; the *window* p50 must reflect only the new samples.
  for (int i = 0; i < 100; ++i) h.Record(1000);
  clock_.Advance(1000000000);
  plane_.Tick();
  const obs::SeriesSnapshot* s = Find("op.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::SeriesKind::kHistogram);
  ASSERT_GE(s->windows.size(), 1u);
  const obs::WindowStats& w = s->windows.back();
  EXPECT_TRUE(w.valid);
  EXPECT_EQ(w.count, 100u);
  // Bucket-midpoint estimate: within the histogram's 12.5% error bound.
  EXPECT_LT(w.p50, 1200u);
  EXPECT_GT(w.p50, 800u);
  EXPECT_LT(w.p99, 1200u);
}

TEST_F(TimeSeriesTest, ResetStraddlingWindowIsInvalidatedNotNegative) {
  obs::Histogram& h = registry_.GetHistogram("op.ns");
  for (int i = 0; i < 50; ++i) h.Record(2000);
  clock_.Advance(1000000000);
  plane_.Tick();  // baseline
  for (int i = 0; i < 10; ++i) h.Record(2000);
  clock_.Advance(1000000000);
  plane_.Tick();  // valid window: 10 samples
  h.Record(3000);
  h.Reset();  // generation bump lands inside the next window
  h.Record(500);
  clock_.Advance(1000000000);
  plane_.Tick();
  const obs::SeriesSnapshot* s = Find("op.ns");
  ASSERT_NE(s, nullptr);
  ASSERT_GE(s->windows.size(), 2u);
  EXPECT_TRUE(s->windows[s->windows.size() - 2].valid);
  EXPECT_EQ(s->windows[s->windows.size() - 2].count, 10u);
  EXPECT_FALSE(s->windows.back().valid);  // straddled the reset

  // The shadow re-baselines on the post-reset state: the next window is
  // valid again and counts only its own samples.
  for (int i = 0; i < 7; ++i) h.Record(4000);
  clock_.Advance(1000000000);
  plane_.Tick();
  s = Find("op.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->windows.back().valid);
  EXPECT_EQ(s->windows.back().count, 7u);
}

TEST_F(TimeSeriesTest, FiringRatioSynthesizedFromCounterDeltaPairs) {
  obs::Counter& fired = registry_.GetCounter("rewrite.rule.X.fired");
  obs::Counter& considered =
      registry_.GetCounter("rewrite.rule.X.considered");
  fired.Increment(1);
  considered.Increment(1);
  clock_.Advance(1000000000);
  plane_.Tick();  // baseline
  fired.Increment(3);
  considered.Increment(4);
  clock_.Advance(1000000000);
  plane_.Tick();
  const obs::SeriesSnapshot* s =
      Find("rewrite.rule.X.firing_ratio");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::SeriesKind::kRatio);
  ASSERT_EQ(s->windows.size(), 1u);
  EXPECT_NEAR(s->windows[0].ratio, 0.75, 0.001);

  // A window where the rule was never considered produces no point
  // (0/0 is a gap, not a zero).
  clock_.Advance(1000000000);
  plane_.Tick();
  s = Find("rewrite.rule.X.firing_ratio");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->windows.size(), 1u);
}

TEST_F(TimeSeriesTest, ClassSeriesFoldsSamplesAndCarriesWorstExemplar) {
  const uint64_t kClass = 0xabcdef12;
  plane_.RecordClassSample(kClass, "execute.ns", 1000, 7, 0x11);
  plane_.RecordClassSample(kClass, "execute.ns", 9000, 8, 0x22);
  plane_.RecordClassSample(kClass, "execute.ns", 2000, 9, 0x33);
  clock_.Advance(1000000000);
  plane_.Tick();
  const obs::SeriesSnapshot* s =
      Find("class.00000000abcdef12.execute.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, obs::SeriesKind::kClass);
  EXPECT_EQ(s->class_fingerprint, kClass);
  ASSERT_EQ(s->windows.size(), 1u);
  const obs::WindowStats& w = s->windows[0];
  EXPECT_EQ(w.count, 3u);
  EXPECT_EQ(w.sum, 12000u);
  EXPECT_EQ(w.min, 1000u);
  EXPECT_EQ(w.max, 9000u);
  EXPECT_GE(w.p50, w.min);
  EXPECT_LE(w.p50, w.max);
  // The exemplar is the worst sample of the window: record #8.
  EXPECT_EQ(w.exemplar.record_id, 8u);
  EXPECT_EQ(w.exemplar.fingerprint, 0x22u);
  EXPECT_EQ(w.exemplar.value, 9000u);

  // The accumulator is per-window: the next window starts empty.
  plane_.RecordClassSample(kClass, "execute.ns", 500, 10, 0x44);
  clock_.Advance(1000000000);
  plane_.Tick();
  s = Find("class.00000000abcdef12.execute.ns");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->windows.size(), 2u);
  EXPECT_EQ(s->windows[1].count, 1u);
  EXPECT_EQ(s->windows[1].exemplar.record_id, 10u);
}

TEST_F(TimeSeriesTest, DisabledPlaneIgnoresClassSamples) {
  plane_.set_enabled(false);
  plane_.RecordClassSample(1, "execute.ns", 1000, 1, 1);
  plane_.set_enabled(true);
  clock_.Advance(1000000000);
  plane_.Tick();
  EXPECT_EQ(Find("class.0000000000000001.execute.ns"),
            nullptr);
}

TEST_F(TimeSeriesTest, WindowRingIsBounded) {
  registry_.GetCounter("busy").Increment();
  clock_.Advance(1000000000);
  plane_.Tick();  // baseline
  for (int i = 0; i < 20; ++i) {
    registry_.GetCounter("busy").Increment();
    clock_.Advance(1000000000);
    plane_.Tick();
  }
  const obs::SeriesSnapshot* s = Find("busy");
  ASSERT_NE(s, nullptr);
  // Ring of 8 (the fixture's windows_per_series), oldest evicted.
  EXPECT_EQ(s->windows.size(), 8u);
  for (size_t i = 1; i < s->windows.size(); ++i) {
    EXPECT_EQ(s->windows[i].window, s->windows[i - 1].window + 1);
  }
  EXPECT_EQ(s->windows.back().window, 21u);
}

TEST_F(TimeSeriesTest, ClassCountIsBounded) {
  for (uint64_t fp = 1;
       fp <= obs::TimeSeriesPlane::kMaxClasses + 5; ++fp) {
    plane_.RecordClassSample(fp, "execute.ns", 100, 0, 0);
  }
  clock_.Advance(1000000000);
  plane_.Tick();
  size_t class_series = 0;
  for (const obs::SeriesSnapshot& s : plane_.Snapshot()) {
    if (s.kind == obs::SeriesKind::kClass) ++class_series;
  }
  EXPECT_EQ(class_series, obs::TimeSeriesPlane::kMaxClasses);
}

TEST_F(TimeSeriesTest, ResetDropsSeriesAndShadows) {
  registry_.GetCounter("c").Increment();
  clock_.Advance(1000000000);
  plane_.Tick();
  registry_.GetCounter("c").Increment();
  clock_.Advance(1000000000);
  plane_.Tick();
  EXPECT_FALSE(plane_.Snapshot().empty());
  plane_.Reset();
  EXPECT_TRUE(plane_.Snapshot().empty());
}

TEST_F(TimeSeriesTest, ToJsonIsValidAndCarriesExemplars) {
  plane_.RecordClassSample(0x42, "execute.ns", 1234, 3, 0x99);
  registry_.GetCounter("c").Increment();
  clock_.Advance(1000000000);
  plane_.Tick();
  clock_.Advance(1000000000);
  plane_.Tick();
  std::string json = plane_.ToJson();
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"exemplar\""), std::string::npos);
  EXPECT_NE(json.find("\"record_id\": 3"), std::string::npos);
}

TEST_F(TimeSeriesTest, ToTextRendersSparklineAndInvalidMarker) {
  obs::Histogram& h = registry_.GetHistogram("op.ns");
  h.Record(100);
  clock_.Advance(1000000000);
  plane_.Tick();  // baseline
  h.Record(100);
  clock_.Advance(1000000000);
  plane_.Tick();
  h.Reset();
  clock_.Advance(1000000000);
  plane_.Tick();  // straddles the reset → 'x' in the sparkline
  std::string text = plane_.ToText("op.ns");
  EXPECT_NE(text.find("op.ns"), std::string::npos);
  EXPECT_NE(text.find('x'), std::string::npos);
  EXPECT_NE(text.find("(invalid)"), std::string::npos);
  // The no-filter form is a summary listing.
  std::string summary = plane_.ToText();
  EXPECT_NE(summary.find("timeline:"), std::string::npos);
  EXPECT_NE(summary.find("op.ns"), std::string::npos);
}

TEST(TimeSeriesTickerTest, BackgroundTickerTicksAndStops) {
  obs::ManualWindowClock clock;
  obs::MetricsRegistry registry;
  obs::TimeSeriesPlane plane(8, &clock, &registry);
  ASSERT_OK(plane.StartTicker(1));
  EXPECT_TRUE(plane.ticker_running());
  EXPECT_FALSE(plane.StartTicker(1).ok());  // already running
  while (plane.ticks() < 3) {
    clock.Advance(1000000);
    std::this_thread::yield();
  }
  plane.StopTicker();
  EXPECT_FALSE(plane.ticker_running());
  plane.StopTicker();  // idempotent
  uint64_t after = plane.ticks();
  EXPECT_GE(after, 3u);
}

TEST(TimeSeriesTickerTest, StartTickerEnablesTheSampleFeed) {
  obs::ManualWindowClock clock;
  obs::MetricsRegistry registry;
  obs::TimeSeriesPlane plane(8, &clock, &registry);
  EXPECT_FALSE(plane.enabled());
  ASSERT_OK(plane.StartTicker(1000));
  EXPECT_TRUE(plane.enabled());
  plane.StopTicker();
}

}  // namespace
}  // namespace uniqopt
