#include "obs/sentinel.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "obs/export.h"

namespace uniqopt {
namespace obs {

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string FormatStatValue(double v) {
  char buf[48];
  if (std::fabs(v) >= 100.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string Alert::ToString() const {
  std::string out = "ALERT #" + std::to_string(id) + " window=" +
                    std::to_string(window) + " " + series + " " + stat +
                    "=" + FormatStatValue(observed) + " expected=" +
                    FormatStatValue(expected) + "±" + FormatStatValue(band) +
                    " severity=" + severity;
  if (exemplar.record_id != 0) {
    out += " exemplar=#" + std::to_string(exemplar.record_id) + "/" +
           HexFingerprint(exemplar.fingerprint).substr(8) + " (" +
           std::to_string(exemplar.value) + ")";
  }
  return out;
}

Sentinel::Sentinel(SentinelOptions options) : options_(options) {}

Sentinel& Sentinel::Global() {
  static Sentinel* sentinel = new Sentinel();
  return *sentinel;
}

void Sentinel::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (!on) {
    MetricsRegistry::Global().GetGauge("sentinel.armed").Set(0);
  }
}

void Sentinel::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.clear();
  alerts_.clear();
  alert_head_ = 0;
  MetricsRegistry::Global().GetGauge("sentinel.armed").Set(0);
}

void Sentinel::PushAlertLocked(Alert alert) {
  total_alerts_.fetch_add(1, std::memory_order_relaxed);
  static Counter& alert_counter =
      MetricsRegistry::Global().GetCounter("sentinel.alerts");
  alert_counter.Increment();
  UNIQOPT_LOG(kWarning) << "sentinel " << alert.ToString();
  if (alerts_.size() < options_.max_alerts) {
    alerts_.push_back(std::move(alert));
  } else {
    alerts_[alert_head_] = std::move(alert);
    alert_head_ = (alert_head_ + 1) % options_.max_alerts;
  }
}

bool Sentinel::ObserveStat(const SeriesObservation& obs, const char* stat,
                           double observed, bool upward) {
  // Callers hold mu_.
  Track& track = tracks_[obs.series + "|" + stat];
  if (track.windows == 0) {
    track.ewma = observed;
    track.mad = 0.0;
    track.windows = 1;
    return false;
  }
  const double deviation = observed - track.ewma;
  const double abs_deviation = std::fabs(deviation);
  bool fired = false;
  if (track.windows >= options_.warmup_windows) {
    const double abs_floor = std::strcmp(stat, "ratio") == 0
                                 ? options_.min_band_abs_ratio
                                 : options_.min_band_abs;
    double band = options_.band_k *
                  std::max({track.mad,
                            options_.min_band_fraction *
                                std::fabs(track.ewma),
                            abs_floor});
    fired = upward ? deviation > band : deviation < -band;
    if (fired) {
      Alert alert;
      alert.id = next_alert_id_.fetch_add(1, std::memory_order_relaxed);
      alert.window = obs.stats.window;
      alert.series = obs.series;
      alert.class_fingerprint = obs.class_fingerprint;
      alert.stat = stat;
      alert.observed = observed;
      alert.expected = track.ewma;
      alert.band = band;
      alert.severity = abs_deviation > 2.0 * band ? "critical" : "warn";
      alert.exemplar = obs.stats.exemplar;
      alert.end_ns = obs.stats.end_ns;
      PushAlertLocked(std::move(alert));
      // Snap the reference to the new level: a sustained step fires
      // exactly once, and the series is immediately re-armed there.
      track.ewma = observed;
      ++track.windows;
      return true;
    }
  }
  track.ewma += options_.alpha * deviation;
  track.mad = (1.0 - options_.mad_alpha) * track.mad +
              options_.mad_alpha * abs_deviation;
  ++track.windows;
  return fired;
}

void Sentinel::ObserveTick(
    const std::vector<SeriesObservation>& observations) {
  if (!enabled()) return;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  static Counter& tick_counter =
      MetricsRegistry::Global().GetCounter("sentinel.ticks");
  tick_counter.Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SeriesObservation& obs : observations) {
      switch (obs.kind) {
        case SeriesKind::kHistogram:
        case SeriesKind::kClass:
          // Latency regressions are upward moves of the window
          // percentiles. p50 fires first on a uniform slowdown; p99
          // catches tail-only blow-ups.
          ObserveStat(obs, "p50", static_cast<double>(obs.stats.p50),
                      /*upward=*/true);
          ObserveStat(obs, "p99", static_cast<double>(obs.stats.p99),
                      /*upward=*/true);
          break;
        case SeriesKind::kRatio:
          // A rewrite that silently stops firing is a collapse of the
          // firing ratio — a downward alert.
          ObserveStat(obs, "ratio", obs.stats.ratio, /*upward=*/false);
          break;
        case SeriesKind::kCounter:
        case SeriesKind::kGauge:
          break;  // raw counters/gauges are too noisy to band-check
      }
    }
  }
  MetricsRegistry::Global().GetGauge("sentinel.armed").Set(armed_series());
}

size_t Sentinel::armed_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t armed = 0;
  for (const auto& [key, track] : tracks_) {
    (void)key;
    if (track.windows >= options_.warmup_windows) ++armed;
  }
  return armed;
}

std::vector<Alert> Sentinel::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Alert> out;
  out.reserve(alerts_.size());
  for (size_t i = 0; i < alerts_.size(); ++i) {
    out.push_back(alerts_[(alert_head_ + i) % alerts_.size()]);
  }
  return out;
}

std::string Sentinel::ToText() const {
  std::string out = "sentinel: ";
  out += enabled() ? "armed" : "off";
  out += " (" + std::to_string(armed_series()) + " armed series, " +
         std::to_string(total_alerts()) + " alert(s), " +
         std::to_string(ticks()) + " tick(s))\n";
  std::vector<Alert> alerts = Alerts();
  if (alerts.empty()) {
    out += "(no alerts)\n";
    return out;
  }
  for (const Alert& a : alerts) out += "  " + a.ToString() + "\n";
  return out;
}

std::string Sentinel::ToJson() const {
  std::vector<Alert> alerts = Alerts();
  std::string out = "{\"sentinel\": {\n";
  out += "  \"enabled\": " + std::string(enabled() ? "true" : "false") +
         ",\n";
  out += "  \"ticks\": " + std::to_string(ticks()) + ",\n";
  out += "  \"armed_series\": " + std::to_string(armed_series()) + ",\n";
  out += "  \"total_alerts\": " + std::to_string(total_alerts()) + ",\n";
  out += "  \"alerts\": [";
  bool first = true;
  for (const Alert& a : alerts) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(a.id);
    out += ", \"window\": " + std::to_string(a.window);
    out += ", \"series\": \"" + JsonEscape(a.series) + "\"";
    if (a.class_fingerprint != 0) {
      out += ", \"class_fingerprint\": \"" +
             HexFingerprint(a.class_fingerprint) + "\"";
    }
    out += ", \"stat\": \"" + JsonEscape(a.stat) + "\"";
    out += ", \"observed\": " + FormatStatValue(a.observed);
    out += ", \"expected\": " + FormatStatValue(a.expected);
    out += ", \"band\": " + FormatStatValue(a.band);
    out += ", \"severity\": \"" + JsonEscape(a.severity) + "\"";
    out += ", \"end_ns\": " + std::to_string(a.end_ns);
    if (a.exemplar.record_id != 0) {
      out += ", \"exemplar\": {\"record_id\": " +
             std::to_string(a.exemplar.record_id) + ", \"fingerprint\": \"" +
             HexFingerprint(a.exemplar.fingerprint) +
             "\", \"value\": " + std::to_string(a.exemplar.value) + "}";
    }
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}}\n";
  return out;
}

}  // namespace obs
}  // namespace uniqopt
