#ifndef UNIQOPT_EXEC_PLANNER_H_
#define UNIQOPT_EXEC_PLANNER_H_

#include <vector>

#include "exec/operator.h"
#include "exec/profile.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace uniqopt {

/// Physical strategy knobs. The logical rewrites of the paper expand the
/// strategy space; these options let benchmarks pin each strategy and
/// compare (the optimizer's cost model is out of the paper's scope).
struct PhysicalOptions {
  enum class JoinStrategy { kNestedLoop, kHash };
  enum class DistinctStrategy { kSort, kHash };

  JoinStrategy join = JoinStrategy::kHash;
  /// The paper assumes duplicate elimination costs a sort (§1); kSort is
  /// therefore the default baseline implementation.
  DistinctStrategy distinct = DistinctStrategy::kSort;
  /// Execute INTERSECT (DISTINCT) by the classic evaluate-sort-merge
  /// strategy (§5.3) instead of hashing.
  bool sort_merge_intersect = false;
  /// Push single-side conjuncts of a Select-over-Product below the join.
  bool predicate_pushdown = true;
  /// Rows per batch on the vectorized NextBatch path (scans hand out
  /// zero-copy views, filters compact selection vectors). 0 reverts to
  /// tuple-at-a-time Volcano iteration.
  size_t batch_size = RowBatch::kDefaultBatchSize;
  /// Degree of parallelism for morsel-driven execution. With dop > 1,
  /// ExecutePlan splits the driving base-table scan into fixed-size
  /// morsels claimed by `dop` workers via an atomic cursor; plans whose
  /// shape the parallel lowering does not support fall back to serial.
  unsigned dop = 1;
  /// Lower equality predicates that cover a declared unique key to
  /// index point lookups, and join builds whose build side is a bare
  /// keyed Get to unique-index probes (the committed index IS the hash
  /// table, so the build phase disappears). Off reverts to scans and
  /// classic hash builds — the benchmark baseline.
  bool use_indexes = true;

  /// Folds every knob into a fingerprint-salt word, so plan-cache
  /// entries prepared under different physical defaults never collide.
  uint64_t CacheSalt() const {
    uint64_t salt = 0;
    salt |= join == JoinStrategy::kHash ? 1u : 0u;
    salt |= distinct == DistinctStrategy::kHash ? 2u : 0u;
    salt |= sort_merge_intersect ? 4u : 0u;
    salt |= predicate_pushdown ? 8u : 0u;
    salt |= use_indexes ? 16u : 0u;
    salt |= static_cast<uint64_t>(dop & 0xffu) << 8;
    salt |= static_cast<uint64_t>(batch_size & 0xffffffffu) << 16;
    return salt;
  }
};

/// Internal hooks threaded through the lowering by the parallel
/// executor (morsel-cursor scan substitution, shared hash-join builds).
/// Defined in exec/parallel.h; callers outside the executor pass none.
struct ParallelLoweringHooks;

/// Lowers a logical plan to an executable operator tree over `db`. With
/// `profile` non-null every lowered plan node is wrapped in a metering
/// ProfileOp feeding that profile (EXPLAIN ANALYZE).
Result<OperatorPtr> CreatePhysicalPlan(const PlanPtr& plan,
                                       const Database& db,
                                       const PhysicalOptions& options = {},
                                       ExecProfile* profile = nullptr,
                                       ParallelLoweringHooks* hooks = nullptr);

/// Lower + execute in one step. With options.dop > 1 the plan runs on
/// the morsel-driven parallel executor when its shape supports it
/// (serial fallback otherwise); options.batch_size selects the
/// vectorized NextBatch path in either mode.
Result<std::vector<Row>> ExecutePlan(const PlanPtr& plan, const Database& db,
                                     ExecContext* ctx,
                                     const PhysicalOptions& options = {},
                                     ExecProfile* profile = nullptr);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_PLANNER_H_
