#include "plan/binder.h"

#include <map>

#include "common/string_util.h"
#include "expr/normalize.h"
#include "parser/parser.h"

namespace uniqopt {

Result<size_t> BoundQuery::HostVarSlot(const std::string& name) const {
  for (size_t i = 0; i < host_vars.size(); ++i) {
    if (EqualsIgnoreCase(host_vars[i].name, name)) return i;
  }
  return Status::NotFound("host variable not bound: " + name);
}

namespace {

/// Resolves a column reference against a scope. The scope is a schema
/// whose columns at index >= inner_start belong to the innermost query
/// block; inner columns shadow outer ones per SQL scoping.
Result<size_t> ResolveScoped(const Schema& schema, size_t inner_start,
                             const std::string& qualifier,
                             const std::string& name) {
  auto try_range = [&](size_t begin, size_t end) -> Result<size_t> {
    std::optional<size_t> found;
    for (size_t i = begin; i < end; ++i) {
      const Column& c = schema.column(i);
      if (!EqualsIgnoreCase(c.name, name)) continue;
      if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
        continue;
      }
      if (found.has_value()) {
        return Status::BindError("ambiguous column reference: " +
                                 (qualifier.empty() ? name
                                                    : qualifier + "." + name));
      }
      found = i;
    }
    if (!found.has_value()) {
      return Status::NotFound("column not found: " + name);
    }
    return *found;
  };
  Result<size_t> inner = try_range(inner_start, schema.num_columns());
  if (inner.ok() || inner.status().code() == StatusCode::kBindError) {
    return inner;
  }
  if (inner_start > 0) {
    Result<size_t> outer = try_range(0, inner_start);
    if (outer.ok() || outer.status().code() == StatusCode::kBindError) {
      return outer;
    }
  }
  std::string full = qualifier.empty() ? name : qualifier + "." + name;
  return Status::BindError("column not found: " + full);
}

}  // namespace

class Binder::Impl {
 public:
  Impl(const Catalog* catalog, std::vector<HostVariable>* host_vars)
      : catalog_(catalog), host_vars_(host_vars) {}

  /// Binds a spec. `outer` is the schema of the enclosing block's FROM
  /// product (empty schema for top-level specs).
  Result<PlanPtr> BindSpec(const QuerySpec& spec, const Schema& outer);

  /// Binds a spec as an existential subquery under `outer`: returns the
  /// inner plan and a correlation predicate over Concat(outer, inner).
  struct BoundSubquery {
    PlanPtr inner;
    ExprPtr correlation;
  };
  Result<BoundSubquery> BindSubquery(const QuerySpec& spec,
                                     const Schema& outer,
                                     const AstExpr* in_value);

  Result<ExprPtr> BindScalar(const AstExpr& e, const Schema& scope,
                             size_t inner_start);

 private:
  Result<PlanPtr> BindFrom(const std::vector<TableRef>& from, Schema* schema);
  Result<PlanPtr> BindGroupedSpec(const QuerySpec& spec, PlanPtr plan,
                                  const Schema& from_schema);
  Result<ExprPtr> BindComparison(const AstExpr& e, const Schema& scope,
                                 size_t inner_start);
  Result<ExprPtr> CoerceOperands(CompareOp op, ExprPtr left, ExprPtr right,
                                 size_t offset);
  ExprPtr WithHostVarType(const ExprPtr& hv, TypeId type);

  const Catalog* catalog_;
  std::vector<HostVariable>* host_vars_;
};

Result<PlanPtr> Binder::Impl::BindFrom(const std::vector<TableRef>& from,
                                       Schema* schema) {
  if (from.empty()) {
    return Status::BindError("FROM clause must name at least one table");
  }
  // Duplicate correlation names are ambiguous.
  for (size_t i = 0; i < from.size(); ++i) {
    for (size_t j = i + 1; j < from.size(); ++j) {
      if (EqualsIgnoreCase(from[i].correlation_name(),
                           from[j].correlation_name())) {
        return Status::BindError("duplicate correlation name in FROM: " +
                                 from[i].correlation_name());
      }
    }
  }
  PlanPtr plan;
  for (const TableRef& ref : from) {
    UNIQOPT_ASSIGN_OR_RETURN(const TableDef* def,
                             catalog_->GetTable(ref.table_name));
    PlanPtr get = GetNode::Make(def, ref.correlation_name());
    plan = plan == nullptr ? get : ProductNode::Make(plan, get);
  }
  *schema = plan->schema();
  return plan;
}

ExprPtr Binder::Impl::WithHostVarType(const ExprPtr& hv, TypeId type) {
  size_t slot = hv->host_var_index();
  (*host_vars_)[slot].type = type;
  (*host_vars_)[slot].type_known = true;
  return Expr::HostVar(slot, hv->display_name(), type);
}

Result<ExprPtr> Binder::Impl::CoerceOperands(CompareOp op, ExprPtr left,
                                             ExprPtr right, size_t offset) {
  auto type_is_soft = [](const ExprPtr& e) {
    // Host variables and bare NULL literals adopt the other side's type.
    return e->kind() == ExprKind::kHostVar ||
           (e->kind() == ExprKind::kLiteral && e->literal().is_null());
  };
  bool left_soft = type_is_soft(left);
  bool right_soft = type_is_soft(right);
  if (left_soft && !right_soft) {
    if (left->kind() == ExprKind::kHostVar) {
      left = WithHostVarType(left, right->value_type());
    } else {
      left = Expr::Literal(Value::Null(right->value_type()));
    }
  } else if (right_soft && !left_soft) {
    if (right->kind() == ExprKind::kHostVar) {
      right = WithHostVarType(right, left->value_type());
    } else {
      right = Expr::Literal(Value::Null(left->value_type()));
    }
  }
  if (!Value::Comparable(left->value_type(), right->value_type())) {
    return Status::BindError(
        "type mismatch at offset " + std::to_string(offset) + ": " +
        std::string(TypeIdToString(left->value_type())) + " vs " +
        std::string(TypeIdToString(right->value_type())));
  }
  return Expr::Compare(op, std::move(left), std::move(right));
}

Result<ExprPtr> Binder::Impl::BindComparison(const AstExpr& e,
                                             const Schema& scope,
                                             size_t inner_start) {
  UNIQOPT_ASSIGN_OR_RETURN(ExprPtr l, BindScalar(*e.children[0], scope,
                                                 inner_start));
  UNIQOPT_ASSIGN_OR_RETURN(ExprPtr r, BindScalar(*e.children[1], scope,
                                                 inner_start));
  return CoerceOperands(e.op, std::move(l), std::move(r), e.offset);
}

Result<ExprPtr> Binder::Impl::BindScalar(const AstExpr& e, const Schema& scope,
                                         size_t inner_start) {
  switch (e.kind) {
    case AstExprKind::kLiteral:
      return Expr::Literal(e.literal);
    case AstExprKind::kColumnRef: {
      UNIQOPT_ASSIGN_OR_RETURN(
          size_t idx, ResolveScoped(scope, inner_start, e.qualifier, e.name));
      const Column& c = scope.column(idx);
      return Expr::ColumnRef(idx, c.QualifiedName(), c.type, c.nullable);
    }
    case AstExprKind::kHostVar: {
      for (size_t i = 0; i < host_vars_->size(); ++i) {
        if (EqualsIgnoreCase((*host_vars_)[i].name, e.name)) {
          return Expr::HostVar(i, (*host_vars_)[i].name,
                               (*host_vars_)[i].type);
        }
      }
      HostVariable hv;
      hv.name = e.name;
      host_vars_->push_back(hv);
      return Expr::HostVar(host_vars_->size() - 1, e.name, hv.type);
    }
    case AstExprKind::kCompare:
      return BindComparison(e, scope, inner_start);
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(e.children.size());
      for (const AstExprPtr& c : e.children) {
        UNIQOPT_ASSIGN_OR_RETURN(ExprPtr bc,
                                 BindScalar(*c, scope, inner_start));
        children.push_back(std::move(bc));
      }
      return e.kind == AstExprKind::kAnd ? Expr::MakeAnd(std::move(children))
                                         : Expr::MakeOr(std::move(children));
    }
    case AstExprKind::kNot: {
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr c,
                               BindScalar(*e.children[0], scope, inner_start));
      return Expr::MakeNot(std::move(c));
    }
    case AstExprKind::kIsNull: {
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr c,
                               BindScalar(*e.children[0], scope, inner_start));
      return e.negated ? Expr::IsNotNull(std::move(c))
                       : Expr::IsNull(std::move(c));
    }
    case AstExprKind::kBetween: {
      // x BETWEEN a AND b  ⇒  x >= a AND x <= b (3VL-equivalent).
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr x,
                               BindScalar(*e.children[0], scope, inner_start));
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr lo,
                               BindScalar(*e.children[1], scope, inner_start));
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr hi,
                               BindScalar(*e.children[2], scope, inner_start));
      UNIQOPT_ASSIGN_OR_RETURN(
          ExprPtr ge, CoerceOperands(e.negated ? CompareOp::kLt : CompareOp::kGe,
                                     x, std::move(lo), e.offset));
      UNIQOPT_ASSIGN_OR_RETURN(
          ExprPtr le, CoerceOperands(e.negated ? CompareOp::kGt : CompareOp::kLe,
                                     std::move(x), std::move(hi), e.offset));
      return e.negated ? Expr::MakeOr({std::move(ge), std::move(le)})
                       : Expr::MakeAnd({std::move(ge), std::move(le)});
    }
    case AstExprKind::kInList: {
      // x IN (v1, ..) ⇒ x = v1 OR ...; NOT IN ⇒ x <> v1 AND ... .
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr x,
                               BindScalar(*e.children[0], scope, inner_start));
      std::vector<ExprPtr> terms;
      for (size_t i = 1; i < e.children.size(); ++i) {
        UNIQOPT_ASSIGN_OR_RETURN(
            ExprPtr v, BindScalar(*e.children[i], scope, inner_start));
        UNIQOPT_ASSIGN_OR_RETURN(
            ExprPtr cmp,
            CoerceOperands(e.negated ? CompareOp::kNe : CompareOp::kEq, x,
                           std::move(v), e.offset));
        terms.push_back(std::move(cmp));
      }
      return e.negated ? Expr::MakeAnd(std::move(terms))
                       : Expr::MakeOr(std::move(terms));
    }
    case AstExprKind::kExists:
    case AstExprKind::kInSubquery:
      return Status::Unsupported(
          "subquery predicates are supported only as top-level WHERE "
          "conjuncts");
    case AstExprKind::kAggregate:
      return Status::BindError(
          "aggregate functions are allowed only in the select list");
  }
  return Status::Internal("unhandled AST expression kind");
}

Result<Binder::Impl::BoundSubquery> Binder::Impl::BindSubquery(
    const QuerySpec& spec, const Schema& outer, const AstExpr* in_value) {
  if (spec.distinct) {
    // EXISTS(SELECT DISTINCT ...) ≡ EXISTS(SELECT ...); accept and ignore.
  }
  Schema inner_schema;
  UNIQOPT_ASSIGN_OR_RETURN(PlanPtr inner, BindFrom(spec.from, &inner_schema));
  Schema combined = Schema::Concat(outer, inner_schema);
  size_t outer_width = outer.num_columns();

  std::vector<ExprPtr> inner_only;   // pushed into the inner plan
  std::vector<ExprPtr> correlation;  // stay on the Exists node

  if (spec.where != nullptr) {
    // Bind conjunct by conjunct so inner-only conditions can be pushed.
    std::vector<const AstExpr*> conjuncts;
    if (spec.where->kind == AstExprKind::kAnd) {
      for (const AstExprPtr& c : spec.where->children) {
        conjuncts.push_back(c.get());
      }
    } else {
      conjuncts.push_back(spec.where.get());
    }
    for (const AstExpr* c : conjuncts) {
      if (c->kind == AstExprKind::kExists ||
          c->kind == AstExprKind::kInSubquery) {
        return Status::Unsupported(
            "nested subqueries inside a subquery are outside the supported "
            "subset");
      }
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr bound,
                               BindScalar(*c, combined, outer_width));
      size_t min_col = combined.num_columns();
      std::vector<size_t> cols;
      bound->CollectColumns(&cols);
      for (size_t col : cols) min_col = std::min(min_col, col);
      if (cols.empty() || min_col >= outer_width) {
        // References only inner columns (or none): remap into inner frame.
        std::vector<size_t> mapping(combined.num_columns(), 0);
        for (size_t i = outer_width; i < combined.num_columns(); ++i) {
          mapping[i] = i - outer_width;
        }
        inner_only.push_back(RemapColumns(bound, mapping));
      } else {
        correlation.push_back(std::move(bound));
      }
    }
  }

  // IN-subquery: equate the outer value with the subquery's single
  // projected column.
  if (in_value != nullptr) {
    if (spec.select_list.size() != 1 || spec.select_list[0].star) {
      return Status::BindError(
          "IN subquery must project exactly one column");
    }
    UNIQOPT_ASSIGN_OR_RETURN(ExprPtr lhs,
                             BindScalar(*in_value, combined, /*inner_start=*/0));
    UNIQOPT_ASSIGN_OR_RETURN(
        ExprPtr rhs,
        BindScalar(*spec.select_list[0].expr, combined, outer_width));
    UNIQOPT_ASSIGN_OR_RETURN(
        ExprPtr eq,
        CoerceOperands(CompareOp::kEq, std::move(lhs), std::move(rhs), 0));
    correlation.push_back(std::move(eq));
  }

  if (!inner_only.empty()) {
    inner = SelectNode::Make(inner, Expr::MakeAnd(std::move(inner_only)));
  }
  BoundSubquery out;
  out.inner = std::move(inner);
  out.correlation = Expr::MakeAnd(std::move(correlation));
  return out;
}

Result<PlanPtr> Binder::Impl::BindSpec(const QuerySpec& spec,
                                       const Schema& outer) {
  if (outer.num_columns() != 0) {
    return Status::Internal("BindSpec called with non-empty outer scope");
  }
  Schema from_schema;
  UNIQOPT_ASSIGN_OR_RETURN(PlanPtr plan, BindFrom(spec.from, &from_schema));

  // Partition WHERE into scalar conjuncts and subquery conjuncts.
  std::vector<ExprPtr> scalar;
  struct SubConjunct {
    PlanPtr inner;
    ExprPtr correlation;
    bool negated;
  };
  std::vector<SubConjunct> subs;
  if (spec.where != nullptr) {
    std::vector<const AstExpr*> conjuncts;
    if (spec.where->kind == AstExprKind::kAnd) {
      for (const AstExprPtr& c : spec.where->children) {
        conjuncts.push_back(c.get());
      }
    } else {
      conjuncts.push_back(spec.where.get());
    }
    for (const AstExpr* c : conjuncts) {
      if (c->kind == AstExprKind::kExists) {
        UNIQOPT_ASSIGN_OR_RETURN(
            BoundSubquery bs,
            BindSubquery(*c->subquery, from_schema, nullptr));
        subs.push_back({std::move(bs.inner), std::move(bs.correlation),
                        c->negated});
        continue;
      }
      if (c->kind == AstExprKind::kInSubquery) {
        if (c->negated) {
          return Status::Unsupported(
              "NOT IN (subquery) has non-trivial NULL semantics and is "
              "outside the supported subset; use NOT EXISTS");
        }
        UNIQOPT_ASSIGN_OR_RETURN(
            BoundSubquery bs,
            BindSubquery(*c->subquery, from_schema, c->children[0].get()));
        subs.push_back(
            {std::move(bs.inner), std::move(bs.correlation), false});
        continue;
      }
      UNIQOPT_ASSIGN_OR_RETURN(ExprPtr bound,
                               BindScalar(*c, from_schema, /*inner_start=*/0));
      scalar.push_back(std::move(bound));
    }
  }
  if (!scalar.empty()) {
    plan = SelectNode::Make(plan, Expr::MakeAnd(std::move(scalar)));
  }
  for (SubConjunct& s : subs) {
    plan = ExistsNode::Make(plan, std::move(s.inner), std::move(s.correlation),
                            s.negated);
  }

  // Grouped queries (§7 extension): build an AggregateNode, then
  // project its output in select-list order.
  bool has_aggregate = false;
  for (const SelectItem& item : spec.select_list) {
    has_aggregate = has_aggregate ||
                    (!item.star &&
                     item.expr->kind == AstExprKind::kAggregate);
  }
  if (!spec.group_by.empty() || has_aggregate) {
    return BindGroupedSpec(spec, std::move(plan), from_schema);
  }

  // Select list → projection column indexes over the FROM schema.
  std::vector<size_t> columns;
  for (const SelectItem& item : spec.select_list) {
    if (item.star) {
      for (size_t i = 0; i < from_schema.num_columns(); ++i) {
        if (item.star_qualifier.empty() ||
            EqualsIgnoreCase(from_schema.column(i).qualifier,
                             item.star_qualifier)) {
          columns.push_back(i);
        }
      }
      if (!item.star_qualifier.empty() && columns.empty()) {
        return Status::BindError("unknown qualifier in select list: " +
                                 item.star_qualifier + ".*");
      }
      continue;
    }
    if (item.expr->kind != AstExprKind::kColumnRef) {
      return Status::Unsupported(
          "select list supports only column references and * in this "
          "subset");
    }
    UNIQOPT_ASSIGN_OR_RETURN(
        size_t idx, ResolveScoped(from_schema, 0, item.expr->qualifier,
                                  item.expr->name));
    columns.push_back(idx);
  }
  return ProjectNode::Make(
      plan, spec.distinct ? DuplicateMode::kDist : DuplicateMode::kAll,
      std::move(columns));
}

Result<PlanPtr> Binder::Impl::BindGroupedSpec(const QuerySpec& spec,
                                              PlanPtr plan,
                                              const Schema& from_schema) {
  // Group columns (indexes into the FROM schema).
  std::vector<size_t> group_cols;
  for (const AstExprPtr& g : spec.group_by) {
    UNIQOPT_ASSIGN_OR_RETURN(
        size_t idx, ResolveScoped(from_schema, 0, g->qualifier, g->name));
    group_cols.push_back(idx);
  }
  // Select list: each item is either a grouped column or an aggregate.
  std::vector<AggregateItem> aggregates;
  struct OutputRef {
    bool is_group = false;
    size_t index = 0;  // group position or aggregate position
  };
  std::vector<OutputRef> outputs;
  for (const SelectItem& item : spec.select_list) {
    if (item.star) {
      return Status::BindError(
          "'*' cannot appear in the select list of a grouped query");
    }
    if (item.expr->kind == AstExprKind::kColumnRef) {
      UNIQOPT_ASSIGN_OR_RETURN(
          size_t idx, ResolveScoped(from_schema, 0, item.expr->qualifier,
                                    item.expr->name));
      bool found = false;
      for (size_t g = 0; g < group_cols.size() && !found; ++g) {
        if (group_cols[g] == idx) {
          outputs.push_back({true, g});
          found = true;
        }
      }
      if (!found) {
        return Status::BindError("column " + item.expr->ToString() +
                                 " must appear in GROUP BY or inside an "
                                 "aggregate");
      }
      continue;
    }
    if (item.expr->kind != AstExprKind::kAggregate) {
      return Status::Unsupported(
          "grouped select lists support columns and aggregates only");
    }
    AggregateItem agg;
    switch (item.expr->agg_func) {
      case AstAggFunc::kCountStar:
        agg.func = AggFunc::kCountStar;
        break;
      case AstAggFunc::kCount:
        agg.func = AggFunc::kCount;
        break;
      case AstAggFunc::kSum:
        agg.func = AggFunc::kSum;
        break;
      case AstAggFunc::kMin:
        agg.func = AggFunc::kMin;
        break;
      case AstAggFunc::kMax:
        agg.func = AggFunc::kMax;
        break;
      case AstAggFunc::kAvg:
        agg.func = AggFunc::kAvg;
        break;
    }
    if (agg.func != AggFunc::kCountStar) {
      const AstExpr& arg = *item.expr->children[0];
      UNIQOPT_ASSIGN_OR_RETURN(
          agg.arg_column,
          ResolveScoped(from_schema, 0, arg.qualifier, arg.name));
      const Column& c = from_schema.column(agg.arg_column);
      if (agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg) {
        if (c.type != TypeId::kInteger && c.type != TypeId::kDouble) {
          return Status::BindError("SUM/AVG require a numeric column: " +
                                   c.QualifiedName());
        }
      }
    }
    agg.name = item.expr->ToString();
    outputs.push_back({false, aggregates.size()});
    aggregates.push_back(std::move(agg));
  }

  plan = AggregateNode::Make(std::move(plan), group_cols,
                             std::move(aggregates));
  // Final projection: select-list order over (group cols ++ aggregates).
  std::vector<size_t> columns;
  for (const OutputRef& ref : outputs) {
    columns.push_back(ref.is_group ? ref.index
                                   : group_cols.size() + ref.index);
  }
  return ProjectNode::Make(
      std::move(plan),
      spec.distinct ? DuplicateMode::kDist : DuplicateMode::kAll,
      std::move(columns));
}

Result<BoundQuery> Binder::Bind(const Query& query) {
  BoundQuery out;
  Impl impl(catalog_, &out.host_vars);
  Schema empty;
  UNIQOPT_ASSIGN_OR_RETURN(PlanPtr plan, impl.BindSpec(*query.specs[0], empty));
  for (size_t i = 0; i < query.ops.size(); ++i) {
    UNIQOPT_ASSIGN_OR_RETURN(PlanPtr rhs,
                             impl.BindSpec(*query.specs[i + 1], empty));
    SetOpAlgebra alg = SetOpAlgebra::kIntersect;
    DuplicateMode mode = DuplicateMode::kDist;
    switch (query.ops[i]) {
      case SetOpKind::kIntersect:
        alg = SetOpAlgebra::kIntersect;
        mode = DuplicateMode::kDist;
        break;
      case SetOpKind::kIntersectAll:
        alg = SetOpAlgebra::kIntersect;
        mode = DuplicateMode::kAll;
        break;
      case SetOpKind::kExcept:
        alg = SetOpAlgebra::kExcept;
        mode = DuplicateMode::kDist;
        break;
      case SetOpKind::kExceptAll:
        alg = SetOpAlgebra::kExcept;
        mode = DuplicateMode::kAll;
        break;
    }
    UNIQOPT_ASSIGN_OR_RETURN(plan,
                             SetOpNode::Make(alg, mode, plan, std::move(rhs)));
  }
  out.plan = std::move(plan);
  return out;
}

Result<BoundQuery> Binder::BindSql(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(QueryPtr query, ParseQuery(sql));
  return Bind(*query);
}

Result<TableDef> BuildTableDef(const CreateTableStmt& stmt) {
  if (stmt.columns.empty()) {
    return Status::BindError("table must have at least one column: " +
                             stmt.table_name);
  }
  std::vector<Column> cols;
  for (const AstColumnDef& c : stmt.columns) {
    for (const Column& existing : cols) {
      if (EqualsIgnoreCase(existing.name, c.name)) {
        return Status::BindError("duplicate column name: " + c.name);
      }
    }
    Column col;
    col.qualifier = "";
    col.name = c.name;
    col.type = c.type;
    col.nullable = !c.not_null;
    cols.push_back(std::move(col));
  }
  TableDef def(ToUpperAscii(stmt.table_name), Schema(std::move(cols)));
  if (!stmt.primary_key.empty()) {
    UNIQOPT_RETURN_NOT_OK(def.SetPrimaryKey(stmt.primary_key));
  }
  for (const std::vector<std::string>& uq : stmt.unique_keys) {
    UNIQOPT_RETURN_NOT_OK(def.AddUniqueKey(uq));
  }
  for (const AstForeignKey& fk : stmt.foreign_keys) {
    UNIQOPT_RETURN_NOT_OK(
        def.AddForeignKey(fk.columns, fk.ref_table, fk.ref_columns));
  }
  // Bind CHECK predicates against the table's own schema. CHECK binding
  // never touches the catalog, so a catalog-less Impl suffices.
  for (const AstCheck& check : stmt.checks) {
    std::vector<HostVariable> hv;
    Binder::Impl impl(nullptr, &hv);
    UNIQOPT_ASSIGN_OR_RETURN(
        ExprPtr bound, impl.BindScalar(*check.predicate, def.schema(), 0));
    if (!hv.empty()) {
      return Status::BindError(
          "CHECK constraints may not reference host variables");
    }
    CheckConstraint cc;
    cc.name = "check_" + std::to_string(def.checks().size());
    cc.predicate = std::move(bound);
    cc.sql_text = check.sql_text;
    def.AddCheck(std::move(cc));
  }
  return def;
}

Status ExecuteCreateTable(std::string_view sql, Catalog* catalog) {
  UNIQOPT_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  if (stmt->create_table == nullptr) {
    return Status::InvalidArgument("expected a CREATE TABLE statement");
  }
  UNIQOPT_ASSIGN_OR_RETURN(TableDef def, BuildTableDef(*stmt->create_table));
  return catalog->AddTable(std::move(def));
}

Result<ExprPtr> BindTableScalar(const Catalog* catalog, const TableDef& table,
                                const AstExpr& expr,
                                std::vector<HostVariable>* host_vars) {
  // DML clauses may name columns bare or qualified by the table name,
  // so bind against the schema under the table's own qualifier.
  Schema scope = table.schema().WithQualifier(table.name());
  Binder::Impl impl(catalog, host_vars);
  return impl.BindScalar(expr, scope, /*inner_start=*/0);
}

}  // namespace uniqopt
