#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace uniqopt {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT s.sno, 42, 3.5, 'RED' FROM t WHERE a <> :HV");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kIdentifier);
  EXPECT_EQ(t[0].text, "SELECT");  // keywords fold to upper case
  EXPECT_EQ(t[1].text, "S");
  EXPECT_EQ(t[2].text, ".");
  EXPECT_EQ(t[3].text, "SNO");
  EXPECT_EQ(t[5].type, TokenType::kInteger);
  EXPECT_EQ(t[7].type, TokenType::kDouble);
  EXPECT_EQ(t[9].type, TokenType::kString);
  EXPECT_EQ(t[9].text, "RED");  // content without quotes
  EXPECT_EQ(t.back().type, TokenType::kEndOfInput);
}

TEST(LexerTest, HostVariable) {
  auto tokens = Tokenize(":SUPPLIER-NO");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kHostVar);
  EXPECT_EQ((*tokens)[0].text, "SUPPLIER-NO");
}

TEST(LexerTest, QuoteEscaping) {
  auto tokens = Tokenize("'O''Brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "O'Brien");
}

TEST(LexerTest, CommentsAndDashIdentifiers) {
  auto tokens = Tokenize("OEM-PNO -- trailing comment\n, X");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "OEM-PNO");
  EXPECT_EQ((*tokens)[1].text, ",");
  EXPECT_EQ((*tokens)[2].text, "X");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize(": 5").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto q = ParseQuery(
      "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE((*q)->IsSimpleSpec());
  const QuerySpec& spec = *(*q)->specs[0];
  EXPECT_TRUE(spec.distinct);
  ASSERT_EQ(spec.select_list.size(), 2u);
  ASSERT_EQ(spec.from.size(), 2u);
  EXPECT_EQ(spec.from[0].table_name, "SUPPLIER");
  EXPECT_EQ(spec.from[0].alias, "S");
  ASSERT_NE(spec.where, nullptr);
  EXPECT_EQ(spec.where->kind, AstExprKind::kAnd);
}

TEST(ParserTest, SelectStar) {
  auto q = ParseQuery("SELECT * FROM SUPPLIER");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->specs[0]->select_list[0].star);
  auto q2 = ParseQuery("SELECT S.* FROM SUPPLIER S");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->specs[0]->select_list[0].star_qualifier, "S");
}

TEST(ParserTest, ExistsSubquery) {
  auto q = ParseQuery(
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const QuerySpec& spec = *(*q)->specs[0];
  EXPECT_FALSE(spec.distinct);
  ASSERT_EQ(spec.where->kind, AstExprKind::kExists);
  EXPECT_FALSE(spec.where->negated);
  ASSERT_NE(spec.where->subquery, nullptr);
}

TEST(ParserTest, NotExistsFoldsNegation) {
  auto q = ParseQuery(
      "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->specs[0]->where->kind, AstExprKind::kExists);
  EXPECT_TRUE((*q)->specs[0]->where->negated);
}

TEST(ParserTest, BetweenInIsNull) {
  auto q = ParseQuery(
      "SELECT SNO FROM SUPPLIER WHERE SNO BETWEEN 1 AND 499 "
      "AND SCITY IN ('Chicago', 'Toronto') AND SNAME IS NOT NULL "
      "AND BUDGET NOT BETWEEN 5 AND 6");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AstExpr& where = *(*q)->specs[0]->where;
  ASSERT_EQ(where.kind, AstExprKind::kAnd);
  ASSERT_EQ(where.children.size(), 4u);
  EXPECT_EQ(where.children[0]->kind, AstExprKind::kBetween);
  EXPECT_EQ(where.children[1]->kind, AstExprKind::kInList);
  EXPECT_EQ(where.children[2]->kind, AstExprKind::kIsNull);
  EXPECT_TRUE(where.children[2]->negated);
  EXPECT_TRUE(where.children[3]->negated);
}

TEST(ParserTest, IntersectExceptChain) {
  auto q = ParseQuery(
      "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM PARTS "
      "EXCEPT SELECT SNO FROM AGENTS");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->specs.size(), 3u);
  ASSERT_EQ((*q)->ops.size(), 2u);
  EXPECT_EQ((*q)->ops[0], SetOpKind::kIntersectAll);
  EXPECT_EQ((*q)->ops[1], SetOpKind::kExcept);
}

TEST(ParserTest, InSubquery) {
  auto q = ParseQuery(
      "SELECT SNO FROM SUPPLIER WHERE SNO IN (SELECT SNO FROM PARTS)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->specs[0]->where->kind, AstExprKind::kInSubquery);
}

TEST(ParserTest, CreateTable) {
  auto s = ParseStatement(
      "CREATE TABLE PARTS ("
      " SNO INTEGER NOT NULL, PNO INTEGER NOT NULL, PNAME VARCHAR(30),"
      " OEM_PNO INTEGER, COLOR VARCHAR(10),"
      " PRIMARY KEY (SNO, PNO), UNIQUE (OEM_PNO),"
      " CHECK (SNO BETWEEN 1 AND 499))");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_NE((*s)->create_table, nullptr);
  const CreateTableStmt& ct = *(*s)->create_table;
  EXPECT_EQ(ct.table_name, "PARTS");
  EXPECT_EQ(ct.columns.size(), 5u);
  EXPECT_EQ(ct.primary_key, (std::vector<std::string>{"SNO", "PNO"}));
  ASSERT_EQ(ct.unique_keys.size(), 1u);
  ASSERT_EQ(ct.checks.size(), 1u);
  EXPECT_EQ(ct.checks[0].sql_text, "SNO BETWEEN 1 AND 499");
}

TEST(ParserTest, Unsupported) {
  EXPECT_FALSE(ParseQuery("SELECT A FROM T GROUP BY A HAVING A > 1").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT A FROM T UNION SELECT A FROM U").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM T").ok());
  EXPECT_FALSE(ParseQuery("SELECT A FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT A FROM T WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT A FROM T trailing garbage ,").ok());
}

TEST(ParserTest, RoundTripToString) {
  const char* sql =
      "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = :X";
  auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok());
  // Re-parse the printed form; it must parse to the same shape.
  auto q2 = ParseQuery((*q)->ToString());
  ASSERT_TRUE(q2.ok()) << (*q)->ToString();
  EXPECT_EQ((*q)->ToString(), (*q2)->ToString());
}

TEST(ParserTest, ParseExpressionStandalone) {
  auto e = ParseExpression("BUDGET > 0 OR STATUS = 'Inactive'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, AstExprKind::kOr);
}

}  // namespace
}  // namespace uniqopt
