file(REMOVE_RECURSE
  "libuniqopt_workload.a"
)
