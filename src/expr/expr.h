#ifndef UNIQOPT_EXPR_EXPR_H_
#define UNIQOPT_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/row.h"
#include "types/tribool.h"
#include "types/value.h"

namespace uniqopt {

/// Node kinds for bound scalar/predicate expressions. The paper's SQL
/// subset has no arithmetic, so scalar leaves are literals, column
/// references, and host variables; everything else is boolean structure.
/// BETWEEN and IN-lists are desugared by the binder into comparisons and
/// disjunctions, which keeps the normalizer and analyzer minimal.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kHostVar,
  kComparison,
  kAnd,  ///< n-ary conjunction
  kOr,   ///< n-ary disjunction
  kNot,
  kIsNull,     ///< `x IS NULL`
  kIsNotNull,  ///< `x IS NOT NULL`
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);
CompareOp NegateCompareOp(CompareOp op);
/// Mirror: a < b  ⇔  b > a.
CompareOp FlipCompareOp(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable, shareable expression tree bound against a row schema:
/// column references hold positional indexes. Host variables hold slots
/// into the parameter vector supplied at evaluation time (the paper's
/// `h`, known only at execution).
class Expr {
 public:
  // -- Factories ----------------------------------------------------------
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(size_t index, std::string display_name,
                           TypeId type, bool nullable = true);
  static ExprPtr HostVar(size_t index, std::string name, TypeId type);
  static ExprPtr Compare(CompareOp op, ExprPtr left, ExprPtr right);
  /// Flattens nested ANDs; returns TRUE literal for empty input.
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  /// Flattens nested ORs; returns FALSE literal for empty input.
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr IsNull(ExprPtr child);
  static ExprPtr IsNotNull(ExprPtr child);

  // -- Accessors ----------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  size_t column_index() const { return index_; }
  size_t host_var_index() const { return index_; }
  const std::string& display_name() const { return name_; }
  CompareOp compare_op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_.at(i); }
  size_t num_children() const { return children_.size(); }

  /// Static type of the expression value. Boolean for predicates.
  TypeId value_type() const { return type_; }
  /// Conservative nullability (predicates: can evaluate to UNKNOWN).
  bool nullable() const { return nullable_; }

  /// True for kLiteral TRUE / FALSE boolean constants.
  bool IsTrueLiteral() const;
  bool IsFalseLiteral() const;

  // -- Evaluation ---------------------------------------------------------
  /// Evaluates a scalar or predicate against `row`; `params[i]` supplies
  /// host variable i. Predicates yield Boolean values where NULL encodes
  /// UNKNOWN.
  Value Evaluate(const Row& row, const std::vector<Value>& params) const;

  /// Predicate evaluation in three-valued logic.
  Tribool EvaluatePredicate(const Row& row,
                            const std::vector<Value>& params) const;

  // -- Structure ----------------------------------------------------------
  /// SQL-ish rendering, e.g. `(S.SNO = P.SNO AND P.COLOR = 'RED')`.
  std::string ToString() const;

  /// Collects all column indexes referenced by the expression.
  void CollectColumns(std::vector<size_t>* out) const;
  /// Highest referenced column index + 1 (0 when no references).
  size_t MaxColumnIndexPlusOne() const;
  /// Number of distinct host variables referenced (max index + 1).
  size_t MaxHostVarIndexPlusOne() const;

  /// Structural equality (same shape, literals equal under `=!`).
  bool Equals(const Expr& other) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  size_t index_ = 0;
  std::string name_;
  CompareOp op_ = CompareOp::kEq;
  std::vector<ExprPtr> children_;
  TypeId type_ = TypeId::kBoolean;
  bool nullable_ = true;
};

/// Rewrites column references through `mapping`: a reference to old index
/// i becomes a reference to mapping[i]. All referenced indexes must be
/// mapped.
ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<size_t>& mapping);

/// Adds `offset` to every column index (placing a predicate over the
/// right side of a product).
ExprPtr ShiftColumns(const ExprPtr& expr, size_t offset);

/// Convenience: TRUE and FALSE boolean literals.
ExprPtr TrueLiteral();
ExprPtr FalseLiteral();

}  // namespace uniqopt

#endif  // UNIQOPT_EXPR_EXPR_H_
