#ifndef UNIQOPT_WORKLOAD_QUERY_CORPUS_H_
#define UNIQOPT_WORKLOAD_QUERY_CORPUS_H_

#include <string>
#include <vector>

namespace uniqopt {

/// One catalogued query over the Figure 1 schema.
struct CorpusQuery {
  std::string id;    ///< e.g. "example1", "var-proj-sname"
  std::string sql;
  /// Ground truth: is DISTINCT provably redundant by Theorem 1 for this
  /// query (i.e. should a complete analyzer say YES)?
  bool distinct_redundant = false;
  /// Whether the published Algorithm 1 (sufficient test, verbatim
  /// including line 10) detects it.
  bool algorithm1_detects = false;
  /// Whether the FD-propagation analyzer (this library's extended
  /// detector) detects it.
  bool fd_detects = false;
};

/// The paper's worked examples (1, 2, 4, 5, 6) plus systematic
/// variations: projections that cover / miss keys, constant bindings via
/// host variables, transitive equality chains, disjunctions that defeat
/// Algorithm 1, and UNIQUE-key (OEM_PNO) coverage. Used by unit tests and
/// by the X3/X10 applicability experiments.
const std::vector<CorpusQuery>& DistinctQueryCorpus();

}  // namespace uniqopt

#endif  // UNIQOPT_WORKLOAD_QUERY_CORPUS_H_
