// Tests for the HTTP observability endpoint: a real loopback socket
// round-trip per route, the Prometheus lint on a served /metrics page,
// JSON validity of /trace and /queries, and the 404/405 error paths.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/advisor.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "test_util.h"

namespace uniqopt {
namespace {

/// Sends `request` to 127.0.0.1:`port` and returns the full response.
std::string RawRequest(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port,
                    "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

class HttpEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().GetCounter("exec.rows").Increment(5);
    obs::MetricsRegistry::Global()
        .GetHistogram("optimizer.phase.parse.ns")
        .Record(1234);
    recorder_.SetCapacity(8);
    obs::QueryRecord rec;
    rec.source = "optimizer";
    rec.query = "SELECT SNO FROM SUPPLIER";
    rec.plan_hash = obs::FingerprintPlanText("Scan SUPPLIER");
    rec.ok = true;
    recorder_.Record(std::move(rec));

    obs::Tracer::Global().Enable(&sink_);
    { obs::Span span("optimizer.prepare"); }
    obs::Tracer::Global().Disable();

    endpoint_ = std::make_unique<obs::HttpEndpoint>(&sink_, &recorder_);
    ASSERT_OK(endpoint_->Start(0));
    ASSERT_TRUE(endpoint_->serving());
    ASSERT_NE(endpoint_->port(), 0);
  }

  void TearDown() override { endpoint_->Stop(); }

  obs::CollectingSink sink_;
  obs::QueryRecorder recorder_;
  std::unique_ptr<obs::HttpEndpoint> endpoint_;
};

TEST_F(HttpEndpointTest, MetricsRouteServesLintedPrometheusText) {
  std::string response = Get(endpoint_->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  std::string body = Body(response);
  Status lint = obs::LintPrometheusText(body);
  EXPECT_TRUE(lint.ok()) << lint.ToString() << "\n" << body;
  EXPECT_NE(body.find("exec_rows_total"), std::string::npos);
  EXPECT_NE(body.find("optimizer_phase_parse_ns_count"),
            std::string::npos);
}

TEST_F(HttpEndpointTest, TraceRouteServesValidChromeTraceJson) {
  std::string response = Get(endpoint_->port(), "/trace");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("optimizer.prepare"), std::string::npos);
}

TEST_F(HttpEndpointTest, QueriesRouteServesRecorderJson) {
  std::string response = Get(endpoint_->port(), "/queries");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("SELECT SNO FROM SUPPLIER"), std::string::npos);
}

TEST_F(HttpEndpointTest, AdvisorRouteServesSuggestionJson) {
  obs::AdvisorStore::Global().Clear();
  obs::NearMiss miss;
  miss.goal = "theorem1.distinct";
  miss.table = "SUPPLIER";
  miss.alias = "S";
  miss.kind = obs::MissingFactKind::kUniqueKey;
  miss.fact = "UNIQUE (SNO)";
  miss.replay_key_columns = {"SNO"};
  obs::AdvisorStore::Global().Record(
      miss, 0x1234, "SELECT DISTINCT SNO FROM SUPPLIER");

  std::string response = Get(endpoint_->port(), "/advisor");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"suggestions\""), std::string::npos);
  EXPECT_NE(body.find("UNIQUE (SNO)"), std::string::npos);
  obs::AdvisorStore::Global().Clear();
}

TEST_F(HttpEndpointTest, IndexListsRoutes) {
  std::string response = Get(endpoint_->port(), "/");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("/metrics"), std::string::npos);
  EXPECT_NE(response.find("/advisor"), std::string::npos);
  EXPECT_NE(response.find("/timeseries"), std::string::npos);
  EXPECT_NE(response.find("/alerts"), std::string::npos);
  EXPECT_NE(response.find("/healthz"), std::string::npos);
}

TEST_F(HttpEndpointTest, MetricsRouteKeepsTextPlainContentType) {
  // /metrics must stay the Prometheus exposition content type even
  // though the JSON routes switched to application/json.
  std::string response = Get(endpoint_->port(), "/metrics");
  EXPECT_NE(response.find(
                "Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_EQ(response.find("application/json"), std::string::npos);
}

TEST_F(HttpEndpointTest, UnknownPathIs404WithJsonErrorBody) {
  std::string response = Get(endpoint_->port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"error\""), std::string::npos);
  EXPECT_NE(body.find("/nope"), std::string::npos);
}

TEST_F(HttpEndpointTest, HeadAnswersWithHeadersOnly) {
  std::string get = Get(endpoint_->port(), "/metrics");
  std::string head = RawRequest(
      endpoint_->port(),
      "HEAD /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  // Same Content-Length the GET advertised, but nothing after the
  // header terminator.
  size_t cl = get.find("Content-Length:");
  ASSERT_NE(cl, std::string::npos);
  std::string cl_line = get.substr(cl, get.find("\r\n", cl) - cl);
  EXPECT_NE(head.find(cl_line), std::string::npos);
  EXPECT_TRUE(Body(head).empty()) << Body(head);
}

TEST_F(HttpEndpointTest, HeadOnUnknownPathIs404WithoutBody) {
  std::string response = RawRequest(
      endpoint_->port(),
      "HEAD /nope HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_TRUE(Body(response).empty());
}

TEST_F(HttpEndpointTest, HealthzReportsUptimeAndTickerState) {
  std::string response = Get(endpoint_->port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_ms\""), std::string::npos);
  EXPECT_NE(body.find("\"ticker_running\""), std::string::npos);
}

TEST_F(HttpEndpointTest, TimeseriesRouteServesPlaneJson) {
  std::string response = Get(endpoint_->port(), "/timeseries");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"timeseries\""), std::string::npos);
}

TEST_F(HttpEndpointTest, AlertsRouteServesSentinelJson) {
  std::string response = Get(endpoint_->port(), "/alerts");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  Status valid = obs::ValidateJson(body);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << body;
  EXPECT_NE(body.find("\"sentinel\""), std::string::npos);
  EXPECT_NE(body.find("\"alerts\""), std::string::npos);
}

TEST_F(HttpEndpointTest, NonGetMethodIs405) {
  std::string response = RawRequest(
      endpoint_->port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST_F(HttpEndpointTest, QueryStringIsIgnoredForRouting) {
  std::string response = Get(endpoint_->port(), "/metrics?x=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(HttpEndpointTest, StopIsIdempotentAndRestartable) {
  uint16_t first_port = endpoint_->port();
  endpoint_->Stop();
  endpoint_->Stop();
  EXPECT_FALSE(endpoint_->serving());
  ASSERT_OK(endpoint_->Start(0));
  EXPECT_TRUE(endpoint_->serving());
  // A fresh scrape works after restart (port may differ).
  std::string response = Get(endpoint_->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  (void)first_port;
}

TEST_F(HttpEndpointTest, DoubleStartFails) {
  EXPECT_FALSE(endpoint_->Start(0).ok());
}

TEST(HttpEndpointRenderTest, RenderPathMatchesRoutes) {
  obs::CollectingSink sink;
  obs::QueryRecorder recorder;
  obs::HttpEndpoint endpoint(&sink, &recorder);
  EXPECT_FALSE(endpoint.RenderPath("/").empty());
  EXPECT_FALSE(endpoint.RenderPath("/metrics").empty() &&
               !obs::SnapshotMetrics(obs::MetricsRegistry::Global())
                    .empty());
  EXPECT_TRUE(endpoint.RenderPath("/bogus").empty());
  Status trace_valid = obs::ValidateJson(endpoint.RenderPath("/trace"));
  EXPECT_TRUE(trace_valid.ok()) << trace_valid.ToString();
  Status queries_valid =
      obs::ValidateJson(endpoint.RenderPath("/queries"));
  EXPECT_TRUE(queries_valid.ok()) << queries_valid.ToString();
  Status advisor_valid =
      obs::ValidateJson(endpoint.RenderPath("/advisor"));
  EXPECT_TRUE(advisor_valid.ok()) << advisor_valid.ToString();
}

}  // namespace
}  // namespace uniqopt
