// Interactive shell over the uniqopt facade: type SQL against the
// supplier database (or your own CREATE TABLE ... ), see the rewrite
// audit trail (EXPLAIN) and the results.
//
//   $ uniqopt_shell
//   uniqopt> EXPLAIN SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P
//            WHERE S.SNO = P.SNO;
//   uniqopt> SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS;
//   uniqopt> \q
//
// Commands: `EXPLAIN <query>` shows plans (with the uniqueness proof)
// without executing; `EXPLAIN ANALYZE <query>` executes with
// per-operator metering and shows the profile plus the metrics the run
// moved; `CREATE TABLE ...` extends the catalog; `\metrics` dumps the
// metrics registry; `\trace on|off` toggles pipeline tracing (spans
// print as they close and are buffered for `\export`); `\history`
// shows the query flight recorder; `\advisor` lists the uniqueness
// constraint advisor's near-miss suggestions (`\advisor replay [n]`
// what-if replays the top n against a hypothetical catalog, `\advisor
// clear` resets the store); `\slow [ms]` sets/queries the
// slow-query threshold; `\serve <port>` starts the HTTP observability
// endpoint (GET /metrics, /trace, /queries, /advisor); `\export
// [trace|metrics|queries|advisor] <file>` dumps the corresponding
// payload;
// `\verify <query>` prepares the query and runs the post-optimization
// static verifier (plan lint, proof checker, null-semantics audit);
// `\cache` shows the plan cache's configuration and hit/miss stats
// (`\cache clear` empties it); `\timeline [<filter>]` renders the
// windowed time-series plane (sparkline + window table per matching
// series); `\alerts` lists the regression sentinel's alerts;
// `\sentinel on|off|reset` controls the sentinel; `\tick` closes a
// window by hand (the `\serve` background ticker does it every
// second); `\inject <metric> <value> [count]` records synthetic
// histogram samples (smoke tests provoke regressions with it);
// `DROP TABLE <t>` drops a table (and the proofs leaning on its keys);
// `\set dop <n>` / `\set batch <rows>` configure morsel-driven parallel
// execution and the vectorized batch size for subsequent queries
// (`\set` alone shows the current values); `\q` quits. Host variables
// are not supported interactively (use the library API).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "equiv/schema_lint.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sentinel.h"
#include "obs/timeseries.h"
#include "obs/advisor.h"
#include "obs/trace.h"
#include "txn/dml.h"
#include "txn/dml_executor.h"
#include "uniqopt/uniqopt.h"

namespace {

using namespace uniqopt;

/// Prints each span as it closes (indented by nesting depth) and keeps
/// a bounded buffer behind `\export trace` and GET /trace.
class ShellTraceSink : public obs::TraceSink {
 public:
  static constexpr size_t kMaxBufferedEvents = 100000;

  void OnSpanEnd(obs::TraceEvent event) override {
    if (echo_) std::printf("[trace] %s\n", event.ToString().c_str());
    buffer_.OnSpanEnd(std::move(event));
    buffer_.TrimTo(kMaxBufferedEvents);
  }

  void set_echo(bool echo) { echo_ = echo; }
  obs::CollectingSink* buffer() { return &buffer_; }

 private:
  bool echo_ = true;
  obs::CollectingSink buffer_;
};

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::printf("error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  std::printf("wrote %zu bytes to %s\n", content.size(), path.c_str());
  return true;
}

void PrintResult(const PreparedQuery& prepared,
                 const std::vector<Row>& rows, const ExecStats& stats) {
  const Schema& schema = prepared.optimized_plan->schema();
  std::string header;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) header += " | ";
    header += schema.column(i).QualifiedName();
  }
  std::printf("%s\n", header.c_str());
  std::printf("%s\n", std::string(header.size(), '-').c_str());
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= 25) {
      std::printf("... (%zu more rows)\n", rows.size() - 25);
      break;
    }
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += row[i].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("(%zu rows)  [%s]\n", rows.size(), stats.ToString().c_str());
}

int Run() {
  Database db;
  if (!MakeTestSupplierDatabase(&db).ok()) return 1;
  Optimizer optimizer(&db);
  // Session physical defaults (\set dop / \set batch); mirrored into
  // the optimizer so plan-cache fingerprints and cost-based
  // alternatives track the session settings.
  PhysicalOptions physical;
  ShellTraceSink trace_sink;
  obs::HttpEndpoint endpoint(trace_sink.buffer());
  obs::TimeSeriesPlane& plane = obs::TimeSeriesPlane::Global();
  obs::Sentinel& sentinel = obs::Sentinel::Global();
  // Attached once up front: with the sentinel disabled (the default)
  // each Tick hands it nothing but a no-op call.
  plane.AttachSentinel(&sentinel);
  std::printf(
      "uniqopt shell — supplier database loaded "
      "(SUPPLIER/PARTS/AGENTS).\n"
      "EXPLAIN <q> shows the rewrite trail and uniqueness proof; "
      "EXPLAIN ANALYZE <q> executes\nwith per-operator metering. "
      "\\metrics dumps counters; \\trace on|off toggles spans;\n"
      "\\history shows the flight recorder; \\advisor lists constraint "
      "suggestions\n(\\advisor replay [n] what-if replays the top n; "
      "\\advisor adopt [n] turns suggestion n\ninto a real CREATE UNIQUE "
      "INDEX, validating existing rows); INSERT/UPDATE/DELETE\nrun on "
      "the transactional DML plane with key enforcement; "
      "\\slow [ms] sets the "
      "slow-query threshold;\n\\serve <port> starts the HTTP endpoint "
      "(/metrics /trace /queries /advisor /timeseries /alerts /healthz)\n"
      "plus the 1s window ticker and the regression sentinel; \\export "
      "[trace|metrics|queries|advisor|timeline] "
      "<file> dumps a payload;\n\\verify <q> runs the plan verifier "
      "(equivalence certificates included);\n\\schemalint audits the "
      "catalog's declared constraints for inconsistencies;\n"
      "\\cache shows the plan cache (\\cache clear empties it);\n"
      "\\timeline [<filter>] renders windowed series; \\alerts lists "
      "sentinel alerts;\n\\sentinel on|off|reset controls the sentinel; "
      "\\tick closes a window by hand;\n\\inject <metric> <value> [n] "
      "records synthetic samples;\n\\set dop <n> and \\set batch <rows> "
      "configure parallel/vectorized execution; \\q quits.\n");

  std::string line;
  while (true) {
    std::printf("uniqopt> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(StripAsciiWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\q" || EqualsIgnoreCase(trimmed, "quit")) break;
    if (trimmed == "\\metrics") {
      std::printf("%s", obs::MetricsRegistry::Global().ToText().c_str());
      continue;
    }
    if (trimmed == "\\trace on") {
      obs::Tracer::Global().Enable(&trace_sink);
      std::printf("tracing on\n");
      continue;
    }
    if (trimmed == "\\trace off") {
      obs::Tracer::Global().Disable();
      std::printf("tracing off\n");
      continue;
    }
    if (trimmed == "\\history") {
      std::printf("%s", obs::QueryRecorder::Global().ToText().c_str());
      continue;
    }
    if (trimmed == "\\advisor") {
      std::printf("%s", obs::AdvisorStore::Global().ToText().c_str());
      continue;
    }
    if (trimmed == "\\advisor clear") {
      obs::AdvisorStore::Global().Clear();
      std::printf("advisor store cleared\n");
      continue;
    }
    if (trimmed.rfind("\\advisor replay", 0) == 0) {
      std::string arg(StripAsciiWhitespace(
          trimmed.size() > 15 ? trimmed.substr(15) : ""));
      char* end = nullptr;
      unsigned long long n =
          arg.empty() ? 3 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0' || n == 0)) {
        std::printf("usage: \\advisor replay [<top-n>]\n");
        continue;
      }
      auto replay = ReplayAdvisorSuggestions(
          &db, obs::AdvisorStore::Global(), static_cast<size_t>(n));
      if (!replay.ok()) {
        std::printf("error: %s\n", replay.status().ToString().c_str());
        continue;
      }
      std::printf("%s", replay->ToText().c_str());
      continue;
    }
    if (trimmed.rfind("\\advisor adopt", 0) == 0) {
      std::string arg(StripAsciiWhitespace(
          trimmed.size() > 14 ? trimmed.substr(14) : ""));
      char* end = nullptr;
      unsigned long long n =
          arg.empty() ? 1 : std::strtoull(arg.c_str(), &end, 10);
      if (!arg.empty() && (end == nullptr || *end != '\0' || n == 0)) {
        std::printf("usage: \\advisor adopt [<suggestion-#>]\n");
        continue;
      }
      std::vector<obs::AdvisorSuggestion> suggestions =
          obs::AdvisorStore::Global().Suggestions();
      if (n > suggestions.size()) {
        std::printf("error: only %zu suggestion(s) in the advisor store\n",
                    suggestions.size());
        continue;
      }
      const obs::AdvisorSuggestion& pick = suggestions[n - 1];
      if (pick.kind == obs::MissingFactKind::kNotNull ||
          pick.replay_key_columns.empty()) {
        std::printf(
            "error: suggestion %llu (%s on %s) is not adoptable as a "
            "unique index\n",
            n, obs::MissingFactKindName(pick.kind), pick.table.c_str());
        continue;
      }
      std::string index_name = "ADV_" + pick.table;
      std::string column_list;
      for (const std::string& col : pick.replay_key_columns) {
        index_name += "_" + col;
        if (!column_list.empty()) column_list += ", ";
        column_list += col;
      }
      auto validated = db.CreateUniqueIndex(pick.table, index_name,
                                            pick.replay_key_columns);
      if (!validated.ok()) {
        std::printf("error: %s\n", validated.status().ToString().c_str());
        continue;
      }
      std::printf(
          "CREATE UNIQUE INDEX %s ON %s (%s): OK — %zu existing row(s) "
          "validated\n(suggestion stays listed until \\advisor clear; "
          "replay will now show no flips)\n",
          index_name.c_str(), pick.table.c_str(), column_list.c_str(),
          *validated);
      continue;
    }
    if (trimmed == "\\cache") {
      std::printf("%s", optimizer.plan_cache()->ToText().c_str());
      continue;
    }
    if (trimmed == "\\cache clear") {
      optimizer.plan_cache()->Clear();
      std::printf("plan cache cleared\n");
      continue;
    }
    if (trimmed == "\\slow" || trimmed.rfind("\\slow ", 0) == 0) {
      obs::QueryRecorder& recorder = obs::QueryRecorder::Global();
      if (trimmed == "\\slow") {
        uint64_t ms = recorder.slow_threshold_ns() / 1000000;
        std::printf("slow threshold: %llu ms%s\n",
                    static_cast<unsigned long long>(ms),
                    ms == 0 ? " (disabled; \\slow <ms> to set)" : "");
        for (const obs::QueryRecord& r : recorder.SlowQueries()) {
          std::printf("%s", r.ToString().c_str());
        }
        continue;
      }
      std::string arg(StripAsciiWhitespace(trimmed.substr(6)));
      char* end = nullptr;
      unsigned long long ms = std::strtoull(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || arg.empty()) {
        std::printf("usage: \\slow [<milliseconds>]\n");
        continue;
      }
      recorder.SetSlowThresholdNs(static_cast<uint64_t>(ms) * 1000000);
      std::printf("slow threshold set to %llu ms\n", ms);
      continue;
    }
    if (trimmed == "\\set" || trimmed.rfind("\\set ", 0) == 0) {
      std::vector<std::string> args;
      for (const std::string& piece : Split(
               trimmed.size() > 4 ? trimmed.substr(5) : "", ' ')) {
        if (!piece.empty()) args.push_back(piece);
      }
      if (args.empty()) {
        std::printf("dop=%u batch=%zu\n", physical.dop,
                    physical.batch_size);
        continue;
      }
      char* end = nullptr;
      unsigned long long value =
          args.size() == 2 ? std::strtoull(args[1].c_str(), &end, 10) : 0;
      bool value_ok = args.size() == 2 && end != nullptr && *end == '\0';
      if (value_ok && args[0] == "dop" && value >= 1 && value <= 64) {
        physical.dop = static_cast<unsigned>(value);
      } else if (value_ok && args[0] == "batch" && value <= 1000000) {
        physical.batch_size = static_cast<size_t>(value);
      } else {
        std::printf(
            "usage: \\set dop <1..64> | \\set batch <0..1000000> "
            "(batch 0 = tuple-at-a-time)\n");
        continue;
      }
      optimizer.set_default_physical(physical);
      std::printf("dop=%u batch=%zu\n", physical.dop, physical.batch_size);
      continue;
    }
    if (trimmed == "\\timeline" || trimmed.rfind("\\timeline ", 0) == 0) {
      std::string filter(StripAsciiWhitespace(
          trimmed.size() > 9 ? trimmed.substr(9) : ""));
      std::printf("%s", plane.ToText(filter).c_str());
      continue;
    }
    if (trimmed == "\\alerts") {
      std::printf("%s", sentinel.ToText().c_str());
      continue;
    }
    if (trimmed == "\\sentinel on") {
      sentinel.set_enabled(true);
      plane.set_enabled(true);
      std::printf("sentinel armed (warm-up: %llu windows per series)\n",
                  static_cast<unsigned long long>(
                      sentinel.options().warmup_windows));
      continue;
    }
    if (trimmed == "\\sentinel off") {
      sentinel.set_enabled(false);
      std::printf("sentinel off\n");
      continue;
    }
    if (trimmed == "\\sentinel reset") {
      sentinel.Reset();
      std::printf("sentinel reference tracks and alerts cleared\n");
      continue;
    }
    if (trimmed == "\\tick") {
      plane.set_enabled(true);
      plane.Tick();
      std::printf("window %llu closed\n",
                  static_cast<unsigned long long>(plane.ticks()));
      continue;
    }
    if (trimmed.rfind("\\inject ", 0) == 0) {
      std::vector<std::string> args;
      for (const std::string& piece : Split(trimmed.substr(8), ' ')) {
        if (!piece.empty()) args.push_back(piece);
      }
      char* end = nullptr;
      unsigned long long value =
          args.size() >= 2 ? std::strtoull(args[1].c_str(), &end, 10) : 0;
      bool value_ok = args.size() >= 2 && end != nullptr && *end == '\0';
      unsigned long long count = 1;
      if (value_ok && args.size() == 3) {
        count = std::strtoull(args[2].c_str(), &end, 10);
        value_ok = end != nullptr && *end == '\0' && count > 0;
      }
      if (!value_ok || args.size() > 3) {
        std::printf("usage: \\inject <metric> <value> [count]\n");
        continue;
      }
      obs::Histogram& hist =
          obs::MetricsRegistry::Global().GetHistogram(args[0]);
      for (unsigned long long i = 0; i < count; ++i) {
        hist.Record(static_cast<uint64_t>(value));
      }
      std::printf("recorded %llu sample(s) of %llu into %s\n", count,
                  value, args[0].c_str());
      continue;
    }
    if (trimmed.rfind("\\serve", 0) == 0) {
      if (endpoint.serving()) {
        std::printf("already serving on 127.0.0.1:%u\n", endpoint.port());
        continue;
      }
      std::string arg(StripAsciiWhitespace(
          trimmed.size() > 6 ? trimmed.substr(6) : ""));
      char* end = nullptr;
      unsigned long port = std::strtoul(arg.c_str(), &end, 10);
      if (arg.empty() || end == nullptr || *end != '\0' || port > 65535) {
        std::printf("usage: \\serve <port>\n");
        continue;
      }
      Status st = endpoint.Start(static_cast<uint16_t>(port));
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      // Serving means live monitoring: close a window every second and
      // arm the regression sentinel over the closed windows.
      Status ticker = plane.StartTicker(1000);
      if (!ticker.ok() && ticker.code() != StatusCode::kAlreadyExists) {
        std::printf("warning: ticker not started: %s\n",
                    ticker.ToString().c_str());
      }
      sentinel.set_enabled(true);
      std::printf(
          "serving on 127.0.0.1:%u — try: curl localhost:%u/metrics\n"
          "window ticker running (1s) and sentinel armed\n",
          endpoint.port(), endpoint.port());
      continue;
    }
    if (trimmed.rfind("\\export", 0) == 0) {
      std::vector<std::string> args;
      for (const std::string& piece :
           Split(trimmed.size() > 7 ? trimmed.substr(8) : "", ' ')) {
        if (!piece.empty()) args.push_back(piece);
      }
      std::string kind = args.size() == 2 ? args[0] : "trace";
      std::string path = args.size() == 2  ? args[1]
                         : args.size() == 1 ? args[0]
                                            : "";
      if (path.empty()) {
        std::printf(
            "usage: \\export [trace|metrics|queries|advisor|timeline] "
            "<file>\n");
        continue;
      }
      if (kind == "trace") {
        WriteFile(path,
                  obs::ToChromeTraceJson(trace_sink.buffer()->Events()));
      } else if (kind == "metrics") {
        WriteFile(path, obs::ToPrometheusText(obs::SnapshotMetrics(
                            obs::MetricsRegistry::Global())));
      } else if (kind == "queries") {
        WriteFile(path, obs::QueryRecorder::Global().ToJson());
      } else if (kind == "advisor") {
        WriteFile(path, obs::AdvisorStore::Global().ToJson());
      } else if (kind == "timeline") {
        WriteFile(path, plane.ToJson());
      } else {
        std::printf(
            "usage: \\export [trace|metrics|queries|advisor|timeline] "
            "<file>\n");
      }
      continue;
    }
    if (trimmed.rfind("\\verify ", 0) == 0) {
      std::string sql(StripAsciiWhitespace(trimmed.substr(8)));
      if (sql.empty()) {
        std::printf("usage: \\verify <query>\n");
        continue;
      }
      auto prepared = optimizer.Prepare(sql);
      if (!prepared.ok()) {
        std::printf("error: %s\n", prepared.status().ToString().c_str());
        continue;
      }
      verify::VerifyReport report = prepared->verified
                                        ? prepared->verification
                                        : optimizer.Verify(*prepared);
      std::printf("%s", report.ToString().c_str());
      continue;
    }
    if (trimmed == "\\schemalint") {
      std::vector<equiv::SchemaLintFinding> findings =
          equiv::LintCatalog(db.catalog());
      if (findings.empty()) {
        std::printf("schema clean: no constraint inconsistencies found\n");
      } else {
        for (const equiv::SchemaLintFinding& f : findings) {
          std::printf("%s\n", f.ToString().c_str());
        }
        size_t published = equiv::PublishSchemaFindings(findings);
        std::printf("(%zu finding(s); %zu published to the advisor)\n",
                    findings.size(), published);
      }
      continue;
    }

    bool explain_only = false;
    bool explain_analyze = false;
    std::string upper = ToUpperAscii(trimmed);
    if (upper.rfind("EXPLAIN ANALYZE ", 0) == 0) {
      explain_analyze = true;
      trimmed = trimmed.substr(16);
    } else if (upper.rfind("EXPLAIN ", 0) == 0) {
      explain_only = true;
      trimmed = trimmed.substr(8);
    }
    if (upper.rfind("CREATE ", 0) == 0 || upper.rfind("DROP ", 0) == 0) {
      Status st = db.ExecuteDdl(trimmed);
      std::printf("%s\n", st.ToString().c_str());
      continue;
    }
    if (txn::IsDmlSql(trimmed)) {
      txn::DmlExecutor executor(&db);
      auto dml = executor.ExecuteSql(trimmed);
      if (!dml.ok()) {
        std::printf("error: %s\n", dml.status().ToString().c_str());
      } else {
        std::printf("%s\n", dml->ToString().c_str());
      }
      continue;
    }

    auto prepared = optimizer.Prepare(trimmed);
    if (!prepared.ok()) {
      std::printf("error: %s\n", prepared.status().ToString().c_str());
      continue;
    }
    if (!prepared->host_vars.empty()) {
      std::printf(
          "error: interactive mode cannot bind host variables (:%s)\n",
          prepared->host_vars[0].name.c_str());
      continue;
    }
    if (explain_only) {
      std::printf("%s", prepared->Explain().c_str());
      continue;
    }
    if (explain_analyze) {
      auto report = optimizer.ExplainAnalyze(*prepared, {}, physical);
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s", report->c_str());
      continue;
    }
    ExecStats stats;
    auto rows = optimizer.Execute(*prepared, {}, physical, &stats);
    if (!rows.ok()) {
      std::printf("error: %s\n", rows.status().ToString().c_str());
      continue;
    }
    PrintResult(*prepared, *rows, stats);
  }
  plane.StopTicker();
  return 0;
}

}  // namespace

int main() { return Run(); }
