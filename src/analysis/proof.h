#ifndef UNIQOPT_ANALYSIS_PROOF_H_
#define UNIQOPT_ANALYSIS_PROOF_H_

#include <cstddef>
#include <string>
#include <vector>

namespace uniqopt {

/// What happened to one top-level conjunct during Algorithm 1's
/// normalization pass (lines 6–9 of the paper).
enum class ConjunctDisposition {
  kKeptType1,           ///< col = constant / host variable, kept
  kKeptType2,           ///< col = col, kept
  kDeletedDisjunction,  ///< disjunctive conjunct, deleted (line 7)
  kDeletedNonEquality,  ///< range / IS NULL / ..., deleted (line 9)
  kDeletedBySwitch,     ///< usable, but the ablation switch disabled it
};

const char* ConjunctDispositionName(ConjunctDisposition d);

struct ProofConjunct {
  std::string text;
  ConjunctDisposition disposition = ConjunctDisposition::kDeletedNonEquality;
};

/// One column entering the bound set V, with the conjunct responsible.
struct ProofClosureStep {
  size_t column = 0;        ///< position in the analysis frame
  std::string column_name;  ///< display name for that position
  std::string via;          ///< text of the conjunct that bound it
  /// 0 = Type 1 seeding (line 13–14); n ≥ 1 = n-th transitive-closure
  /// pass over Type 2 equalities (lines 15–16).
  int round = 0;
};

/// Coverage test of one candidate key against the final V (line 17).
struct ProofKeyOutcome {
  std::string table;
  std::string alias;
  std::string key_name;
  std::vector<std::string> key_columns;
  /// Key columns not in V; empty iff `covered`.
  std::vector<std::string> missing_columns;
  bool covered = false;
};

/// Machine-readable record of one uniqueness proof: every normalization
/// decision, every closure step, and every candidate-key outcome. Built
/// by Algorithm 1 / the Theorem 2 test; rendered by
/// UniquenessVerdict::ExplainProof().
struct ProofTrace {
  /// False when the producing analysis did not run in proof mode (or a
  /// different detector answered); ToText() says so instead of showing an
  /// empty proof.
  bool recorded = false;

  /// Frame position → display name, set by the caller that knows the
  /// frame layout (product schema, or outer ⊕ inner for subqueries).
  std::vector<std::string> column_names;

  std::vector<ProofConjunct> conjuncts;
  std::vector<std::string> initially_bound;
  std::vector<ProofClosureStep> closure_steps;
  /// The final bound set V, as display names.
  std::vector<std::string> closure;
  std::vector<ProofKeyOutcome> keys;
  /// Final verdict line, e.g. "YES: every table has a covered key".
  std::string conclusion;

  /// Display name for a frame position ("col<i>" when unknown).
  std::string NameOf(size_t position) const;

  /// Multi-line human rendering of the whole proof.
  std::string ToText() const;
};

}  // namespace uniqopt

#endif  // UNIQOPT_ANALYSIS_PROOF_H_
