#ifndef UNIQOPT_EQUIV_EQUIV_H_
#define UNIQOPT_EQUIV_EQUIV_H_

#include <string>

#include "rewrite/rewriter.h"

namespace uniqopt {
namespace equiv {

/// Compile-time default for the equivalence prover, set by the
/// UNIQOPT_CHECK_EQUIV cmake option (default ON, mirroring
/// UNIQOPT_VERIFY_PLANS). Runtime code paths consult the per-optimizer
/// toggle, which is initialized from this constant.
#if defined(UNIQOPT_CHECK_EQUIV_DEFAULT)
inline constexpr bool kCheckEquivByDefault = UNIQOPT_CHECK_EQUIV_DEFAULT != 0;
#else
inline constexpr bool kCheckEquivByDefault = true;
#endif

/// The verdict lattice. kProven: the before/after plans denote the same
/// multiset of rows under the declared constraints, re-derived here from
/// keys/CHECKs/FKs alone. kUnproven: the prover cannot certify the
/// rewrite — an honest coverage gap, not a failure. kRefuted: a symbolic
/// counterexample exists — a constraint assignment under which the two
/// sides produce different multiplicities. Refutation of a production
/// rewrite is always a bug in the optimizer or the prover.
enum class Verdict { kProven, kUnproven, kRefuted };

/// "EQUIV_PROVEN" / "EQUIV_UNPROVEN" / "EQUIV_REFUTED".
const char* VerdictName(Verdict v);

/// The prover's output for one applied rewrite.
struct Certificate {
  Verdict verdict = Verdict::kUnproven;
  std::string rule;     ///< RewriteRuleIdToString of the certified rule.
  std::string method;   ///< Which proof obligation decided the verdict.
  std::string detail;   ///< Justification (proven) or the gap (unproven).
  std::string witness;  ///< Symbolic counterexample; non-empty iff refuted.

  /// "EQUIV_X rule [method]: detail" one-liner (witness on its own
  /// lines when present).
  std::string ToString() const;
};

/// Certifies one applied rewrite against the catalog constraints carried
/// by its own plan subtrees. Both evidence sides are normalized into
/// canonical algebra form and matched structurally; semantic obligations
/// (duplicate-freeness, at-most-one match, 3VL null behavior of the
/// correlation, CHECK implication) are discharged from declared
/// keys/FDs/CHECKs only. Pure and side-effect free; shares no code with
/// src/analysis/ — a second opinion by construction.
Certificate CertifyRewrite(const AppliedRewrite& rewrite);

}  // namespace equiv
}  // namespace uniqopt

#endif  // UNIQOPT_EQUIV_EQUIV_H_
