#ifndef UNIQOPT_EXEC_OPERATOR_H_
#define UNIQOPT_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace uniqopt {

/// Work counters accumulated across one execution. The §5/§6 claims are
/// about work avoided (sort comparisons, inner scans, pointer chases), so
/// operators account for it explicitly. Under parallel execution each
/// worker accumulates into a thread-local ExecStats which the
/// coordinator folds into the caller's via Merge() after joining, so
/// the totals stay exact at any degree of parallelism.
struct ExecStats {
  size_t rows_scanned = 0;      ///< base-table rows read
  size_t rows_sorted = 0;       ///< rows fed into a sort
  size_t sort_comparisons = 0;  ///< comparisons performed by sorts
  size_t hash_probes = 0;       ///< hash table probes
  size_t hash_build_rows = 0;   ///< rows inserted into hash tables
  size_t inner_loop_rows = 0;   ///< inner rows visited by nested loops
  size_t rows_output = 0;       ///< rows returned by the root operator
  size_t morsels_claimed = 0;   ///< scan morsels claimed (parallel only)
  size_t index_probes = 0;      ///< unique-index point/join probes

  void Reset() { *this = ExecStats(); }
  /// Folds another worker's counters into this one.
  void Merge(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    rows_sorted += other.rows_sorted;
    sort_comparisons += other.sort_comparisons;
    hash_probes += other.hash_probes;
    hash_build_rows += other.hash_build_rows;
    inner_loop_rows += other.inner_loop_rows;
    rows_output += other.rows_output;
    morsels_claimed += other.morsels_claimed;
    index_probes += other.index_probes;
  }
  std::string ToString() const;
};

/// Per-execution context: host variable values (the paper's `h`), the
/// stats sink, and the batch size driving the vectorized path (0 =
/// tuple-at-a-time).
struct ExecContext {
  std::vector<Value> params;
  ExecStats stats;
  /// When > 0, ExecuteToVector and the materializing operators drive
  /// their inputs through NextBatch with batches of this many rows.
  size_t batch_size = 0;
};

/// Volcano-style iterator. Usage: Open → Next until false → Close.
/// Operators own their children. A batch-at-a-time path (NextBatch) is
/// layered on top: operators with a vectorized implementation override
/// it, everything else falls back to looping Next so exotic operators
/// keep working unchanged. An operator instance is driven in exactly
/// one of the two modes per execution.
class Operator {
 public:
  explicit Operator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const Schema& schema() const { return schema_; }

  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into `*row`; returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* row) = 0;
  virtual void Close() = 0;

  /// Produces the next batch of rows into `*out` (after resetting it).
  /// Returns false exactly at end of stream, with `*out` empty; a true
  /// return carries at least one row (possibly fewer than capacity).
  virtual Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) {
    out->Reset();
    Row row;
    while (out->size() < out->capacity()) {
      UNIQOPT_ASSIGN_OR_RETURN(bool more, Next(ctx, &row));
      if (!more) break;
      out->Append(std::move(row));
    }
    return !out->empty();
  }

  /// Operator name for EXPLAIN-style output.
  virtual std::string name() const = 0;

 private:
  Schema schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a vector (Open/Next/Close), counting output rows.
/// Uses the batch path when ctx->batch_size > 0.
Result<std::vector<Row>> ExecuteToVector(Operator* op, ExecContext* ctx);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_OPERATOR_H_
