#ifndef UNIQOPT_TYPES_VALUE_H_
#define UNIQOPT_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"
#include "common/status.h"
#include "types/tribool.h"

namespace uniqopt {

/// Column / value types supported by the library's SQL subset.
enum class TypeId {
  kBoolean,
  kInteger,  ///< 64-bit signed.
  kDouble,
  kString,
};

const char* TypeIdToString(TypeId t);

/// A typed SQL datum, possibly NULL. Values are small and copyable.
///
/// Two distinct equality notions are exposed, matching the paper's §3.1:
///  - `SqlEquals` — the WHERE-clause comparison: any NULL operand yields
///    UNKNOWN (three-valued logic);
///  - `NullSafeEquals` — the paper's `=!` operator used by DISTINCT,
///    GROUP BY, set operations and functional-dependency satisfaction:
///    `NULL =! NULL` is *true*, and NULL never equals a non-NULL value.
class Value {
 public:
  /// Constructs a NULL of the given type.
  static Value Null(TypeId type) { return Value(type); }
  static Value Boolean(bool v) { return Value(TypeId::kBoolean, Repr(v)); }
  static Value Integer(int64_t v) { return Value(TypeId::kInteger, Repr(v)); }
  static Value Double(double v) { return Value(TypeId::kDouble, Repr(v)); }
  static Value String(std::string v) {
    return Value(TypeId::kString, Repr(std::move(v)));
  }

  /// Default: NULL integer; needed so Row can be resized.
  Value() : Value(TypeId::kInteger) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  TypeId type() const { return type_; }
  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }

  /// Typed accessors; calling the wrong accessor or reading a NULL aborts
  /// (callers must check `is_null()` / `type()` first).
  bool AsBoolean() const { return std::get<bool>(repr_); }
  int64_t AsInteger() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: integers widen to double for mixed comparisons.
  double AsNumeric() const;

  /// Three-valued WHERE-clause equality (NULL ⇒ UNKNOWN).
  Tribool SqlEquals(const Value& other) const;
  /// Three-valued ordering comparisons (NULL ⇒ UNKNOWN).
  Tribool SqlLess(const Value& other) const;
  Tribool SqlLessEqual(const Value& other) const;

  /// The paper's `=!` operator: NULLs compare equal to each other.
  bool NullSafeEquals(const Value& other) const;

  /// Total order used for sorting: NULL sorts first, then by value.
  /// Returns <0, 0, >0. NULLs of any type compare equal to each other.
  int Compare(const Value& other) const;

  /// Hash consistent with `NullSafeEquals` (all NULLs hash alike).
  size_t Hash() const;

  /// SQL-literal-ish rendering ("NULL", 42, 'RED', 3.5, TRUE).
  std::string ToString() const;

  /// True when values of these types may be compared (numeric↔numeric or
  /// same type).
  static bool Comparable(TypeId a, TypeId b);

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;

  explicit Value(TypeId type) : type_(type), repr_(std::monostate{}) {}
  Value(TypeId type, Repr repr) : type_(type), repr_(std::move(repr)) {}

  TypeId type_;
  Repr repr_;
};

/// `operator==` follows NullSafeEquals (container/test convenience).
inline bool operator==(const Value& a, const Value& b) {
  return a.NullSafeEquals(b);
}
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace uniqopt

#endif  // UNIQOPT_TYPES_VALUE_H_
