#ifndef UNIQOPT_COMMON_RESULT_H_
#define UNIQOPT_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace uniqopt {

/// A value-or-error holder, modeled after arrow::Result. A `Result<T>`
/// either holds a `T` or a non-OK `Status`. Accessing the value of an
/// errored result aborts (library bug), so callers must check `ok()` or
/// use the UNIQOPT_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // Constructing a Result from an OK status is a programming error:
      // there is no value to return.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define UNIQOPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#define UNIQOPT_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define UNIQOPT_ASSIGN_OR_RETURN_CONCAT(x, y) \
  UNIQOPT_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define UNIQOPT_ASSIGN_OR_RETURN(lhs, rexpr) \
  UNIQOPT_ASSIGN_OR_RETURN_IMPL(             \
      UNIQOPT_ASSIGN_OR_RETURN_CONCAT(_uniqopt_result_, __LINE__), lhs, rexpr)

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_RESULT_H_
