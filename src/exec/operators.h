#ifndef UNIQOPT_EXEC_OPERATORS_H_
#define UNIQOPT_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/operator.h"
#include "expr/expr.h"
#include "expr/predicate_program.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace uniqopt {

/// Full scan of an in-memory base table.
class TableScanOp final : public Operator {
 public:
  TableScanOp(const Table* table, Schema schema)
      : Operator(std::move(schema)), table_(table) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  /// Borrows a contiguous slice of the table's storage — zero copies.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "TableScan"; }

 private:
  const Table* table_;
  TableSnapshot snapshot_;  ///< pinned at Open; immutable under DML
  size_t pos_ = 0;
};

/// Produces no rows. Lowered from selections whose predicate is the
/// FALSE literal (e.g. after the DetectEmptyResult rewrite) so the
/// input is never opened or scanned.
class EmptySourceOp final : public Operator {
 public:
  explicit EmptySourceOp(Schema schema) : Operator(std::move(schema)) {}

  Status Open(ExecContext*) override { return Status::OK(); }
  Result<bool> Next(ExecContext*, Row*) override { return false; }
  void Close() override {}
  std::string name() const override { return "EmptySource"; }
};

/// σ[C]: passes rows whose predicate evaluates to TRUE.
class FilterOp final : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate)
      : Operator(child->schema()),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  /// Compacts the child batch's selection vector in place — dropped
  /// rows cost nothing beyond the predicate evaluation. Runs the
  /// predicate as a compiled PredicateProgram rather than per-row tree
  /// interpretation.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "Filter"; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  PredicateProgram program_;
};

/// π_All onto a column list (no duplicate elimination).
class ProjectOp final : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<size_t> columns)
      : Operator(child->schema().Project(columns)),
        child_(std::move(child)),
        columns_(std::move(columns)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "Project"; }

 private:
  OperatorPtr child_;
  std::vector<size_t> columns_;
  RowBatch input_batch_;
};

/// Duplicate elimination by sort: materializes, sorts (counting
/// comparisons — this is the cost the paper's §5.1 optimization avoids),
/// then emits one row per `=!`-equal group.
class SortDistinctOp final : public Operator {
 public:
  explicit SortDistinctOp(OperatorPtr child)
      : Operator(child->schema()), child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext*, Row* row) override;
  /// Emits borrowed slices of the sorted, deduplicated materialization.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "SortDistinct"; }

 private:
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Duplicate elimination by hashing under `=!`.
class HashDistinctOp final : public Operator {
 public:
  explicit HashDistinctOp(OperatorPtr child)
      : Operator(child->schema()), child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "HashDistinct"; }

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash, RowNullSafeEqual> seen_;
  RowBatch input_batch_;
};

/// Extended Cartesian product; materializes the right input.
class NestedLoopProductOp final : public Operator {
 public:
  NestedLoopProductOp(OperatorPtr left, OperatorPtr right)
      : Operator(Schema::Concat(left->schema(), right->schema())),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override { return "NestedLoopProduct"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Hash equi-join (inner). Build side is the right input; rows with a
/// NULL key never match (3VL `=`). A residual predicate is applied to
/// each candidate pair.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<size_t> left_keys, std::vector<size_t> right_keys,
             ExprPtr residual)
      : Operator(Schema::Concat(left->schema(), right->schema())),
        left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  /// Probes a whole input batch per call, emitting all matches.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "HashJoin"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  std::unordered_multimap<Row, Row, RowHash, RowNullSafeEqual> build_;
  Row left_row_;
  bool have_left_ = false;
  std::pair<decltype(build_)::const_iterator,
            decltype(build_)::const_iterator>
      matches_;
  RowBatch probe_batch_;
};

/// Nested-loop semi (EXISTS) or anti (NOT EXISTS) join: emits each outer
/// row once iff some / no inner row satisfies the correlation predicate
/// (evaluated over outer ⊕ inner). The naive strategy the paper's §5.2
/// rewrites avoid.
class NestedLoopSemiJoinOp final : public Operator {
 public:
  NestedLoopSemiJoinOp(OperatorPtr outer, OperatorPtr inner,
                       ExprPtr correlation, bool negated)
      : Operator(outer->schema()),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        correlation_(std::move(correlation)),
        negated_(negated) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override {
    return negated_ ? "NestedLoopAntiJoin" : "NestedLoopSemiJoin";
  }

 private:
  OperatorPtr outer_;
  OperatorPtr inner_;
  ExprPtr correlation_;
  bool negated_;
  std::vector<Row> inner_rows_;
};

/// Hash semi/anti join on extracted equi-keys with residual predicate.
class HashSemiJoinOp final : public Operator {
 public:
  HashSemiJoinOp(OperatorPtr outer, OperatorPtr inner,
                 std::vector<size_t> outer_keys,
                 std::vector<size_t> inner_keys, ExprPtr residual,
                 bool negated)
      : Operator(outer->schema()),
        outer_(std::move(outer)),
        inner_(std::move(inner)),
        outer_keys_(std::move(outer_keys)),
        inner_keys_(std::move(inner_keys)),
        residual_(std::move(residual)),
        negated_(negated) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override {
    return negated_ ? "HashAntiJoin" : "HashSemiJoin";
  }

 private:
  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<size_t> outer_keys_;
  std::vector<size_t> inner_keys_;
  ExprPtr residual_;
  bool negated_;
  std::unordered_multimap<Row, Row, RowHash, RowNullSafeEqual> build_;
};

/// INTERSECT [ALL] / EXCEPT [ALL] with the paper's `=!` tuple
/// equivalence (NULL columns match NULL columns). Hash-based.
class SetOpOp final : public Operator {
 public:
  SetOpOp(SetOpAlgebra op, DuplicateMode mode, OperatorPtr left,
          OperatorPtr right)
      : Operator(left->schema()),
        op_(op),
        mode_(mode),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* row) override;
  void Close() override;
  std::string name() const override { return "SetOp"; }

 private:
  SetOpAlgebra op_;
  DuplicateMode mode_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::unordered_map<Row, size_t, RowHash, RowNullSafeEqual> right_counts_;
  std::unordered_set<Row, RowHash, RowNullSafeEqual> emitted_;
};

/// Grouping + aggregate folding under `=!`, factored out of
/// HashAggregateOp so parallel workers can pre-aggregate thread-locally
/// and merge partial states at the pipeline breaker (AVG merges as
/// sum + count, MIN/MAX by comparison, COUNT/SUM by addition).
class GroupedAggregator {
 public:
  GroupedAggregator(const Schema& input_schema,
                    std::vector<size_t> group_columns,
                    std::vector<AggregateItem> aggregates);

  /// Folds one input row into its group's states. Counts one hash probe
  /// into `stats`, matching the serial HashAggregateOp accounting.
  void Accumulate(const Row& row, ExecStats* stats);

  /// Folds another aggregator's partial states into this one. Both must
  /// have been built with the same grouping/aggregate spec.
  void MergeFrom(const GroupedAggregator& other);

  /// Materializes the output rows (group key columns ⊕ aggregate
  /// results). A scalar aggregate over empty input yields one row
  /// (COUNT = 0, other aggregates NULL).
  std::vector<Row> Finalize() const;

 private:
  struct AggState {
    int64_t count = 0;        // non-NULL inputs (or rows for COUNT(*))
    int64_t sum_int = 0;
    double sum_double = 0;
    Value min;
    Value max;
    bool any = false;         // saw a non-NULL input
  };

  void Fold(std::vector<AggState>* group, const Row& row) const;
  size_t GroupSlot(const Row& key_source);

  std::vector<size_t> group_columns_;
  std::vector<AggregateItem> aggregates_;
  std::vector<TypeId> arg_types_;  ///< result type per aggregate
  std::unordered_map<Row, size_t, RowHash, RowNullSafeEqual> group_index_;
  std::vector<Row> group_keys_;
  std::vector<std::vector<AggState>> states_;
};

/// Hash aggregation for the GROUP BY extension: groups rows under `=!`
/// (NULL group keys compare equal, like DISTINCT) and folds aggregate
/// states per group. A scalar aggregate (no group columns) over empty
/// input produces one row (COUNT = 0, other aggregates NULL).
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, Schema schema,
                  std::vector<size_t> group_columns,
                  std::vector<AggregateItem> aggregates)
      : Operator(std::move(schema)),
        child_(std::move(child)),
        group_columns_(std::move(group_columns)),
        aggregates_(std::move(aggregates)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext*, Row* row) override;
  /// Emits borrowed slices of the materialized aggregate output.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "HashAggregate"; }

 private:
  OperatorPtr child_;
  std::vector<size_t> group_columns_;
  std::vector<AggregateItem> aggregates_;
  std::vector<Row> output_;
  size_t pos_ = 0;
};

/// Sort-merge INTERSECT (DISTINCT): the strategy the paper describes as
/// the typical Intersect implementation ("evaluate, sort, merge"),
/// provided as the baseline for experiment X6.
class SortMergeIntersectOp final : public Operator {
 public:
  SortMergeIntersectOp(OperatorPtr left, OperatorPtr right)
      : Operator(left->schema()),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext*, Row* row) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  void Close() override;
  std::string name() const override { return "SortMergeIntersect"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> out_;
  size_t pos_ = 0;
};

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_OPERATORS_H_
