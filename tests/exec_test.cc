#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(MakeTestSupplierDatabase(&db_)); }

  Database db_;
};

TEST_F(ExecTest, ScanAll) {
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       RunSql(db_, "SELECT * FROM SUPPLIER"));
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[0].size(), 5u);
}

TEST_F(ExecTest, FilterByConstant) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT SNO FROM SUPPLIER WHERE SNO = 7"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInteger(), 7);
}

TEST_F(ExecTest, HostVariableBinding) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT PNO FROM PARTS WHERE SNO = :S",
             {{"S", Value::Integer(3)}}));
  EXPECT_EQ(rows.size(), 10u);  // parts_per_supplier
}

TEST_F(ExecTest, JoinMatchesHashAndNestedLoop) {
  const char* sql =
      "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
  PhysicalOptions hash;
  hash.join = PhysicalOptions::JoinStrategy::kHash;
  PhysicalOptions nl;
  nl.join = PhysicalOptions::JoinStrategy::kNestedLoop;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> hash_rows, RunSql(db_, sql, {}, hash));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> nl_rows, RunSql(db_, sql, {}, nl));
  EXPECT_FALSE(hash_rows.empty());
  EXPECT_TRUE(MultisetEquals(hash_rows, nl_rows));
}

TEST_F(ExecTest, DistinctSortAndHashAgree) {
  const char* sql = "SELECT DISTINCT SNAME FROM SUPPLIER";
  PhysicalOptions sort;
  sort.distinct = PhysicalOptions::DistinctStrategy::kSort;
  PhysicalOptions hash;
  hash.distinct = PhysicalOptions::DistinctStrategy::kHash;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a, RunSql(db_, sql, {}, sort));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b, RunSql(db_, sql, {}, hash));
  EXPECT_TRUE(MultisetEquals(a, b));
  EXPECT_FALSE(HasDuplicates(a));
  // With the duplicate-name pool there must be fewer names than rows.
  EXPECT_LT(a.size(), 100u);
}

TEST_F(ExecTest, DistinctVersusAll) {
  ASSERT_OK_AND_ASSIGN(std::vector<Row> all,
                       RunSql(db_, "SELECT SNAME FROM SUPPLIER"));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> dist,
                       RunSql(db_, "SELECT DISTINCT SNAME FROM SUPPLIER"));
  EXPECT_EQ(all.size(), 100u);
  EXPECT_LT(dist.size(), all.size());
}

TEST_F(ExecTest, ExistsSemanticsMatchJoinCount) {
  // Suppliers with at least one red part (Example 8's query).
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> exists_rows,
      RunSql(db_,
             "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
             "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND "
             "P.COLOR = 'RED')"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> distinct_join_rows,
      RunSql(db_,
             "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P "
             "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"));
  EXPECT_TRUE(MultisetEquals(exists_rows, distinct_join_rows))
      << RowsToString(exists_rows);
  EXPECT_FALSE(HasDuplicates(exists_rows));
}

TEST_F(ExecTest, NotExists) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> without,
      RunSql(db_,
             "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS "
             "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND "
             "P.COLOR = 'RED')"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> with,
      RunSql(db_,
             "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
             "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND "
             "P.COLOR = 'RED')"));
  EXPECT_EQ(without.size() + with.size(), 100u);
}

TEST_F(ExecTest, ExistsHashAndNestedLoopAgree) {
  const char* sql =
      "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = :PN)";
  PhysicalOptions hash;
  hash.join = PhysicalOptions::JoinStrategy::kHash;
  PhysicalOptions nl;
  nl.join = PhysicalOptions::JoinStrategy::kNestedLoop;
  ParamBindings params = {{"PN", Value::Integer(4)}};
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a, RunSql(db_, sql, params, hash));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b, RunSql(db_, sql, params, nl));
  EXPECT_TRUE(MultisetEquals(a, b));
  EXPECT_EQ(a.size(), 100u);  // every supplier has a part numbered 4
}

TEST_F(ExecTest, InSubqueryDesugarsToExists) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> in_rows,
      RunSql(db_,
             "SELECT A.ANO FROM AGENTS A WHERE A.SNO IN "
             "(SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto')"));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> exists_rows,
      RunSql(db_,
             "SELECT A.ANO FROM AGENTS A WHERE EXISTS "
             "(SELECT * FROM SUPPLIER S WHERE S.SNO = A.SNO AND "
             "S.SCITY = 'Toronto')"));
  EXPECT_TRUE(MultisetEquals(in_rows, exists_rows));
}

TEST_F(ExecTest, IntersectDistinctEliminatesDuplicates) {
  // Supplier numbers that both supply parts and have agents.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_,
             "SELECT SNO FROM PARTS INTERSECT SELECT SNO FROM AGENTS"));
  EXPECT_FALSE(HasDuplicates(rows));
  EXPECT_FALSE(rows.empty());
}

TEST_F(ExecTest, IntersectAllKeepsMinimumCounts) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE L (X INTEGER)"));
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE R (X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * l, db.GetTable("L"));
  ASSERT_OK_AND_ASSIGN(Table * r, db.GetTable("R"));
  // L: 1×3, 2×1;  R: 1×2, 2×2, 3×1.
  for (int i = 0; i < 3; ++i) ASSERT_OK(l->InsertValues({Value::Integer(1)}));
  ASSERT_OK(l->InsertValues({Value::Integer(2)}));
  for (int i = 0; i < 2; ++i) ASSERT_OK(r->InsertValues({Value::Integer(1)}));
  for (int i = 0; i < 2; ++i) ASSERT_OK(r->InsertValues({Value::Integer(2)}));
  ASSERT_OK(r->InsertValues({Value::Integer(3)}));

  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> all,
      RunSql(db, "SELECT X FROM L INTERSECT ALL SELECT X FROM R"));
  // min(3,2)=2 ones + min(1,2)=1 two.
  ASSERT_EQ(all.size(), 3u);

  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> dist,
      RunSql(db, "SELECT X FROM L INTERSECT SELECT X FROM R"));
  EXPECT_EQ(dist.size(), 2u);

  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> except_all,
      RunSql(db, "SELECT X FROM L EXCEPT ALL SELECT X FROM R"));
  // max(3-2,0)=1 one + max(1-2,0)=0 twos.
  ASSERT_EQ(except_all.size(), 1u);
  EXPECT_EQ(except_all[0][0].AsInteger(), 1);

  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> except_dist,
      RunSql(db, "SELECT X FROM L EXCEPT SELECT X FROM R"));
  EXPECT_TRUE(except_dist.empty());
}

TEST_F(ExecTest, IntersectMatchesNullsNullSafe) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE L (X INTEGER)"));
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE R (X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * l, db.GetTable("L"));
  ASSERT_OK_AND_ASSIGN(Table * r, db.GetTable("R"));
  ASSERT_OK(l->InsertValues({Value::Null(TypeId::kInteger)}));
  ASSERT_OK(l->InsertValues({Value::Integer(1)}));
  ASSERT_OK(r->InsertValues({Value::Null(TypeId::kInteger)}));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db, "SELECT X FROM L INTERSECT SELECT X FROM R"));
  // §5.3: INTERSECT equates NULL with NULL.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST_F(ExecTest, SortMergeIntersectAgreesWithHash) {
  const char* sql = "SELECT SNO FROM PARTS INTERSECT SELECT SNO FROM AGENTS";
  PhysicalOptions hash;
  PhysicalOptions merge;
  merge.sort_merge_intersect = true;
  ASSERT_OK_AND_ASSIGN(std::vector<Row> a, RunSql(db_, sql, {}, hash));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> b, RunSql(db_, sql, {}, merge));
  EXPECT_TRUE(MultisetEquals(a, b));
}

TEST_F(ExecTest, ThreeValuedLogicInWhere) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (X INTEGER, Y INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  ASSERT_OK(t->InsertValues({Value::Integer(1), Value::Null(TypeId::kInteger)}));
  ASSERT_OK(t->InsertValues({Value::Integer(2), Value::Integer(2)}));
  // X = Y is UNKNOWN for the NULL row ⇒ excluded.
  ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                       RunSql(db, "SELECT X FROM T WHERE X = Y"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInteger(), 2);
  // NOT (X = Y) is also UNKNOWN for the NULL row ⇒ still excluded.
  ASSERT_OK_AND_ASSIGN(std::vector<Row> neg,
                       RunSql(db, "SELECT X FROM T WHERE NOT (X = Y)"));
  EXPECT_TRUE(neg.empty());
  // IS NULL is two-valued.
  ASSERT_OK_AND_ASSIGN(std::vector<Row> isnull,
                       RunSql(db, "SELECT X FROM T WHERE Y IS NULL"));
  ASSERT_EQ(isnull.size(), 1u);
  EXPECT_EQ(isnull[0][0].AsInteger(), 1);
}

TEST_F(ExecTest, DistinctTreatsNullsEqual) {
  Database db;
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE T (X INTEGER)"));
  ASSERT_OK_AND_ASSIGN(Table * t, db.GetTable("T"));
  ASSERT_OK(t->InsertValues({Value::Null(TypeId::kInteger)}));
  ASSERT_OK(t->InsertValues({Value::Null(TypeId::kInteger)}));
  ASSERT_OK(t->InsertValues({Value::Integer(1)}));
  // DISTINCT treats NULL = NULL as true (§3.1): two NULLs collapse.
  for (auto strategy : {PhysicalOptions::DistinctStrategy::kSort,
                        PhysicalOptions::DistinctStrategy::kHash}) {
    PhysicalOptions opts;
    opts.distinct = strategy;
    ASSERT_OK_AND_ASSIGN(std::vector<Row> rows,
                         RunSql(db, "SELECT DISTINCT X FROM T", {}, opts));
    EXPECT_EQ(rows.size(), 2u);
  }
}

TEST_F(ExecTest, StatsAccounting) {
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Row> rows,
      RunSql(db_, "SELECT DISTINCT SNAME FROM SUPPLIER", {}, {}, &stats));
  EXPECT_EQ(stats.rows_scanned, 100u);
  EXPECT_EQ(stats.rows_sorted, 100u);  // default distinct strategy: sort
  EXPECT_GT(stats.sort_comparisons, 0u);
  EXPECT_EQ(stats.rows_output, rows.size());
}

}  // namespace
}  // namespace uniqopt
