// Plan cache unit coverage: SQL canonicalization + fingerprinting, the
// generic sharded LRU (recency eviction, byte budget, version purge),
// Optimizer cache hits (flag, identical plans, EXPLAIN marker,
// recorder field), and the DDL-invalidation guarantee — a catalog bump
// must make every previously cached plan unservable.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cache/fingerprint.h"
#include "cache/plan_cache.h"
#include "cache/sharded_lru.h"
#include "obs/recorder.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

// ---------------------------------------------------------------------------
// Canonicalization + fingerprint
// ---------------------------------------------------------------------------

TEST(CanonicalizeSqlTest, WhitespaceCaseAndCommentsInsensitive) {
  ASSERT_OK_AND_ASSIGN(cache::CanonicalSql a,
                       cache::CanonicalizeSql(
                           "select sno from supplier where status = 'A'"));
  ASSERT_OK_AND_ASSIGN(
      cache::CanonicalSql b,
      cache::CanonicalizeSql("SELECT   Sno\n  FROM supplier -- comment\n"
                             "WHERE STATUS = 'A'"));
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.text, "SELECT SNO FROM SUPPLIER WHERE STATUS = 'A'");
}

TEST(CanonicalizeSqlTest, ShapeParameterizesLiteralsButNotHostVars) {
  ASSERT_OK_AND_ASSIGN(
      cache::CanonicalSql c,
      cache::CanonicalizeSql(
          "SELECT SNO FROM SUPPLIER WHERE BUDGET > 100 AND SNO = :S"));
  EXPECT_EQ(c.num_literals, 1u);
  EXPECT_EQ(c.shape, "SELECT SNO FROM SUPPLIER WHERE BUDGET > ? AND SNO = :S");
  EXPECT_NE(c.text, c.shape);
}

TEST(CanonicalizeSqlTest, StringLiteralDistinctFromIdentifier) {
  // 'A' must not canonicalize to the same text as the identifier A.
  ASSERT_OK_AND_ASSIGN(cache::CanonicalSql quoted,
                       cache::CanonicalizeSql("SELECT 'A' FROM T"));
  ASSERT_OK_AND_ASSIGN(cache::CanonicalSql bare,
                       cache::CanonicalizeSql("SELECT A FROM T"));
  EXPECT_NE(quoted.text, bare.text);
}

TEST(FingerprintSqlTest, SensitiveToLiteralsVersionAndSalt) {
  ASSERT_OK_AND_ASSIGN(cache::CanonicalSql q1,
                       cache::CanonicalizeSql("SELECT * FROM T WHERE X = 1"));
  ASSERT_OK_AND_ASSIGN(cache::CanonicalSql q2,
                       cache::CanonicalizeSql("SELECT * FROM T WHERE X = 2"));
  // Default (text) keying: a different literal is a different key —
  // plans bake constants in, so sharing would serve a wrong plan.
  EXPECT_NE(cache::FingerprintSql(q1, 1), cache::FingerprintSql(q2, 1));
  // Shape keying collapses them.
  cache::FingerprintOptions param;
  param.parameterize_literals = true;
  EXPECT_EQ(cache::FingerprintSql(q1, 1, param),
            cache::FingerprintSql(q2, 1, param));
  // Catalog version and salt are both part of the key.
  EXPECT_NE(cache::FingerprintSql(q1, 1), cache::FingerprintSql(q1, 2));
  cache::FingerprintOptions salted;
  salted.salt = 1;
  EXPECT_NE(cache::FingerprintSql(q1, 1), cache::FingerprintSql(q1, 1, salted));
  // Determinism.
  EXPECT_EQ(cache::FingerprintSql(q1, 1), cache::FingerprintSql(q1, 1));
}

// ---------------------------------------------------------------------------
// ShardedLru
// ---------------------------------------------------------------------------

cache::ShardedLru<std::string>::Ptr Str(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ShardedLruTest, EvictsLeastRecentlyUsed) {
  cache::LruOptions options;
  options.shards = 1;  // deterministic: one shard holds the whole budget
  options.capacity = 2;
  cache::ShardedLru<std::string> lru(options);
  lru.Put(1, Str("a"), 1, 0);
  lru.Put(2, Str("b"), 1, 0);
  ASSERT_NE(lru.Get(1), nullptr);  // refresh 1: now 2 is stalest
  lru.Put(3, Str("c"), 1, 0);
  EXPECT_NE(lru.Get(1), nullptr);
  EXPECT_EQ(lru.Get(2), nullptr);
  EXPECT_NE(lru.Get(3), nullptr);
  cache::LruStats stats = lru.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ShardedLruTest, ByteBudgetEvictsUntilUnderLimit) {
  cache::LruOptions options;
  options.shards = 1;
  options.capacity = 100;
  options.byte_budget = 100;
  cache::ShardedLru<std::string> lru(options);
  lru.Put(1, Str("a"), 60, 0);
  lru.Put(2, Str("b"), 60, 0);  // 120 > 100: the stalest (1) goes
  EXPECT_EQ(lru.Get(1), nullptr);
  EXPECT_NE(lru.Get(2), nullptr);
  EXPECT_EQ(lru.Stats().bytes, 60u);
  // An oversized entry still gets admitted alone (never evicts itself).
  lru.Put(3, Str("big"), 500, 0);
  EXPECT_NE(lru.Get(3), nullptr);
  EXPECT_EQ(lru.Stats().entries, 1u);
}

TEST(ShardedLruTest, ReplaceUpdatesBytesAndValue) {
  cache::ShardedLru<std::string> lru({1, 10, 1000});
  lru.Put(7, Str("old"), 100, 0);
  lru.Put(7, Str("new"), 10, 0);
  EXPECT_EQ(*lru.Get(7), "new");
  EXPECT_EQ(lru.Stats().entries, 1u);
  EXPECT_EQ(lru.Stats().bytes, 10u);
}

TEST(ShardedLruTest, InvalidateBeforePurgesOlderVersionsOnly) {
  cache::ShardedLru<std::string> lru({4, 100, 1000});
  lru.Put(1, Str("v1"), 1, 1);
  lru.Put(2, Str("v1b"), 1, 1);
  lru.Put(3, Str("v2"), 1, 2);
  EXPECT_EQ(lru.InvalidateBefore(2), 2u);
  EXPECT_EQ(lru.Get(1), nullptr);
  EXPECT_EQ(lru.Get(2), nullptr);
  EXPECT_NE(lru.Get(3), nullptr);
  EXPECT_EQ(lru.Stats().invalidations, 2u);
}

TEST(ShardedLruTest, EraseAndClear) {
  cache::ShardedLru<std::string> lru;
  lru.Put(1, Str("a"), 5, 0);
  lru.Put(2, Str("b"), 5, 0);
  EXPECT_TRUE(lru.Erase(1));
  EXPECT_FALSE(lru.Erase(1));
  lru.Clear();
  EXPECT_EQ(lru.Get(2), nullptr);
  EXPECT_EQ(lru.Stats().entries, 0u);
  EXPECT_EQ(lru.Stats().bytes, 0u);
}

// ---------------------------------------------------------------------------
// Optimizer integration
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, SecondPrepareIsAHitWithIdenticalPlan) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery cold, optimizer.Prepare(sql));
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_OK_AND_ASSIGN(PreparedQuery warm, optimizer.Prepare(sql));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.plan_hash, warm.plan_hash);
  EXPECT_EQ(cold.optimized_plan->ToString(),
            warm.optimized_plan->ToString());
  // Whitespace/case variants hit the same entry.
  ASSERT_OK_AND_ASSIGN(PreparedQuery variant,
                       optimizer.Prepare("select distinct sno\nFROM supplier"));
  EXPECT_TRUE(variant.cache_hit);
  EXPECT_EQ(variant.plan_hash, cold.plan_hash);
  cache::LruStats stats = optimizer.plan_cache()->Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  // The hit is marked in EXPLAIN; the cold prepare is not.
  EXPECT_NE(warm.Explain().find("[plan cache hit]"), std::string::npos);
  EXPECT_EQ(cold.Explain().find("[plan cache hit]"), std::string::npos);
}

TEST(PlanCacheTest, HitStillExecutes) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery cold, optimizer.Prepare(sql));
  ASSERT_OK_AND_ASSIGN(std::vector<Row> cold_rows,
                       optimizer.Execute(cold));
  ASSERT_OK_AND_ASSIGN(PreparedQuery warm, optimizer.Prepare(sql));
  ASSERT_TRUE(warm.cache_hit);
  ASSERT_OK_AND_ASSIGN(std::vector<Row> warm_rows,
                       optimizer.Execute(warm));
  EXPECT_EQ(cold_rows.size(), warm_rows.size());
}

TEST(PlanCacheTest, RecorderCarriesCacheHitFlag) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT SNAME FROM SUPPLIER WHERE SNO = 3";
  ASSERT_OK_AND_ASSIGN(PreparedQuery warmup, optimizer.Prepare(sql));
  ASSERT_OK_AND_ASSIGN(PreparedQuery hit, optimizer.Prepare(sql));
  ASSERT_TRUE(hit.cache_hit);
  obs::QueryRecorder::Global().Clear();
  ASSERT_OK(optimizer.Execute(warmup).status());
  ASSERT_OK(optimizer.Execute(hit).status());
  std::vector<obs::QueryRecord> history =
      obs::QueryRecorder::Global().History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_FALSE(history[0].cache_hit);
  EXPECT_TRUE(history[1].cache_hit);
  EXPECT_EQ(history[0].ToString().find("(cached)"), std::string::npos);
  EXPECT_NE(history[1].ToString().find("(cached)"), std::string::npos);
  EXPECT_NE(obs::QueryRecorder::Global().ToJson().find(
                "\"cache_hit\": true"),
            std::string::npos);
}

TEST(PlanCacheTest, PrepareSharedSkipsCopies) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT SNO, PNO FROM PARTS";
  bool hit = true;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const PreparedQuery> first,
                       optimizer.PrepareShared(sql, &hit));
  EXPECT_FALSE(hit);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const PreparedQuery> second,
                       optimizer.PrepareShared(sql, &hit));
  EXPECT_TRUE(hit);
  // Same immutable entry, not a copy.
  EXPECT_EQ(first.get(), second.get());
}

TEST(PlanCacheTest, DisabledCacheNeverHits) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  cache::PlanCacheOptions options;
  options.enabled = false;
  Optimizer optimizer(&db, {}, /*use_cost_model=*/false, options);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery a, optimizer.Prepare(sql));
  ASSERT_OK_AND_ASSIGN(PreparedQuery b, optimizer.Prepare(sql));
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(optimizer.plan_cache()->Stats().entries, 0u);
}

TEST(PlanCacheTest, CostModelBypassesCache) {
  // Cost estimates depend on live table sizes, which the catalog
  // version does not track — the cache must stand aside.
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db, {}, /*use_cost_model=*/true);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery a, optimizer.Prepare(sql));
  ASSERT_OK_AND_ASSIGN(PreparedQuery b, optimizer.Prepare(sql));
  EXPECT_TRUE(a.cost_based);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(optimizer.plan_cache()->Stats().entries, 0u);
}

TEST(PlanCacheTest, VerifyToggleKeysSeparateEntries) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  optimizer.set_verify_plans(true);
  const std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER";
  ASSERT_OK_AND_ASSIGN(PreparedQuery verified, optimizer.Prepare(sql));
  EXPECT_TRUE(verified.verified);
  optimizer.set_verify_plans(false);
  // Different salt ⇒ the verified entry must not be served.
  ASSERT_OK_AND_ASSIGN(PreparedQuery unverified, optimizer.Prepare(sql));
  EXPECT_FALSE(unverified.cache_hit);
  EXPECT_FALSE(unverified.verified);
}

TEST(PlanCacheTest, DdlInvalidatesStaleEntries) {
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE Z (K INTEGER NOT NULL, V INTEGER, PRIMARY KEY (K))"));
  Optimizer optimizer(&db);
  const std::string sql = "SELECT DISTINCT K FROM Z";
  // With the key declared, DISTINCT is provably redundant and removed.
  ASSERT_OK_AND_ASSIGN(PreparedQuery keyed, optimizer.Prepare(sql));
  EXPECT_TRUE(keyed.analysis.distinct_unnecessary);
  EXPECT_FALSE(keyed.rewrites.empty());
  ASSERT_OK_AND_ASSIGN(PreparedQuery cached, optimizer.Prepare(sql));
  EXPECT_TRUE(cached.cache_hit);
  // DDL: recreate Z without the key. The catalog version bumps twice.
  uint64_t before = db.catalog().version();
  ASSERT_OK(db.catalog().DropTable("Z"));
  ASSERT_OK(db.ExecuteDdl("CREATE TABLE Z (K INTEGER, V INTEGER)"));
  EXPECT_EQ(db.catalog().version(), before + 2);
  // The stale plan (DISTINCT removed) must never be served: the new
  // prepare misses and keeps DISTINCT.
  ASSERT_OK_AND_ASSIGN(PreparedQuery unkeyed, optimizer.Prepare(sql));
  EXPECT_FALSE(unkeyed.cache_hit);
  EXPECT_FALSE(unkeyed.analysis.distinct_unnecessary);
  EXPECT_TRUE(unkeyed.rewrites.empty());
  EXPECT_NE(unkeyed.plan_hash, keyed.plan_hash);
  // The superseded entry was also purged from memory (lazy
  // invalidation on the first post-bump lookup).
  EXPECT_GE(optimizer.plan_cache()->Stats().invalidations, 1u);
}

TEST(PlanCacheTest, EvictionUnderTinyCapacity) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  cache::PlanCacheOptions options;
  options.shards = 1;
  options.capacity = 2;
  Optimizer optimizer(&db, {}, /*use_cost_model=*/false, options);
  ASSERT_OK(optimizer.Prepare("SELECT SNO FROM SUPPLIER").status());
  ASSERT_OK(optimizer.Prepare("SELECT SNAME FROM SUPPLIER").status());
  ASSERT_OK(optimizer.Prepare("SELECT SCITY FROM SUPPLIER").status());
  cache::LruStats stats = optimizer.plan_cache()->Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // The first (stalest) query is the one that went.
  ASSERT_OK_AND_ASSIGN(PreparedQuery again,
                       optimizer.Prepare("SELECT SNO FROM SUPPLIER"));
  EXPECT_FALSE(again.cache_hit);
}

TEST(PlanCacheTest, ToTextRendersStats) {
  Database db;
  ASSERT_OK(MakeTestSupplierDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK(optimizer.Prepare("SELECT SNO FROM SUPPLIER").status());
  ASSERT_OK(optimizer.Prepare("SELECT SNO FROM SUPPLIER").status());
  std::string text = optimizer.plan_cache()->ToText();
  EXPECT_NE(text.find("plan cache: enabled"), std::string::npos);
  EXPECT_NE(text.find("hits=1"), std::string::npos);
  EXPECT_NE(text.find("misses=1"), std::string::npos);
  EXPECT_NE(text.find("hit ratio 50.0%"), std::string::npos);
}

}  // namespace
}  // namespace uniqopt
