#ifndef UNIQOPT_IMS_TRANSLATOR_H_
#define UNIQOPT_IMS_TRANSLATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "ims/dli.h"
#include "ims/gateway.h"
#include "plan/plan.h"

namespace uniqopt {
namespace ims {

/// The Waterloo multidatabase gateway of §6.1: "the gateway optimizer
/// attempts to translate an SQL query into an iterative DL/I program
/// consisting of nested loops of IMS calls. Queries that cannot be
/// directly translated by the data access layer ... require facilities
/// of the post-processing layer ... at increased cost."
///
/// This module is that translator. It compiles a bound logical plan
/// (over the relational views of the hierarchy: the root view is the
/// root segment's fields; a child view is [root key] ++ child fields)
/// into a DliProgram — a root GU/GN loop with child GNP probes — and
/// keeps any untranslatable conjuncts as a post-processing filter.

/// A qualification whose comparison value may be a host variable,
/// resolved against the parameter vector when the program runs.
struct QualTemplate {
  std::string field;
  CompareOp op = CompareOp::kEq;
  Value constant;
  std::optional<size_t> host_var;

  Qualification Resolve(const std::vector<Value>& params) const {
    Qualification q;
    q.field = field;
    q.op = op;
    q.value = host_var.has_value() ? params.at(*host_var) : constant;
    return q;
  }
};

/// One child probe inside the root loop.
struct ChildStep {
  std::string segment;
  /// Single-field qualification pushed into the GNP SSA, if any.
  std::optional<QualTemplate> qual;
  /// EXISTS semantics: probe once, emit the outer row if found
  /// (the §6 nested strategy). Otherwise emit once per match
  /// (join semantics).
  bool exists_only = false;
};

/// A compiled iterative DL/I program.
struct DliProgram {
  /// Qualification on the root segment (pushed into GU/GN SSAs).
  std::optional<QualTemplate> root_qual;
  /// Child probes; at most one non-exists (emitting) step.
  std::vector<ChildStep> steps;
  /// Layout of the "view row" the post filter and projection see: the
  /// FROM tables' segment names in order. The root view contributes the
  /// root fields; a child view contributes [root key] ++ child fields.
  std::vector<std::string> layout;
  /// Column indexes into the view row forming the output row.
  std::vector<size_t> output_columns;
  /// Residual predicate over the view row, evaluated by the
  /// post-processing layer (null when fully translatable).
  ExprPtr post_filter;
  /// Duplicate elimination required by the plan (π_Dist): also a
  /// post-processing-layer operation (sort), as the paper notes.
  bool distinct = false;

  std::string ToString() const;
};

/// Translates `plan` into a DliProgram against `db`'s hierarchy.
/// Supported shapes: π over (σ / Exists) over {root view, root ⋈ child
/// view on the hierarchy key, child view alone}. Returns kUnsupported
/// for plans outside the gateway's reach (the paper's queries all fit).
Result<DliProgram> TranslatePlan(const ImsDatabase& db, const PlanPtr& plan);

/// Executes a compiled program; `params` supplies host variables
/// referenced by the post filter or qualifications.
GatewayResult RunProgram(const ImsDatabase& db, const DliProgram& program,
                         const std::vector<Value>& params = {});

/// EXPLAIN ANALYZE for a gateway program: runs it and reports the
/// compiled program, the per-run DL/I stats, and the `ims.dli.*`
/// registry counters the run moved (e.g. `ims.dli.gnp_calls` — the
/// number Example 10's join→subquery rewrite halves). `result_out`
/// optionally receives the rows and stats.
std::string ExplainAnalyzeProgram(const ImsDatabase& db,
                                  const DliProgram& program,
                                  const std::vector<Value>& params = {},
                                  GatewayResult* result_out = nullptr);

}  // namespace ims
}  // namespace uniqopt

#endif  // UNIQOPT_IMS_TRANSLATOR_H_
