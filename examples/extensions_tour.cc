// Tour of the §7 future-work extensions: inclusion-dependency join
// elimination, true-interpreted predicate simplification, GROUP BY
// collapse on keys, and the cost-based strategy chooser — each shown
// via EXPLAIN plus a before/after execution measurement.
//
//   $ extensions_tour

#include <cstdio>

#include "uniqopt/uniqopt.h"

namespace {

using namespace uniqopt;

void Show(Optimizer& optimizer, const Database& db, const char* title,
          const char* sql) {
  std::printf("==== %s ====\n", title);
  auto prepared = optimizer.Prepare(sql);
  if (!prepared.ok()) {
    std::printf("error: %s\n\n", prepared.status().ToString().c_str());
    return;
  }
  std::printf("%s", prepared->Explain().c_str());

  // Compare against the unrewritten plan.
  ExecContext before_ctx;
  ExecContext after_ctx;
  auto before = ExecutePlan(prepared->original_plan, db, &before_ctx);
  auto after = ExecutePlan(prepared->optimized_plan, db, &after_ctx);
  if (before.ok() && after.ok()) {
    std::printf("original:  %zu rows  [%s]\n", before->size(),
                before_ctx.stats.ToString().c_str());
    std::printf("optimized: %zu rows  [%s]\n\n", after->size(),
                after_ctx.stats.ToString().c_str());
  }
}

int Run() {
  Database db;
  SupplierSchemaOptions schema;
  schema.max_sno = 2001;
  if (!CreateSupplierSchema(&db, schema).ok()) return 1;
  SupplierDataOptions data;
  data.num_suppliers = 2000;
  data.parts_per_supplier = 10;
  if (!PopulateSupplierDatabase(&db, data).ok()) return 1;

  Optimizer optimizer(&db, RewriteOptions{}, /*use_cost_model=*/true);

  Show(optimizer, db,
       "join elimination (FOREIGN KEY PARTS.SNO → SUPPLIER.SNO)",
       "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S "
       "WHERE P.SNO = S.SNO");

  Show(optimizer, db,
       "implied predicate removal (CHECK (SNO BETWEEN 1 AND 2001))",
       "SELECT P.PNO FROM PARTS P WHERE P.SNO >= 1 AND P.COLOR = 'RED'");

  Show(optimizer, db, "contradiction detection (empty result, no scan)",
       "SELECT SNAME FROM SUPPLIER WHERE SNO > 99999");

  Show(optimizer, db, "GROUP BY on a key collapses to a projection",
       "SELECT SNO, SUM(BUDGET) FROM SUPPLIER GROUP BY SNO");

  Show(optimizer, db, "DISTINCT over GROUP BY is redundant",
       "SELECT DISTINCT SCITY, COUNT(*) FROM SUPPLIER GROUP BY SCITY");

  Show(optimizer, db, "everything stacks: EXISTS + DISTINCT + FK join",
       "SELECT DISTINCT P.PNO, P.PNAME FROM PARTS P WHERE EXISTS "
       "(SELECT * FROM SUPPLIER S WHERE S.SNO = P.SNO)");
  return 0;
}

}  // namespace

int main() { return Run(); }
