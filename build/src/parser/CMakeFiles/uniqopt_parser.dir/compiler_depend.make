# Empty compiler generated dependencies file for uniqopt_parser.
# This may be replaced when dependencies are built.
