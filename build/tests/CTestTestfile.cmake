# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/ims_test[1]_include.cmake")
include("/root/repo/build/tests/oodb_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/join_elimination_test[1]_include.cmake")
include("/root/repo/build/tests/semantic_predicate_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/groupby_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/oo_translator_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
