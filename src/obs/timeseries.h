#ifndef UNIQOPT_OBS_TIMESERIES_H_
#define UNIQOPT_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace uniqopt {
namespace obs {

class Sentinel;

/// Injectable monotonic clock behind the time-series plane. Production
/// uses the steady clock; tests and the shell's `\tick` drive windows
/// deterministically through a manual clock or explicit Tick() calls.
class WindowClock {
 public:
  virtual ~WindowClock() = default;
  /// Monotonic nanoseconds. Never goes backwards.
  virtual uint64_t NowNs() = 0;
};

class SteadyWindowClock : public WindowClock {
 public:
  uint64_t NowNs() override;
};

/// Deterministic clock: time moves only when Advance() is called.
class ManualWindowClock : public WindowClock {
 public:
  uint64_t NowNs() override {
    return now_ns_.load(std::memory_order_relaxed);
  }
  void Advance(uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ns_{1};
};

/// The worst sample observed in one window: a direct link from a window
/// aggregate (and any alert raised on it) back to the offending
/// QueryRecord in `\history` / GET /queries.
struct Exemplar {
  uint64_t record_id = 0;    ///< QueryRecord::id; 0 = no linked record
  uint64_t fingerprint = 0;  ///< plan hash of the worst sample
  uint64_t value = 0;        ///< the worst sample itself
};

/// What a series is derived from. Counter and gauge series mirror the
/// registry; histogram series are snapshot-diffed registry histograms;
/// class series are per-query-class samples fed by the optimizer; ratio
/// series are synthesized from `rewrite.rule.*.fired/.considered`
/// counter-delta pairs.
enum class SeriesKind { kCounter, kGauge, kHistogram, kClass, kRatio };

const char* SeriesKindName(SeriesKind kind);

/// One closed window of one series. Which fields are meaningful depends
/// on the series kind: counters use value (delta) and rate; gauges use
/// value (last); histograms and class series use count/sum/min/max and
/// the window percentiles; ratio series use ratio.
struct WindowStats {
  uint64_t window = 0;    ///< global tick index this window closed on
  uint64_t start_ns = 0;  ///< window bounds, monotonic clock
  uint64_t end_ns = 0;
  /// False when the underlying histogram was Reset() inside the window
  /// (generation changed between snapshots): the delta is meaningless,
  /// so the window is kept as a gap instead of reporting garbage.
  bool valid = true;
  uint64_t count = 0;   ///< samples in window / counter delta
  uint64_t value = 0;   ///< counter delta / gauge last value
  double rate = 0.0;    ///< count per second over the window
  double ratio = 0.0;   ///< ratio series only: fired / considered
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;     ///< window percentile (bucket-midpoint estimate)
  uint64_t p99 = 0;
  Exemplar exemplar;    ///< class series only: worst sample's identity
};

/// Copy-out view of one series: identity plus its retained windows,
/// oldest first.
struct SeriesSnapshot {
  std::string name;
  SeriesKind kind = SeriesKind::kCounter;
  uint64_t class_fingerprint = 0;  ///< class series only
  std::vector<WindowStats> windows;
};

/// Fixed-memory windowed time-series plane over the metrics registry.
///
/// Every metric the plane exposes elsewhere is cumulative since process
/// start; this layer gives them a time axis. Tick() closes the current
/// window: counter values are diffed into per-window deltas and rates,
/// gauges keep their last value, histograms are snapshot-diffed bucket
/// by bucket so the window's own p50/p99 can be computed (a Reset()
/// straddling a window is detected through the histogram's generation
/// counter and the window is marked invalid instead of going negative),
/// and per-query-class sample accumulators (fed by the optimizer, keyed
/// by the plan-cache canonical-shape fingerprint) fold into class
/// series, each window remembering the worst sample's QueryRecord id
/// and plan fingerprint as an exemplar.
///
/// Memory is bounded everywhere: at most kMaxSeries series, each a ring
/// of `windows_per_series` WindowStats; at most kMaxClasses tracked
/// query classes (extras are counted in `timeseries.dropped`).
///
/// Ticks come from three equivalent drivers: explicit Tick() (tests,
/// the shell's `\tick`), the optional background ticker thread
/// (`\serve` starts it; off by default), or an embedding host. All
/// entry points are thread-safe; with `enabled()` false the sample feed
/// is a single relaxed atomic load, so the plane costs nothing when
/// off.
class TimeSeriesPlane {
 public:
  static constexpr size_t kDefaultWindowsPerSeries = 64;
  static constexpr size_t kMaxSeries = 256;
  static constexpr size_t kMaxClasses = 64;

  /// `clock` and `registry` default to the steady clock and the global
  /// registry; tests inject a ManualWindowClock and a private registry.
  explicit TimeSeriesPlane(
      size_t windows_per_series = kDefaultWindowsPerSeries,
      WindowClock* clock = nullptr, MetricsRegistry* registry = nullptr);
  ~TimeSeriesPlane();
  TimeSeriesPlane(const TimeSeriesPlane&) = delete;
  TimeSeriesPlane& operator=(const TimeSeriesPlane&) = delete;

  /// The process-wide plane the optimizer, shell and endpoint share.
  static TimeSeriesPlane& Global();

  /// Gates the sample feed. Off (the default) makes RecordClassSample a
  /// single relaxed load — the optimizer hot path pays nothing.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Feeds one per-query-class sample into the open window. `metric` is
  /// a short literal ("prepare.ns", "execute.ns"); the series is named
  /// `class.<16-hex-fingerprint>.<metric>`. `record_id` (0 = none) and
  /// `plan_hash` identify the sample's QueryRecord for the exemplar.
  void RecordClassSample(uint64_t class_fingerprint, const char* metric,
                         uint64_t value, uint64_t record_id,
                         uint64_t plan_hash);

  /// Closes the current window: snapshots the registry, folds the open
  /// class accumulators, appends one WindowStats per live series, and
  /// hands the closed windows to the attached sentinel (if any).
  void Tick();

  /// Starts the background ticker thread calling Tick() every
  /// `interval_ms`. Also enables the sample feed.
  Status StartTicker(uint64_t interval_ms);
  /// Stops and joins the ticker thread. Idempotent.
  void StopTicker();
  bool ticker_running() const {
    return ticker_running_.load(std::memory_order_acquire);
  }

  /// Attaches the sentinel notified on every Tick (not owned; nullptr
  /// detaches).
  void AttachSentinel(Sentinel* sentinel);
  Sentinel* sentinel() const;

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  size_t windows_per_series() const { return windows_per_series_; }

  /// Name-sorted copy of every series and its retained windows.
  std::vector<SeriesSnapshot> Snapshot() const;

  /// Drops every series, window, shadow snapshot and open accumulator
  /// (the tick counter keeps counting).
  void Reset();

  /// `\timeline` rendering: with a filter, an ASCII sparkline plus a
  /// window table per matching series (substring match); without one, a
  /// one-line summary per series.
  std::string ToText(const std::string& filter = "") const;

  /// Stable JSON (`{"timeseries": {...}}`) served by GET /timeseries,
  /// written by `\export timeline`, and ingested by
  /// scripts/bench_compare.py --timeline.
  std::string ToJson() const;

 private:
  /// Per-histogram shadow of the last snapshot, for bucket diffing.
  struct HistogramShadow {
    uint64_t generation = 0;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// Per-bucket (inclusive upper bound → count), reconstructed from
    /// the cumulative form.
    std::map<uint64_t, uint64_t> bucket_counts;
  };

  /// Open-window accumulator for one (class, metric) pair. The bucket
  /// array reuses Histogram's log2 bucketing so window percentiles have
  /// the same error bound.
  struct ClassAccumulator {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<uint32_t> buckets;  // Histogram::kNumBuckets, lazy
    Exemplar worst;
  };

  struct Series {
    SeriesKind kind = SeriesKind::kCounter;
    uint64_t class_fingerprint = 0;
    std::vector<WindowStats> slots;  // ring, oldest at head_ when full
    size_t head = 0;

    void Push(WindowStats w, size_t cap);
    std::vector<WindowStats> Ordered() const;
  };

  Series* FindOrCreateSeriesLocked(const std::string& name,
                                   SeriesKind kind, uint64_t class_fp);
  void TickerLoop(uint64_t interval_ms);

  const size_t windows_per_series_;
  WindowClock* clock_;
  MetricsRegistry* registry_;
  SteadyWindowClock default_clock_;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<Sentinel*> sentinel_{nullptr};

  mutable std::mutex mu_;
  uint64_t window_start_ns_ = 0;  // set on first use of the clock
  std::map<std::string, Series> series_;
  std::map<std::string, uint64_t> prev_counters_;
  std::map<std::string, HistogramShadow> hist_shadows_;
  /// Open accumulators keyed (class fingerprint, metric literal).
  std::map<std::pair<uint64_t, std::string>, ClassAccumulator> class_acc_;

  std::atomic<bool> ticker_running_{false};
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_thread_;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_TIMESERIES_H_
