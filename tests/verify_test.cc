// The post-optimization verifier must (a) stay silent on every sound
// plan the optimizer produces — the paper's worked examples and a
// several-hundred-plan random sweep — and (b) catch a seeded unsound
// fixture per analyzer: a dangling column reference for the plan lint,
// a forged uniqueness claim for the proof checker, and a plain `=`
// correlation over nullable columns for the null-semantics audit.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "uniqopt/uniqopt.h"
#include "verify/null_audit.h"
#include "verify/proof_checker.h"
#include "verify/verify.h"
#include "workload/query_corpus.h"
#include "workload/random_query.h"

namespace uniqopt {
namespace {

using verify::Analyzer;
using verify::VerifyInput;
using verify::VerifyReport;

size_t CountCode(const VerifyReport& report, const std::string& code) {
  size_t n = 0;
  for (const verify::Violation& v : report.violations) {
    if (verify::ViolationCodeName(v.code) == code) ++n;
  }
  return n;
}

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(CreateSupplierSchema(&db_)); }

  const TableDef* Def(const std::string& name) {
    auto def = db_.catalog().GetTable(name);
    EXPECT_TRUE(def.ok());
    return def.ok() ? *def : nullptr;
  }

  PlanPtr Bind(const std::string& sql) {
    Binder binder(&db_.catalog());
    auto bound = binder.BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return bound.ok() ? bound->plan : nullptr;
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Plan lint: seeded structural corruption.
// ---------------------------------------------------------------------------

TEST_F(VerifyTest, LintCatchesDanglingColumnRef) {
  // SUPPLIER has 5 columns; a selection predicate referencing column 99
  // could never have been produced by the binder.
  PlanPtr get = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr bad = SelectNode::Make(
      get, Expr::Compare(CompareOp::kEq,
                         Expr::ColumnRef(99, "BOGUS", TypeId::kInteger),
                         Expr::Literal(Value::Integer(1))));
  VerifyInput input;
  input.optimized = bad;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_FALSE(report.Clean());
  EXPECT_GE(CountCode(report, "dangling-column-ref"), 1u)
      << report.ToString();
  EXPECT_EQ(report.violations[0].analyzer, Analyzer::kPlanLint);
}

TEST_F(VerifyTest, LintCatchesDistinctDroppedWithoutProof) {
  // A DISTINCT that vanished with no duplicate-affecting rewrite on
  // record: the optimized plan would return duplicate SNAMEs.
  PlanPtr get = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr original = ProjectNode::Make(get, DuplicateMode::kDist, {1});
  PlanPtr optimized = ProjectNode::Make(get, DuplicateMode::kAll, {1});
  std::vector<AppliedRewrite> no_rewrites;
  VerifyInput input;
  input.original = original;
  input.optimized = optimized;
  input.rewrites = &no_rewrites;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_EQ(CountCode(report, "distinct-dropped-without-proof"), 1u)
      << report.ToString();
}

TEST_F(VerifyTest, LintCatchesRewriteWithoutEvidence) {
  PlanPtr get = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr plan = ProjectNode::Make(get, DuplicateMode::kAll, {0});
  AppliedRewrite forged;
  forged.rule = RewriteRuleId::kRemoveRedundantDistinct;
  forged.description = "forged: no evidence attached";
  // condition_proven left false, subtrees left null.
  std::vector<AppliedRewrite> rewrites{forged};
  VerifyInput input;
  input.optimized = plan;
  input.rewrites = &rewrites;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_GE(CountCode(report, "rewrite-without-proven-condition"), 1u)
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Proof checker: forged uniqueness claims and internal proof lint.
// ---------------------------------------------------------------------------

TEST_F(VerifyTest, ProofCheckerRejectsForgedDistinctRemoval) {
  // Example 2 projects SNAME instead of the SUPPLIER key, so DISTINCT
  // is *not* redundant. Forge a kRemoveRedundantDistinct that claims it
  // was proven; the independent reference must refuse to reproduce it.
  PlanPtr before = Bind(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(before, nullptr);
  const ProjectNode* proj = As<ProjectNode>(before);
  ASSERT_NE(proj, nullptr);
  PlanPtr after =
      ProjectNode::Make(proj->input(), DuplicateMode::kAll, proj->columns());
  AppliedRewrite forged;
  forged.rule = RewriteRuleId::kRemoveRedundantDistinct;
  forged.description = "forged: Theorem 1 claimed without a real proof";
  forged.evidence.before = before;
  forged.evidence.after = after;
  forged.evidence.condition_proven = true;
  forged.evidence.proof.recorded = true;
  forged.evidence.proof.conclusion = "forged: closure covers every key";
  std::vector<AppliedRewrite> rewrites{forged};
  VerifyInput input;
  input.optimized = after;
  input.rewrites = &rewrites;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_GE(CountCode(report, "proof-divergence"), 1u) << report.ToString();
}

TEST_F(VerifyTest, ProofCheckerFlagsInconsistentKeyOutcome) {
  // Example 1 is genuinely redundant (no divergence), but the recorded
  // proof contradicts itself: a key marked covered with missing columns.
  PlanPtr before = Bind(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(before, nullptr);
  const ProjectNode* proj = As<ProjectNode>(before);
  ASSERT_NE(proj, nullptr);
  PlanPtr after =
      ProjectNode::Make(proj->input(), DuplicateMode::kAll, proj->columns());
  AppliedRewrite r;
  r.rule = RewriteRuleId::kRemoveRedundantDistinct;
  r.description = "distinct removal with a self-contradicting proof";
  r.evidence.before = before;
  r.evidence.after = after;
  r.evidence.condition_proven = true;
  r.evidence.proof.recorded = true;
  r.evidence.proof.conclusion = "DISTINCT unnecessary";
  ProofKeyOutcome key;
  key.table = "SUPPLIER";
  key.key_name = "PRIMARY";
  key.covered = true;
  key.missing_columns = {"S.SNO"};  // contradicts covered
  r.evidence.proof.keys.push_back(key);
  std::vector<AppliedRewrite> rewrites{r};
  VerifyInput input;
  input.optimized = after;
  input.rewrites = &rewrites;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_EQ(CountCode(report, "proof-key-outcome-inconsistent"), 1u)
      << report.ToString();
  EXPECT_EQ(CountCode(report, "proof-divergence"), 0u) << report.ToString();
}

TEST_F(VerifyTest, ProofCheckerCrossChecksAnalysisVerdict) {
  // Forge the optimizer's standalone verdict itself: claim Algorithm 1
  // proved Example 2's DISTINCT redundant.
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  UniquenessVerdict forged;
  forged.has_distinct = true;
  forged.distinct_unnecessary = true;
  forged.detector = DetectorKind::kAlgorithm1;
  forged.proof.recorded = true;
  forged.proof.conclusion = "forged YES";
  VerifyInput input;
  input.original = plan;
  input.optimized = plan;
  input.analysis = &forged;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_GE(CountCode(report, "proof-divergence"), 1u) << report.ToString();
}

TEST_F(VerifyTest, ReferenceClosureBindsTransitively) {
  // c0 = 'x' and c0 = c1: the closure must reach c1 — and lose it again
  // when the column-equivalence ingredient is ablated.
  std::vector<ExprPtr> conjuncts = {
      Expr::Compare(CompareOp::kEq,
                    Expr::ColumnRef(0, "A", TypeId::kString),
                    Expr::Literal(Value::String("x"))),
      Expr::Compare(CompareOp::kEq,
                    Expr::ColumnRef(0, "A", TypeId::kString),
                    Expr::ColumnRef(1, "B", TypeId::kString)),
  };
  AnalysisOptions options;
  AttributeSet closure =
      verify::ReferenceClosure(conjuncts, AttributeSet(), options, nullptr);
  EXPECT_TRUE(closure.Contains(0));
  EXPECT_TRUE(closure.Contains(1));

  options.use_column_equivalence = false;
  closure =
      verify::ReferenceClosure(conjuncts, AttributeSet(), options, nullptr);
  EXPECT_TRUE(closure.Contains(0));
  EXPECT_FALSE(closure.Contains(1));
}

// ---------------------------------------------------------------------------
// Null-semantics audit: Theorem 3's `=!` contract.
// ---------------------------------------------------------------------------

TEST_F(VerifyTest, NullAuditCatchesPlainEqOnNullableColumns) {
  // An INTERSECT lowered to EXISTS must compare tuples null-safely;
  // plain `=` over nullable SNAME silently drops NULL rows.
  PlanPtr supplier = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr agents = GetNode::Make(Def("AGENTS"), "A");
  PlanPtr outer = ProjectNode::Make(supplier, DuplicateMode::kAll, {1});
  PlanPtr sub = ProjectNode::Make(agents, DuplicateMode::kAll, {2});
  ASSERT_TRUE(outer->schema().column(0).nullable);
  ExprPtr plain_eq = Expr::Compare(
      CompareOp::kEq,
      Expr::ColumnRef(0, "S.SNAME", TypeId::kString),
      Expr::ColumnRef(1, "A.ANAME", TypeId::kString));
  PlanPtr exists = ExistsNode::Make(outer, sub, plain_eq, false);

  VerifyReport direct;
  verify::AuditCorrelation(*As<ExistsNode>(exists), "test", &direct);
  EXPECT_EQ(CountCode(direct, "plain-eq-on-nullable"), 1u)
      << direct.ToString();

  // And through the full pipeline, gated on the rewrite evidence.
  AppliedRewrite r;
  r.rule = RewriteRuleId::kIntersectToExists;
  r.description = "forged lowering with a 3VL correlation";
  r.evidence.before = exists;
  r.evidence.after = exists;
  r.evidence.condition_proven = true;
  r.evidence.facts = {"fabricated"};
  std::vector<AppliedRewrite> rewrites{r};
  VerifyInput input;
  input.optimized = exists;
  input.rewrites = &rewrites;
  VerifyReport report = verify::VerifyPlan(input);
  EXPECT_GE(CountCode(report, "plain-eq-on-nullable"), 1u)
      << report.ToString();
}

TEST_F(VerifyTest, NullAuditCatchesIncompleteTupleEquality) {
  // A TRUE correlation covers no column: the tuple equality the set
  // operation requires is simply missing.
  PlanPtr supplier = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr agents = GetNode::Make(Def("AGENTS"), "A");
  PlanPtr outer = ProjectNode::Make(supplier, DuplicateMode::kAll, {0});
  PlanPtr sub = ProjectNode::Make(agents, DuplicateMode::kAll, {0});
  PlanPtr exists = ExistsNode::Make(outer, sub, TrueLiteral(), false);
  VerifyReport report;
  verify::AuditCorrelation(*As<ExistsNode>(exists), "test", &report);
  EXPECT_EQ(CountCode(report, "missing-correlation-column"), 1u)
      << report.ToString();
}

TEST_F(VerifyTest, NullAuditAcceptsNullSafeShape) {
  // The shape the rewriter actually emits:
  //   (L IS NULL AND R IS NULL) OR L = R
  PlanPtr supplier = GetNode::Make(Def("SUPPLIER"), "S");
  PlanPtr agents = GetNode::Make(Def("AGENTS"), "A");
  PlanPtr outer = ProjectNode::Make(supplier, DuplicateMode::kAll, {1});
  PlanPtr sub = ProjectNode::Make(agents, DuplicateMode::kAll, {2});
  ExprPtr l = Expr::ColumnRef(0, "S.SNAME", TypeId::kString);
  ExprPtr r = Expr::ColumnRef(1, "A.ANAME", TypeId::kString);
  ExprPtr null_safe = Expr::MakeOr(
      {Expr::MakeAnd({Expr::IsNull(l), Expr::IsNull(r)}),
       Expr::Compare(CompareOp::kEq, l, r)});
  PlanPtr exists = ExistsNode::Make(outer, sub, null_safe, false);
  VerifyReport report;
  verify::AuditCorrelation(*As<ExistsNode>(exists), "test", &report);
  EXPECT_TRUE(report.Clean()) << report.ToString();
  EXPECT_EQ(report.correlations_audited, 1u);
}

// ---------------------------------------------------------------------------
// Clean passes: the paper's worked examples, end to end.
// ---------------------------------------------------------------------------

TEST_F(VerifyTest, PaperExamplesVerifyClean) {
  Optimizer optimizer(&db_);
  optimizer.set_verify_plans(true);
  std::vector<std::string> sqls;
  // Examples 1, 2, 4, 5, 6 and their systematic variations.
  for (const CorpusQuery& q : DistinctQueryCorpus()) sqls.push_back(q.sql);
  // Examples 7–11 (§5.2, §5.3, §6).
  sqls.push_back(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE "
      "S.SNAME = :SUPPLIER_NAME AND EXISTS (SELECT * FROM PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PART_NO)");
  sqls.push_back(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  sqls.push_back(
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
      "INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE "
      "A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'");
  sqls.push_back(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO");
  sqls.push_back(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO BETWEEN 10 AND 20 AND S.SNO = P.SNO AND P.PNO = 4");
  // Set-operation variants (Theorem 3 / Corollary 2 lowerings).
  sqls.push_back(
      "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM AGENTS");
  sqls.push_back(
      "SELECT SNO FROM SUPPLIER EXCEPT SELECT SNO FROM AGENTS");
  for (const std::string& sql : sqls) {
    auto prepared = optimizer.Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql << ": "
                               << prepared.status().ToString();
    ASSERT_TRUE(prepared->verified) << sql;
    EXPECT_TRUE(prepared->verification.Clean())
        << sql << "\n" << prepared->verification.ToString();
    EXPECT_GT(prepared->verification.nodes_checked, 0u) << sql;
  }
}

TEST_F(VerifyTest, RegressionDistinctRemovalBeyondAlgorithm1VerifiesClean) {
  // Two DISTINCT removals the first verifier sweep flagged falsely:
  //  - over a GROUP BY output (Algorithm 1 cannot decompose the shape;
  //    the group columns key the output structurally);
  //  - proven by the FD detector where the key of AGENTS functionally
  //    determines the join column (beyond the naive closure's reach).
  // Both are sound; the proof checker must accept them.
  Optimizer optimizer(&db_);
  optimizer.set_verify_plans(true);
  for (const char* sql : {
           "SELECT DISTINCT P.OEM_PNO, P.PNO, COUNT(*) FROM PARTS P "
           "GROUP BY P.OEM_PNO, P.PNO",
           "SELECT DISTINCT A.ANO, P.PNAME FROM AGENTS A, PARTS P "
           "WHERE A.SNO = P.SNO AND P.PNO = :P",
       }) {
    auto prepared = optimizer.Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql;
    ASSERT_TRUE(prepared->rewrites.size() >= 1 &&
                prepared->rewrites[0].rule ==
                    RewriteRuleId::kRemoveRedundantDistinct)
        << sql << ": the rewrite under test did not fire";
    EXPECT_TRUE(prepared->verification.Clean())
        << sql << "\n" << prepared->verification.ToString();
  }
}

TEST_F(VerifyTest, ExplainIncludesVerificationSection) {
  Optimizer optimizer(&db_);
  optimizer.set_verify_plans(true);
  auto prepared = optimizer.Prepare(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_TRUE(prepared.ok());
  std::string explain = prepared->Explain();
  EXPECT_NE(explain.find("verification"), std::string::npos) << explain;
  EXPECT_NE(explain.find("clean"), std::string::npos) << explain;
}

// ---------------------------------------------------------------------------
// Differential sweep: every plan the optimizer prepares over a large
// random workload must verify clean — the acceptance oracle.
// ---------------------------------------------------------------------------

class VerifySweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { ASSERT_OK(CreateSupplierSchema(&db_)); }
  Database db_;
};

TEST_P(VerifySweepTest, RandomWorkloadVerifiesClean) {
  Optimizer optimizer(&db_);
  optimizer.set_verify_plans(true);
  RandomQueryOptions qopts;
  qopts.seed = GetParam();
  qopts.always_distinct = false;
  qopts.group_by_probability = 0.2;
  RandomQueryGenerator gen(qopts);
  size_t verified = 0;
  for (int i = 0; i < 120 && verified < 100; ++i) {
    std::string sql = gen.NextQuery();
    auto prepared = optimizer.Prepare(sql);
    if (!prepared.ok()) continue;  // outside the supported subset
    ASSERT_TRUE(prepared->verified) << sql;
    EXPECT_TRUE(prepared->verification.Clean())
        << sql << "\n" << prepared->verification.ToString();
    ++verified;
  }
  // Three seeds x >=70 plans comfortably clears the 200-plan floor.
  EXPECT_GE(verified, 70u);
}

TEST_P(VerifySweepTest, ReferenceNeverOutProvesProductionAlgorithm1) {
  // The reference closure skips CNF normalization, so its deductive
  // power is a strict subset of production Algorithm 1: any query the
  // reference proves duplicate-free that production answers NO on is a
  // lost derivation in algorithm1.cc.
  Binder binder(&db_.catalog());
  RandomQueryOptions qopts;
  qopts.seed = GetParam() + 1000;
  qopts.always_distinct = true;
  RandomQueryGenerator gen(qopts);
  Algorithm1Options options;
  size_t compared = 0;
  for (int i = 0; i < 150; ++i) {
    auto bound = binder.BindSql(gen.NextQuery());
    if (!bound.ok()) continue;
    auto production = AnalyzeDistinctAlgorithm1(bound->plan, options);
    if (!production.ok()) continue;  // unsupported shape
    const ProjectNode* proj = As<ProjectNode>(bound->plan);
    if (proj == nullptr || proj->mode() != DuplicateMode::kDist) continue;
    ++compared;
    if (verify::ReferenceDuplicateFree(
            ProjectNode::Make(proj->input(), DuplicateMode::kAll,
                              proj->columns()),
            options)) {
      EXPECT_TRUE(production->distinct_unnecessary)
          << "reference proves but production misses:\n"
          << bound->plan->ToString();
    }
  }
  EXPECT_GE(compared, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifySweepTest,
                         ::testing::Values(7u, 19u, 41u));

}  // namespace
}  // namespace uniqopt
