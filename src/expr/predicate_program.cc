#include "expr/predicate_program.h"

namespace uniqopt {
namespace {

inline bool CompareKeeps(int c, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

// Hot inner loop for `col <op> const`. When both sides are integers the
// comparison inlines to a branch on the variant payload; any other type
// pairing goes through Value::Compare, which is never wrong, just an
// out-of-line call.
inline size_t RefineCmp(const Row* data, std::vector<uint32_t>& s, size_t col,
                        CompareOp op, const Value& constant) {
  size_t kept = 0;
  if (constant.type() == TypeId::kInteger) {
    const int64_t k = constant.AsInteger();
    for (uint32_t idx : s) {
      const Value& v = data[idx][col];
      if (v.is_null()) continue;
      int c = v.type() == TypeId::kInteger
                  ? (v.AsInteger() < k ? -1 : (v.AsInteger() > k ? 1 : 0))
                  : v.Compare(constant);
      if (CompareKeeps(c, op)) s[kept++] = idx;
    }
    return kept;
  }
  if (constant.type() == TypeId::kString) {
    const std::string& ks = constant.AsString();
    for (uint32_t idx : s) {
      const Value& v = data[idx][col];
      if (v.is_null()) continue;
      int c = v.type() == TypeId::kString ? v.AsString().compare(ks)
                                          : v.Compare(constant);
      if (CompareKeeps(c, op)) s[kept++] = idx;
    }
    return kept;
  }
  for (uint32_t idx : s) {
    const Value& v = data[idx][col];
    if (!v.is_null() && CompareKeeps(v.Compare(constant), op)) {
      s[kept++] = idx;
    }
  }
  return kept;
}

}  // namespace

bool PredicateProgram::CompileNode(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kAnd: {
      bool all = true;
      for (const ExprPtr& c : e->children()) all = CompileNode(c) && all;
      return all;
    }
    case ExprKind::kLiteral:
      if (e->IsTrueLiteral()) return true;  // no-op atom
      break;
    case ExprKind::kComparison: {
      const ExprPtr& l = e->child(0);
      const ExprPtr& r = e->child(1);
      // Normalize to column-on-the-left; bail on col-vs-col and
      // anything nested.
      ExprPtr col = l, rhs = r;
      CompareOp op = e->compare_op();
      if (col->kind() != ExprKind::kColumnRef &&
          rhs->kind() == ExprKind::kColumnRef) {
        std::swap(col, rhs);
        op = FlipCompareOp(op);
      }
      if (col->kind() != ExprKind::kColumnRef) break;
      if (rhs->kind() == ExprKind::kLiteral) {
        Atom a;
        a.kind = AtomKind::kColCmpConst;
        a.col = col->column_index();
        a.op = op;
        a.constant = rhs->literal();
        atoms_.push_back(std::move(a));
        return true;
      }
      if (rhs->kind() == ExprKind::kHostVar) {
        Atom a;
        a.kind = AtomKind::kColCmpParam;
        a.col = col->column_index();
        a.op = op;
        a.param = rhs->host_var_index();
        atoms_.push_back(std::move(a));
        return true;
      }
      break;
    }
    case ExprKind::kIsNull:
    case ExprKind::kIsNotNull: {
      const ExprPtr& c = e->child(0);
      if (c->kind() != ExprKind::kColumnRef) break;
      Atom a;
      a.kind = e->kind() == ExprKind::kIsNull ? AtomKind::kColIsNull
                                              : AtomKind::kColIsNotNull;
      a.col = c->column_index();
      atoms_.push_back(std::move(a));
      return true;
    }
    default:
      break;
  }
  Atom a;
  a.kind = AtomKind::kInterpreted;
  a.fallback = e;
  atoms_.push_back(std::move(a));
  return false;
}

PredicateProgram PredicateProgram::Compile(ExprPtr predicate) {
  PredicateProgram p;
  if (predicate != nullptr) p.fully_compiled_ = p.CompileNode(predicate);
  return p;
}

void PredicateProgram::FilterSel(const Row* data, std::vector<uint32_t>* sel,
                                 const std::vector<Value>& params) const {
  for (const Atom& atom : atoms_) {
    if (sel->empty()) return;
    size_t kept = 0;
    std::vector<uint32_t>& s = *sel;
    switch (atom.kind) {
      case AtomKind::kColCmpConst: {
        if (atom.constant.is_null()) {
          sel->clear();  // <op> NULL is UNKNOWN for every row
          return;
        }
        kept = RefineCmp(data, s, atom.col, atom.op, atom.constant);
        break;
      }
      case AtomKind::kColCmpParam: {
        const Value& c = params[atom.param];
        if (c.is_null()) {
          sel->clear();
          return;
        }
        kept = RefineCmp(data, s, atom.col, atom.op, c);
        break;
      }
      case AtomKind::kColIsNull:
        for (uint32_t idx : s) {
          if (data[idx][atom.col].is_null()) s[kept++] = idx;
        }
        break;
      case AtomKind::kColIsNotNull:
        for (uint32_t idx : s) {
          if (!data[idx][atom.col].is_null()) s[kept++] = idx;
        }
        break;
      case AtomKind::kInterpreted:
        for (uint32_t idx : s) {
          if (atom.fallback->EvaluatePredicate(data[idx], params) ==
              Tribool::kTrue) {
            s[kept++] = idx;
          }
        }
        break;
    }
    sel->resize(kept);
  }
}

}  // namespace uniqopt
