#include "equiv/canonical.h"

#include <algorithm>
#include <utility>

namespace uniqopt {
namespace equiv {
namespace {

void AppendSorted(std::vector<std::string> parts, const char* joiner,
                  std::string* out) {
  std::sort(parts.begin(), parts.end());
  out->push_back('(');
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) *out += joiner;
    *out += parts[i];
  }
  out->push_back(')');
}

void FlattenKind(const ExprPtr& e, ExprKind kind, std::vector<ExprPtr>* out) {
  if (e->kind() == kind) {
    for (const ExprPtr& c : e->children()) FlattenKind(c, kind, out);
  } else {
    out->push_back(e);
  }
}

}  // namespace

std::string CanonicalExprText(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr->literal().ToString();
    case ExprKind::kColumnRef:
      return "#" + std::to_string(expr->column_index());
    case ExprKind::kHostVar:
      return ":" + std::to_string(expr->host_var_index());
    case ExprKind::kComparison: {
      std::string l = CanonicalExprText(expr->child(0));
      std::string r = CanonicalExprText(expr->child(1));
      CompareOp op = expr->compare_op();
      if (r < l) {
        std::swap(l, r);
        op = FlipCompareOp(op);
      }
      return "(" + l + " " + CompareOpToString(op) + " " + r + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> flat;
      FlattenKind(expr, expr->kind(), &flat);
      std::vector<std::string> parts;
      parts.reserve(flat.size());
      for (const ExprPtr& c : flat) parts.push_back(CanonicalExprText(c));
      std::string out;
      AppendSorted(std::move(parts),
                   expr->kind() == ExprKind::kAnd ? " AND " : " OR ", &out);
      return out;
    }
    case ExprKind::kNot:
      return "(NOT " + CanonicalExprText(expr->child(0)) + ")";
    case ExprKind::kIsNull:
      return "(" + CanonicalExprText(expr->child(0)) + " IS NULL)";
    case ExprKind::kIsNotNull:
      return "(" + CanonicalExprText(expr->child(0)) + " IS NOT NULL)";
  }
  return "?";
}

std::vector<std::string> CanonicalConjunctSet(const ExprPtr& predicate) {
  std::vector<ExprPtr> flat;
  FlattenKind(predicate, ExprKind::kAnd, &flat);
  std::vector<std::string> out;
  for (const ExprPtr& c : flat) {
    if (c->IsTrueLiteral()) continue;
    out.push_back(CanonicalExprText(c));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string CanonicalPlanText(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kGet: {
      const auto* get = As<GetNode>(plan);
      return "get(" + get->table().name() + " " + get->alias() + ")";
    }
    case PlanKind::kSelect: {
      const auto* sel = As<SelectNode>(plan);
      std::string out = "select({";
      std::vector<std::string> conjuncts =
          CanonicalConjunctSet(sel->predicate());
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i) out += ",";
        out += conjuncts[i];
      }
      out += "}," + CanonicalPlanText(sel->input()) + ")";
      return out;
    }
    case PlanKind::kProject: {
      const auto* proj = As<ProjectNode>(plan);
      std::string out = proj->mode() == DuplicateMode::kDist
                            ? "project_dist(["
                            : "project_all([";
      for (size_t i = 0; i < proj->columns().size(); ++i) {
        if (i) out += ",";
        out += std::to_string(proj->columns()[i]);
      }
      out += "]," + CanonicalPlanText(proj->input()) + ")";
      return out;
    }
    case PlanKind::kProduct: {
      const auto* prod = As<ProductNode>(plan);
      return "product(" + CanonicalPlanText(prod->left()) + "," +
             CanonicalPlanText(prod->right()) + ")";
    }
    case PlanKind::kExists: {
      const auto* exists = As<ExistsNode>(plan);
      std::string out = exists->negated() ? "not_exists(" : "exists(";
      out += CanonicalExprText(exists->correlation()) + "," +
             CanonicalPlanText(exists->outer()) + "," +
             CanonicalPlanText(exists->sub()) + ")";
      return out;
    }
    case PlanKind::kSetOp: {
      const auto* setop = As<SetOpNode>(plan);
      std::string out =
          setop->op() == SetOpAlgebra::kIntersect ? "intersect" : "except";
      out += setop->mode() == DuplicateMode::kDist ? "_dist(" : "_all(";
      out += CanonicalPlanText(setop->left()) + "," +
             CanonicalPlanText(setop->right()) + ")";
      return out;
    }
    case PlanKind::kAggregate: {
      const auto* agg = As<AggregateNode>(plan);
      std::string out = "aggregate([";
      for (size_t i = 0; i < agg->group_columns().size(); ++i) {
        if (i) out += ",";
        out += std::to_string(agg->group_columns()[i]);
      }
      out += "],[";
      for (size_t i = 0; i < agg->aggregates().size(); ++i) {
        const AggregateItem& item = agg->aggregates()[i];
        if (i) out += ",";
        out += AggFuncToString(item.func);
        if (item.func != AggFunc::kCountStar) {
          out += "#" + std::to_string(item.arg_column);
        }
      }
      out += "]," + CanonicalPlanText(agg->input()) + ")";
      return out;
    }
  }
  return "?";
}

bool CanonicallyEqualPlans(const PlanPtr& a, const PlanPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return CanonicalPlanText(a) == CanonicalPlanText(b);
}

bool CanonicallyEqualExprs(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return CanonicalExprText(a) == CanonicalExprText(b);
}

}  // namespace equiv
}  // namespace uniqopt
