#include "parser/parser.h"

#include <set>

#include "common/string_util.h"
#include "parser/lexer.h"

namespace uniqopt {

namespace {

/// Words that cannot be used as a bare correlation (alias) name.
const std::set<std::string>& ReservedWords() {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "SELECT", "FROM",     "WHERE",  "AND",   "OR",      "NOT",
      "IN",     "BETWEEN",  "IS",     "NULL",  "EXISTS",  "DISTINCT",
      "ALL",    "INTERSECT", "EXCEPT", "UNION", "CREATE",  "TABLE",
      "DROP",   "PRIMARY", "KEY",     "UNIQUE", "CHECK", "TRUE", "FALSE",
      "ORDER",  "GROUP",    "BY",     "HAVING", "AS",
      "INSERT", "INTO",     "VALUES", "UPDATE", "SET", "DELETE",
      "INDEX",  "ON"};
  return *kWords;
}

class Parser {
 public:
  Parser(std::string_view sql, std::vector<Token> tokens)
      : sql_(sql), tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatementTop() {
    auto stmt = std::make_unique<Statement>();
    if (PeekKeyword("CREATE")) {
      if (PeekKeyword("UNIQUE", 1) || PeekKeyword("INDEX", 1)) {
        UNIQOPT_ASSIGN_OR_RETURN(stmt->create_index, ParseCreateIndex());
      } else {
        UNIQOPT_ASSIGN_OR_RETURN(stmt->create_table, ParseCreateTable());
      }
    } else if (PeekKeyword("DROP")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->drop_table, ParseDropTable());
    } else if (PeekKeyword("INSERT")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->insert_stmt, ParseInsert());
    } else if (PeekKeyword("UPDATE")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->update_stmt, ParseUpdate());
    } else if (PeekKeyword("DELETE")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->delete_stmt, ParseDelete());
    } else {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->query, ParseQueryExpr());
    }
    UNIQOPT_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }

  Result<QueryPtr> ParseQueryTop() {
    UNIQOPT_ASSIGN_OR_RETURN(QueryPtr q, ParseQueryExpr());
    UNIQOPT_RETURN_NOT_OK(ExpectEnd());
    return q;
  }

  Result<AstExprPtr> ParseExpressionTop() {
    UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
    UNIQOPT_RETURN_NOT_OK(ExpectEnd());
    return e;
  }

 private:
  // -- Token stream helpers -----------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && t.text == kw;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekSymbol(std::string_view sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return ErrorHere("expected " + std::string(kw));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) {
      return ErrorHere("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }
  Status ExpectEnd() {
    ConsumeSymbol(";");
    if (Peek().type != TokenType::kEndOfInput) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }
  Status ErrorHere(std::string msg) const {
    const Token& t = Peek();
    msg += " at offset " + std::to_string(t.offset);
    if (t.type != TokenType::kEndOfInput) {
      msg += " (near '" + (t.original.empty() ? t.text : t.original) + "')";
    } else {
      msg += " (at end of input)";
    }
    return Status::ParseError(std::move(msg));
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected " + std::string(what));
    }
    return Advance().text;
  }

  // -- Query expressions ---------------------------------------------------
  Result<QueryPtr> ParseQueryExpr() {
    auto q = std::make_unique<Query>();
    UNIQOPT_ASSIGN_OR_RETURN(QuerySpecPtr spec, ParseQuerySpec());
    q->specs.push_back(std::move(spec));
    while (true) {
      SetOpKind op;
      if (ConsumeKeyword("INTERSECT")) {
        op = ConsumeKeyword("ALL") ? SetOpKind::kIntersectAll
                                   : SetOpKind::kIntersect;
      } else if (ConsumeKeyword("EXCEPT")) {
        op = ConsumeKeyword("ALL") ? SetOpKind::kExceptAll
                                   : SetOpKind::kExcept;
      } else if (PeekKeyword("UNION")) {
        return ErrorHere("UNION is outside the supported SQL subset");
      } else {
        break;
      }
      q->ops.push_back(op);
      UNIQOPT_ASSIGN_OR_RETURN(QuerySpecPtr rhs, ParseQuerySpec());
      q->specs.push_back(std::move(rhs));
    }
    return q;
  }

  Result<QuerySpecPtr> ParseQuerySpec() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto spec = std::make_unique<QuerySpec>();
    if (ConsumeKeyword("DISTINCT")) {
      spec->distinct = true;
    } else {
      ConsumeKeyword("ALL");
    }
    // Select list.
    do {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.star = true;
      } else if (Peek().type == TokenType::kIdentifier && PeekSymbol(".", 1) &&
                 PeekSymbol("*", 2)) {
        item.star = true;
        item.star_qualifier = Advance().text;
        Advance();  // .
        Advance();  // *
      } else {
        UNIQOPT_ASSIGN_OR_RETURN(item.expr, ParseSelectExpr());
      }
      spec->select_list.push_back(std::move(item));
    } while (ConsumeSymbol(","));
    // FROM.
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    do {
      TableRef ref;
      UNIQOPT_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
      ConsumeKeyword("AS");
      if (Peek().type == TokenType::kIdentifier &&
          ReservedWords().count(Peek().text) == 0) {
        ref.alias = Advance().text;
      } else {
        ref.alias = ref.table_name;
      }
      spec->from.push_back(std::move(ref));
    } while (ConsumeSymbol(","));
    // WHERE.
    if (ConsumeKeyword("WHERE")) {
      UNIQOPT_ASSIGN_OR_RETURN(spec->where, ParseExpr());
    }
    // GROUP BY (§7 extension). Grouping expressions are column refs.
    if (ConsumeKeyword("GROUP")) {
      UNIQOPT_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr col, ParsePrimary());
        if (col->kind != AstExprKind::kColumnRef) {
          return ErrorHere("GROUP BY supports only column references");
        }
        spec->group_by.push_back(std::move(col));
      } while (ConsumeSymbol(","));
    }
    if (PeekKeyword("HAVING") || PeekKeyword("ORDER")) {
      return ErrorHere(
          "HAVING / ORDER BY are outside the supported subset");
    }
    return spec;
  }

  /// A select-list entry: an aggregate call or a plain primary.
  Result<AstExprPtr> ParseSelectExpr() {
    static const std::pair<const char*, AstAggFunc> kAggs[] = {
        {"COUNT", AstAggFunc::kCount}, {"SUM", AstAggFunc::kSum},
        {"MIN", AstAggFunc::kMin},     {"MAX", AstAggFunc::kMax},
        {"AVG", AstAggFunc::kAvg}};
    for (const auto& [kw, func] : kAggs) {
      if (PeekKeyword(kw) && PeekSymbol("(", 1)) {
        auto node = std::make_unique<AstExpr>();
        node->offset = Peek().offset;
        node->kind = AstExprKind::kAggregate;
        node->agg_func = func;
        Advance();  // function name
        Advance();  // (
        if (func == AstAggFunc::kCount && ConsumeSymbol("*")) {
          node->agg_func = AstAggFunc::kCountStar;
        } else {
          UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr arg, ParsePrimary());
          if (arg->kind != AstExprKind::kColumnRef) {
            return ErrorHere("aggregate argument must be a column");
          }
          node->children.push_back(std::move(arg));
        }
        UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
    }
    return ParsePrimary();
  }

  // -- Expressions ----------------------------------------------------------
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    if (!PeekKeyword("OR")) return left;
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExprKind::kOr;
    node->offset = left->offset;
    node->children.push_back(std::move(left));
    while (ConsumeKeyword("OR")) {
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<AstExprPtr> ParseAnd() {
    UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    if (!PeekKeyword("AND")) return left;
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExprKind::kAnd;
    node->offset = left->offset;
    node->children.push_back(std::move(left));
    while (ConsumeKeyword("AND")) {
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<AstExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr child, ParseNot());
      // NOT EXISTS folds into the EXISTS node.
      if (child->kind == AstExprKind::kExists) {
        child->negated = !child->negated;
        return child;
      }
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExprKind::kNot;
      node->offset = child->offset;
      node->children.push_back(std::move(child));
      return node;
    }
    return ParsePredicate();
  }

  Result<AstExprPtr> ParsePredicate() {
    if (PeekKeyword("EXISTS")) {
      auto node = std::make_unique<AstExpr>();
      node->offset = Peek().offset;
      Advance();
      node->kind = AstExprKind::kExists;
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
      UNIQOPT_ASSIGN_OR_RETURN(node->subquery, ParseQuerySpec());
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return node;
    }
    UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr left, ParsePrimary());
    // Comparison?
    for (const auto& [sym, op] :
         {std::pair<const char*, CompareOp>{"=", CompareOp::kEq},
          {"<>", CompareOp::kNe},
          {"<=", CompareOp::kLe},
          {">=", CompareOp::kGe},
          {"<", CompareOp::kLt},
          {">", CompareOp::kGt}}) {
      if (ConsumeSymbol(sym)) {
        auto node = std::make_unique<AstExpr>();
        node->kind = AstExprKind::kCompare;
        node->op = op;
        node->offset = left->offset;
        node->children.push_back(std::move(left));
        UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr rhs, ParsePrimary());
        node->children.push_back(std::move(rhs));
        return node;
      }
    }
    // IS [NOT] NULL.
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      UNIQOPT_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExprKind::kIsNull;
      node->negated = negated;
      node->offset = left->offset;
      node->children.push_back(std::move(left));
      return node;
    }
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("BETWEEN", 1) || PeekKeyword("IN", 1))) {
      Advance();
      negated = true;
    }
    // [NOT] BETWEEN a AND b.
    if (ConsumeKeyword("BETWEEN")) {
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExprKind::kBetween;
      node->negated = negated;
      node->offset = left->offset;
      node->children.push_back(std::move(left));
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr low, ParsePrimary());
      node->children.push_back(std::move(low));
      UNIQOPT_RETURN_NOT_OK(ExpectKeyword("AND"));
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr high, ParsePrimary());
      node->children.push_back(std::move(high));
      return node;
    }
    // [NOT] IN (...).
    if (ConsumeKeyword("IN")) {
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
      if (PeekKeyword("SELECT")) {
        auto node = std::make_unique<AstExpr>();
        node->kind = AstExprKind::kInSubquery;
        node->negated = negated;
        node->offset = left->offset;
        node->children.push_back(std::move(left));
        UNIQOPT_ASSIGN_OR_RETURN(node->subquery, ParseQuerySpec());
        UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExprKind::kInList;
      node->negated = negated;
      node->offset = left->offset;
      node->children.push_back(std::move(left));
      do {
        UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr item, ParsePrimary());
        node->children.push_back(std::move(item));
      } while (ConsumeSymbol(","));
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      return node;
    }
    return left;
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    auto node = std::make_unique<AstExpr>();
    node->offset = t.offset;
    switch (t.type) {
      case TokenType::kInteger:
        node->kind = AstExprKind::kLiteral;
        node->literal = Value::Integer(std::stoll(t.text));
        Advance();
        return node;
      case TokenType::kDouble:
        node->kind = AstExprKind::kLiteral;
        node->literal = Value::Double(std::stod(t.text));
        Advance();
        return node;
      case TokenType::kString:
        node->kind = AstExprKind::kLiteral;
        node->literal = Value::String(t.text);
        Advance();
        return node;
      case TokenType::kHostVar:
        node->kind = AstExprKind::kHostVar;
        node->name = t.text;
        Advance();
        return node;
      case TokenType::kIdentifier: {
        if (t.text == "TRUE" || t.text == "FALSE") {
          node->kind = AstExprKind::kLiteral;
          node->literal = Value::Boolean(t.text == "TRUE");
          Advance();
          return node;
        }
        if (t.text == "NULL") {
          node->kind = AstExprKind::kLiteral;
          node->literal = Value::Null(TypeId::kInteger);
          Advance();
          return node;
        }
        if (ReservedWords().count(t.text) > 0) {
          return ErrorHere("unexpected keyword in expression");
        }
        node->kind = AstExprKind::kColumnRef;
        node->name = Advance().text;
        if (PeekSymbol(".")) {
          Advance();
          node->qualifier = std::move(node->name);
          UNIQOPT_ASSIGN_OR_RETURN(node->name,
                                   ExpectIdentifier("column name"));
        }
        return node;
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
          UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        break;
      default:
        break;
    }
    return ErrorHere("expected expression");
  }

  // -- DML ------------------------------------------------------------------

  /// A DML scalar: ParsePrimary plus a leading unary minus on numeric
  /// literals (queries never needed negatives; `VALUES (-1)` does).
  Result<AstExprPtr> ParseDmlScalar() {
    if (PeekSymbol("-") && (Peek(1).type == TokenType::kInteger ||
                            Peek(1).type == TokenType::kDouble)) {
      size_t offset = Peek().offset;
      Advance();
      const Token& t = Peek();
      auto node = std::make_unique<AstExpr>();
      node->offset = offset;
      node->kind = AstExprKind::kLiteral;
      node->literal = t.type == TokenType::kInteger
                          ? Value::Integer(-std::stoll(t.text))
                          : Value::Double(-std::stod(t.text));
      Advance();
      return node;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    if (PeekSymbol("(")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->columns, ParseColumnNameList());
    }
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    do {
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<AstExprPtr> row;
      do {
        UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr value, ParseDmlScalar());
        row.push_back(std::move(value));
      } while (ConsumeSymbol(","));
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (ConsumeSymbol(","));
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      UNIQOPT_ASSIGN_OR_RETURN(std::string column,
                               ExpectIdentifier("column name"));
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol("="));
      UNIQOPT_ASSIGN_OR_RETURN(AstExprPtr value, ParseDmlScalar());
      stmt->assignments.emplace_back(std::move(column), std::move(value));
    } while (ConsumeSymbol(","));
    if (ConsumeKeyword("WHERE")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    if (ConsumeKeyword("WHERE")) {
      UNIQOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  // -- CREATE UNIQUE INDEX --------------------------------------------------
  Result<std::unique_ptr<CreateIndexStmt>> ParseCreateIndex() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    if (PeekKeyword("INDEX")) {
      return ErrorHere(
          "only CREATE UNIQUE INDEX is supported (a non-unique index "
          "declares nothing the optimizer can exploit)");
    }
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("UNIQUE"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("INDEX"));
    auto stmt = std::make_unique<CreateIndexStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->index_name,
                             ExpectIdentifier("index name"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("ON"));
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    UNIQOPT_ASSIGN_OR_RETURN(stmt->columns, ParseColumnNameList());
    return stmt;
  }

  // -- DROP TABLE -----------------------------------------------------------
  Result<std::unique_ptr<DropTableStmt>> ParseDropTable() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("DROP"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<DropTableStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    return stmt;
  }

  // -- CREATE TABLE ---------------------------------------------------------
  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable() {
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    UNIQOPT_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    UNIQOPT_ASSIGN_OR_RETURN(stmt->table_name,
                             ExpectIdentifier("table name"));
    UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      if (PeekKeyword("PRIMARY")) {
        Advance();
        UNIQOPT_RETURN_NOT_OK(ExpectKeyword("KEY"));
        if (!stmt->primary_key.empty()) {
          return ErrorHere("duplicate PRIMARY KEY clause");
        }
        UNIQOPT_ASSIGN_OR_RETURN(stmt->primary_key, ParseColumnNameList());
        continue;
      }
      if (PeekKeyword("UNIQUE")) {
        Advance();
        UNIQOPT_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                                 ParseColumnNameList());
        stmt->unique_keys.push_back(std::move(cols));
        continue;
      }
      if (PeekKeyword("FOREIGN")) {
        Advance();
        UNIQOPT_RETURN_NOT_OK(ExpectKeyword("KEY"));
        AstForeignKey fk;
        UNIQOPT_ASSIGN_OR_RETURN(fk.columns, ParseColumnNameList());
        UNIQOPT_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
        UNIQOPT_ASSIGN_OR_RETURN(fk.ref_table,
                                 ExpectIdentifier("referenced table"));
        UNIQOPT_ASSIGN_OR_RETURN(fk.ref_columns, ParseColumnNameList());
        stmt->foreign_keys.push_back(std::move(fk));
        continue;
      }
      if (PeekKeyword("CHECK")) {
        Advance();
        UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
        size_t start = Peek().offset;
        AstCheck check;
        UNIQOPT_ASSIGN_OR_RETURN(check.predicate, ParseExpr());
        size_t end = Peek().offset;
        UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
        check.sql_text = std::string(
            StripAsciiWhitespace(sql_.substr(start, end - start)));
        stmt->checks.push_back(std::move(check));
        continue;
      }
      // Column definition.
      AstColumnDef col;
      UNIQOPT_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      UNIQOPT_ASSIGN_OR_RETURN(col.type, ParseType());
      while (true) {
        if (PeekKeyword("NOT") && PeekKeyword("NULL", 1)) {
          Advance();
          Advance();
          col.not_null = true;
          continue;
        }
        // Column-level `REFERENCES T (C)` shorthand.
        if (PeekKeyword("REFERENCES")) {
          Advance();
          AstForeignKey fk;
          fk.columns = {col.name};
          UNIQOPT_ASSIGN_OR_RETURN(fk.ref_table,
                                   ExpectIdentifier("referenced table"));
          UNIQOPT_ASSIGN_OR_RETURN(fk.ref_columns, ParseColumnNameList());
          stmt->foreign_keys.push_back(std::move(fk));
          continue;
        }
        break;
      }
      stmt->columns.push_back(std::move(col));
    } while (ConsumeSymbol(","));
    UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
    return stmt;
  }

  Result<std::vector<std::string>> ParseColumnNameList() {
    UNIQOPT_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> names;
    do {
      UNIQOPT_ASSIGN_OR_RETURN(std::string name,
                               ExpectIdentifier("column name"));
      names.push_back(std::move(name));
    } while (ConsumeSymbol(","));
    UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
    return names;
  }

  Result<TypeId> ParseType() {
    UNIQOPT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
    TypeId type;
    if (name == "INTEGER" || name == "INT" || name == "SMALLINT" ||
        name == "BIGINT") {
      type = TypeId::kInteger;
    } else if (name == "DOUBLE" || name == "FLOAT" || name == "REAL" ||
               name == "DECIMAL" || name == "NUMERIC") {
      type = TypeId::kDouble;
    } else if (name == "VARCHAR" || name == "CHAR" || name == "CHARACTER" ||
               name == "TEXT") {
      type = TypeId::kString;
    } else if (name == "BOOLEAN" || name == "BOOL") {
      type = TypeId::kBoolean;
    } else {
      return ErrorHere("unknown type " + name);
    }
    // Optional length, e.g. VARCHAR(30) — accepted and ignored.
    if (ConsumeSymbol("(")) {
      if (Peek().type != TokenType::kInteger) {
        return ErrorHere("expected type length");
      }
      Advance();
      if (ConsumeSymbol(",")) {
        if (Peek().type != TokenType::kInteger) {
          return ErrorHere("expected type scale");
        }
        Advance();
      }
      UNIQOPT_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    return type;
  }

  std::string_view sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseStatementTop();
}

Result<QueryPtr> ParseQuery(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseQueryTop();
}

Result<AstExprPtr> ParseExpression(std::string_view sql) {
  UNIQOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(sql, std::move(tokens));
  return p.ParseExpressionTop();
}

}  // namespace uniqopt
