// Tests for the near-miss constraint advisor: the minimal missing-fact
// computation on proofs that *just* fail (the supplier schema with its
// primary key dropped), dedup across canonically-equal SQL, the
// AdvisorStore aggregation/metrics, what-if replay against a
// hypothetical catalog (including the verifier auto-check and the
// plan-cache bypass), a concurrent publication hammer for the TSan
// build, and the check.sh smoke sweep (key-projecting query shapes must
// produce suggestions exactly when the key is missing).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/advisor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "uniqopt/uniqopt.h"

namespace uniqopt {
namespace {

/// The canonical near-miss fixture: Figure 1's schema with SUPPLIER's
/// PRIMARY KEY (SNO) dropped, so DISTINCT-on-SNO proofs fail for want of
/// exactly that key.
Status MakeKeyStrippedDatabase(Database* db) {
  SupplierSchemaOptions options;
  options.with_supplier_primary_key = false;
  return CreateSupplierSchema(db, options);
}

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::AdvisorStore::Global().Clear(); }
  void TearDown() override { obs::AdvisorStore::Global().Clear(); }
};

TEST_F(AdvisorTest, GoalWeightsRankDecorrelationHighest) {
  EXPECT_EQ(obs::GoalWeight("theorem2.subquery_to_join"), 4u);
  EXPECT_EQ(obs::GoalWeight("theorem1.distinct"), 3u);
  EXPECT_EQ(obs::GoalWeight("groupby.on_key"), 3u);
  EXPECT_EQ(obs::GoalWeight("theorem3.setop"), 2u);
  EXPECT_EQ(obs::GoalWeight("corollary1.outer"), 2u);
  EXPECT_EQ(obs::GoalWeight("check.implied_predicate"), 1u);
}

TEST_F(AdvisorTest, DroppedKeyIsNamedExactly) {
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);

  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare(
          "SELECT DISTINCT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'"));
  // The proof failed, so DISTINCT survives and the near-miss names the
  // dropped key — not a superset like (SNO, SCITY).
  for (const AppliedRewrite& r : prepared.rewrites) {
    EXPECT_NE(std::string(RewriteRuleIdToString(r.rule)),
              "RemoveRedundantDistinct");
  }
  ASSERT_FALSE(prepared.near_misses.empty());
  const obs::NearMiss& miss = prepared.near_misses[0];
  EXPECT_EQ(miss.table, "SUPPLIER");
  EXPECT_EQ(miss.fact, "UNIQUE (SNO)");
  EXPECT_EQ(miss.goal, "theorem1.distinct");
  EXPECT_EQ(miss.kind, obs::MissingFactKind::kUniqueKey);
  ASSERT_EQ(miss.replay_key_columns.size(), 1u);
  EXPECT_EQ(miss.replay_key_columns[0], "SNO");

  std::vector<obs::AdvisorSuggestion> suggestions =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].table, "SUPPLIER");
  EXPECT_EQ(suggestions[0].fact, "UNIQUE (SNO)");
  EXPECT_EQ(suggestions[0].hits, 1u);
  EXPECT_EQ(suggestions[0].distinct_queries, 1u);
  EXPECT_EQ(suggestions[0].goal_hits.at("theorem1.distinct"), 1u);
  ASSERT_FALSE(suggestions[0].sample_queries.empty());
}

TEST_F(AdvisorTest, FullSchemaKeyProjectionHasNoNearMiss) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Optimizer optimizer(&db);
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare(
          "SELECT DISTINCT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'"));
  bool removed = false;
  for (const AppliedRewrite& r : prepared.rewrites) {
    if (std::string(RewriteRuleIdToString(r.rule)) ==
        "RemoveRedundantDistinct") {
      removed = true;
    }
  }
  EXPECT_TRUE(removed) << prepared.Explain();
  EXPECT_TRUE(prepared.near_misses.empty());
  EXPECT_EQ(obs::AdvisorStore::Global().size(), 0u);
}

TEST_F(AdvisorTest, CanonicallyEqualSqlDedupsToOneDistinctQuery) {
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  // Same canonical shape (literals parameterized), three spellings. The
  // literal variants also defeat the plan cache, so each one re-runs the
  // pipeline and re-records the near-miss.
  const char* variants[] = {
      "SELECT DISTINCT SNO FROM SUPPLIER WHERE SCITY = 'Chicago'",
      "select distinct SNO from SUPPLIER where SCITY = 'Toronto'",
      "SELECT DISTINCT SNO   FROM SUPPLIER  WHERE SCITY = 'New York'",
  };
  for (const char* sql : variants) {
    ASSERT_OK(optimizer.Prepare(sql).status());
  }
  // A different shape against the same missing fact raises
  // distinct_queries.
  ASSERT_OK(
      optimizer.Prepare("SELECT DISTINCT SNO FROM SUPPLIER").status());

  std::vector<obs::AdvisorSuggestion> suggestions =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].fact, "UNIQUE (SNO)");
  EXPECT_EQ(suggestions[0].hits, 4u);
  EXPECT_EQ(suggestions[0].distinct_queries, 2u);
  EXPECT_EQ(suggestions[0].estimated_benefit,
            3u * suggestions[0].distinct_queries);
}

TEST_F(AdvisorTest, SubqueryGuardReportsTheoremTwoNearMiss) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Optimizer optimizer(&db);
  // The inner PARTS block binds SNO (join) and COLOR (constant) but the
  // key (SNO, PNO) still misses PNO, so Theorem 2 cannot decorrelate and
  // the cheapest missing fact is the FD (bound) -> (PNO).
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare(
          "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO IN "
          "(SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')"));
  bool saw_theorem2 = false;
  for (const obs::NearMiss& miss : prepared.near_misses) {
    if (miss.goal == "theorem2.subquery_to_join") {
      saw_theorem2 = true;
      EXPECT_EQ(miss.table, "PARTS");
      EXPECT_EQ(miss.kind, obs::MissingFactKind::kFunctionalDependency);
      EXPECT_NE(miss.fact.find("-> (PNO)"), std::string::npos)
          << miss.fact;
    }
  }
  EXPECT_TRUE(saw_theorem2) << prepared.Explain();
}

TEST_F(AdvisorTest, ImpliedForNonNullPredicateSuggestsNotNull) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Optimizer optimizer(&db);
  // CHECK (SCITY IN (...)) implies SCITY <> 'Paris' — except for NULL.
  // SCITY is nullable, so the predicate survives and the advisor points
  // at the NOT NULL declaration that would finish the proof.
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery prepared,
      optimizer.Prepare(
          "SELECT SNO FROM SUPPLIER WHERE SCITY <> 'Paris'"));
  bool saw_not_null = false;
  for (const obs::NearMiss& miss : prepared.near_misses) {
    if (miss.kind == obs::MissingFactKind::kNotNull) {
      saw_not_null = true;
      EXPECT_EQ(miss.table, "SUPPLIER");
      EXPECT_EQ(miss.fact, "NOT NULL (SCITY)");
      EXPECT_EQ(miss.goal, "check.implied_predicate");
    }
  }
  EXPECT_TRUE(saw_not_null) << prepared.Explain();
}

TEST_F(AdvisorTest, StoreFeedsMetricsAndExports) {
  obs::Counter& near_misses =
      obs::MetricsRegistry::Global().GetCounter("advisor.near_misses");
  uint64_t before = near_misses.value();

  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK(optimizer
                .Prepare("SELECT DISTINCT SNO FROM SUPPLIER "
                         "WHERE SCITY = 'Chicago'")
                .status());

  EXPECT_GE(near_misses.value(), before + 1);
  EXPECT_EQ(static_cast<uint64_t>(obs::MetricsRegistry::Global()
                                      .GetGauge("advisor.suggestions")
                                      .value()),
            obs::AdvisorStore::Global().size());

  std::string text = obs::AdvisorStore::Global().ToText();
  EXPECT_NE(text.find("SUPPLIER: UNIQUE (SNO)"), std::string::npos)
      << text;
  std::string json = obs::AdvisorStore::Global().ToJson();
  Status valid = obs::ValidateJson(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << json;
  EXPECT_NE(json.find("\"fact\": \"UNIQUE (SNO)\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"unique_key\""), std::string::npos);

  obs::AdvisorStore::Global().Clear();
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge("advisor.suggestions")
                .value(),
            0);
  EXPECT_NE(obs::AdvisorStore::Global().ToText().find("no near-misses"),
            std::string::npos);
}

TEST_F(AdvisorTest, DisabledStoreRecordsNothing) {
  obs::AdvisorStore::Global().set_enabled(false);
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK(
      optimizer.Prepare("SELECT DISTINCT SNO FROM SUPPLIER").status());
  EXPECT_EQ(obs::AdvisorStore::Global().size(), 0u);
  obs::AdvisorStore::Global().set_enabled(true);
}

TEST_F(AdvisorTest, ReplayFlipsDistinctRemovalUnderHypotheticalKey) {
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK(optimizer
                .Prepare("SELECT DISTINCT SNO FROM SUPPLIER "
                         "WHERE SCITY = 'Chicago'")
                .status());
  ASSERT_OK(
      optimizer.Prepare("SELECT DISTINCT SNO FROM SUPPLIER").status());

  ASSERT_OK_AND_ASSIGN(
      AdvisorReplayResult replay,
      ReplayAdvisorSuggestions(&db, obs::AdvisorStore::Global(), 1));
  ASSERT_EQ(replay.outcomes.size(), 1u);
  const AdvisorReplayOutcome& outcome = replay.outcomes[0];
  EXPECT_TRUE(outcome.applied) << outcome.error;
  EXPECT_NE(outcome.description.find("UNIQUE (SNO)"), std::string::npos)
      << outcome.description;
  EXPECT_EQ(outcome.queries_replayed, 2u);
  // Under the hypothetical key both shapes drop their DISTINCT, and the
  // independent verifier signs off on every hypothetical plan.
  EXPECT_EQ(outcome.rewrites_flipped, 2u) << replay.ToText();
  EXPECT_EQ(outcome.verifier_violations, 0u) << replay.ToText();

  // The real catalog is untouched: the same prepare still near-misses.
  obs::AdvisorStore::Global().Clear();
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery again,
      optimizer.Prepare("SELECT DISTINCT SNO FROM SUPPLIER"));
  EXPECT_FALSE(again.near_misses.empty());
}

TEST_F(AdvisorTest, ReplayDoesNotCountItself) {
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  ASSERT_OK(
      optimizer.Prepare("SELECT DISTINCT SNO FROM SUPPLIER").status());
  std::vector<obs::AdvisorSuggestion> before =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_EQ(before.size(), 1u);
  ASSERT_OK(
      ReplayAdvisorSuggestions(&db, obs::AdvisorStore::Global(), 4)
          .status());
  std::vector<obs::AdvisorSuggestion> after =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].hits, before[0].hits);
}

// 8 threads publishing near-misses through their own Optimizers into the
// shared global store — the TSan acceptance hammer. Every prepare must
// land exactly one Record, and the aggregate counts must add up.
TEST_F(AdvisorTest, ConcurrentPublicationHammer) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 16;
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));

  const char* cities[] = {"Chicago", "Toronto", "New York", "Ottawa"};
  std::atomic<uint64_t> prepared{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Optimizer optimizer(&db);
      for (int i = 0; i < kIterations; ++i) {
        // Distinct literals defeat the per-optimizer plan cache, so
        // every iteration runs the full pipeline and records.
        std::string sql = "SELECT DISTINCT SNO FROM SUPPLIER WHERE "
                          "SCITY = '" +
                          std::string(cities[(t + i) % 4]) + "-" +
                          std::to_string(t) + "-" + std::to_string(i) +
                          "'";
        auto result = optimizer.Prepare(sql);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_FALSE(result->near_misses.empty());
        prepared.fetch_add(1, std::memory_order_relaxed);
        (void)obs::AdvisorStore::Global().Suggestions();
        (void)obs::AdvisorStore::Global().ToJson();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(prepared.load(), static_cast<uint64_t>(kThreads * kIterations));
  std::vector<obs::AdvisorSuggestion> suggestions =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].fact, "UNIQUE (SNO)");
  EXPECT_EQ(suggestions[0].hits,
            static_cast<uint64_t>(kThreads * kIterations));
  // All literal variants share one parameterized canonical shape.
  EXPECT_EQ(suggestions[0].distinct_queries, 1u);
}

/// Deterministic key-projecting query sweep shared by the smoke tests:
/// single-table DISTINCT projections of each table's declared key with
/// pseudo-random predicates on non-key columns. On an intact schema
/// every one of these proves unique; with SUPPLIER's key stripped, the
/// SUPPLIER shapes near-miss.
std::vector<std::string> KeyProjectingSweep(size_t count) {
  std::mt19937_64 rng(20260809);
  const char* cities[] = {"Chicago", "Toronto", "New York"};
  const char* colors[] = {"RED", "GREEN", "BLUE"};
  const char* agent_cities[] = {"Ottawa", "Hull", "Toronto"};
  std::vector<std::string> sqls;
  for (size_t i = 0; i < count; ++i) {
    switch (rng() % 5) {
      case 0:
        sqls.push_back("SELECT DISTINCT SNO FROM SUPPLIER WHERE SCITY = '" +
                       std::string(cities[rng() % 3]) + "'");
        break;
      case 1:
        sqls.push_back("SELECT DISTINCT SNO FROM SUPPLIER WHERE BUDGET > " +
                       std::to_string(1000 + rng() % 5000));
        break;
      case 2:
        sqls.push_back(
            "SELECT DISTINCT SNO, PNO FROM PARTS WHERE COLOR = '" +
            std::string(colors[rng() % 3]) + "'");
        break;
      case 3:
        sqls.push_back("SELECT DISTINCT ANO FROM AGENTS WHERE ACITY = '" +
                       std::string(agent_cities[rng() % 3]) + "'");
        break;
      default:
        sqls.push_back("SELECT DISTINCT SNO FROM SUPPLIER");
        break;
    }
  }
  return sqls;
}

TEST_F(AdvisorTest, SmokeSweepFindsDroppedKey) {
  Database db;
  ASSERT_OK(MakeKeyStrippedDatabase(&db));
  Optimizer optimizer(&db);
  for (const std::string& sql : KeyProjectingSweep(40)) {
    auto prepared = optimizer.Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql << ": "
                               << prepared.status().ToString();
  }
  std::vector<obs::AdvisorSuggestion> suggestions =
      obs::AdvisorStore::Global().Suggestions();
  ASSERT_GE(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].table, "SUPPLIER");
  EXPECT_EQ(suggestions[0].fact, "UNIQUE (SNO)");
  EXPECT_GE(suggestions[0].distinct_queries, 2u);
}

TEST_F(AdvisorTest, SmokeSweepFullSchemaIsQuiet) {
  Database db;
  ASSERT_OK(CreateSupplierSchema(&db));
  Optimizer optimizer(&db);
  for (const std::string& sql : KeyProjectingSweep(40)) {
    ASSERT_OK_AND_ASSIGN(PreparedQuery prepared, optimizer.Prepare(sql));
    EXPECT_TRUE(prepared.near_misses.empty()) << sql;
  }
  EXPECT_EQ(obs::AdvisorStore::Global().size(), 0u);
}

}  // namespace
}  // namespace uniqopt
