#ifndef UNIQOPT_TXN_DML_H_
#define UNIQOPT_TXN_DML_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "parser/ast.h"
#include "plan/binder.h"
#include "storage/table.h"

namespace uniqopt {
namespace txn {

/// Statement kinds the DML plane executes.
enum class DmlKind { kInsert, kUpdate, kDelete, kCreateIndex };

const char* DmlKindName(DmlKind kind);

/// A bound INSERT: per-row value expressions (literals and host
/// variables only) aligned with `target_ordinals`; unlisted columns
/// receive NULL.
struct BoundInsert {
  Table* table = nullptr;
  std::vector<size_t> target_ordinals;
  std::vector<std::vector<ExprPtr>> rows;
};

/// A bound UPDATE: assignment targets by ordinal, sources evaluated
/// against the OLD row (standard SQL read-before-write semantics), and
/// an optional WHERE predicate over the table's own columns.
struct BoundUpdate {
  Table* table = nullptr;
  std::vector<std::pair<size_t, ExprPtr>> assignments;
  ExprPtr where;  ///< null: all rows
};

/// A bound DELETE.
struct BoundDelete {
  Table* table = nullptr;
  ExprPtr where;  ///< null: all rows
};

/// CREATE UNIQUE INDEX needs no binding beyond name resolution, which
/// Database::CreateUniqueIndex performs under the writer lock.
struct BoundCreateIndex {
  std::string table_name;
  std::string index_name;
  std::vector<std::string> columns;
};

/// One bound DML statement plus its host-variable signature (slot i of
/// the executor's parameter vector supplies host_vars[i], exactly like
/// a prepared query).
struct BoundDml {
  DmlKind kind = DmlKind::kInsert;
  std::unique_ptr<BoundInsert> insert;
  std::unique_ptr<BoundUpdate> update;
  std::unique_ptr<BoundDelete> del;
  std::unique_ptr<BoundCreateIndex> create_index;
  std::vector<HostVariable> host_vars;
};

/// Binds a parsed DML statement against `db`. The statement must be one
/// of insert/update/delete/create_index; queries and table DDL are
/// rejected. WHERE and SET expressions bind against the target table's
/// schema via the shared query binder (so they get the same coercion
/// and tri-valued-logic treatment as query predicates); subqueries and
/// aggregates are rejected there, and INSERT values are restricted to
/// literals and host variables.
Result<BoundDml> BindDml(Database* db, const Statement& stmt);

/// Parses and binds in one step.
Result<BoundDml> BindDmlSql(Database* db, std::string_view sql);

/// True when `sql` starts with an INSERT / UPDATE / DELETE keyword
/// (shell dispatch helper; CREATE UNIQUE INDEX routes through
/// ExecuteDdl with the rest of the CREATE family).
bool IsDmlSql(std::string_view sql);

}  // namespace txn
}  // namespace uniqopt

#endif  // UNIQOPT_TXN_DML_H_
