#ifndef UNIQOPT_STORAGE_TABLE_H_
#define UNIQOPT_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_def.h"
#include "common/result.h"
#include "index/unique_index.h"
#include "types/row.h"

namespace uniqopt {

/// One immutable, committed state of a table: the rows plus one unique
/// hash index per declared key (`indexes[k]` serves `def().keys()[k]`).
/// Versions are published whole — rows and indexes always agree — and
/// shared out as `shared_ptr<const TableVersion>`, so a reader that
/// pins a snapshot keeps reading exactly the state it opened against
/// no matter how many statements commit after it.
struct TableVersion {
  std::vector<Row> rows;
  std::vector<UniqueIndex> indexes;
};

using TableSnapshot = std::shared_ptr<const TableVersion>;

/// An in-memory base table over copy-on-write versions. Inserts
/// enforce, in order: arity and column types, NOT NULL, CHECK
/// constraints (true-interpreted: a row is rejected only when a CHECK
/// evaluates to FALSE — SQL2 semantics), FOREIGN KEYs, and key
/// uniqueness.
///
/// Key uniqueness follows the paper's reading of SQL2 UNIQUE (§2.1):
/// NULL is treated as one special value under the null-equality operator
/// `=!`, so at most one row may carry NULL in a single-column candidate
/// key. This is what makes declared UNIQUE constraints usable as key
/// dependencies in Theorem 1.
///
/// Concurrency contract: any number of readers pin immutable snapshots
/// via Snapshot(); at most one writer per table mutates at a time
/// (serialize statements with writer_mutex()), builds the next version
/// off the current one, and publishes it with CommitVersion() only
/// after every constraint has been checked — a failed statement
/// publishes nothing, which is the atomic-rollback guarantee. rows()
/// remains for single-threaded callers (fixtures, analysis passes) and
/// is NOT safe against a concurrent writer; concurrent readers must go
/// through Snapshot().
class Database;

class Table {
 public:
  explicit Table(const TableDef* def)
      : def_(def), version_(NewVersion(def)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableDef& def() const { return *def_; }

  /// Rows of the current version. Single-threaded use only; the
  /// reference is invalidated by the next committed write.
  const std::vector<Row>& rows() const { return version_->rows; }

  /// Row count of the current version (safe to call concurrently with
  /// writers — reads through a pinned snapshot).
  size_t size() const { return Snapshot()->rows.size(); }

  /// Pins the current committed version.
  TableSnapshot Snapshot() const;

  /// Serializes writers: DML statements and index DDL hold this for
  /// their whole read-modify-publish cycle.
  std::mutex& writer_mutex() const { return writer_mu_; }

  /// Publishes `next` as the current version. The caller must hold
  /// writer_mutex() and must have validated every constraint already —
  /// publication is the commit point.
  void CommitVersion(std::shared_ptr<TableVersion> next);

  Status Insert(Row row);

  /// Convenience for fixtures: insert from values; aborts on arity
  /// mismatch, returns the constraint status.
  Status InsertValues(std::vector<Value> values) {
    return Insert(Row(std::move(values)));
  }

  void Clear();

  /// Attaches the owning database; enables FOREIGN KEY enforcement on
  /// insert (set automatically by Database::CreateTable).
  void SetDatabase(const Database* db) { database_ = db; }
  const Database* database() const { return database_; }

  /// True when a row with this key value (projected in the key's column
  /// order) exists. `key_index` indexes def().keys(). Backed by the
  /// current version's unique index, so the answer tracks every
  /// committed write (the old one-shot key_sets_ went stale under DML).
  bool ContainsKeyValue(size_t key_index, const Row& key_row) const;

  /// Row/type/NOT NULL/CHECK validation for a candidate row. Public so
  /// the DML executor can run the same checks against its pending
  /// version before committing.
  Status Validate(const Row& row) const;

  /// FOREIGN KEY validation for a candidate row against the committed
  /// snapshots of the parent tables.
  Status ValidateForeignKeys(const Row& row) const;

 private:
  static std::shared_ptr<TableVersion> NewVersion(const TableDef* def);

  const TableDef* def_;
  const Database* database_ = nullptr;
  mutable std::mutex version_mu_;  // guards version_ pointer load/store
  mutable std::mutex writer_mu_;   // single writer per table
  std::shared_ptr<TableVersion> version_;
};

struct CreateIndexStmt;

/// A catalog plus its table instances — the "database" the executor and
/// examples run against.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Registers a definition and creates an empty instance.
  Status CreateTable(TableDef def);
  /// Drops the table, its rows and its constraints; bumps the catalog
  /// version (invalidating cached plans that referenced it) and purges
  /// the advisor store of suggestions that referenced the table.
  Status DropTable(const std::string& name);
  /// Parses and runs `CREATE TABLE ...`, `DROP TABLE ...`, or
  /// `CREATE UNIQUE INDEX ...`.
  Status ExecuteDdl(std::string_view sql);

  /// Declares a UNIQUE key named `index_name` over `columns`, validating
  /// every existing row first: a duplicate under `=!` fails with
  /// ConstraintViolation and declares nothing. On success the catalog
  /// version bumps and the new version carries the populated index.
  /// Returns the number of rows validated.
  Result<size_t> CreateUniqueIndex(const std::string& table_name,
                                   const std::string& index_name,
                                   const std::vector<std::string>& columns);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

 private:
  Catalog catalog_;
  std::vector<std::unique_ptr<Table>> tables_;  // parallel to catalog order
};

}  // namespace uniqopt

#endif  // UNIQOPT_STORAGE_TABLE_H_
