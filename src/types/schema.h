#ifndef UNIQOPT_TYPES_SCHEMA_H_
#define UNIQOPT_TYPES_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace uniqopt {

/// A column of an operator's output. `qualifier` is the table name or
/// correlation (alias) the column is reachable under, e.g. "S" in "S.SNO";
/// derived columns may have an empty qualifier.
struct Column {
  std::string qualifier;
  std::string name;
  TypeId type = TypeId::kInteger;
  bool nullable = true;

  /// "Q.NAME" or just "NAME" when unqualified.
  std::string QualifiedName() const;
};

/// An ordered list of columns describing a base table or a derived table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_.at(i); }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Resolves a possibly-qualified column reference, case-insensitively.
  /// Unqualified names that match multiple columns are ambiguous.
  Result<size_t> Resolve(std::string_view qualifier,
                         std::string_view name) const;

  /// Index of the column with exactly this qualifier and name, if any.
  std::optional<size_t> Find(std::string_view qualifier,
                             std::string_view name) const;

  /// Concatenation for the extended Cartesian product.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Schema restricted to `indexes` (column order preserved as given).
  Schema Project(const std::vector<size_t>& indexes) const;

  /// Replaces every qualifier with `alias` (FROM-clause correlation name).
  Schema WithQualifier(std::string_view alias) const;

  /// "(Q.A INTEGER, Q.B VARCHAR NULL)" rendering for diagnostics.
  std::string ToString() const;

  /// True when both schemas have the same column count and pairwise
  /// comparable types (SQL union compatibility, used by INTERSECT/EXCEPT).
  bool UnionCompatible(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace uniqopt

#endif  // UNIQOPT_TYPES_SCHEMA_H_
