#ifndef UNIQOPT_IMS_SEGMENT_H_
#define UNIQOPT_IMS_SEGMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/value.h"

namespace uniqopt {
namespace ims {

/// A field of an IMS segment type.
struct SegmentField {
  std::string name;
  TypeId type = TypeId::kInteger;
};

/// Definition of one segment type in a hierarchical (DL/I) database.
/// `key_field` is the segment's sequence field: twins (occurrences under
/// one parent) are stored in ascending key order, which is what lets a
/// qualified GNP on the key stop early (§6.1's cost argument).
struct SegmentTypeDef {
  std::string name;
  std::vector<SegmentField> fields;
  /// Index of the sequence (key) field within `fields`; -1 for none.
  int key_field = -1;
  /// Parent segment type name; empty for the root.
  std::string parent;

  Result<size_t> FieldIndex(const std::string& field_name) const;
};

/// The hierarchy definition (the paper's Figure 2: SUPPLIER root with
/// PARTS and AGENTS children). One root type; children are key-sequenced
/// under their parent.
class ImsDatabaseDef {
 public:
  /// Adds a segment type. The first added type is the root and must have
  /// an empty `parent`; later types must name an existing parent.
  Status AddSegmentType(SegmentTypeDef def);

  Result<const SegmentTypeDef*> GetType(const std::string& name) const;
  /// Position of `name` in definition order (segment type ordinal).
  Result<size_t> TypeOrdinal(const std::string& name) const;

  const std::vector<SegmentTypeDef>& types() const { return types_; }
  const SegmentTypeDef& root() const { return types_.front(); }

 private:
  std::vector<SegmentTypeDef> types_;
};

/// A stored segment occurrence. Pointers realize HIDAM's
/// parent-child/twin organization: each segment knows its first child of
/// each child type and its next twin under the same parent.
struct Segment {
  const SegmentTypeDef* type = nullptr;
  Row fields;
  Segment* parent = nullptr;
  /// Next occurrence of the same type under the same parent (twin
  /// pointer), in ascending key order.
  Segment* next_twin = nullptr;
  /// First child per child-type ordinal (indexed by database-wide type
  /// ordinal; nullptr when none).
  std::vector<Segment*> first_child;

  const Value& KeyValue() const { return fields[type->key_field]; }
};

}  // namespace ims
}  // namespace uniqopt

#endif  // UNIQOPT_IMS_SEGMENT_H_
