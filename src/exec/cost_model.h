#ifndef UNIQOPT_EXEC_COST_MODEL_H_
#define UNIQOPT_EXEC_COST_MODEL_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/planner.h"
#include "plan/plan.h"
#include "storage/table.h"

namespace uniqopt {

/// The paper's §5 stops at "the optimizer ... can then choose the most
/// appropriate strategy on the basis of its cost model". This module
/// supplies that cost model: cardinality estimation from live table
/// statistics (row counts, per-column distinct counts) and a work-unit
/// cost for a logical plan lowered under given PhysicalOptions,
/// mirroring the planner's operator choices.
///
/// Costs are abstract units (≈ one row touched); only *comparisons*
/// between alternatives are meaningful.
struct PlanEstimate {
  double rows = 0;  ///< estimated output cardinality
  double cost = 0;  ///< estimated total work
};

class CostEstimator {
 public:
  explicit CostEstimator(const Database* db) : db_(db) {}

  /// Estimated output cardinality of a logical plan.
  double EstimateRows(const PlanPtr& plan) const;

  /// Estimated execution cost of `plan` when lowered with `options`.
  PlanEstimate Estimate(const PlanPtr& plan,
                        const PhysicalOptions& options) const;

  /// Number of distinct (under `=!`) values in a base-table column,
  /// computed on first use and cached.
  double DistinctCount(const std::string& table, size_t column) const;

 private:
  PlanEstimate EstimateNode(const PlanPtr& plan,
                            const PhysicalOptions& options) const;
  /// Selectivity of a predicate over `plan`'s output (heuristic:
  /// equality via distinct counts, ranges 1/3, conjunction multiplies,
  /// disjunction adds).
  double Selectivity(const ExprPtr& predicate, const PlanPtr& input) const;
  double AtomSelectivity(const ExprPtr& atom, const PlanPtr& input) const;
  /// Distinct count of a column of an arbitrary plan's output (resolves
  /// through to base tables where possible; falls back to input
  /// cardinality).
  double ColumnDistinct(const PlanPtr& plan, size_t column) const;

  const Database* db_;
  /// One estimator may be shared by concurrent preparations (the
  /// optimizer's PrepareBatch costs plans from worker threads), and
  /// DistinctCount fills this cache from const methods — every access
  /// goes through the mutex.
  mutable std::mutex ndv_mu_;
  mutable std::map<std::pair<std::string, size_t>, double> ndv_cache_;
};

/// A physical alternative considered by the chooser.
struct PlanAlternative {
  PlanPtr plan;
  PhysicalOptions physical;
  std::string label;
  PlanEstimate estimate;
};

/// Costs every (plan, physical-options) candidate and returns the index
/// of the cheapest. `alternatives` gains filled-in estimates.
size_t ChooseBestAlternative(const CostEstimator& estimator,
                             std::vector<PlanAlternative>* alternatives);

/// Builds the standard candidate set for a query: the original and the
/// rewritten plan, each under hash and nested-loop/sort strategies
/// (and, for set operations, the sort-merge variant). With dop > 1, a
/// parallel-at-dop hash variant of each plan joins the pool and
/// competes under the parallel lowering cost.
std::vector<PlanAlternative> StandardAlternatives(const PlanPtr& original,
                                                  const PlanPtr& rewritten,
                                                  unsigned dop = 1);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_COST_MODEL_H_
