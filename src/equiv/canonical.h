#ifndef UNIQOPT_EQUIV_CANONICAL_H_
#define UNIQOPT_EQUIV_CANONICAL_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "plan/plan.h"

namespace uniqopt {
namespace equiv {

/// Canonical rendering of a bound expression: commutative operands are
/// ordered, nested AND/OR chains are flattened and sorted, comparisons
/// are oriented so the textually smaller operand comes first (flipping
/// the operator where needed), and columns render positionally (`#i`) so
/// two structurally identical predicates over differently named columns
/// still canonicalize alike. Two expressions are equivalent modulo
/// conjunct/disjunct order and comparison orientation iff their
/// canonical texts match.
std::string CanonicalExprText(const ExprPtr& expr);

/// Flattens `predicate` into its conjunct set, drops TRUE literals, and
/// returns the sorted canonical texts. The *set* view of a σ predicate:
/// equal sets ⇒ equivalent filters.
std::vector<std::string> CanonicalConjunctSet(const ExprPtr& predicate);

/// Canonical rendering of a plan subtree: every predicate is replaced by
/// its canonical conjunct set, every projection/grouping map renders
/// positionally. Matching texts ⇒ the two subtrees are the same algebra
/// term modulo predicate order.
std::string CanonicalPlanText(const PlanPtr& plan);

/// Pointer equality or matching canonical text.
bool CanonicallyEqualPlans(const PlanPtr& a, const PlanPtr& b);
bool CanonicallyEqualExprs(const ExprPtr& a, const ExprPtr& b);

}  // namespace equiv
}  // namespace uniqopt

#endif  // UNIQOPT_EQUIV_CANONICAL_H_
