#ifndef UNIQOPT_EXPR_EQUALITY_H_
#define UNIQOPT_EXPR_EQUALITY_H_

#include <optional>
#include <vector>

#include "expr/expr.h"

namespace uniqopt {

/// Classification of an atomic condition per §4 of the paper:
///  - Type 1: `v = c` — a column equated to a constant or host variable
///    (host variables are constant for the duration of one execution);
///  - Type 2: `v1 = v2` — two columns equated;
///  - Other: everything else (ranges, inequalities, IS NULL, ...).
enum class AtomType { kType1ColumnConstant, kType2ColumnColumn, kOther };

/// Decomposed view of an atomic equality condition.
struct EqualityAtom {
  AtomType type = AtomType::kOther;
  /// Type 1 and Type 2: the (left) column index.
  size_t column = 0;
  /// Type 2 only: the other column index.
  size_t other_column = 0;
  /// Type 1 with a literal: the constant.
  std::optional<Value> constant;
  /// Type 1 with a host variable: its parameter slot.
  std::optional<size_t> host_var;
};

/// Classifies a single atom. Handles both operand orders (`c = v` is
/// normalized to `v = c`). Non-equality comparisons and boolean structure
/// classify as kOther.
EqualityAtom ClassifyAtom(const ExprPtr& atom);

/// True if `expr` is a single atomic condition (no AND/OR/NOT structure).
bool IsAtom(const ExprPtr& expr);

/// Extracts all Type 1 / Type 2 atoms from a conjunction of atoms.
/// Atoms that are not equalities are reported via `*has_other`.
std::vector<EqualityAtom> ExtractEqualities(const ExprPtr& conjunction,
                                            bool* has_other);

}  // namespace uniqopt

#endif  // UNIQOPT_EXPR_EQUALITY_H_
