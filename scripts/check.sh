#!/usr/bin/env bash
# Repo verification: the tier-1 test suite, plus an ASan/UBSan build of
# the observability tests (the registry and tracer are the only
# lock-free-concurrent code in the tree — sanitize them every time).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== sanitizers: ASan/UBSan build of obs + analysis tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-asan -j --target obs_test analysis_test
./build-asan/tests/obs_test
./build-asan/tests/analysis_test

echo "== all checks passed =="
