file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_facade.dir/optimizer.cc.o"
  "CMakeFiles/uniqopt_facade.dir/optimizer.cc.o.d"
  "libuniqopt_facade.a"
  "libuniqopt_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
