#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace uniqopt {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::ParseError("bad token");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad token");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, EqualityAndStreaming) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kBindError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kConstraintViolation,
        StatusCode::kTypeMismatch, StatusCode::kUnsupported,
        StatusCode::kLimitExceeded, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("gone");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  UNIQOPT_ASSIGN_OR_RETURN(int h, Half(x));
  UNIQOPT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToUpperAscii("select Sno"), "SELECT SNO");
  EXPECT_EQ(ToLowerAscii("SELECT"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("SnO", "sno"));
  EXPECT_FALSE(EqualsIgnoreCase("SNO", "SN"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, JoinSplitStrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

}  // namespace
}  // namespace uniqopt
