file(REMOVE_RECURSE
  "CMakeFiles/bench_subquery_to_join.dir/bench_subquery_to_join.cc.o"
  "CMakeFiles/bench_subquery_to_join.dir/bench_subquery_to_join.cc.o.d"
  "bench_subquery_to_join"
  "bench_subquery_to_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subquery_to_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
