#ifndef UNIQOPT_COMMON_LOGGING_H_
#define UNIQOPT_COMMON_LOGGING_H_

#include <sstream>

namespace uniqopt {

/// Severity levels, ordered. The emission threshold is read once from the
/// UNIQOPT_LOG_LEVEL environment variable ("debug", "info", "warning",
/// "error" or a number 0-3); default is kWarning so library internals stay
/// quiet unless asked. kFatal always emits and aborts the process.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelName(LogLevel level);

/// The effective threshold (cached after the first call).
LogLevel LogThreshold();

inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(LogThreshold());
}

/// One log statement: accumulates a message and flushes it to stderr on
/// destruction (end of the full expression). A kFatal message aborts
/// after flushing — this is the DCHECK failure path.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled (glog's
/// voidify idiom: `&` binds looser than `<<`).
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

/// Leveled stream logging:
///   UNIQOPT_LOG(kWarning) << "unexpected state: " << x;
/// The message expression is not evaluated when the level is disabled.
#define UNIQOPT_LOG(severity)                                               \
  !::uniqopt::LogLevelEnabled(::uniqopt::LogLevel::severity)                \
      ? (void)0                                                             \
      : ::uniqopt::LogMessageVoidify() &                                    \
            ::uniqopt::LogMessage(::uniqopt::LogLevel::severity, __FILE__,  \
                                  __LINE__)                                 \
                .stream()

/// Internal-invariant check. Unlike assert(), stays on in release builds:
/// the analyzer must never silently return a wrong uniqueness verdict.
/// Routed through the leveled logger; kFatal keeps the abort semantics.
#define UNIQOPT_DCHECK(condition)                                           \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::uniqopt::LogMessage(::uniqopt::LogLevel::kFatal, __FILE__,          \
                            __LINE__)                                       \
              .stream()                                                     \
          << "UNIQOPT_DCHECK failed: " #condition;                          \
    }                                                                       \
  } while (false)

#define UNIQOPT_DCHECK_MSG(condition, msg)                                  \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::uniqopt::LogMessage(::uniqopt::LogLevel::kFatal, __FILE__,          \
                            __LINE__)                                       \
              .stream()                                                     \
          << "UNIQOPT_DCHECK failed: " #condition << " (" << (msg) << ")";  \
    }                                                                       \
  } while (false)

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_LOGGING_H_
