#ifndef UNIQOPT_OBS_ADVISOR_H_
#define UNIQOPT_OBS_ADVISOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace uniqopt {
namespace obs {

/// Kind of the minimal missing fact a near-miss computed: the smallest
/// declaration that would have completed Algorithm 1's closure test (or
/// one of its Theorem 2/3 cousins) for one table.
enum class MissingFactKind {
  /// A candidate-key declaration (UNIQUE / PRIMARY KEY) over the listed
  /// columns would cover the table.
  kUniqueKey,
  /// The closure reached a determinant B but a declared key K still has
  /// K \ B missing; an FD B -> K\B would close the gap. SQL has no FD
  /// DDL, so replay actualizes it as UNIQUE over B (strictly stronger,
  /// therefore still sound).
  kFunctionalDependency,
  /// A NOT NULL declaration would upgrade an implied-for-non-null
  /// predicate proof to a full implication.
  kNotNull,
};

const char* MissingFactKindName(MissingFactKind kind);

/// One failed uniqueness-proof attempt, with the minimal missing fact
/// that would have flipped it. Produced in the analysis layer, harvested
/// by the rewriter's gating verdicts, published by Optimizer::Prepare.
struct NearMiss {
  /// Which proof goal failed: "theorem1.distinct",
  /// "theorem2.subquery_to_join", "theorem3.setop", "corollary1.outer",
  /// "groupby.on_key", or "check.implied_predicate".
  std::string goal;
  /// Base table the missing fact belongs to.
  std::string table;
  /// FROM-clause alias of that table in the failing query.
  std::string alias;
  MissingFactKind kind = MissingFactKind::kUniqueKey;
  /// Display form of the fact, e.g. "UNIQUE (SNO)",
  /// "FD (SNO, SCITY) -> (PNO)", "NOT NULL (COLOR)".
  std::string fact;
  /// Bare column names of `table` over which a UNIQUE constraint would
  /// actualize the fact during what-if replay (for kNotNull this is the
  /// single column to mark NOT NULL instead).
  std::vector<std::string> replay_key_columns;
  /// Display form of the bound-column set B restricted to `table` at the
  /// moment the proof failed (diagnostic context).
  std::string bound_columns;

  /// "table: fact (goal)" one-liner for traces and the flight recorder.
  std::string ToString() const;
};

/// Aggregated view of one (table, fact) advisor entry.
struct AdvisorSuggestion {
  std::string table;
  MissingFactKind kind = MissingFactKind::kUniqueKey;
  std::string fact;
  std::vector<std::string> replay_key_columns;
  /// Near-miss hits per proof goal.
  std::map<std::string, uint64_t> goal_hits;
  /// Total near-miss hits.
  uint64_t hits = 0;
  /// Number of distinct canonical query fingerprints that hit this fact.
  uint64_t distinct_queries = 0;
  /// max goal weight x distinct_queries; used to rank suggestions.
  uint64_t estimated_benefit = 0;
  /// Up to 8 canonical SQL samples (one per distinct fingerprint).
  std::vector<std::string> sample_queries;
};

/// Relative payoff of flipping a proof goal (prefix-matched):
/// theorem2 (subquery decorrelation) 4, theorem1/groupby 3,
/// theorem3/corollary 2, anything else 1.
uint64_t GoalWeight(const std::string& goal);

/// Thread-safe aggregation of near-misses keyed by (table, fact).
/// The process-wide instance backs the `advisor.near_misses` counter,
/// the `advisor.suggestions` gauge, the `\advisor` shell command and the
/// GET /advisor HTTP route.
class AdvisorStore {
 public:
  static AdvisorStore& Global();

  /// When disabled, Record() is a no-op (the bench advisor-off path).
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Folds one near-miss into the store. `fingerprint` is the canonical
  /// shape fingerprint of the originating query (catalog-version
  /// independent, literals parameterized) so canonically-equal SQL
  /// dedups into one distinct-query count; `canonical_sql` is the
  /// re-preparable canonical text kept as a replay sample.
  void Record(const NearMiss& miss, uint64_t fingerprint,
              const std::string& canonical_sql);

  /// Suggestions sorted by estimated benefit (desc), then hits, then
  /// table/fact for determinism.
  std::vector<AdvisorSuggestion> Suggestions() const;

  void Clear();

  /// Drops every suggestion for `table` (exact, case-sensitive — tables
  /// are recorded under their catalog-canonical upper-cased names).
  /// Called by Database::DropTable so `\advisor replay`/`adopt` never
  /// reference a table that no longer exists.
  void PurgeTable(const std::string& table);

  size_t size() const;

  /// Human-readable table for the `\advisor` shell command.
  std::string ToText() const;
  /// {"suggestions": [...]} JSON document (GET /advisor, \export
  /// advisor).
  std::string ToJson() const;

 private:
  struct Entry {
    MissingFactKind kind = MissingFactKind::kUniqueKey;
    std::vector<std::string> replay_key_columns;
    std::map<std::string, uint64_t> goal_hits;
    uint64_t hits = 0;
    std::set<uint64_t> fingerprints;
    std::vector<std::string> sample_queries;
  };

  mutable std::mutex mu_;
  bool enabled_ = true;
  /// Keyed by table + '\0' + fact.
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace uniqopt

#endif  // UNIQOPT_OBS_ADVISOR_H_
