file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_types.dir/row.cc.o"
  "CMakeFiles/uniqopt_types.dir/row.cc.o.d"
  "CMakeFiles/uniqopt_types.dir/schema.cc.o"
  "CMakeFiles/uniqopt_types.dir/schema.cc.o.d"
  "CMakeFiles/uniqopt_types.dir/value.cc.o"
  "CMakeFiles/uniqopt_types.dir/value.cc.o.d"
  "libuniqopt_types.a"
  "libuniqopt_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
