#include "equiv/symbolic.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "equiv/canonical.h"
#include "types/row.h"
#include "types/tribool.h"

namespace uniqopt {
namespace equiv {
namespace {

void CollectConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out) {
  if (predicate->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : predicate->children()) CollectConjuncts(c, out);
    return;
  }
  if (predicate->IsTrueLiteral()) return;
  out->push_back(predicate);
}

bool DecomposeInto(const PlanPtr& plan, size_t offset, SymbolicSpec* spec) {
  switch (plan->kind()) {
    case PlanKind::kGet:
      spec->tables.push_back({As<GetNode>(plan), offset});
      return true;
    case PlanKind::kSelect: {
      const auto* sel = As<SelectNode>(plan);
      if (!DecomposeInto(sel->input(), offset, spec)) return false;
      ExprPtr pred = offset == 0 ? sel->predicate()
                                 : ShiftColumns(sel->predicate(), offset);
      CollectConjuncts(pred, &spec->conjuncts);
      return true;
    }
    case PlanKind::kProduct: {
      const auto* prod = As<ProductNode>(plan);
      if (!DecomposeInto(prod->left(), offset, spec)) return false;
      return DecomposeInto(prod->right(),
                           offset + prod->left()->schema().num_columns(),
                           spec);
    }
    case PlanKind::kExists:
      // A semi/anti-join filter: its rows are a sub-multiset of the outer
      // input, which is sound for the proving direction (filters only
      // shrink) but blocks the refutation chase.
      spec->has_exists_filter = true;
      return DecomposeInto(As<ExistsNode>(plan)->outer(), offset, spec);
    case PlanKind::kProject:
    case PlanKind::kSetOp:
    case PlanKind::kAggregate:
      return false;
  }
  return false;
}

/// Distinct column indexes referenced by `e`, sorted.
std::vector<size_t> ReferencedColumns(const ExprPtr& e) {
  std::vector<size_t> cols;
  e->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

/// Union-find over block columns.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Unite(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// A predicate known to reference exactly one column of its frame.
struct SinglePred {
  ExprPtr pred;
  size_t col = 0;     ///< Column index within the predicate's own frame.
  size_t width = 0;   ///< Frame width.
  bool require_true = false;  ///< σ conjunct (TRUE) vs CHECK (not FALSE).
};

Tribool EvalAt(const SinglePred& p, const Value& v) {
  std::vector<Value> cells(p.width);
  cells[p.col] = v;
  Row row(std::move(cells));
  return p.pred->EvaluatePredicate(row, /*params=*/{});
}

bool Passes(const std::vector<SinglePred>& preds, const Value& v) {
  for (const SinglePred& p : preds) {
    Tribool t = EvalAt(p, v);
    if (p.require_true ? !FalseInterpreted(t) : !TrueInterpreted(t)) {
      return false;
    }
  }
  return true;
}

void CollectLiterals(const ExprPtr& e, std::vector<Value>* out) {
  if (e->kind() == ExprKind::kLiteral) {
    if (!e->literal().is_null()) out->push_back(e->literal());
    return;
  }
  for (const ExprPtr& c : e->children()) CollectLiterals(c, out);
}

/// Test-point candidates for a column of type `t`: every constant the
/// governing predicates mention, its integer neighbours (interval
/// boundaries), and type sentinels covering the unconstrained regions.
/// Exact for single-column interval/equality predicates over integers.
std::vector<Value> Candidates(TypeId t, const std::vector<SinglePred>& a,
                              const std::vector<SinglePred>& b) {
  std::vector<Value> consts;
  for (const SinglePred& p : a) CollectLiterals(p.pred, &consts);
  for (const SinglePred& p : b) CollectLiterals(p.pred, &consts);
  std::vector<Value> out;
  switch (t) {
    case TypeId::kBoolean:
      out.push_back(Value::Boolean(false));
      out.push_back(Value::Boolean(true));
      break;
    case TypeId::kInteger: {
      std::set<int64_t> points = {0, 1, (int64_t{1} << 40)};
      for (const Value& v : consts) {
        if (v.type() == TypeId::kInteger) {
          int64_t c = v.AsInteger();
          points.insert(c - 1);
          points.insert(c);
          points.insert(c + 1);
        } else if (v.type() == TypeId::kDouble) {
          auto c = static_cast<int64_t>(v.AsDouble());
          points.insert(c - 1);
          points.insert(c);
          points.insert(c + 1);
        }
      }
      for (int64_t p : points) out.push_back(Value::Integer(p));
      break;
    }
    case TypeId::kDouble: {
      std::set<double> points = {0.0, 1.0, 1e18};
      for (const Value& v : consts) {
        if (v.type() == TypeId::kDouble || v.type() == TypeId::kInteger) {
          double c = v.AsNumeric();
          points.insert(c - 1.0);
          points.insert(c);
          points.insert(c + 1.0);
        }
      }
      for (double p : points) out.push_back(Value::Double(p));
      break;
    }
    case TypeId::kString: {
      std::string fresh = "~";
      for (const Value& v : consts) {
        if (v.type() != TypeId::kString) continue;
        out.push_back(v);
        if (v.AsString().size() >= fresh.size()) fresh = v.AsString() + "~";
      }
      out.push_back(Value::String(fresh));
      out.push_back(Value::String(fresh + "~"));
      break;
    }
  }
  return out;
}

/// True when every comparison in `e` is =/<> — the shapes for which the
/// fresh-value candidates cover the complement region exactly.
bool OnlyEqualityComparisons(const ExprPtr& e) {
  if (e->kind() == ExprKind::kComparison &&
      e->compare_op() != CompareOp::kEq && e->compare_op() != CompareOp::kNe) {
    return false;
  }
  for (const ExprPtr& c : e->children()) {
    if (!OnlyEqualityComparisons(c)) return false;
  }
  return true;
}

/// Integers and booleans are exact (interval boundaries are enumerable
/// test points); strings and doubles only under pure (in)equality.
bool ExactTestPoints(TypeId t, const SinglePred& pred,
                     const std::vector<SinglePred>& checks) {
  if (t == TypeId::kInteger || t == TypeId::kBoolean) return true;
  if (!OnlyEqualityComparisons(pred.pred)) return false;
  for (const SinglePred& c : checks) {
    if (!OnlyEqualityComparisons(c.pred)) return false;
  }
  return true;
}

std::vector<SinglePred> SingleColumnChecks(const TableDef& table,
                                           size_t ordinal) {
  size_t tw = table.schema().num_columns();
  std::vector<SinglePred> checks;
  for (const CheckConstraint& check : table.checks()) {
    std::vector<size_t> cols = ReferencedColumns(check.predicate);
    if (cols.size() == 1 && cols[0] == ordinal) {
      checks.push_back({check.predicate, ordinal, tw, false});
    }
  }
  return checks;
}

}  // namespace

TestPointResult CheckImpliesPredicate(const TableDef& table, size_t ordinal,
                                      const ExprPtr& pred, size_t frame_col,
                                      size_t frame_width) {
  if (pred->MaxHostVarIndexPlusOne() > 0) return TestPointResult::kUndecided;
  std::vector<SinglePred> checks = SingleColumnChecks(table, ordinal);
  if (checks.empty()) return TestPointResult::kUndecided;
  SinglePred p{pred, frame_col, frame_width, true};
  TypeId t = table.schema().column(ordinal).type;
  for (const Value& v : Candidates(t, {p}, checks)) {
    if (!Passes(checks, v)) continue;  // not storable
    if (!FalseInterpreted(EvalAt(p, v))) return TestPointResult::kFails;
  }
  return ExactTestPoints(t, p, checks) ? TestPointResult::kHolds
                                       : TestPointResult::kUndecided;
}

TestPointResult CheckExcludesPredicate(const TableDef& table, size_t ordinal,
                                       const ExprPtr& pred, size_t frame_col,
                                       size_t frame_width, bool nullable) {
  if (pred->MaxHostVarIndexPlusOne() > 0) return TestPointResult::kUndecided;
  std::vector<SinglePred> checks = SingleColumnChecks(table, ordinal);
  SinglePred p{pred, frame_col, frame_width, true};
  TypeId t = table.schema().column(ordinal).type;
  if (nullable && FalseInterpreted(EvalAt(p, Value::Null(t)))) {
    return TestPointResult::kFails;
  }
  for (const Value& v : Candidates(t, {p}, checks)) {
    if (!Passes(checks, v)) continue;
    if (FalseInterpreted(EvalAt(p, v))) return TestPointResult::kFails;
  }
  return ExactTestPoints(t, p, checks) ? TestPointResult::kHolds
                                       : TestPointResult::kUndecided;
}

bool DecomposeBlock(const PlanPtr& plan, SymbolicSpec* spec) {
  spec->width = plan->schema().num_columns();
  return DecomposeInto(plan, 0, spec);
}

bool DecomposeProjection(const PlanPtr& plan, SymbolicSpec* spec) {
  const auto* proj = As<ProjectNode>(plan);
  if (proj == nullptr) return false;
  spec->columns = proj->columns();
  spec->mode = proj->mode();
  return DecomposeBlock(proj->input(), spec);
}

std::optional<EqualityAtom> ClassifyEqualityAtom(const ExprPtr& expr) {
  if (expr->kind() != ExprKind::kComparison ||
      expr->compare_op() != CompareOp::kEq) {
    return std::nullopt;
  }
  const ExprPtr& l = expr->child(0);
  const ExprPtr& r = expr->child(1);
  auto is_value = [](const ExprPtr& e) {
    return e->kind() == ExprKind::kHostVar ||
           (e->kind() == ExprKind::kLiteral && !e->literal().is_null());
  };
  EqualityAtom atom;
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kColumnRef) {
    atom.column_pair = true;
    atom.left = l->column_index();
    atom.right = r->column_index();
    return atom;
  }
  if (l->kind() == ExprKind::kColumnRef && is_value(r)) {
    atom.left = l->column_index();
    atom.bound_value = r;
    return atom;
  }
  if (r->kind() == ExprKind::kColumnRef && is_value(l)) {
    atom.left = r->column_index();
    atom.bound_value = l;
    return atom;
  }
  return std::nullopt;
}

std::vector<char> CloseOverEqualities(const SymbolicSpec& spec,
                                      std::vector<char> bound) {
  bound.resize(spec.width, 0);
  std::vector<EqualityAtom> atoms;
  for (const ExprPtr& c : spec.conjuncts) {
    if (auto atom = ClassifyEqualityAtom(c)) atoms.push_back(*atom);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EqualityAtom& atom : atoms) {
      if (!atom.column_pair) {
        if (!bound[atom.left]) {
          bound[atom.left] = 1;
          changed = true;
        }
        continue;
      }
      if (bound[atom.left] && !bound[atom.right]) {
        bound[atom.right] = 1;
        changed = true;
      } else if (bound[atom.right] && !bound[atom.left]) {
        bound[atom.left] = 1;
        changed = true;
      }
    }
  }
  return bound;
}

bool AllKeysCovered(const SymbolicSpec& spec, const std::vector<char>& bound,
                    size_t* first_uncovered) {
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    const SymbolicTable& t = spec.tables[ti];
    bool covered = false;
    for (const KeyConstraint& key : t.get->table().keys()) {
      bool all = true;
      for (size_t kc : key.columns) {
        if (t.offset + kc >= bound.size() || !bound[t.offset + kc]) {
          all = false;
          break;
        }
      }
      if (all) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      if (first_uncovered != nullptr) *first_uncovered = ti;
      return false;
    }
  }
  return true;
}

bool SymbolicallyDuplicateFree(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kGet:
      return As<GetNode>(plan)->table().HasAnyKey();
    case PlanKind::kSelect:
      return SymbolicallyDuplicateFree(As<SelectNode>(plan)->input());
    case PlanKind::kProject: {
      const auto* proj = As<ProjectNode>(plan);
      if (proj->mode() == DuplicateMode::kDist) return true;
      SymbolicSpec spec;
      if (!DecomposeProjection(plan, &spec)) return false;
      std::vector<char> bound(spec.width, 0);
      for (size_t c : spec.columns) {
        if (c < spec.width) bound[c] = 1;
      }
      bound = CloseOverEqualities(spec, std::move(bound));
      return AllKeysCovered(spec, bound, nullptr);
    }
    case PlanKind::kProduct: {
      const auto* prod = As<ProductNode>(plan);
      return SymbolicallyDuplicateFree(prod->left()) &&
             SymbolicallyDuplicateFree(prod->right());
    }
    case PlanKind::kExists:
      // Semi/anti-join output is a sub-multiset of the outer input.
      return SymbolicallyDuplicateFree(As<ExistsNode>(plan)->outer());
    case PlanKind::kSetOp: {
      const auto* setop = As<SetOpNode>(plan);
      if (setop->mode() == DuplicateMode::kDist) return true;
      if (setop->op() == SetOpAlgebra::kIntersect) {
        // min(l, r) multiplicity is bounded by either operand.
        return SymbolicallyDuplicateFree(setop->left()) ||
               SymbolicallyDuplicateFree(setop->right());
      }
      return SymbolicallyDuplicateFree(setop->left());
    }
    case PlanKind::kAggregate:
      return true;  // Group columns are a derived key of the output.
  }
  return false;
}

std::optional<std::string> BuildDuplicateWitness(const WitnessRequest& req,
                                                 std::string* blocked_reason) {
  const SymbolicSpec& spec = *req.spec;
  const Schema& frame = *req.frame;
  auto blocked = [&](std::string why) -> std::optional<std::string> {
    if (blocked_reason != nullptr) *blocked_reason = std::move(why);
    return std::nullopt;
  };
  if (spec.has_exists_filter) {
    return blocked("an EXISTS filter restricts the block beyond the chase");
  }
  if (req.uncovered_table >= spec.tables.size()) {
    return blocked("no uncovered table to chase");
  }

  // -- Classify every conjunct: equality atoms feed the union-find,
  //    anything else must be a host-var-free single-column predicate.
  Dsu dsu(spec.width);
  std::vector<std::vector<SinglePred>> singles(spec.width);
  std::vector<std::vector<SinglePred>> checks(spec.width);
  std::vector<char> referenced(spec.width, 0);
  std::vector<std::pair<ExprPtr, size_t>> pin_exprs;  // literal, column
  std::vector<char> hostvar_eq(spec.width, 0);
  for (const ExprPtr& c : spec.conjuncts) {
    if (auto atom = ClassifyEqualityAtom(c)) {
      if (atom->column_pair) {
        dsu.Unite(atom->left, atom->right);
        referenced[atom->left] = 1;
        referenced[atom->right] = 1;
      } else {
        referenced[atom->left] = 1;
        if (atom->bound_value->kind() == ExprKind::kLiteral) {
          pin_exprs.emplace_back(atom->bound_value, atom->left);
        } else {
          hostvar_eq[atom->left] = 1;
        }
      }
      continue;
    }
    std::vector<size_t> cols = ReferencedColumns(c);
    if (cols.empty()) {
      Tribool t = c->EvaluatePredicate(Row(), /*params=*/{});
      if (!FalseInterpreted(t)) {
        return blocked("constant conjunct is not TRUE: " +
                       CanonicalExprText(c));
      }
      continue;
    }
    if (cols.size() > 1) {
      return blocked("conjunct beyond Type 1/Type 2 spans columns: " +
                     CanonicalExprText(c));
    }
    if (c->MaxHostVarIndexPlusOne() > 0) {
      return blocked("host variable in a non-equality conjunct: " +
                     CanonicalExprText(c));
    }
    referenced[cols[0]] = 1;
    singles[cols[0]].push_back({c, cols[0], spec.width, true});
  }

  // -- Constant pins per equivalence class (conflicts ⇒ empty result,
  //    under which the two sides trivially agree — refuse to refute).
  std::vector<std::optional<Value>> pin(spec.width);
  for (const auto& [lit, col] : pin_exprs) {
    size_t root = dsu.Find(col);
    if (pin[root].has_value() &&
        !pin[root]->NullSafeEquals(lit->literal())) {
      return blocked("conflicting constant bindings for " +
                     frame.column(col).QualifiedName());
    }
    pin[root] = lit->literal();
  }

  // -- Declared CHECKs: single-column ones join the per-column predicate
  //    sets; multi-column ones are satisfied later by explicit test
  //    assignment.
  struct MultiCheck {
    size_t table = 0;
    const CheckConstraint* check = nullptr;
    std::vector<size_t> local_cols;
  };
  std::vector<MultiCheck> multi_checks;
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    const SymbolicTable& t = spec.tables[ti];
    size_t tw = t.get->table().schema().num_columns();
    for (const CheckConstraint& check : t.get->table().checks()) {
      std::vector<size_t> cols = ReferencedColumns(check.predicate);
      if (cols.empty()) {
        Tribool v = check.predicate->EvaluatePredicate(Row(), {});
        if (!TrueInterpreted(v)) {
          return blocked("constant CHECK on " + t.get->table().name() +
                         " is FALSE (table must be empty)");
        }
        continue;
      }
      if (cols.size() == 1) {
        checks[t.offset + cols[0]].push_back(
            {check.predicate, cols[0], tw, false});
      } else {
        multi_checks.push_back({ti, &check, cols});
      }
    }
  }

  // -- Per-class satisfiability: every constrained equivalence class
  //    must admit at least one non-NULL test-point value that satisfies
  //    all member predicates and CHECKs.
  std::map<size_t, std::vector<size_t>> classes;
  for (size_t c = 0; c < spec.width; ++c) classes[dsu.Find(c)].push_back(c);
  std::vector<std::optional<Value>> chosen(spec.width);  // per root
  auto passes_members = [&](const std::vector<size_t>& members,
                            const Value& v) {
    for (size_t m : members) {
      if (!Passes(singles[m], v) || !Passes(checks[m], v)) return false;
    }
    return true;
  };
  for (const auto& [root, members] : classes) {
    bool constrained = members.size() > 1 || pin[root].has_value() ||
                       hostvar_eq[root] != 0;
    for (size_t m : members) {
      constrained = constrained || !singles[m].empty() || !checks[m].empty();
    }
    if (!constrained) continue;
    if (pin[root].has_value()) {
      if (!passes_members(members, *pin[root])) {
        return blocked("constant binding " + pin[root]->ToString() + " for " +
                       frame.column(members[0]).QualifiedName() +
                       " violates a predicate or CHECK");
      }
      chosen[root] = *pin[root];
      continue;
    }
    std::vector<SinglePred> all_singles;
    std::vector<SinglePred> all_checks;
    for (size_t m : members) {
      all_singles.insert(all_singles.end(), singles[m].begin(),
                         singles[m].end());
      all_checks.insert(all_checks.end(), checks[m].begin(), checks[m].end());
    }
    bool found = false;
    for (const Value& v :
         Candidates(frame.column(members[0]).type, all_singles, all_checks)) {
      if (passes_members(members, v)) {
        chosen[root] = v;
        found = true;
        break;
      }
    }
    if (!found) {
      return blocked("no satisfying test-point value found for " +
                     frame.column(members[0]).QualifiedName());
    }
  }

  // -- Multi-column CHECKs: search a bounded assignment of their
  //    referenced columns (preferring NULL, which a true-interpreted
  //    CHECK accepts whenever it yields UNKNOWN). Columns so assigned
  //    are fixed and excluded from the differing set.
  std::vector<std::optional<Value>> fixed(spec.width);
  std::vector<char> fixed_null(spec.width, 0);
  std::map<size_t, std::vector<MultiCheck*>> per_table_multi;
  for (MultiCheck& mc : multi_checks) per_table_multi[mc.table].push_back(&mc);
  for (auto& [ti, mcs] : per_table_multi) {
    const SymbolicTable& t = spec.tables[ti];
    size_t tw = t.get->table().schema().num_columns();
    std::vector<size_t> ref_local;
    for (const MultiCheck* mc : mcs) {
      ref_local.insert(ref_local.end(), mc->local_cols.begin(),
                       mc->local_cols.end());
    }
    std::sort(ref_local.begin(), ref_local.end());
    ref_local.erase(std::unique(ref_local.begin(), ref_local.end()),
                    ref_local.end());
    // Option list per referenced column; NULL only where the witness is
    // otherwise free to choose it.
    std::vector<std::vector<Value>> options;
    for (size_t lc : ref_local) {
      size_t g = t.offset + lc;
      const Column& col = t.get->table().schema().column(lc);
      std::vector<Value> opts;
      size_t root = dsu.Find(g);
      if (chosen[root].has_value()) {
        opts.push_back(*chosen[root]);
      } else if (referenced[g] || classes[root].size() > 1) {
        // Equated or filtered but unvalued: should not happen (such a
        // class is constrained above); be conservative.
        return blocked("multi-column CHECK on " + t.get->table().name() +
                       " references an equated but unvalued column");
      } else {
        if (col.nullable) opts.push_back(Value::Null(col.type));
        for (const Value& v : Candidates(col.type, {}, checks[g])) {
          if (Passes(checks[g], v)) opts.push_back(v);
          if (opts.size() >= 4) break;
        }
      }
      if (opts.empty()) {
        return blocked("no candidate value for " +
                       frame.column(g).QualifiedName() +
                       " under its CHECKs");
      }
      if (opts.size() > 4) opts.resize(4);
      options.push_back(std::move(opts));
    }
    // Bounded cartesian search for an assignment all multi-column CHECKs
    // of this table accept.
    std::vector<size_t> idx(options.size(), 0);
    bool satisfied = false;
    for (size_t combos = 0; combos < 64; ++combos) {
      std::vector<Value> cells(tw);
      for (size_t i = 0; i < ref_local.size(); ++i) {
        cells[ref_local[i]] = options[i][idx[i]];
      }
      Row row(std::move(cells));
      bool ok = true;
      for (const MultiCheck* mc : mcs) {
        if (!TrueInterpreted(mc->check->predicate->EvaluatePredicate(row, {}))) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (size_t i = 0; i < ref_local.size(); ++i) {
          size_t g = t.offset + ref_local[i];
          if (options[i][idx[i]].is_null()) {
            fixed_null[g] = 1;
          } else {
            fixed[g] = options[i][idx[i]];
          }
        }
        satisfied = true;
        break;
      }
      // Advance the mixed-radix counter.
      size_t d = 0;
      while (d < idx.size() && ++idx[d] == options[d].size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == idx.size()) break;
    }
    if (!satisfied) {
      return blocked("no test assignment satisfies the multi-column CHECKs on " +
                     t.get->table().name());
    }
  }

  // -- Foreign keys: the witness instance must be extensible to satisfy
  //    every inclusion dependency. Safe when the source column is NULL /
  //    freely NULLable, or when the join to the referenced table is
  //    present as an equality atom (same union-find class).
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    const SymbolicTable& t = spec.tables[ti];
    for (const ForeignKeyConstraint& fk : t.get->table().foreign_keys()) {
      for (size_t j = 0; j < fk.columns.size(); ++j) {
        size_t g = t.offset + fk.columns[j];
        const Column& col = t.get->table().schema().column(fk.columns[j]);
        if (fixed_null[g] != 0) continue;
        bool free_nullable = col.nullable && referenced[g] == 0 &&
                             !fixed[g].has_value() &&
                             classes[dsu.Find(g)].size() == 1;
        if (free_nullable) {
          fixed_null[g] = 1;  // reserve NULL: FKs ignore NULL sources
          continue;
        }
        bool joined = false;
        for (const SymbolicTable& rt : spec.tables) {
          if (rt.get->table().name() != fk.ref_table) continue;
          auto ord = rt.get->table().ColumnOrdinal(fk.ref_columns[j]);
          if (!ord.ok()) continue;
          if (dsu.Find(g) == dsu.Find(rt.offset + *ord)) {
            joined = true;
            break;
          }
        }
        if (!joined) {
          return blocked("foreign key " + fk.name + " on " +
                         t.get->table().name() +
                         " constrains the witness instance");
        }
      }
    }
  }

  // -- The differing set D: free columns (or whole join classes) with
  //    at least two admissible values. Every candidate key of the
  //    uncovered table must intersect D (otherwise some key forces the
  //    two rows equal and there is no counterexample), and every table
  //    that ends up holding two row variants must break each of its own
  //    keys too, or the variants collide on a UNIQUE constraint.
  const SymbolicTable& target = spec.tables[req.uncovered_table];
  size_t tw = target.get->table().schema().num_columns();
  struct Differ {
    size_t global = 0;             ///< representative column
    std::vector<size_t> members;   ///< all columns moving together
    Value v1, v2;
  };
  std::vector<Differ> differ;
  std::vector<char> in_d(spec.width, 0);

  auto owner_of = [&](size_t g) {
    for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
      const SymbolicTable& t = spec.tables[ti];
      size_t w = t.get->table().schema().num_columns();
      if (g >= t.offset && g < t.offset + w) return ti;
    }
    return spec.tables.size();
  };
  auto is_fk_source = [&](size_t g) {
    size_t ti = owner_of(g);
    if (ti >= spec.tables.size()) return false;
    const SymbolicTable& t = spec.tables[ti];
    size_t lc = g - t.offset;
    for (const ForeignKeyConstraint& fk : t.get->table().foreign_keys()) {
      for (size_t src : fk.columns) {
        if (src == lc) return true;
      }
    }
    return false;
  };

  // A lone free column differs between the rows when nothing ties it to
  // another column, a fixed assignment, or a host variable, and two
  // non-NULL values pass its predicates and CHECKs.
  auto try_vary_single = [&](size_t g) {
    if (in_d[g] != 0) return true;
    if (g < req.bound.size() && req.bound[g] != 0) return false;
    if (referenced[g] != 0 || fixed[g].has_value() || fixed_null[g] != 0) {
      return false;
    }
    if (classes[dsu.Find(g)].size() > 1 || pin[dsu.Find(g)].has_value() ||
        hostvar_eq[g] != 0) {
      return false;
    }
    if (is_fk_source(g)) return false;
    std::vector<Value> passing;
    for (const Value& v :
         Candidates(frame.column(g).type, singles[g], checks[g])) {
      if (Passes(singles[g], v) && Passes(checks[g], v)) {
        passing.push_back(v);
        if (passing.size() == 2) break;
      }
    }
    if (passing.size() < 2) return false;
    differ.push_back({g, {g}, passing[0], passing[1]});
    in_d[g] = 1;
    return true;
  };

  // A join class varies as one unit: all members take value v1 in row 1
  // and v2 in row 2, so every equality atom keeps holding. Requires no
  // member agreed/fixed/host-var-bound and two values passing every
  // member's predicates and CHECKs. FK sources inside the class are
  // safe: the FK pass above already demanded their referenced key
  // column share the class, so source and target move together.
  auto try_vary_class = [&](size_t g) {
    if (in_d[g] != 0) return true;
    size_t root = dsu.Find(g);
    const std::vector<size_t>& members = classes[root];
    if (members.size() < 2) return false;
    if (pin[root].has_value()) return false;
    for (size_t m : members) {
      if (m < req.bound.size() && req.bound[m] != 0) return false;
      if (fixed[m].has_value() || fixed_null[m] != 0) return false;
      if (hostvar_eq[m] != 0) return false;
    }
    std::vector<SinglePred> all_singles;
    std::vector<SinglePred> all_checks;
    for (size_t m : members) {
      all_singles.insert(all_singles.end(), singles[m].begin(),
                         singles[m].end());
      all_checks.insert(all_checks.end(), checks[m].begin(),
                        checks[m].end());
    }
    std::vector<Value> passing;
    for (const Value& v :
         Candidates(frame.column(members[0]).type, all_singles, all_checks)) {
      bool ok = true;
      for (size_t m : members) {
        ok = ok && Passes(singles[m], v) && Passes(checks[m], v);
      }
      if (ok) {
        passing.push_back(v);
        if (passing.size() == 2) break;
      }
    }
    if (passing.size() < 2) return false;
    differ.push_back({members[0], members, passing[0], passing[1]});
    for (size_t m : members) in_d[m] = 1;
    return true;
  };

  // Worklist: break every key of every touched table. The uncovered
  // table is touched by definition; varying a class touches every table
  // owning a member, which can in turn require more columns to differ.
  std::vector<char> checked(spec.tables.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<char> touched(spec.tables.size(), 0);
    touched[req.uncovered_table] = 1;
    for (const Differ& d : differ) {
      for (size_t m : d.members) {
        size_t ti = owner_of(m);
        if (ti < spec.tables.size()) touched[ti] = 1;
      }
    }
    for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
      if (touched[ti] == 0 || checked[ti] != 0) continue;
      const SymbolicTable& t = spec.tables[ti];
      for (const KeyConstraint& key : t.get->table().keys()) {
        bool differs = false;
        for (size_t kc : key.columns) {
          if (in_d[t.offset + kc] != 0) differs = true;
        }
        for (size_t kc : key.columns) {
          if (differs) break;
          differs = try_vary_single(t.offset + kc) ||
                    try_vary_class(t.offset + kc);
        }
        if (!differs) {
          return blocked(
              "candidate key " +
              (key.name.empty() ? t.get->table().name() : key.name) +
              " cannot be broken: all its columns are pinned, "
              "host-var-bound, or agreed");
        }
      }
      checked[ti] = 1;
      progress = true;
    }
  }
  if (differ.empty()) {
    return blocked("no free column of " + target.get->table().name() +
                   " admits two values");
  }

  // Tables holding two row variants in the witness instance.
  std::vector<char> touched(spec.tables.size(), 0);
  touched[req.uncovered_table] = 1;
  for (const Differ& d : differ) {
    for (size_t m : d.members) {
      size_t ti = owner_of(m);
      if (ti < spec.tables.size()) touched[ti] = 1;
    }
  }

  // -- Assemble the witness.
  std::string w = "two-row chase counterexample over " +
                  target.get->table().name() + " " + target.get->alias() +
                  ":\n";
  w += "  rows r1, r2 agree on every closure column";
  std::string agreed;
  for (size_t lc = 0; lc < tw; ++lc) {
    size_t g = target.offset + lc;
    if (g < req.bound.size() && req.bound[g] != 0) {
      if (!agreed.empty()) agreed += ", ";
      agreed += frame.column(g).QualifiedName();
    }
  }
  w += agreed.empty() ? " (none lies in " + target.get->alias() + ")"
                      : " (" + agreed + ")";
  bool any_untouched = false;
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    any_untouched = any_untouched || touched[ti] == 0;
  }
  w += any_untouched ? " and reuse one row per untouched table"
                     : " (two row variants in every table)";
  w += "\n  r1 / r2 differ at:";
  for (const Differ& d : differ) {
    std::string names;
    for (size_t m : d.members) {
      if (!names.empty()) names += "=";
      names += frame.column(m).QualifiedName();
    }
    w += " " + names + " (" + d.v1.ToString() + " vs " + d.v2.ToString() +
         ")";
  }
  w += "\n  every candidate key differs:";
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    if (touched[ti] == 0) continue;
    const SymbolicTable& t = spec.tables[ti];
    for (const KeyConstraint& key : t.get->table().keys()) {
      w += " " + (key.name.empty() ? std::string("key") : key.name) + "(";
      for (size_t i = 0; i < key.columns.size(); ++i) {
        if (i) w += ",";
        w += t.get->table().schema().column(key.columns[i]).name;
      }
      w += ")";
    }
  }
  std::string nulled;
  std::string pinned_text;
  for (size_t g = 0; g < spec.width; ++g) {
    if (fixed_null[g] != 0) {
      if (!nulled.empty()) nulled += ", ";
      nulled += frame.column(g).QualifiedName();
    } else if (fixed[g].has_value()) {
      if (!pinned_text.empty()) pinned_text += ", ";
      pinned_text += frame.column(g).QualifiedName() + "=" +
                     fixed[g]->ToString();
    }
  }
  if (!nulled.empty()) {
    w += "\n  set NULL for CHECK/FK neutrality: " + nulled;
  }
  if (!pinned_text.empty()) {
    w += "\n  fixed for CHECK satisfiability: " + pinned_text;
  }
  w += "\n  both rows satisfy every conjunct and declared constraint";
  return w;
}

}  // namespace equiv
}  // namespace uniqopt
