#ifndef UNIQOPT_COMMON_STRING_UTIL_H_
#define UNIQOPT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uniqopt {

/// ASCII-only case folding; SQL identifiers and keywords in this library
/// are case-insensitive and canonicalized to upper case.
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

/// True if `a` and `b` are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_STRING_UTIL_H_
