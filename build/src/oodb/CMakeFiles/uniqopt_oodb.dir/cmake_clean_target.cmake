file(REMOVE_RECURSE
  "libuniqopt_oodb.a"
)
