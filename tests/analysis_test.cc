#include <gtest/gtest.h>

#include "analysis/properties.h"
#include "analysis/subquery.h"
#include "analysis/uniqueness.h"
#include "test_util.h"
#include "workload/query_corpus.h"
#include "workload/supplier_schema.h"

namespace uniqopt {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(CreateSupplierSchema(&db_));
    binder_ = std::make_unique<Binder>(&db_.catalog());
  }

  PlanPtr Bind(const std::string& sql) {
    auto bound = binder_->BindSql(sql);
    EXPECT_TRUE(bound.ok()) << sql << ": " << bound.status().ToString();
    return bound.ok() ? bound->plan : nullptr;
  }

  Database db_;
  std::unique_ptr<Binder> binder_;
};

TEST_F(AnalysisTest, Example1DistinctUnnecessary) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->has_distinct);
  EXPECT_TRUE(verdict->distinct_unnecessary)
      << testing::PrintToString(verdict->trace);
}

TEST_F(AnalysisTest, Example2DistinctRequired) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->distinct_unnecessary);
}

TEST_F(AnalysisTest, Example5TraceMatchesPaperSteps) {
  // The paper's Example 5 walks Algorithm 1 on the Example 4 query.
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
      "WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->distinct_unnecessary);
  // Trace should mention both kept conjuncts and key coverage.
  std::string trace;
  for (const std::string& line : verdict->trace) trace += line + "\n";
  EXPECT_NE(trace.find("Type 1"), std::string::npos) << trace;
  EXPECT_NE(trace.find("Type 2"), std::string::npos) << trace;
  EXPECT_NE(trace.find("YES"), std::string::npos) << trace;
}

TEST_F(AnalysisTest, VerbatimLine10RejectsEmptyPredicate) {
  PlanPtr plan = Bind("SELECT DISTINCT SNO, SNAME FROM SUPPLIER");
  ASSERT_NE(plan, nullptr);
  Algorithm1Options verbatim;
  verbatim.verbatim_line10 = true;
  auto v1 = AnalyzeDistinctAlgorithm1(plan, verbatim);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(v1->distinct_unnecessary);  // published algorithm: NO
  auto v2 = AnalyzeDistinctAlgorithm1(plan, Algorithm1Options{});
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->distinct_unnecessary);  // repaired line 10: YES
}

TEST_F(AnalysisTest, CorpusGroundTruthVerbatim) {
  Algorithm1Options verbatim;
  verbatim.verbatim_line10 = true;
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    PlanPtr plan = Bind(q.sql);
    ASSERT_NE(plan, nullptr) << q.id;
    auto verdict = AnalyzeDistinctAlgorithm1(plan, verbatim);
    ASSERT_TRUE(verdict.ok()) << q.id;
    EXPECT_EQ(verdict->distinct_unnecessary, q.algorithm1_detects)
        << q.id << "\n"
        << q.sql;
    // Soundness: the detector may never contradict ground truth.
    if (verdict->distinct_unnecessary) {
      EXPECT_TRUE(q.distinct_redundant) << q.id;
    }
  }
}

TEST_F(AnalysisTest, CorpusGroundTruthFdDetector) {
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    PlanPtr plan = Bind(q.sql);
    ASSERT_NE(plan, nullptr) << q.id;
    UniquenessVerdict verdict = AnalyzeDistinctFd(plan);
    EXPECT_EQ(verdict.distinct_unnecessary, q.fd_detects)
        << q.id << "\n"
        << q.sql << "\n"
        << testing::PrintToString(verdict.trace);
    if (verdict.distinct_unnecessary) {
      EXPECT_TRUE(q.distinct_redundant) << q.id;
    }
  }
}

TEST_F(AnalysisTest, FdDetectorSubsumesAlgorithm1OnCorpus) {
  for (const CorpusQuery& q : DistinctQueryCorpus()) {
    if (q.algorithm1_detects) {
      EXPECT_TRUE(q.fd_detects) << q.id;
    }
  }
}

TEST_F(AnalysisTest, UniqueCandidateKeySwitch) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT P.OEM_PNO, P.PNAME FROM PARTS P WHERE "
      "P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  Algorithm1Options with_unique;
  auto v1 = AnalyzeDistinctAlgorithm1(plan, with_unique);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->distinct_unnecessary);
  Algorithm1Options no_unique;
  no_unique.use_unique_keys = false;
  auto v2 = AnalyzeDistinctAlgorithm1(plan, no_unique);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->distinct_unnecessary);
}

TEST_F(AnalysisTest, ClosureSwitchAblation) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  Algorithm1Options no_closure;
  no_closure.use_column_equivalence = false;
  auto v = AnalyzeDistinctAlgorithm1(plan, no_closure);
  ASSERT_TRUE(v.ok());
  // Without Type 2 closure P.SNO is never bound ⇒ NO.
  EXPECT_FALSE(v->distinct_unnecessary);
}

TEST_F(AnalysisTest, ConstantBindingAblation) {
  PlanPtr plan =
      Bind("SELECT DISTINCT SNAME FROM SUPPLIER WHERE SNO = :X");
  ASSERT_NE(plan, nullptr);
  auto with = AnalyzeDistinctAlgorithm1(plan, Algorithm1Options{});
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->distinct_unnecessary);
  Algorithm1Options off;
  off.bind_constants = false;
  auto without = AnalyzeDistinctAlgorithm1(plan, off);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->distinct_unnecessary);
}

TEST_F(AnalysisTest, CheckConstraintBindingRequiresNotNull) {
  // CHECK pins SCITY, but SCITY is nullable: under true-interpretation a
  // NULL still passes the CHECK, so the column is not constant and the
  // analyzer must not use it. With a NOT NULL column it may.
  Database db;
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T1 (K INTEGER NOT NULL, C VARCHAR(10), "
      "PRIMARY KEY (K), CHECK (C = 'x'))"));
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T2 (K INTEGER NOT NULL, C VARCHAR(10) NOT NULL, "
      "PRIMARY KEY (K), CHECK (C = 'x'))"));
  Binder binder(&db.catalog());

  AnalysisOptions use_checks;
  use_checks.use_check_constraints = true;

  auto bound1 = binder.BindSql("SELECT DISTINCT C FROM T1");
  ASSERT_TRUE(bound1.ok());
  EXPECT_FALSE(
      AnalyzeDistinctFd(bound1->plan, use_checks).distinct_unnecessary);

  auto bound2 = binder.BindSql("SELECT DISTINCT C FROM T2");
  ASSERT_TRUE(bound2.ok());
  // All rows have C = 'x': the single projected column is constant, so
  // the whole (at most one distinct) row cannot... still duplicates!
  // C constant means every row is identical — duplicates ARE possible,
  // so DISTINCT stays. What CHECK-binding buys is key coverage:
  EXPECT_FALSE(
      AnalyzeDistinctFd(bound2->plan, use_checks).distinct_unnecessary);

  // Key coverage through CHECK: T3's key is (K, C); CHECK pins C.
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE T3 (K INTEGER NOT NULL, C VARCHAR(10) NOT NULL, "
      "V INTEGER, PRIMARY KEY (K, C), CHECK (C = 'x'))"));
  auto bound3 = binder.BindSql("SELECT DISTINCT K, V FROM T3");
  ASSERT_TRUE(bound3.ok());
  EXPECT_TRUE(
      AnalyzeDistinctFd(bound3->plan, use_checks).distinct_unnecessary);
  AnalysisOptions no_checks;
  EXPECT_FALSE(
      AnalyzeDistinctFd(bound3->plan, no_checks).distinct_unnecessary);
}

TEST_F(AnalysisTest, SubqueryAtMostOneMatchTheorem2) {
  // Example 7: inner PARTS key (SNO, PNO) fully bound by the correlation
  // S.SNO = P.SNO and the constant P.PNO = :PART_NO.
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
      "WHERE S.SNAME = :SUPPLIER_NAME AND EXISTS "
      "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART_NO)");
  ASSERT_NE(plan, nullptr);
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  auto verdict = TestSubqueryAtMostOneMatch(*exists);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->at_most_one_match)
      << testing::PrintToString(verdict->trace);
}

TEST_F(AnalysisTest, SubqueryManyMatchesExample8) {
  // Example 8: many red parts per supplier ⇒ condition fails.
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  ASSERT_NE(plan, nullptr);
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  auto verdict = TestSubqueryAtMostOneMatch(*exists);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->at_most_one_match);
}

// ---------------------------------------------------------------------
// Structured proof rendering (ExplainProof) for the paper's worked
// examples: the proof must name the dispositions, the closure steps,
// and the candidate-key coverage that justify each verdict.

TEST_F(AnalysisTest, Example1ProofShowsKeyCoverage) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("DISTINCT is unnecessary"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("Algorithm 1"), std::string::npos) << proof;
  EXPECT_NE(proof.find("keep (Type 1): P.COLOR"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("keep (Type 2): S.SNO = P.SNO"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("pk_SUPPLIER_sno of SUPPLIER (S) {S.SNO}: covered"),
            std::string::npos)
      << proof;
  EXPECT_NE(proof.find("pk_PARTS_sno_pno of PARTS (P)"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("Theorem 1"), std::string::npos) << proof;
}

TEST_F(AnalysisTest, Example2ProofNamesMissingColumns) {
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
      "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("DISTINCT is required"), std::string::npos) << proof;
  EXPECT_NE(proof.find("NOT covered"), std::string::npos) << proof;
  EXPECT_NE(proof.find("conclusion: NO"), std::string::npos) << proof;
}

TEST_F(AnalysisTest, Example4And5ProofWalksClosure) {
  // Example 5 traces Algorithm 1 over Example 4's query: the projected
  // columns seed V, the host variable binds P.SNO (Type 1), and both
  // keys end up covered.
  PlanPtr plan = Bind(
      "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
      "WHERE P.SNO = :SUPPLIER_NO AND S.SNO = P.SNO");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  ASSERT_TRUE(verdict->proof.recorded);
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("keep (Type 1): P.SNO = :SUPPLIER_NO"),
            std::string::npos)
      << proof;
  EXPECT_NE(proof.find("initially bound: {S.SNO"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("+ P.SNO via P.SNO = :SUPPLIER_NO (Type 1)"),
            std::string::npos)
      << proof;
  EXPECT_NE(proof.find("pk_PARTS_sno_pno of PARTS (P) {P.SNO, P.PNO}: "
                       "covered"),
            std::string::npos)
      << proof;
  EXPECT_NE(proof.find("conclusion: YES"), std::string::npos) << proof;
  // Structured fields, not just the rendering: one covered key per
  // FROM table (coverage short-circuits a table's remaining keys).
  EXPECT_EQ(verdict->proof.keys.size(), 2u);
  for (const ProofKeyOutcome& key : verdict->proof.keys) {
    EXPECT_TRUE(key.covered) << key.key_name;
  }
}

TEST_F(AnalysisTest, Example6ProofUsesUniqueConstraintKey) {
  // The UNIQUE constraint on OEM_PNO is a candidate key; projecting it
  // proves uniqueness without touching the primary key.
  PlanPtr plan = Bind(
      "SELECT DISTINCT P.OEM_PNO, P.PNAME FROM PARTS P "
      "WHERE P.COLOR = 'RED'");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->distinct_unnecessary);
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("uq_PARTS_oem_pno of PARTS (P) {P.OEM_PNO}: covered"),
            std::string::npos)
      << proof;
}

TEST_F(AnalysisTest, Example7SubqueryProofProven) {
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
      "WHERE S.SNAME = :SUPPLIER_NAME AND EXISTS "
      "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART_NO)");
  ASSERT_NE(plan, nullptr);
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  auto verdict = TestSubqueryAtMostOneMatch(*exists);
  ASSERT_TRUE(verdict.ok());
  ASSERT_TRUE(verdict->proof.recorded);
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("at most one inner row"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("pk_PARTS_sno_pno"), std::string::npos) << proof;
  EXPECT_NE(proof.find("conclusion: PROVEN"), std::string::npos) << proof;
  EXPECT_NE(proof.find("Theorem 2"), std::string::npos) << proof;
}

TEST_F(AnalysisTest, Example8SubqueryProofNotProven) {
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
      "(SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
  ASSERT_NE(plan, nullptr);
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  const ExistsNode* exists = As<ExistsNode>(project->input());
  ASSERT_NE(exists, nullptr);
  auto verdict = TestSubqueryAtMostOneMatch(*exists);
  ASSERT_TRUE(verdict.ok());
  std::string proof = verdict->ExplainProof();
  EXPECT_NE(proof.find("more than one inner match possible"),
            std::string::npos)
      << proof;
  EXPECT_NE(proof.find("conclusion: NOT PROVEN"), std::string::npos)
      << proof;
  EXPECT_NE(proof.find("missing"), std::string::npos) << proof;
}

TEST_F(AnalysisTest, Example9IntersectProofFallsBackToFdDetector) {
  // Algorithm 1 does not handle set operators; the combined analyzer's
  // FD detector proves the INTERSECT's DISTINCT redundant and the proof
  // says which detector spoke.
  PlanPtr plan = Bind(
      "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
      "INTERSECT "
      "SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'");
  ASSERT_NE(plan, nullptr);
  UniquenessVerdict verdict = AnalyzeDistinct(plan);
  EXPECT_TRUE(verdict.distinct_unnecessary);
  std::string proof = verdict.ExplainProof();
  EXPECT_NE(proof.find("FD/key propagation"), std::string::npos) << proof;
  EXPECT_NE(proof.find("DISTINCT is unnecessary"), std::string::npos)
      << proof;
}

TEST_F(AnalysisTest, DerivePropertiesProductKeys) {
  PlanPtr plan = Bind(
      "SELECT S.SNO, P.SNO, P.PNO FROM SUPPLIER S, PARTS P");
  ASSERT_NE(plan, nullptr);
  const ProjectNode* project = As<ProjectNode>(plan);
  ASSERT_NE(project, nullptr);
  DerivedProperties props = DeriveProperties(project->input());
  // Keys of the product: {S.SNO} ⊕ {P.SNO, P.PNO} and {S.SNO} ⊕ {OEM}.
  EXPECT_EQ(props.width, 10u);
  EXPECT_GE(props.keys.size(), 2u);
}

TEST_F(AnalysisTest, DuplicateFreeDetection) {
  EXPECT_TRUE(IsProvablyDuplicateFree(Bind("SELECT SNO FROM SUPPLIER")));
  EXPECT_FALSE(IsProvablyDuplicateFree(Bind("SELECT SNAME FROM SUPPLIER")));
  EXPECT_TRUE(
      IsProvablyDuplicateFree(Bind("SELECT DISTINCT SNAME FROM SUPPLIER")));
  EXPECT_TRUE(IsProvablyDuplicateFree(
      Bind("SELECT SNAME FROM SUPPLIER WHERE SNO = 3")));
}

TEST_F(AnalysisTest, UnsupportedShapesReportUnsupported) {
  PlanPtr plan = Bind(
      "SELECT SNO FROM SUPPLIER INTERSECT SELECT SNO FROM AGENTS");
  ASSERT_NE(plan, nullptr);
  auto verdict = AnalyzeDistinctAlgorithm1(plan);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kUnsupported);
  // The combined analyzer falls back to FD propagation.
  UniquenessVerdict combined = AnalyzeDistinct(plan);
  EXPECT_TRUE(combined.has_distinct);
  // Left operand projects SUPPLIER's key ⇒ duplicate-free ⇒ the
  // DISTINCT of the INTERSECT is redundant (pre-Corollary 2 note).
  EXPECT_TRUE(combined.distinct_unnecessary);
}

}  // namespace
}  // namespace uniqopt
