
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cost_model.cc" "src/exec/CMakeFiles/uniqopt_exec.dir/cost_model.cc.o" "gcc" "src/exec/CMakeFiles/uniqopt_exec.dir/cost_model.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/uniqopt_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/uniqopt_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/exec/CMakeFiles/uniqopt_exec.dir/planner.cc.o" "gcc" "src/exec/CMakeFiles/uniqopt_exec.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/uniqopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/uniqopt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/uniqopt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/uniqopt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/uniqopt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/uniqopt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uniqopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
