file(REMOVE_RECURSE
  "libuniqopt_facade.a"
)
