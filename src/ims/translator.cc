#include "ims/translator.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "analysis/shape.h"
#include "common/string_util.h"
#include "expr/normalize.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace uniqopt {
namespace ims {

std::string DliProgram::ToString() const {
  std::string out = "DliProgram {\n  root loop";
  if (root_qual.has_value()) {
    out += " (" + root_qual->field + " " +
           CompareOpToString(root_qual->op) + " " +
           (root_qual->host_var.has_value() ? ":param"
                                            : root_qual->constant.ToString()) +
           ")";
  }
  out += "\n";
  for (const ChildStep& step : steps) {
    out += step.exists_only ? "  exists GNP " : "  emit-per-match GNP ";
    out += step.segment;
    if (step.qual.has_value()) {
      out += " (" + step.qual->field + " " +
             CompareOpToString(step.qual->op) + " " +
             (step.qual->host_var.has_value()
                  ? ":param"
                  : step.qual->constant.ToString()) +
             ")";
    }
    out += "\n";
  }
  if (post_filter != nullptr) {
    out += "  post-filter: " + post_filter->ToString() + "\n";
  }
  if (distinct) out += "  post-distinct (sort)\n";
  out += "}";
  return out;
}

namespace {

/// View binding of one FROM table: which segment type it maps to and
/// where its columns live in the product ("view") row.
struct ViewBinding {
  const SegmentTypeDef* type = nullptr;
  bool is_root = false;
  size_t offset = 0;
  size_t width = 0;
};

/// Pattern: `col op <literal or host var>` → QualTemplate on a named
/// field, when `col` belongs to `binding` and names a segment field.
bool MatchQual(const ExprPtr& conj, const ViewBinding& binding,
               QualTemplate* out) {
  if (conj->kind() != ExprKind::kComparison) return false;
  const ExprPtr& l = conj->child(0);
  const ExprPtr& r = conj->child(1);
  auto match = [&](const ExprPtr& col, const ExprPtr& value,
                   CompareOp op) -> bool {
    if (col->kind() != ExprKind::kColumnRef) return false;
    size_t idx = col->column_index();
    if (idx < binding.offset || idx >= binding.offset + binding.width) {
      return false;
    }
    size_t view_ordinal = idx - binding.offset;
    // For a child view, ordinal 0 is the inherited root key — not a
    // field of the segment itself; cannot be an SSA qualification.
    size_t field;
    if (binding.is_root) {
      field = view_ordinal;
    } else {
      if (view_ordinal == 0) return false;
      field = view_ordinal - 1;
    }
    if (field >= binding.type->fields.size()) return false;
    out->field = binding.type->fields[field].name;
    out->op = op;
    if (value->kind() == ExprKind::kLiteral && !value->literal().is_null()) {
      out->constant = value->literal();
      out->host_var.reset();
      return true;
    }
    if (value->kind() == ExprKind::kHostVar) {
      out->host_var = value->host_var_index();
      return true;
    }
    return false;
  };
  if (match(l, r, conj->compare_op())) return true;
  return match(r, l, FlipCompareOp(conj->compare_op()));
}

/// Is `conj` the hierarchy join predicate root.key = child.view[0]?
bool IsHierarchyJoin(const ExprPtr& conj, const ViewBinding& root,
                     const ViewBinding& child) {
  if (conj->kind() != ExprKind::kComparison ||
      conj->compare_op() != CompareOp::kEq) {
    return false;
  }
  const ExprPtr& l = conj->child(0);
  const ExprPtr& r = conj->child(1);
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kColumnRef) {
    return false;
  }
  size_t root_key = root.offset +
                    static_cast<size_t>(root.type->key_field);
  size_t child_key = child.offset;  // inherited root key column
  size_t a = l->column_index();
  size_t b = r->column_index();
  return (a == root_key && b == child_key) ||
         (b == root_key && a == child_key);
}

Result<ViewBinding> BindTable(const ImsDatabase& db,
                              const SpecShape::BaseTable& bt) {
  ViewBinding binding;
  auto type = db.def().GetType(bt.get->table().name());
  if (!type.ok()) {
    return Status::Unsupported("table " + bt.get->table().name() +
                               " is not a view of the hierarchy");
  }
  binding.type = *type;
  binding.is_root = (*type)->parent.empty();
  binding.offset = bt.offset;
  binding.width = bt.get->schema().num_columns();
  // Sanity: view arity = fields (+1 inherited key for children).
  size_t expected =
      binding.type->fields.size() + (binding.is_root ? 0 : 1);
  if (binding.width != expected) {
    return Status::Unsupported("table " + bt.get->table().name() +
                               " does not match the segment view layout");
  }
  return binding;
}

}  // namespace

Result<DliProgram> TranslatePlan(const ImsDatabase& db, const PlanPtr& plan) {
  UNIQOPT_ASSIGN_OR_RETURN(SpecShape shape, ExtractSpecShape(plan));
  if (shape.tables.empty() || shape.tables.size() > 2) {
    return Status::Unsupported(
        "gateway supports one or two hierarchy views per query");
  }

  DliProgram program;
  program.distinct = shape.project->mode() == DuplicateMode::kDist;
  program.output_columns = shape.project->columns();

  std::vector<ViewBinding> bindings;
  const ViewBinding* root_binding = nullptr;
  const ViewBinding* child_binding = nullptr;
  for (const SpecShape::BaseTable& bt : shape.tables) {
    UNIQOPT_ASSIGN_OR_RETURN(ViewBinding b, BindTable(db, bt));
    bindings.push_back(b);
    program.layout.push_back(b.type->name);
  }
  for (const ViewBinding& b : bindings) {
    if (b.is_root) {
      if (root_binding != nullptr) {
        return Status::Unsupported("self-join of the root view");
      }
      root_binding = &b;
    } else {
      if (child_binding != nullptr) {
        return Status::Unsupported(
            "gateway supports at most one child view per query");
      }
      child_binding = &b;
    }
  }

  // Partition predicates: hierarchy join / SSA qualifications / post
  // filter (the post-processing layer).
  std::vector<ExprPtr> post;
  bool join_seen = false;
  for (const ExprPtr& conj : shape.predicates) {
    if (root_binding != nullptr && child_binding != nullptr &&
        IsHierarchyJoin(conj, *root_binding, *child_binding)) {
      join_seen = true;  // realized by the parent-child structure
      continue;
    }
    QualTemplate qual;
    if (root_binding != nullptr && !program.root_qual.has_value() &&
        MatchQual(conj, *root_binding, &qual)) {
      program.root_qual = std::move(qual);
      continue;
    }
    post.push_back(conj);
  }
  if (root_binding != nullptr && child_binding != nullptr && !join_seen) {
    return Status::Unsupported(
        "root ⋈ child query must join on the hierarchy key");
  }

  // Emitting child step (join semantics) with its SSA qualification.
  if (child_binding != nullptr) {
    ChildStep step;
    step.segment = child_binding->type->name;
    std::vector<ExprPtr> remaining;
    for (ExprPtr& conj : post) {
      QualTemplate qual;
      if (!step.qual.has_value() && MatchQual(conj, *child_binding, &qual)) {
        step.qual = std::move(qual);
      } else {
        remaining.push_back(std::move(conj));
      }
    }
    post = std::move(remaining);
    program.steps.push_back(std::move(step));
  }

  // Existential filters → exists-only probes (the §6 nested strategy).
  size_t root_width = root_binding != nullptr ? root_binding->width : 0;
  for (const ExistsNode* exists : shape.exists_filters) {
    if (exists->negated()) {
      return Status::Unsupported("NOT EXISTS is outside the gateway subset");
    }
    if (root_binding == nullptr || shape.tables.size() != 1) {
      return Status::Unsupported(
          "existential probes require a root-only outer query");
    }
    UNIQOPT_ASSIGN_OR_RETURN(SpecShape inner,
                             ExtractProductShape(exists->sub()));
    if (inner.tables.size() != 1) {
      return Status::Unsupported("subquery must probe one child view");
    }
    SpecShape::BaseTable inner_bt = inner.tables[0];
    UNIQOPT_ASSIGN_OR_RETURN(ViewBinding inner_binding,
                             BindTable(db, inner_bt));
    if (inner_binding.is_root) {
      return Status::Unsupported("subquery must probe a child view");
    }
    ChildStep step;
    step.segment = inner_binding.type->name;
    step.exists_only = true;
    // Correlation must be the hierarchy join; inner predicates may
    // contribute one SSA qualification.
    ViewBinding combined_child = inner_binding;
    combined_child.offset = root_width;  // child follows outer in concat
    bool corr_join = false;
    for (const ExprPtr& conj : FlattenAnd(exists->correlation())) {
      if (IsHierarchyJoin(conj, *root_binding, combined_child)) {
        corr_join = true;
        continue;
      }
      QualTemplate qual;
      if (!step.qual.has_value() &&
          MatchQual(conj, combined_child, &qual)) {
        step.qual = std::move(qual);
        continue;
      }
      return Status::Unsupported(
          "untranslatable correlation conjunct: " + conj->ToString());
    }
    ViewBinding local_child = inner_binding;
    local_child.offset = 0;
    for (const ExprPtr& conj : inner.predicates) {
      QualTemplate qual;
      if (!step.qual.has_value() && MatchQual(conj, local_child, &qual)) {
        step.qual = std::move(qual);
        continue;
      }
      return Status::Unsupported("untranslatable subquery conjunct: " +
                                 conj->ToString());
    }
    if (!corr_join) {
      return Status::Unsupported(
          "subquery correlation must be the hierarchy join");
    }
    program.steps.push_back(std::move(step));
  }

  if (!post.empty()) {
    program.post_filter = Expr::MakeAnd(std::move(post));
  }
  // Two probes of the same child type would fight over the GNP cursor.
  std::set<std::string> probed;
  for (const ChildStep& step : program.steps) {
    if (!probed.insert(ToUpperAscii(step.segment)).second) {
      return Status::Unsupported(
          "multiple probes of one child segment type are not supported");
    }
  }
  return program;
}

namespace {

/// One-line program summary for the flight recorder (\history shows it
/// next to SQL text from the relational path).
std::string ProgramSummary(const DliProgram& program) {
  std::string out = "dl/i program: root";
  if (program.root_qual.has_value()) out += "(qualified)";
  for (const ChildStep& step : program.steps) {
    out += step.exists_only ? " exists:" : " emit:";
    out += step.segment;
  }
  out += " -> " + Join(program.layout, "+");
  if (program.distinct) out += " distinct";
  return out;
}

}  // namespace

GatewayResult RunProgram(const ImsDatabase& db, const DliProgram& program,
                         const std::vector<Value>& params) {
  obs::Span span("ims.run_program");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("ims.gateway.run.ns");
  obs::ScopedLatencyTimer timer(&latency);
  auto run_start = std::chrono::steady_clock::now();
  GatewayResult result;
  DliSession dli(&db);
  const SegmentTypeDef& root_type = db.def().root();

  Ssa root_ssa = Ssa::Unqualified(root_type.name);
  if (program.root_qual.has_value()) {
    root_ssa.qual = program.root_qual->Resolve(params);
  }

  // Which layout slot (if any) is a child view, and which step emits.
  const ChildStep* emit_step = nullptr;
  for (const ChildStep& step : program.steps) {
    if (!step.exists_only) emit_step = &step;
  }

  auto assemble_and_emit = [&](const Segment* root,
                               const Segment* child_match) {
    Row view;
    for (const std::string& seg : program.layout) {
      if (EqualsIgnoreCase(seg, root_type.name)) {
        for (size_t i = 0; i < root->fields.size(); ++i) {
          view.Append(root->fields[i]);
        }
      } else {
        view.Append(root->KeyValue());  // inherited root key
        for (size_t i = 0; i < child_match->fields.size(); ++i) {
          view.Append(child_match->fields[i]);
        }
      }
    }
    if (program.post_filter != nullptr &&
        program.post_filter->EvaluatePredicate(view, params) !=
            Tribool::kTrue) {
      return;
    }
    result.rows.push_back(view.Project(program.output_columns));
  };

  DliStatus status = dli.GU(root_ssa);
  while (status == DliStatus::kOk) {
    const Segment* root = dli.parent_position();
    // Existence probes first (cheap rejection).
    bool all_exist = true;
    for (const ChildStep& step : program.steps) {
      if (!step.exists_only) continue;
      Ssa ssa = Ssa::Unqualified(step.segment);
      if (step.qual.has_value()) ssa.qual = step.qual->Resolve(params);
      if (dli.GNP(ssa) != DliStatus::kOk) {
        all_exist = false;
        break;
      }
    }
    if (all_exist) {
      if (emit_step == nullptr) {
        assemble_and_emit(root, nullptr);
      } else {
        Ssa ssa = Ssa::Unqualified(emit_step->segment);
        if (emit_step->qual.has_value()) {
          ssa.qual = emit_step->qual->Resolve(params);
        }
        DliStatus child_status = dli.GNP(ssa);
        while (child_status == DliStatus::kOk) {
          assemble_and_emit(root, dli.current());
          child_status = dli.GNP(ssa);
        }
      }
    }
    status = dli.GN(root_ssa);
  }

  // Post-processing layer: duplicate elimination by sort.
  if (program.distinct) {
    std::sort(result.rows.begin(), result.rows.end());
    result.rows.erase(
        std::unique(result.rows.begin(), result.rows.end(),
                    [](const Row& a, const Row& b) {
                      return a.NullSafeEquals(b);
                    }),
        result.rows.end());
  }
  result.stats = dli.stats();
  span.AddAttr("rows", static_cast<uint64_t>(result.rows.size()));
  span.AddAttr("gnp_calls",
               static_cast<uint64_t>(result.stats.gnp_calls));

  obs::QueryRecord rec;
  rec.source = "ims.gateway";
  rec.query = ProgramSummary(program);
  rec.plan_hash = obs::FingerprintPlanText(program.ToString());
  rec.rows_out = result.rows.size();
  rec.rows_scanned =
      static_cast<uint64_t>(result.stats.segments_visited);
  rec.proof_summary = result.stats.ToString();
  rec.total_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - run_start)
          .count());
  rec.phase_ns.emplace_back("run", rec.total_ns);
  obs::QueryRecorder::Global().Record(std::move(rec));
  return result;
}

std::string ExplainAnalyzeProgram(const ImsDatabase& db,
                                  const DliProgram& program,
                                  const std::vector<Value>& params,
                                  GatewayResult* result_out) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::CounterSnapshot before = reg.Counters();
  GatewayResult result = RunProgram(db, program, params);
  obs::CounterSnapshot after = reg.Counters();

  std::string out = "-- dl/i program --\n" + program.ToString() + "\n";
  out += "-- dl/i stats --\n  " + result.stats.ToString() + "\n";
  out += "-- metrics delta --\n";
  std::string delta = obs::CounterDeltaToText(before, after);
  out += delta.empty() ? std::string("  (none)\n") : delta;
  out += "-- result --\n  " + std::to_string(result.rows.size()) +
         " row(s)\n";
  if (result_out != nullptr) *result_out = std::move(result);
  return out;
}

}  // namespace ims
}  // namespace uniqopt
