# Empty dependencies file for uniqopt_fd.
# This may be replaced when dependencies are built.
