#ifndef UNIQOPT_PARSER_AST_H_
#define UNIQOPT_PARSER_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"

namespace uniqopt {

struct QuerySpec;

/// Unbound (parse-time) expression kinds. BETWEEN / IN stay explicit at
/// this level so the binder can desugar them while preserving the source
/// shape for error messages.
enum class AstExprKind {
  kLiteral,
  kColumnRef,
  kHostVar,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kIsNull,    ///< `x IS [NOT] NULL`, see `negated`
  kBetween,   ///< children: value, low, high; `negated` for NOT BETWEEN
  kInList,    ///< children: value, items...; `negated` for NOT IN
  kExists,    ///< `[NOT] EXISTS (subquery)`
  kInSubquery,  ///< `x [NOT] IN (subquery)`; child 0 is the value
  kAggregate,   ///< COUNT/SUM/MIN/MAX/AVG(...) — select list only
};

/// Parse-level aggregate functions (mapped to plan::AggFunc by the
/// binder).
enum class AstAggFunc { kCountStar, kCount, kSum, kMin, kMax, kAvg };

struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  Value literal;
  std::string qualifier;  ///< column ref: optional table/alias part
  std::string name;       ///< column ref column name / host variable name
  CompareOp op = CompareOp::kEq;
  bool negated = false;
  AstAggFunc agg_func = AstAggFunc::kCountStar;  ///< kAggregate
  std::vector<std::unique_ptr<AstExpr>> children;
  std::unique_ptr<QuerySpec> subquery;  ///< kExists / kInSubquery
  size_t offset = 0;  ///< source offset for diagnostics

  /// Round-trippable SQL-ish rendering.
  std::string ToString() const;
};

using AstExprPtr = std::unique_ptr<AstExpr>;

/// One entry of a SELECT list: `*`, `T.*`, or a column reference.
struct SelectItem {
  bool star = false;
  std::string star_qualifier;  ///< non-empty for `T.*`
  AstExprPtr expr;             ///< non-star items
};

/// One entry of a FROM clause: `TABLE [alias]`.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< equals table_name when no alias given

  const std::string& correlation_name() const {
    return alias.empty() ? table_name : alias;
  }
};

/// A query specification: SELECT [ALL|DISTINCT] ... FROM ... WHERE ... .
struct QuerySpec {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  AstExprPtr where;  ///< may be null
  /// GROUP BY columns (§7 extension); empty when absent. Aggregates in
  /// the select list without GROUP BY form a single (scalar) group.
  std::vector<AstExprPtr> group_by;

  std::string ToString() const;
};

using QuerySpecPtr = std::unique_ptr<QuerySpec>;

/// Set operators connecting query specifications (§2 of the paper).
enum class SetOpKind { kIntersect, kIntersectAll, kExcept, kExceptAll };

const char* SetOpKindToString(SetOpKind k);

/// A query expression: one spec, or a left-associative chain of specs
/// joined by INTERSECT [ALL] / EXCEPT [ALL].
struct Query {
  std::vector<QuerySpecPtr> specs;  ///< specs.size() == ops.size() + 1
  std::vector<SetOpKind> ops;

  bool IsSimpleSpec() const { return specs.size() == 1; }
  std::string ToString() const;
};

using QueryPtr = std::unique_ptr<Query>;

/// Parse-time column definition for CREATE TABLE.
struct AstColumnDef {
  std::string name;
  TypeId type = TypeId::kInteger;
  bool not_null = false;
};

/// Parse-time CHECK constraint; bound against the table by the binder.
struct AstCheck {
  AstExprPtr predicate;
  std::string sql_text;
};

/// Parse-time FOREIGN KEY (inclusion dependency) declaration.
struct AstForeignKey {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

struct CreateTableStmt {
  std::string table_name;
  std::vector<AstColumnDef> columns;
  std::vector<std::string> primary_key;  ///< empty when absent
  std::vector<std::vector<std::string>> unique_keys;
  std::vector<AstForeignKey> foreign_keys;
  std::vector<AstCheck> checks;
};

/// `DROP TABLE <name>` — removes the table, its rows, and every
/// declared constraint. Dropping a keyed table is how a live uniqueness
/// regression is provoked (DISTINCT proofs that leaned on the key stop
/// firing), which the regression sentinel then catches.
struct DropTableStmt {
  std::string table_name;
};

/// `CREATE UNIQUE INDEX <name> ON <table> (columns)` — declares a
/// candidate key after the fact. Existing rows are validated under `=!`
/// before the key is declared; on success the key both enforces future
/// writes and licenses the optimizer's uniqueness proofs. This is the
/// DDL `\advisor adopt` emits.
struct CreateIndexStmt {
  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
};

/// `INSERT INTO <table> [(columns)] VALUES (...), (...)`. Each value is
/// a literal or host variable; omitted columns receive NULL.
struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;  ///< empty: schema order
  std::vector<std::vector<AstExprPtr>> rows;
};

/// `UPDATE <table> SET col = expr, ... [WHERE ...]`. Assignment sources
/// and the WHERE predicate are scalar expressions over the table's own
/// columns (no subqueries).
struct UpdateStmt {
  std::string table_name;
  std::vector<std::pair<std::string, AstExprPtr>> assignments;
  AstExprPtr where;  ///< may be null (all rows)
};

/// `DELETE FROM <table> [WHERE ...]`.
struct DeleteStmt {
  std::string table_name;
  AstExprPtr where;  ///< may be null (all rows)
};

/// A parsed SQL statement: DDL, DML, or a query.
struct Statement {
  std::unique_ptr<CreateTableStmt> create_table;  ///< exactly one of
  std::unique_ptr<DropTableStmt> drop_table;      ///< these is set
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert_stmt;
  std::unique_ptr<UpdateStmt> update_stmt;
  std::unique_ptr<DeleteStmt> delete_stmt;
  QueryPtr query;
};

using StatementPtr = std::unique_ptr<Statement>;

}  // namespace uniqopt

#endif  // UNIQOPT_PARSER_AST_H_
