#ifndef UNIQOPT_COMMON_HASH_H_
#define UNIQOPT_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace uniqopt {

/// Combines a hash value into a running seed (boost::hash_combine flavor,
/// 64-bit). Used for hashing rows under SQL's null-equality semantics.
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + UINT64_C(0x9e3779b97f4a7c15) + (*seed << 12) + (*seed >> 4);
}

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_HASH_H_
