#ifndef UNIQOPT_EXEC_OPERATOR_H_
#define UNIQOPT_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace uniqopt {

/// Work counters accumulated across one execution. The §5/§6 claims are
/// about work avoided (sort comparisons, inner scans, pointer chases), so
/// operators account for it explicitly.
struct ExecStats {
  size_t rows_scanned = 0;      ///< base-table rows read
  size_t rows_sorted = 0;       ///< rows fed into a sort
  size_t sort_comparisons = 0;  ///< comparisons performed by sorts
  size_t hash_probes = 0;       ///< hash table probes
  size_t hash_build_rows = 0;   ///< rows inserted into hash tables
  size_t inner_loop_rows = 0;   ///< inner rows visited by nested loops
  size_t rows_output = 0;       ///< rows returned by the root operator

  void Reset() { *this = ExecStats(); }
  std::string ToString() const;
};

/// Per-execution context: host variable values (the paper's `h`) and the
/// stats sink.
struct ExecContext {
  std::vector<Value> params;
  ExecStats stats;
};

/// Volcano-style iterator. Usage: Open → Next until false → Close.
/// Operators own their children.
class Operator {
 public:
  explicit Operator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const Schema& schema() const { return schema_; }

  virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into `*row`; returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* row) = 0;
  virtual void Close() = 0;

  /// Operator name for EXPLAIN-style output.
  virtual std::string name() const = 0;

 private:
  Schema schema_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` into a vector (Open/Next/Close), counting output rows.
Result<std::vector<Row>> ExecuteToVector(Operator* op, ExecContext* ctx);

}  // namespace uniqopt

#endif  // UNIQOPT_EXEC_OPERATOR_H_
