#include <gtest/gtest.h>

#include "types/row.h"
#include "types/schema.h"
#include "types/tribool.h"
#include "types/value.h"

namespace uniqopt {
namespace {

TEST(TriboolTest, KleeneAnd) {
  EXPECT_EQ(And(Tribool::kTrue, Tribool::kTrue), Tribool::kTrue);
  EXPECT_EQ(And(Tribool::kTrue, Tribool::kUnknown), Tribool::kUnknown);
  EXPECT_EQ(And(Tribool::kFalse, Tribool::kUnknown), Tribool::kFalse);
  EXPECT_EQ(And(Tribool::kUnknown, Tribool::kUnknown), Tribool::kUnknown);
}

TEST(TriboolTest, KleeneOr) {
  EXPECT_EQ(Or(Tribool::kFalse, Tribool::kFalse), Tribool::kFalse);
  EXPECT_EQ(Or(Tribool::kTrue, Tribool::kUnknown), Tribool::kTrue);
  EXPECT_EQ(Or(Tribool::kFalse, Tribool::kUnknown), Tribool::kUnknown);
}

TEST(TriboolTest, KleeneNot) {
  EXPECT_EQ(Not(Tribool::kTrue), Tribool::kFalse);
  EXPECT_EQ(Not(Tribool::kFalse), Tribool::kTrue);
  EXPECT_EQ(Not(Tribool::kUnknown), Tribool::kUnknown);
}

TEST(TriboolTest, Interpretations) {
  // Table 2 of the paper: ⌊·⌋ maps UNKNOWN to false, ⌈·⌉ to true.
  EXPECT_FALSE(FalseInterpreted(Tribool::kUnknown));
  EXPECT_TRUE(TrueInterpreted(Tribool::kUnknown));
  EXPECT_TRUE(FalseInterpreted(Tribool::kTrue));
  EXPECT_FALSE(TrueInterpreted(Tribool::kFalse));
}

TEST(ValueTest, SqlEqualsIsThreeValued) {
  Value null_int = Value::Null(TypeId::kInteger);
  Value five = Value::Integer(5);
  EXPECT_EQ(five.SqlEquals(Value::Integer(5)), Tribool::kTrue);
  EXPECT_EQ(five.SqlEquals(Value::Integer(6)), Tribool::kFalse);
  // NULL = anything is UNKNOWN, including NULL = NULL (§3.1).
  EXPECT_EQ(null_int.SqlEquals(five), Tribool::kUnknown);
  EXPECT_EQ(null_int.SqlEquals(null_int), Tribool::kUnknown);
}

TEST(ValueTest, NullSafeEqualsTreatsNullAsValue) {
  Value null_int = Value::Null(TypeId::kInteger);
  // The =! operator of Table 2: NULL =! NULL is true.
  EXPECT_TRUE(null_int.NullSafeEquals(Value::Null(TypeId::kInteger)));
  EXPECT_FALSE(null_int.NullSafeEquals(Value::Integer(5)));
  EXPECT_TRUE(Value::Integer(5).NullSafeEquals(Value::Integer(5)));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_EQ(Value::Integer(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Integer(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Integer(2)), 0);
  // Hashes of =!-equal values collide.
  EXPECT_EQ(Value::Integer(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(TypeId::kInteger).Compare(Value::Integer(-100)), 0);
  EXPECT_EQ(Value::Null(TypeId::kInteger)
                .Compare(Value::Null(TypeId::kString)),
            0);
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value::String("ABC").Compare(Value::String("ABD")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Null(TypeId::kInteger).ToString(), "NULL");
  EXPECT_EQ(Value::Integer(42).ToString(), "42");
  EXPECT_EQ(Value::String("RED").ToString(), "'RED'");
  EXPECT_EQ(Value::Boolean(true).ToString(), "TRUE");
}

TEST(RowTest, ConcatAndProject) {
  Row left({Value::Integer(1), Value::String("a")});
  Row right({Value::Integer(2)});
  Row both = Row::Concat(left, right);
  ASSERT_EQ(both.size(), 3u);
  EXPECT_EQ(both[2].AsInteger(), 2);
  Row projected = both.Project({2, 0});
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected[0].AsInteger(), 2);
  EXPECT_EQ(projected[1].AsInteger(), 1);
}

TEST(RowTest, NullSafeEqualityAndHash) {
  Row a({Value::Integer(1), Value::Null(TypeId::kString)});
  Row b({Value::Integer(1), Value::Null(TypeId::kString)});
  Row c({Value::Integer(1), Value::String("x")});
  EXPECT_TRUE(a.NullSafeEquals(b));
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a.NullSafeEquals(c));
}

TEST(RowTest, CompareIsTotalOrder) {
  Row null_row({Value::Null(TypeId::kInteger)});
  Row one({Value::Integer(1)});
  Row two({Value::Integer(2)});
  EXPECT_LT(null_row.Compare(one), 0);
  EXPECT_LT(one.Compare(two), 0);
  EXPECT_EQ(one.Compare(one), 0);
}

TEST(SchemaTest, ResolveQualifiedAndUnqualified) {
  Schema schema({{"S", "SNO", TypeId::kInteger, false},
                 {"S", "SNAME", TypeId::kString, true},
                 {"P", "SNO", TypeId::kInteger, false}});
  auto r1 = schema.Resolve("S", "SNO");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 0u);
  // Unqualified SNO is ambiguous between S and P.
  auto r2 = schema.Resolve("", "SNO");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kBindError);
  // Unqualified SNAME is unique.
  auto r3 = schema.Resolve("", "sname");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 1u);
  EXPECT_FALSE(schema.Resolve("X", "SNO").ok());
}

TEST(SchemaTest, ConcatProjectQualify) {
  Schema a({{"S", "SNO", TypeId::kInteger, false}});
  Schema b({{"P", "PNO", TypeId::kInteger, false}});
  Schema both = Schema::Concat(a, b);
  EXPECT_EQ(both.num_columns(), 2u);
  Schema projected = both.Project({1});
  EXPECT_EQ(projected.column(0).name, "PNO");
  Schema renamed = both.WithQualifier("X");
  EXPECT_EQ(renamed.column(0).qualifier, "X");
  EXPECT_EQ(renamed.column(1).qualifier, "X");
}

TEST(SchemaTest, UnionCompatibility) {
  Schema a({{"", "X", TypeId::kInteger, false}});
  Schema b({{"", "Y", TypeId::kDouble, true}});
  Schema c({{"", "Z", TypeId::kString, true}});
  EXPECT_TRUE(a.UnionCompatible(b));  // numeric widening
  EXPECT_FALSE(a.UnionCompatible(c));
  Schema two({{"", "X", TypeId::kInteger, false},
              {"", "Y", TypeId::kInteger, false}});
  EXPECT_FALSE(a.UnionCompatible(two));
}

}  // namespace
}  // namespace uniqopt
