#ifndef UNIQOPT_IMS_IMS_DATABASE_H_
#define UNIQOPT_IMS_IMS_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ims/segment.h"

namespace uniqopt {
namespace ims {

/// Orders root keys for the HIDAM primary index.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// A hierarchical database instance: HIDAM organization (key-sequenced
/// root index; parent-child/twin pointers below), per Figure 2 of the
/// paper and the IMS/ESA manual it cites.
class ImsDatabase {
 public:
  explicit ImsDatabase(ImsDatabaseDef def) : def_(std::move(def)) {}

  ImsDatabase(const ImsDatabase&) = delete;
  ImsDatabase& operator=(const ImsDatabase&) = delete;

  const ImsDatabaseDef& def() const { return def_; }

  /// Inserts a root segment; keys must be unique.
  Result<Segment*> InsertRoot(Row fields);

  /// Inserts a child under `parent`, maintaining twin-chain key order.
  Result<Segment*> InsertChild(Segment* parent, const std::string& type_name,
                               Row fields);

  /// Root with exactly this key, if present (HIDAM index lookup).
  Segment* FindRoot(const Value& key) const;
  /// First root in key order.
  Segment* FirstRoot() const;
  /// Next root after `root` in key order.
  Segment* NextRoot(const Segment* root) const;

  size_t num_segments() const { return segments_.size(); }

 private:
  ImsDatabaseDef def_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::map<Value, Segment*, ValueLess> roots_;
};

}  // namespace ims
}  // namespace uniqopt

#endif  // UNIQOPT_IMS_IMS_DATABASE_H_
