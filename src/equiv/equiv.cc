#include "equiv/equiv.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "equiv/canonical.h"
#include "equiv/symbolic.h"
#include "expr/normalize.h"

namespace uniqopt {
namespace equiv {
namespace {

Certificate Make(const AppliedRewrite& r, Verdict v, const char* method,
                 std::string detail, std::string witness = "") {
  Certificate cert;
  cert.verdict = v;
  cert.rule = RewriteRuleIdToString(r.rule);
  cert.method = method;
  cert.detail = std::move(detail);
  cert.witness = std::move(witness);
  return cert;
}

Certificate Proven(const AppliedRewrite& r, const char* method,
                   std::string detail) {
  return Make(r, Verdict::kProven, method, std::move(detail));
}

Certificate Unproven(const AppliedRewrite& r, const char* method,
                     std::string detail) {
  return Make(r, Verdict::kUnproven, method, std::move(detail));
}

Certificate Refuted(const AppliedRewrite& r, const char* method,
                    std::string detail, std::string witness) {
  return Make(r, Verdict::kRefuted, method, std::move(detail),
              std::move(witness));
}

/// The join side of the subquery rules: Project over Select over Product.
struct JoinShape {
  const ProjectNode* proj = nullptr;
  const SelectNode* sel = nullptr;
  const ProductNode* prod = nullptr;
};

bool MatchJoinShape(const PlanPtr& plan, JoinShape* out) {
  out->proj = As<ProjectNode>(plan);
  if (out->proj == nullptr) return false;
  out->sel = As<SelectNode>(out->proj->input());
  if (out->sel == nullptr) return false;
  out->prod = As<ProductNode>(out->sel->input());
  return out->prod != nullptr;
}

/// Accepts both evidence shapes for the EXISTS side: the full
/// Project(Exists(...)) subtree and a bare ExistsNode (forged or legacy
/// evidence). `proj_out` receives the projection when present.
const ExistsNode* UnwrapExists(const PlanPtr& plan,
                               const ProjectNode** proj_out) {
  *proj_out = nullptr;
  if (const auto* proj = As<ProjectNode>(plan)) {
    *proj_out = proj;
    return As<ExistsNode>(proj->input());
  }
  return As<ExistsNode>(plan);
}

/// Does table `ti` of `spec` have a candidate key fully inside `bound`?
bool TableCovered(const SymbolicSpec& spec, const std::vector<char>& bound,
                  size_t ti) {
  const SymbolicTable& t = spec.tables[ti];
  for (const KeyConstraint& key : t.get->table().keys()) {
    bool all = true;
    for (size_t kc : key.columns) {
      if (t.offset + kc >= bound.size() || !bound[t.offset + kc]) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

/// The correlated block of an EXISTS: subquery tables shifted past the
/// outer row, inner conjuncts and correlation conjuncts over the
/// concatenated Concat(outer, sub) frame. Outer tables deliberately stay
/// out of `spec.tables` — the Theorem 2 obligation fixes one outer row
/// and asks how many subquery rows can match it.
struct CorrelatedSpec {
  SymbolicSpec spec;
  Schema frame;
  size_t outer_width = 0;
};

bool BuildCorrelatedSpec(const ExistsNode& exists, CorrelatedSpec* out) {
  SymbolicSpec inner;
  if (!DecomposeBlock(exists.sub(), &inner)) return false;
  const Schema& outer_schema = exists.outer()->schema();
  size_t ow = outer_schema.num_columns();
  out->outer_width = ow;
  out->spec.width = ow + inner.width;
  out->spec.has_exists_filter = inner.has_exists_filter;
  for (const SymbolicTable& t : inner.tables) {
    out->spec.tables.push_back({t.get, t.offset + ow});
  }
  for (const ExprPtr& c : inner.conjuncts) {
    out->spec.conjuncts.push_back(ShiftColumns(c, ow));
  }
  for (const ExprPtr& c : FlattenAnd(exists.correlation())) {
    if (!c->IsTrueLiteral()) out->spec.conjuncts.push_back(c);
  }
  out->frame = Schema::Concat(outer_schema, exists.sub()->schema());
  return true;
}

/// Theorem 2's semantic obligation: with the outer row fixed, at most
/// one subquery row can match. Proven when the correlation equalities
/// bind a candidate key of every subquery table; refuted when the chase
/// constructs two distinct matching subquery rows; unproven otherwise.
Certificate CertifyAtMostOneMatch(const AppliedRewrite& r,
                                  const ExistsNode& exists,
                                  const char* method) {
  CorrelatedSpec cs;
  if (!BuildCorrelatedSpec(exists, &cs)) {
    return Unproven(r, method,
                    "subquery side does not decompose into a σ/×/Get block");
  }
  std::vector<char> bound(cs.spec.width, 0);
  for (size_t c = 0; c < cs.outer_width; ++c) bound[c] = 1;
  bound = CloseOverEqualities(cs.spec, std::move(bound));
  size_t uncovered = 0;
  if (AllKeysCovered(cs.spec, bound, &uncovered)) {
    return Proven(r, method,
                  "the correlation equalities bind a candidate key of every "
                  "subquery table per outer row — at most one match "
                  "(Theorem 2)");
  }
  std::string blocked;
  for (size_t ti = 0; ti < cs.spec.tables.size(); ++ti) {
    if (TableCovered(cs.spec, bound, ti)) continue;
    WitnessRequest req{&cs.spec, &cs.frame, bound, ti};
    std::string why;
    if (auto w = BuildDuplicateWitness(req, &why)) {
      return Refuted(r, method,
                     "two distinct subquery rows match one outer row — "
                     "EXISTS emits the outer tuple once, the join twice",
                     *w);
    }
    if (blocked.empty()) blocked = why;
  }
  return Unproven(r, method,
                  "cannot bound the subquery match count: " + blocked);
}

/// Is `e` exactly `#i = #(n+i)` (either orientation)?
bool MatchEqPair(const ExprPtr& e, size_t n, size_t* idx) {
  if (e->kind() != ExprKind::kComparison ||
      e->compare_op() != CompareOp::kEq) {
    return false;
  }
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kColumnRef) {
    return false;
  }
  size_t a = l->column_index();
  size_t b = r->column_index();
  if (a > b) std::swap(a, b);
  if (a >= n || b != a + n) return false;
  *idx = a;
  return true;
}

/// Is `e` the null-safe pair `(#i IS NULL AND #(n+i) IS NULL) OR
/// #i = #(n+i)` in any operand order?
bool MatchNullSafePair(const ExprPtr& e, size_t n, size_t* idx) {
  if (e->kind() != ExprKind::kOr || e->num_children() != 2) return false;
  const ExprPtr* and_side = nullptr;
  const ExprPtr* eq_side = nullptr;
  for (const ExprPtr& c : e->children()) {
    if (c->kind() == ExprKind::kAnd) {
      and_side = &c;
    } else {
      eq_side = &c;
    }
  }
  if (and_side == nullptr || eq_side == nullptr) return false;
  size_t eq_idx = 0;
  if (!MatchEqPair(*eq_side, n, &eq_idx)) return false;
  if ((*and_side)->num_children() != 2) return false;
  std::set<size_t> nulled;
  for (const ExprPtr& c : (*and_side)->children()) {
    if (c->kind() != ExprKind::kIsNull ||
        c->child(0)->kind() != ExprKind::kColumnRef) {
      return false;
    }
    nulled.insert(c->child(0)->column_index());
  }
  if (nulled != std::set<size_t>{eq_idx, eq_idx + n}) return false;
  *idx = eq_idx;
  return true;
}

/// Audit of an EXISTS correlation standing in for the tuple-level `=!`
/// match of a set operation (Theorem 3). Every outer column must be
/// compared null-safely — or with plain `=` when at least one side is
/// NOT NULL, where the two coincide. Plain `=` over a column nullable on
/// both sides is the 3VL unsoundness the paper warns about: refuted with
/// a NULL-tuple witness.
struct CorrAudit {
  enum Status { kOk, kUnproven, kRefuted } status = kOk;
  std::string detail;
  std::string witness;
};

CorrAudit AuditSetOpCorrelation(const ExistsNode& exists) {
  const Schema& outer_s = exists.outer()->schema();
  const Schema& sub_s = exists.sub()->schema();
  size_t n = outer_s.num_columns();
  if (sub_s.num_columns() != n) {
    return {CorrAudit::kUnproven, "operands are not union-compatible", ""};
  }
  std::vector<char> seen(n, 0);
  std::vector<char> safe(n, 0);
  for (const ExprPtr& c : FlattenAnd(exists.correlation())) {
    if (c->IsTrueLiteral()) continue;
    size_t idx = 0;
    if (MatchNullSafePair(c, n, &idx)) {
      seen[idx] = 1;
      safe[idx] = 1;
      continue;
    }
    if (MatchEqPair(c, n, &idx)) {
      seen[idx] = 1;
      continue;
    }
    return {CorrAudit::kUnproven,
            "unrecognized correlation conjunct: " + CanonicalExprText(c), ""};
  }
  for (size_t i = 0; i < n; ++i) {
    const std::string name = outer_s.column(i).QualifiedName();
    if (!seen[i]) {
      return {CorrAudit::kUnproven,
              "correlation never compares column " + name, ""};
    }
    if (safe[i]) continue;
    if (!outer_s.column(i).nullable || !sub_s.column(i).nullable) continue;
    std::string w =
        "3VL counterexample on " + name +
        ": place a tuple t with t[" + name +
        "] = NULL in both operands; the set operation's `=!` tuple match "
        "accepts t =! t (multiplicity 1) while the plain `=` correlation "
        "evaluates UNKNOWN and the EXISTS drops t (multiplicity 0)";
    return {CorrAudit::kRefuted,
            "plain `=` on correlation column " + name +
                ", which is nullable on both sides (Theorem 3 requires the "
                "null-safe `=!` form)",
            std::move(w)};
  }
  return {CorrAudit::kOk, "", ""};
}

// ---------------------------------------------------------------------
// Per-rule certifiers.
// ---------------------------------------------------------------------

Certificate CertifyDistinctRemoval(const AppliedRewrite& r) {
  const char* method = "duplicate-freeness";
  if (const auto* bp = As<ProjectNode>(r.evidence.before)) {
    const auto* ap = As<ProjectNode>(r.evidence.after);
    if (ap == nullptr) {
      return Unproven(r, method, "after side is not a projection");
    }
    if (bp->mode() != DuplicateMode::kDist ||
        ap->mode() != DuplicateMode::kAll) {
      return Unproven(r, method, "projection modes are not Dist → All");
    }
    if (bp->columns() != ap->columns() ||
        !CanonicallyEqualPlans(bp->input(), ap->input())) {
      return Unproven(r, method, "projection columns or inputs differ");
    }
    if (SymbolicallyDuplicateFree(r.evidence.after)) {
      return Proven(r, method,
                    "π_All output re-derived duplicate-free from declared "
                    "keys alone (Theorem 1)");
    }
    SymbolicSpec spec;
    if (!DecomposeProjection(r.evidence.after, &spec)) {
      return Unproven(r, method,
                      "projection input does not decompose into a σ/×/Get "
                      "block");
    }
    std::vector<char> bound(spec.width, 0);
    for (size_t c : spec.columns) {
      if (c < spec.width) bound[c] = 1;
    }
    bound = CloseOverEqualities(spec, std::move(bound));
    const Schema& frame = ap->input()->schema();
    std::string blocked;
    for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
      if (TableCovered(spec, bound, ti)) continue;
      WitnessRequest req{&spec, &frame, bound, ti};
      std::string why;
      if (auto w = BuildDuplicateWitness(req, &why)) {
        return Refuted(r, method,
                       "DISTINCT removal changes multiplicities: π_Dist "
                       "emits the witness tuple once, π_All twice",
                       *w);
      }
      if (blocked.empty()) blocked = why;
    }
    return Unproven(r, method,
                    "no declared key covers the projection; chase blocked: " +
                        blocked);
  }
  if (const auto* bs = As<SetOpNode>(r.evidence.before)) {
    const auto* as = As<SetOpNode>(r.evidence.after);
    if (as == nullptr) {
      return Unproven(r, method, "after side is not a set operation");
    }
    if (bs->op() != as->op() || bs->mode() != DuplicateMode::kDist ||
        as->mode() != DuplicateMode::kAll) {
      return Unproven(r, method, "set-operation modes are not Dist → All");
    }
    if (!CanonicallyEqualPlans(bs->left(), as->left()) ||
        !CanonicallyEqualPlans(bs->right(), as->right())) {
      return Unproven(r, method, "set-operation operands differ");
    }
    if (as->op() == SetOpAlgebra::kIntersect) {
      if (SymbolicallyDuplicateFree(as->left()) ||
          SymbolicallyDuplicateFree(as->right())) {
        return Proven(r, method,
                      "an INTERSECT ALL operand is duplicate-free, so "
                      "min(l, r) never exceeds 1");
      }
    } else if (SymbolicallyDuplicateFree(as->left())) {
      return Proven(r, method,
                    "EXCEPT ALL's left operand is duplicate-free, so "
                    "l − r never exceeds 1");
    }
    return Unproven(r, method,
                    "cannot re-derive operand duplicate-freeness from "
                    "declared keys");
  }
  return Unproven(r, method, "unexpected before-plan shape");
}

/// Shared structural matching for the EXISTS ⇄ join rules. On success
/// fills the join shape and the EXISTS node and verifies operands,
/// predicate split, and an outer-only projection.
struct SubqueryJoinMatch {
  const ExistsNode* exists = nullptr;
  const ProjectNode* exists_proj = nullptr;  // nullptr for bare evidence
  JoinShape join;
  std::string failure;  // non-empty ⇒ structural mismatch
};

SubqueryJoinMatch MatchSubqueryJoin(const PlanPtr& exists_side,
                                    const PlanPtr& join_side) {
  SubqueryJoinMatch m;
  m.exists = UnwrapExists(exists_side, &m.exists_proj);
  if (m.exists == nullptr) {
    m.failure = "no EXISTS subtree in the evidence";
    return m;
  }
  if (m.exists->negated()) {
    m.failure = "NOT EXISTS does not correspond to a plain join";
    return m;
  }
  if (!MatchJoinShape(join_side, &m.join)) {
    m.failure = "join side is not Project(Select(Product))";
    return m;
  }
  // The EXISTS outer operand is the join's left input, possibly behind a
  // Select carrying the outer-only conjuncts of the join predicate.
  std::vector<std::string> outer_conjs;
  if (!CanonicallyEqualPlans(m.exists->outer(), m.join.prod->left())) {
    const auto* osel = As<SelectNode>(m.exists->outer());
    if (osel == nullptr ||
        !CanonicallyEqualPlans(osel->input(), m.join.prod->left())) {
      m.failure = "EXISTS outer operand does not match the join's left input";
      return m;
    }
    outer_conjs = CanonicalConjunctSet(osel->predicate());
  }
  if (!CanonicallyEqualPlans(m.exists->sub(), m.join.prod->right())) {
    m.failure = "EXISTS subquery does not match the join's right input";
    return m;
  }
  std::vector<std::string> rebuilt = std::move(outer_conjs);
  std::vector<std::string> corr = CanonicalConjunctSet(m.exists->correlation());
  rebuilt.insert(rebuilt.end(), corr.begin(), corr.end());
  std::sort(rebuilt.begin(), rebuilt.end());
  if (rebuilt != CanonicalConjunctSet(m.join.sel->predicate())) {
    m.failure =
        "join predicate does not split into outer filter + correlation";
    return m;
  }
  if (m.exists_proj != nullptr &&
      m.exists_proj->columns() != m.join.proj->columns()) {
    m.failure = "projection columns differ between the two sides";
    return m;
  }
  size_t left_width = m.join.prod->left()->schema().num_columns();
  for (size_t c : m.join.proj->columns()) {
    if (c >= left_width) {
      m.failure = "projection reaches into the subquery side";
      return m;
    }
  }
  return m;
}

Certificate CertifySubqueryToJoin(const AppliedRewrite& r) {
  const char* method = "Theorem 2";
  SubqueryJoinMatch m = MatchSubqueryJoin(r.evidence.before, r.evidence.after);
  if (!m.failure.empty()) return Unproven(r, method, m.failure);
  if (m.exists_proj != nullptr &&
      m.exists_proj->mode() != m.join.proj->mode()) {
    return Unproven(r, method, "projection modes differ between the sides");
  }
  if (m.join.proj->mode() == DuplicateMode::kDist) {
    return Proven(r, "distinct projection",
                  "π_Dist over outer columns only: a join row exists iff "
                  "the EXISTS match does, and DISTINCT erases the match "
                  "count");
  }
  return CertifyAtMostOneMatch(r, *m.exists, method);
}

Certificate CertifySubqueryToDistinctJoin(const AppliedRewrite& r) {
  const char* method = "Corollary 1";
  SubqueryJoinMatch m = MatchSubqueryJoin(r.evidence.before, r.evidence.after);
  if (!m.failure.empty()) return Unproven(r, method, m.failure);
  if (m.join.proj->mode() != DuplicateMode::kDist) {
    return Unproven(r, method, "rewritten projection is not DISTINCT");
  }
  if (m.exists_proj != nullptr &&
      m.exists_proj->mode() == DuplicateMode::kDist) {
    return Proven(r, "distinct projection",
                  "π_Dist on both sides over outer columns only: the "
                  "distinct projected tuples coincide regardless of match "
                  "counts");
  }
  // π_All before, π_Dist after: sound only when the outer projection was
  // already duplicate-free (Corollary 1); otherwise the introduced
  // DISTINCT collapses real duplicates.
  PlanPtr probe = ProjectNode::Make(m.exists->outer(), DuplicateMode::kAll,
                                    m.join.proj->columns());
  if (SymbolicallyDuplicateFree(probe)) {
    return Proven(r, method,
                  "the outer block's projection is re-derived "
                  "duplicate-free from declared keys, so adding DISTINCT "
                  "is a no-op");
  }
  SymbolicSpec spec;
  if (DecomposeProjection(probe, &spec)) {
    std::vector<char> bound(spec.width, 0);
    for (size_t c : spec.columns) {
      if (c < spec.width) bound[c] = 1;
    }
    bound = CloseOverEqualities(spec, std::move(bound));
    const Schema& frame = m.exists->outer()->schema();
    for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
      if (TableCovered(spec, bound, ti)) continue;
      WitnessRequest req{&spec, &frame, bound, ti};
      std::string why;
      if (auto w = BuildDuplicateWitness(req, &why)) {
        return Refuted(r, method,
                       "the rewrite introduces DISTINCT over a "
                       "duplicate-carrying outer projection",
                       *w);
      }
    }
  }
  return Unproven(r, method,
                  "cannot re-derive duplicate-freeness of the outer "
                  "projection from declared keys");
}

Certificate CertifyJoinToSubquery(const AppliedRewrite& r) {
  const char* method = "Theorem 2 (converse)";
  SubqueryJoinMatch m = MatchSubqueryJoin(r.evidence.after, r.evidence.before);
  if (!m.failure.empty()) return Unproven(r, method, m.failure);
  if (m.exists_proj != nullptr &&
      m.exists_proj->mode() != m.join.proj->mode()) {
    return Unproven(r, method, "projection modes differ between the sides");
  }
  if (m.join.proj->mode() == DuplicateMode::kDist) {
    return Proven(r, "distinct projection",
                  "π_Dist over outer columns only: the join row exists iff "
                  "the EXISTS match does, and DISTINCT erases the match "
                  "count");
  }
  return CertifyAtMostOneMatch(r, *m.exists, method);
}

Certificate CertifySetOpToExists(const AppliedRewrite& r) {
  const char* method = "Theorem 3";
  const auto* setop = As<SetOpNode>(r.evidence.before);
  const auto* ex = As<ExistsNode>(r.evidence.after);
  if (setop == nullptr || ex == nullptr) {
    return Unproven(r, method, "expected SetOp → Exists evidence");
  }
  bool except = r.rule == RewriteRuleId::kExceptToNotExists;
  if (except != ex->negated()) {
    return Unproven(r, method,
                    "EXISTS negation does not match the set operation");
  }
  if (setop->op() !=
      (except ? SetOpAlgebra::kExcept : SetOpAlgebra::kIntersect)) {
    return Unproven(r, method, "set-operation kind does not match the rule");
  }
  if (r.rule == RewriteRuleId::kIntersectToExists &&
      setop->mode() != DuplicateMode::kDist) {
    return Unproven(r, method, "rule expects INTERSECT DISTINCT");
  }
  if (r.rule == RewriteRuleId::kIntersectAllToExists &&
      setop->mode() != DuplicateMode::kAll) {
    return Unproven(r, method, "rule expects INTERSECT ALL");
  }
  bool direct = CanonicallyEqualPlans(ex->outer(), setop->left()) &&
                CanonicallyEqualPlans(ex->sub(), setop->right());
  bool swapped = !except &&
                 CanonicallyEqualPlans(ex->outer(), setop->right()) &&
                 CanonicallyEqualPlans(ex->sub(), setop->left());
  if (!direct && !swapped) {
    return Unproven(r, method,
                    "EXISTS operands do not match the set operation's");
  }
  CorrAudit audit = AuditSetOpCorrelation(*ex);
  if (audit.status == CorrAudit::kRefuted) {
    return Refuted(r, method, audit.detail, audit.witness);
  }
  if (audit.status == CorrAudit::kUnproven) {
    return Unproven(r, method, audit.detail);
  }
  if (!SymbolicallyDuplicateFree(ex->outer())) {
    return Unproven(r, method,
                    "cannot re-derive duplicate-freeness of the EXISTS "
                    "outer operand from declared keys");
  }
  return Proven(r, method,
                "operands match, every correlation column compares "
                "null-safely (or is NOT NULL on one side), and the outer "
                "operand is duplicate-free");
}

Certificate CertifyExistsToIntersect(const AppliedRewrite& r) {
  const char* method = "Theorem 3 (converse)";
  const auto* ex = As<ExistsNode>(r.evidence.before);
  const auto* setop = As<SetOpNode>(r.evidence.after);
  if (ex == nullptr || setop == nullptr) {
    return Unproven(r, method, "expected Exists → SetOp evidence");
  }
  if (ex->negated() || setop->op() != SetOpAlgebra::kIntersect ||
      setop->mode() != DuplicateMode::kDist) {
    return Unproven(r, method,
                    "rule expects positive EXISTS → INTERSECT DISTINCT");
  }
  bool direct = CanonicallyEqualPlans(ex->outer(), setop->left()) &&
                CanonicallyEqualPlans(ex->sub(), setop->right());
  bool swapped = CanonicallyEqualPlans(ex->outer(), setop->right()) &&
                 CanonicallyEqualPlans(ex->sub(), setop->left());
  if (!direct && !swapped) {
    return Unproven(r, method,
                    "INTERSECT operands do not match the EXISTS operands");
  }
  CorrAudit audit = AuditSetOpCorrelation(*ex);
  if (audit.status == CorrAudit::kRefuted) {
    return Refuted(r, method, audit.detail, audit.witness);
  }
  if (audit.status == CorrAudit::kUnproven) {
    return Unproven(r, method, audit.detail);
  }
  if (!SymbolicallyDuplicateFree(ex->outer())) {
    return Unproven(r, method,
                    "cannot re-derive duplicate-freeness of the EXISTS "
                    "outer operand from declared keys");
  }
  return Proven(r, method,
                "the correlation is exactly the null-safe column-wise "
                "tuple match and the outer operand is duplicate-free");
}

Certificate CertifyGroupByElimination(const AppliedRewrite& r) {
  const char* method = "singleton groups";
  const auto* agg = As<AggregateNode>(r.evidence.before);
  const auto* ap = As<ProjectNode>(r.evidence.after);
  if (agg == nullptr || ap == nullptr) {
    return Unproven(r, method, "expected Aggregate → Project evidence");
  }
  if (ap->mode() != DuplicateMode::kAll ||
      !CanonicallyEqualPlans(ap->input(), agg->input())) {
    return Unproven(r, method,
                    "after side is not π_All over the aggregation input");
  }
  if (agg->group_columns().empty()) {
    return Unproven(r, method, "no grouping columns (scalar aggregate)");
  }
  std::vector<size_t> expected = agg->group_columns();
  for (const AggregateItem& item : agg->aggregates()) {
    if (item.func != AggFunc::kSum && item.func != AggFunc::kMin &&
        item.func != AggFunc::kMax) {
      return Unproven(r, method,
                      "only SUM/MIN/MAX equal their argument on singleton "
                      "groups");
    }
    expected.push_back(item.arg_column);
  }
  if (expected != ap->columns()) {
    return Unproven(r, method,
                    "projection is not group columns followed by aggregate "
                    "arguments");
  }
  SymbolicSpec spec;
  if (!DecomposeBlock(agg->input(), &spec)) {
    return Unproven(r, method,
                    "aggregation input does not decompose into a σ/×/Get "
                    "block");
  }
  std::vector<char> bound(spec.width, 0);
  for (size_t c : agg->group_columns()) {
    if (c < spec.width) bound[c] = 1;
  }
  bound = CloseOverEqualities(spec, std::move(bound));
  if (AllKeysCovered(spec, bound, nullptr)) {
    return Proven(r, method,
                  "the grouping columns bind a candidate key of every "
                  "input table — every group holds exactly one row");
  }
  const Schema& frame = agg->input()->schema();
  std::string blocked;
  for (size_t ti = 0; ti < spec.tables.size(); ++ti) {
    if (TableCovered(spec, bound, ti)) continue;
    WitnessRequest req{&spec, &frame, bound, ti};
    std::string why;
    if (auto w = BuildDuplicateWitness(req, &why)) {
      return Refuted(r, method,
                     "two input rows fall into one group: the aggregation "
                     "emits one row where the projection emits two",
                     *w);
    }
    if (blocked.empty()) blocked = why;
  }
  return Unproven(r, method,
                  "grouping columns do not bind every table's key; chase "
                  "blocked: " + blocked);
}

Certificate CertifyJoinElimination(const AppliedRewrite& r) {
  const char* method = "inclusion dependency";
  SymbolicSpec bspec;
  SymbolicSpec aspec;
  if (!DecomposeProjection(r.evidence.before, &bspec) ||
      !DecomposeProjection(r.evidence.after, &aspec)) {
    return Unproven(r, method,
                    "evidence sides do not decompose into projected blocks");
  }
  if (bspec.has_exists_filter || aspec.has_exists_filter) {
    return Unproven(r, method, "an EXISTS filter obscures the block");
  }
  if (bspec.mode != aspec.mode) {
    return Unproven(r, method, "projection modes differ");
  }
  // Identify the eliminated table: the sides must list the same tables in
  // order, minus exactly one.
  size_t victim = bspec.tables.size();
  {
    size_t ai = 0;
    for (size_t bi = 0; bi < bspec.tables.size(); ++bi) {
      const GetNode* bg = bspec.tables[bi].get;
      if (ai < aspec.tables.size() &&
          aspec.tables[ai].get->table().name() == bg->table().name() &&
          aspec.tables[ai].get->alias() == bg->alias()) {
        ++ai;
        continue;
      }
      if (victim != bspec.tables.size()) {
        return Unproven(r, method, "more than one table was eliminated");
      }
      victim = bi;
    }
    if (ai != aspec.tables.size() || victim == bspec.tables.size()) {
      return Unproven(r, method,
                      "table sets do not differ by exactly one table");
    }
  }
  const SymbolicTable& vt = bspec.tables[victim];
  const TableDef& vdef = vt.get->table();
  size_t vw = vdef.schema().num_columns();
  // Old-frame → new-frame column mapping for the surviving tables.
  std::vector<std::optional<size_t>> to_new(bspec.width);
  {
    size_t ai = 0;
    for (size_t bi = 0; bi < bspec.tables.size(); ++bi) {
      if (bi == victim) continue;
      size_t w = bspec.tables[bi].get->table().schema().num_columns();
      for (size_t c = 0; c < w; ++c) {
        to_new[bspec.tables[bi].offset + c] = aspec.tables[ai].offset + c;
      }
      ++ai;
    }
  }
  if (bspec.columns.size() != aspec.columns.size()) {
    return Unproven(r, method, "projection widths differ");
  }
  for (size_t i = 0; i < bspec.columns.size(); ++i) {
    size_t oc = bspec.columns[i];
    if (oc >= bspec.width || !to_new[oc].has_value()) {
      return Unproven(r, method,
                      "projection references the eliminated table");
    }
    if (*to_new[oc] != aspec.columns[i]) {
      return Unproven(r, method, "projection remap mismatch");
    }
  }
  auto in_victim = [&](size_t c) {
    return c >= vt.offset && c < vt.offset + vw;
  };
  // Classify the before conjuncts: anything touching the victim must be
  // a plain column-pair equality; everything else must survive remapped.
  std::vector<std::pair<size_t, size_t>> pairs;
  std::multiset<std::string> survivors;
  for (const ExprPtr& c : bspec.conjuncts) {
    std::vector<size_t> cols;
    c->CollectColumns(&cols);
    bool touches = false;
    for (size_t col : cols) touches = touches || in_victim(col);
    if (touches) {
      auto atom = ClassifyEqualityAtom(c);
      if (!atom.has_value() || !atom->column_pair) {
        return Unproven(r, method,
                        "a non-join predicate touches the eliminated "
                        "table: " + CanonicalExprText(c));
      }
      pairs.emplace_back(atom->left, atom->right);
      continue;
    }
    std::vector<size_t> mapping(bspec.width, 0);
    for (size_t col : cols) {
      if (!to_new[col].has_value()) {
        return Unproven(r, method, "conjunct references an unmapped column");
      }
      mapping[col] = *to_new[col];
    }
    survivors.insert(CanonicalExprText(RemapColumns(c, mapping)));
  }
  auto has_pair = [&](size_t a, size_t b) {
    for (const auto& p : pairs) {
      if ((p.first == a && p.second == b) ||
          (p.first == b && p.second == a)) {
        return true;
      }
    }
    return false;
  };
  // Re-derive the inclusion dependency: some surviving table must carry a
  // NOT NULL foreign key onto a candidate key of the victim, with the
  // full key join present among the victim-touching equalities, and no
  // victim-touching equality outside that key.
  std::string fk_gap = "no foreign key onto " + vdef.name() + " found";
  bool fk_ok = false;
  std::string fk_name;
  for (size_t si = 0; si < bspec.tables.size() && !fk_ok; ++si) {
    if (si == victim) continue;
    const SymbolicTable& st = bspec.tables[si];
    for (const ForeignKeyConstraint& fk : st.get->table().foreign_keys()) {
      if (fk.ref_table != vdef.name()) continue;
      std::vector<size_t> refs;
      bool ok = true;
      for (const std::string& rc : fk.ref_columns) {
        auto ord = vdef.ColumnOrdinal(rc);
        if (!ord.ok()) {
          ok = false;
          break;
        }
        refs.push_back((*ord));
      }
      if (!ok) {
        fk_gap = "foreign key " + fk.name + " references unknown columns";
        continue;
      }
      std::set<size_t> refset(refs.begin(), refs.end());
      bool is_key = false;
      for (const KeyConstraint& key : vdef.keys()) {
        std::set<size_t> ks(key.columns.begin(), key.columns.end());
        if (ks == refset) is_key = true;
      }
      if (!is_key) {
        fk_gap = "foreign key " + fk.name +
                 " does not target a declared candidate key";
        continue;
      }
      for (size_t j = 0; j < fk.columns.size() && ok; ++j) {
        if (st.get->table().schema().column(fk.columns[j]).nullable) {
          fk_gap = "foreign key " + fk.name + " has a nullable source column";
          ok = false;
        }
      }
      for (size_t j = 0; j < fk.columns.size() && ok; ++j) {
        if (!has_pair(st.offset + fk.columns[j], vt.offset + refs[j])) {
          fk_gap = "the full key join for " + fk.name + " is not present";
          ok = false;
        }
      }
      for (const auto& p : pairs) {
        if (!ok) break;
        size_t vcol = in_victim(p.first) ? p.first
                     : in_victim(p.second) ? p.second
                                           : bspec.width;
        if (vcol == bspec.width) continue;  // between survivors
        if (in_victim(p.first) && in_victim(p.second)) {
          fk_gap = "a self-equality inside the eliminated table";
          ok = false;
          break;
        }
        if (refset.count(vcol - vt.offset) == 0) {
          fk_gap = "a join reaches a non-key column of the eliminated table";
          ok = false;
        }
      }
      if (ok) {
        fk_ok = true;
        fk_name = fk.name;
        break;
      }
    }
  }
  if (!fk_ok) return Unproven(r, method, fk_gap);
  // Every after conjunct must be a remapped survivor or an equality
  // derivable by transitivity through one victim column.
  std::vector<size_t> to_old(aspec.width, 0);
  for (size_t oc = 0; oc < bspec.width; ++oc) {
    if (to_new[oc].has_value()) to_old[*to_new[oc]] = oc;
  }
  for (const ExprPtr& c : aspec.conjuncts) {
    std::string txt = CanonicalExprText(c);
    auto it = survivors.find(txt);
    if (it != survivors.end()) {
      survivors.erase(it);
      continue;
    }
    auto atom = ClassifyEqualityAtom(c);
    if (!atom.has_value() || !atom->column_pair ||
        atom->left >= aspec.width || atom->right >= aspec.width) {
      return Unproven(r, method,
                      "unexplained predicate in the rewritten plan: " + txt);
    }
    size_t oa = to_old[atom->left];
    size_t ob = to_old[atom->right];
    bool derived = false;
    for (size_t lc = 0; lc < vw; ++lc) {
      size_t g = vt.offset + lc;
      if (has_pair(oa, g) && has_pair(ob, g)) derived = true;
    }
    if (!derived) {
      return Unproven(r, method,
                      "equality in the rewritten plan is not derivable by "
                      "transitivity: " + txt);
    }
  }
  if (!survivors.empty()) {
    return Unproven(r, method,
                    "a surviving predicate was dropped: " +
                        *survivors.begin());
  }
  return Proven(r, method,
                "NOT NULL foreign key " + fk_name +
                    " onto a candidate key of " + vdef.name() +
                    " re-derived: the eliminated table contributes exactly "
                    "one row per surviving row");
}

Certificate CertifyPredicateRemoval(const AppliedRewrite& r) {
  const char* method = "CHECK implication";
  const auto* bsel = As<SelectNode>(r.evidence.before);
  if (bsel == nullptr) {
    return Unproven(r, method, "before side is not a selection");
  }
  const PlanPtr& input = bsel->input();
  std::vector<std::string> after_texts;
  if (!CanonicallyEqualPlans(r.evidence.after, input)) {
    const auto* asel = As<SelectNode>(r.evidence.after);
    if (asel == nullptr || !CanonicallyEqualPlans(asel->input(), input)) {
      return Unproven(r, method,
                      "after side is not the same block minus conjuncts");
    }
    after_texts = CanonicalConjunctSet(asel->predicate());
  }
  // Dropped set = before conjuncts minus after conjuncts; the after side
  // must not invent anything.
  std::multiset<std::string> remaining(after_texts.begin(), after_texts.end());
  std::vector<ExprPtr> dropped;
  for (const ExprPtr& c : FlattenAnd(bsel->predicate())) {
    if (c->IsTrueLiteral()) continue;
    auto it = remaining.find(CanonicalExprText(c));
    if (it != remaining.end()) {
      remaining.erase(it);
    } else {
      dropped.push_back(c);
    }
  }
  if (!remaining.empty()) {
    return Unproven(r, method,
                    "the rewritten selection carries a new conjunct: " +
                        *remaining.begin());
  }
  if (dropped.empty()) {
    return Unproven(r, method, "no dropped conjunct identified");
  }
  SymbolicSpec spec;
  if (!DecomposeBlock(input, &spec)) {
    return Unproven(r, method,
                    "selection input does not decompose into a σ/×/Get "
                    "block");
  }
  const Schema& frame = input->schema();
  for (const ExprPtr& d : dropped) {
    std::vector<size_t> cols;
    d->CollectColumns(&cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    if (cols.size() != 1) {
      return Unproven(r, method,
                      "dropped conjunct is not single-column: " +
                          CanonicalExprText(d));
    }
    size_t c = cols[0];
    if (c >= frame.num_columns() || frame.column(c).nullable) {
      return Unproven(r, method,
                      "dropped conjunct guards a nullable column (UNKNOWN "
                      "would change the filter): " + CanonicalExprText(d));
    }
    if (d->kind() == ExprKind::kIsNotNull &&
        d->child(0)->kind() == ExprKind::kColumnRef) {
      continue;  // IS NOT NULL on a NOT NULL column is a tautology.
    }
    const SymbolicTable* owner = nullptr;
    for (const SymbolicTable& t : spec.tables) {
      size_t w = t.get->table().schema().num_columns();
      if (c >= t.offset && c < t.offset + w) owner = &t;
    }
    if (owner == nullptr) {
      return Unproven(r, method, "dropped conjunct's column has no table");
    }
    TestPointResult res = CheckImpliesPredicate(
        owner->get->table(), c - owner->offset, d, c, spec.width);
    if (res != TestPointResult::kHolds) {
      return Unproven(r, method,
                      "CHECK-domain test points do not imply the dropped "
                      "conjunct: " + CanonicalExprText(d));
    }
  }
  return Proven(r, method,
                "every dropped conjunct is implied by a declared CHECK for "
                "all storable values of its NOT NULL column");
}

Certificate CertifyEmptyResult(const AppliedRewrite& r) {
  const char* method = "CHECK contradiction";
  const auto* bsel = As<SelectNode>(r.evidence.before);
  const auto* asel = As<SelectNode>(r.evidence.after);
  if (bsel == nullptr || asel == nullptr) {
    return Unproven(r, method, "expected Select → Select(FALSE) evidence");
  }
  if (!asel->predicate()->IsFalseLiteral()) {
    return Unproven(r, method, "after predicate is not FALSE");
  }
  if (!CanonicallyEqualPlans(asel->input(), bsel->input())) {
    return Unproven(r, method, "selection inputs differ");
  }
  SymbolicSpec spec;
  if (!DecomposeBlock(bsel->input(), &spec)) {
    return Unproven(r, method,
                    "selection input does not decompose into a σ/×/Get "
                    "block");
  }
  const Schema& frame = bsel->input()->schema();
  // Group the single-column conjuncts per column; one unsatisfiable
  // group empties the whole selection.
  std::map<size_t, std::vector<ExprPtr>> per_column;
  for (const ExprPtr& c : FlattenAnd(bsel->predicate())) {
    if (c->IsTrueLiteral()) continue;
    std::vector<size_t> cols;
    c->CollectColumns(&cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    if (cols.size() == 1 && cols[0] < frame.num_columns()) {
      per_column[cols[0]].push_back(c);
    }
  }
  for (const auto& [col, preds] : per_column) {
    bool nullable = frame.column(col).nullable;
    if (!nullable) {
      bool is_null_atom = false;
      for (const ExprPtr& p : preds) {
        if (p->kind() == ExprKind::kIsNull &&
            p->child(0)->kind() == ExprKind::kColumnRef) {
          is_null_atom = true;
        }
      }
      if (is_null_atom) {
        return Proven(r, method,
                      "IS NULL on NOT NULL column " +
                          frame.column(col).QualifiedName() +
                          " can never hold");
      }
    }
    const SymbolicTable* owner = nullptr;
    for (const SymbolicTable& t : spec.tables) {
      size_t w = t.get->table().schema().num_columns();
      if (col >= t.offset && col < t.offset + w) owner = &t;
    }
    if (owner == nullptr) continue;
    ExprPtr combined = preds.size() == 1 ? preds[0] : Expr::MakeAnd(preds);
    TestPointResult res =
        CheckExcludesPredicate(owner->get->table(), col - owner->offset,
                               combined, col, spec.width, nullable);
    if (res == TestPointResult::kHolds) {
      return Proven(r, method,
                    "no storable value of " +
                        frame.column(col).QualifiedName() +
                        " satisfies `" + CanonicalExprText(combined) +
                        "` under its declared CHECKs");
    }
  }
  return Unproven(r, method,
                  "could not re-derive the contradiction from declared "
                  "CHECKs");
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kProven:
      return "EQUIV_PROVEN";
    case Verdict::kUnproven:
      return "EQUIV_UNPROVEN";
    case Verdict::kRefuted:
      return "EQUIV_REFUTED";
  }
  return "EQUIV_UNPROVEN";
}

std::string Certificate::ToString() const {
  std::string out = std::string(VerdictName(verdict)) + " " + rule + " [" +
                    method + "]: " + detail;
  if (!witness.empty()) out += "\n" + witness;
  return out;
}

Certificate CertifyRewrite(const AppliedRewrite& rewrite) {
  if (rewrite.evidence.before == nullptr ||
      rewrite.evidence.after == nullptr) {
    Certificate cert;
    cert.verdict = Verdict::kUnproven;
    cert.rule = RewriteRuleIdToString(rewrite.rule);
    cert.method = "evidence";
    cert.detail = "rewrite evidence carries no plan subtrees";
    return cert;
  }
  switch (rewrite.rule) {
    case RewriteRuleId::kRemoveRedundantDistinct:
      return CertifyDistinctRemoval(rewrite);
    case RewriteRuleId::kSubqueryToJoin:
      return CertifySubqueryToJoin(rewrite);
    case RewriteRuleId::kSubqueryToDistinctJoin:
      return CertifySubqueryToDistinctJoin(rewrite);
    case RewriteRuleId::kIntersectToExists:
    case RewriteRuleId::kIntersectAllToExists:
    case RewriteRuleId::kExceptToNotExists:
      return CertifySetOpToExists(rewrite);
    case RewriteRuleId::kJoinToSubquery:
      return CertifyJoinToSubquery(rewrite);
    case RewriteRuleId::kJoinElimination:
      return CertifyJoinElimination(rewrite);
    case RewriteRuleId::kRemoveImpliedPredicate:
      return CertifyPredicateRemoval(rewrite);
    case RewriteRuleId::kDetectEmptyResult:
      return CertifyEmptyResult(rewrite);
    case RewriteRuleId::kEliminateGroupByOnKey:
      return CertifyGroupByElimination(rewrite);
    case RewriteRuleId::kExistsToIntersect:
      return CertifyExistsToIntersect(rewrite);
  }
  Certificate cert;
  cert.verdict = Verdict::kUnproven;
  cert.rule = RewriteRuleIdToString(rewrite.rule);
  cert.method = "dispatch";
  cert.detail = "no certifier for this rule";
  return cert;
}

}  // namespace equiv
}  // namespace uniqopt
