// Experiment X6/X7 (§5.3, Theorem 3 / Corollary 2, Example 9):
// INTERSECT executed the classical way (evaluate both sides, sort,
// merge) versus the rewritten EXISTS subquery with a null-safe
// correlation predicate.
//
// Series:
//  - SortMergeIntersect: the baseline the paper describes ("most
//    relational query optimizers execute the Intersect operation by
//    evaluating each operand, sorting each result, and merging");
//  - HashIntersect: a modern set-op implementation (secondary baseline);
//  - RewrittenExists: Theorem 3's plan — valid because SUPPLIER.SNO is a
//    key, executed as a hash semi-join;
//  - IntersectAll*: Corollary 2's variants.
//
// Expected shape: the rewrite avoids sorting both inputs; its advantage
// over sort-merge grows with input size, while hash intersect is the
// closer contender.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace uniqopt {
namespace bench {
namespace {

constexpr const char* kExample9 =
    "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
    "INTERSECT "
    "SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR "
    "A.ACITY = 'Hull'";
constexpr const char* kIntersectAll =
    "SELECT SNO FROM SUPPLIER INTERSECT ALL SELECT SNO FROM PARTS";

void RunIntersect(benchmark::State& state, const char* sql, bool rewrite,
                  bool sort_merge) {
  const Database& db =
      GetSupplierDb(static_cast<size_t>(state.range(0)), 10);
  PlanPtr plan = MustBind(db, sql);
  if (rewrite) {
    plan = MustRewrite(plan);
    UNIQOPT_DCHECK_MSG(plan->kind() == PlanKind::kExists,
                       "intersect rewrite did not fire");
  }
  PhysicalOptions physical;
  physical.sort_merge_intersect = sort_merge;
  ExecStats stats;
  size_t rows = 0;
  for (auto _ : state) {
    rows = MustExecute(plan, db, physical, &stats);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rows_sorted"] = static_cast<double>(stats.rows_sorted);
  state.counters["sort_cmp"] = static_cast<double>(stats.sort_comparisons);
}

void BM_Ex9_SortMergeIntersect(benchmark::State& state) {
  RunIntersect(state, kExample9, /*rewrite=*/false, /*sort_merge=*/true);
}
BENCHMARK(BM_Ex9_SortMergeIntersect)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Ex9_HashIntersect(benchmark::State& state) {
  RunIntersect(state, kExample9, /*rewrite=*/false, /*sort_merge=*/false);
}
BENCHMARK(BM_Ex9_HashIntersect)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Ex9_RewrittenExists(benchmark::State& state) {
  RunIntersect(state, kExample9, /*rewrite=*/true, /*sort_merge=*/false);
}
BENCHMARK(BM_Ex9_RewrittenExists)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IntersectAll_Hash(benchmark::State& state) {
  RunIntersect(state, kIntersectAll, /*rewrite=*/false,
               /*sort_merge=*/false);
}
BENCHMARK(BM_IntersectAll_Hash)->Arg(1000)->Arg(10000);

void BM_IntersectAll_RewrittenExists(benchmark::State& state) {
  RunIntersect(state, kIntersectAll, /*rewrite=*/true,
               /*sort_merge=*/false);
}
BENCHMARK(BM_IntersectAll_RewrittenExists)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace bench
}  // namespace uniqopt

UNIQOPT_BENCH_MAIN();
