#include "exec/planner.h"

#include <memory>

#include "exec/index_exec.h"
#include "exec/operators.h"
#include "exec/parallel.h"
#include "expr/equality.h"
#include "expr/normalize.h"

namespace uniqopt {

namespace {

/// Classification of a conjunct relative to a left|right column split.
enum class Side { kLeft, kRight, kBoth, kNone };

Side ClassifySide(const ExprPtr& conjunct, size_t left_width) {
  std::vector<size_t> cols;
  conjunct->CollectColumns(&cols);
  if (cols.empty()) return Side::kNone;
  bool any_left = false;
  bool any_right = false;
  for (size_t c : cols) {
    if (c < left_width) {
      any_left = true;
    } else {
      any_right = true;
    }
  }
  if (any_left && any_right) return Side::kBoth;
  return any_left ? Side::kLeft : Side::kRight;
}

/// An equi-join conjunct col_l = col_r crossing the split, if any.
bool ExtractEquiPair(const ExprPtr& conjunct, size_t left_width,
                     size_t* left_col, size_t* right_col) {
  EqualityAtom atom = ClassifyAtom(conjunct);
  if (atom.type != AtomType::kType2ColumnColumn) return false;
  size_t a = atom.column;
  size_t b = atom.other_column;
  if (a < left_width && b >= left_width) {
    *left_col = a;
    *right_col = b - left_width;
    return true;
  }
  if (b < left_width && a >= left_width) {
    *left_col = b;
    *right_col = a - left_width;
    return true;
  }
  return false;
}

class Lowering {
 public:
  Lowering(const Database& db, const PhysicalOptions& options,
           ExecProfile* profile, ParallelLoweringHooks* hooks)
      : db_(db), options_(options), profile_(profile), hooks_(hooks) {}

  /// Lowers one plan node; with a profile attached, the node's operator
  /// (plus any helper operators lowered inline for it, e.g. pushed-down
  /// filters) is wrapped in a metering ProfileOp. Slots register before
  /// children are lowered, so the profile lists operators in preorder.
  Result<OperatorPtr> Lower(const PlanPtr& plan) {
    if (profile_ == nullptr) return LowerNode(plan);
    size_t slot = profile_->Reserve(depth_);
    ++depth_;
    Result<OperatorPtr> lowered = LowerNode(plan);
    --depth_;
    if (!lowered.ok()) return lowered;
    profile_->SetName(slot, (*lowered)->name());
    return OperatorPtr(new ProfileOp(std::move(*lowered), profile_, slot));
  }

 private:
  Result<OperatorPtr> LowerNode(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kGet:
        return LowerGet(*As<GetNode>(plan));
      case PlanKind::kSelect:
        return LowerSelect(*As<SelectNode>(plan));
      case PlanKind::kProject:
        return LowerProject(*As<ProjectNode>(plan));
      case PlanKind::kProduct: {
        const ProductNode& node = *As<ProductNode>(plan);
        UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr l, Lower(node.left()));
        UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr r, Lower(node.right()));
        return OperatorPtr(
            new NestedLoopProductOp(std::move(l), std::move(r)));
      }
      case PlanKind::kExists:
        return LowerExists(*As<ExistsNode>(plan));
      case PlanKind::kSetOp:
        return LowerSetOp(*As<SetOpNode>(plan));
      case PlanKind::kAggregate: {
        const AggregateNode& node = *As<AggregateNode>(plan);
        UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr child, Lower(node.input()));
        return OperatorPtr(new HashAggregateOp(std::move(child),
                                               node.schema(),
                                               node.group_columns(),
                                               node.aggregates()));
      }
    }
    return Status::Internal("unhandled plan kind in lowering");
  }

  Result<OperatorPtr> LowerGet(const GetNode& node) {
    if (hooks_ != nullptr && &node == hooks_->driver) {
      return OperatorPtr(new MorselScanOp(hooks_->driver_snapshot,
                                          node.schema(), hooks_->cursor));
    }
    UNIQOPT_ASSIGN_OR_RETURN(const Table* table,
                             db_.GetTable(node.table().name()));
    return OperatorPtr(new TableScanOp(table, node.schema()));
  }

  Result<OperatorPtr> LowerProject(const ProjectNode& node) {
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr child, Lower(node.input()));
    OperatorPtr project(
        new ProjectOp(std::move(child), node.columns()));
    if (node.mode() == DuplicateMode::kAll) return project;
    if (options_.distinct == PhysicalOptions::DistinctStrategy::kSort) {
      return OperatorPtr(new SortDistinctOp(std::move(project)));
    }
    return OperatorPtr(new HashDistinctOp(std::move(project)));
  }

  /// Select over a Product becomes a join: single-side conjuncts are
  /// pushed below (when enabled), crossing equi-conjuncts become hash
  /// join keys (when enabled), the rest stays as a residual/filter.
  Result<OperatorPtr> LowerSelect(const SelectNode& node) {
    // A constant-FALSE selection produces nothing; skip the input.
    if (node.predicate()->IsFalseLiteral()) {
      return OperatorPtr(new EmptySourceOp(node.schema()));
    }
    const ProductNode* product = As<ProductNode>(node.input());
    if (product == nullptr) {
      // σ over a bare keyed Get whose equality conjuncts cover a
      // declared key is at most one row: probe the unique index instead
      // of scanning. Parallel lowerings keep the scan — a single probe
      // has nothing to parallelize.
      if (options_.use_indexes && hooks_ == nullptr) {
        const GetNode* get = As<GetNode>(node.input());
        if (get != nullptr) {
          std::optional<IndexLookupMatch> match =
              MatchIndexLookup(get->table(), node.predicate());
          if (match.has_value()) {
            UNIQOPT_ASSIGN_OR_RETURN(const Table* table,
                                     db_.GetTable(get->table().name()));
            ExprPtr residual =
                match->residual.empty()
                    ? nullptr
                    : Expr::MakeAnd(std::move(match->residual));
            return OperatorPtr(new IndexLookupOp(
                table, node.schema(), match->key_index,
                std::move(match->probes), std::move(residual),
                KeyDisplayName(get->table(), match->key_index)));
          }
        }
      }
      UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr child, Lower(node.input()));
      return OperatorPtr(new FilterOp(std::move(child), node.predicate()));
    }
    size_t left_width = product->left()->schema().num_columns();
    std::vector<ExprPtr> left_only;
    std::vector<ExprPtr> right_only;
    std::vector<ExprPtr> residual;
    std::vector<size_t> left_keys;
    std::vector<size_t> right_keys;
    for (const ExprPtr& conj : FlattenAnd(node.predicate())) {
      size_t lc = 0;
      size_t rc = 0;
      if (options_.join == PhysicalOptions::JoinStrategy::kHash &&
          ExtractEquiPair(conj, left_width, &lc, &rc)) {
        left_keys.push_back(lc);
        right_keys.push_back(rc);
        continue;
      }
      if (options_.predicate_pushdown) {
        Side side = ClassifySide(conj, left_width);
        if (side == Side::kLeft) {
          left_only.push_back(conj);
          continue;
        }
        if (side == Side::kRight) {
          right_only.push_back(ShiftColumnsDown(conj, left_width));
          continue;
        }
      }
      residual.push_back(conj);
    }
    // When the build side is a bare Get and the build-side equi-columns
    // are exactly a declared key, the committed unique index already IS
    // the hash table: probe it and skip the build phase entirely.
    if (!left_keys.empty() && options_.use_indexes && hooks_ == nullptr) {
      const GetNode* right_get = As<GetNode>(product->right());
      if (right_get != nullptr) {
        std::optional<IndexJoinMatch> match = MatchUniqueIndexJoin(
            right_get->table(), left_keys, right_keys);
        if (match.has_value()) {
          UNIQOPT_ASSIGN_OR_RETURN(const Table* right_table,
                                   db_.GetTable(right_get->table().name()));
          UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr left,
                                   Lower(product->left()));
          if (!left_only.empty()) {
            left = OperatorPtr(new FilterOp(
                std::move(left), Expr::MakeAnd(std::move(left_only))));
          }
          ExprPtr right_filter =
              right_only.empty() ? nullptr
                                 : Expr::MakeAnd(std::move(right_only));
          ExprPtr res = residual.empty()
                            ? nullptr
                            : Expr::MakeAnd(std::move(residual));
          return OperatorPtr(new UniqueIndexJoinOp(
              std::move(left), right_table, right_get->schema(),
              match->key_index, std::move(match->left_keys),
              std::move(right_filter), std::move(res),
              KeyDisplayName(right_get->table(), match->key_index)));
        }
      }
    }
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr left, Lower(product->left()));
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr right, Lower(product->right()));
    if (!left_only.empty()) {
      left = OperatorPtr(
          new FilterOp(std::move(left), Expr::MakeAnd(std::move(left_only))));
    }
    if (!right_only.empty()) {
      right = OperatorPtr(new FilterOp(std::move(right),
                                       Expr::MakeAnd(std::move(right_only))));
    }
    if (!left_keys.empty()) {
      ExprPtr res = residual.empty() ? nullptr
                                     : Expr::MakeAnd(std::move(residual));
      if (hooks_ != nullptr) {
        // All worker lowerings hit this node (pointer identity — plan
        // nodes are shared, not copied, across lowerings), so the first
        // one creates the shared build and the rest reuse it.
        std::shared_ptr<SharedJoinBuild>& build =
            hooks_->shared_builds[&node];
        if (build == nullptr) {
          build = std::make_shared<SharedJoinBuild>(hooks_->build_partitions);
        }
        return OperatorPtr(new SharedHashJoinProbeOp(
            std::move(left), std::move(right), std::move(left_keys),
            std::move(right_keys), std::move(res), build));
      }
      return OperatorPtr(new HashJoinOp(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys),
                                        std::move(res)));
    }
    OperatorPtr join(
        new NestedLoopProductOp(std::move(left), std::move(right)));
    if (residual.empty()) return join;
    return OperatorPtr(
        new FilterOp(std::move(join), Expr::MakeAnd(std::move(residual))));
  }

  Result<OperatorPtr> LowerExists(const ExistsNode& node) {
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr outer, Lower(node.outer()));
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr inner, Lower(node.sub()));
    size_t outer_width = node.outer()->schema().num_columns();
    if (options_.join == PhysicalOptions::JoinStrategy::kHash) {
      std::vector<size_t> outer_keys;
      std::vector<size_t> inner_keys;
      std::vector<ExprPtr> residual;
      for (const ExprPtr& conj : FlattenAnd(node.correlation())) {
        size_t oc = 0;
        size_t ic = 0;
        if (ExtractEquiPair(conj, outer_width, &oc, &ic)) {
          outer_keys.push_back(oc);
          inner_keys.push_back(ic);
        } else {
          residual.push_back(conj);
        }
      }
      if (!outer_keys.empty()) {
        ExprPtr res = residual.empty() ? nullptr
                                       : Expr::MakeAnd(std::move(residual));
        return OperatorPtr(new HashSemiJoinOp(
            std::move(outer), std::move(inner), std::move(outer_keys),
            std::move(inner_keys), std::move(res), node.negated()));
      }
    }
    return OperatorPtr(new NestedLoopSemiJoinOp(std::move(outer),
                                                std::move(inner),
                                                node.correlation(),
                                                node.negated()));
  }

  Result<OperatorPtr> LowerSetOp(const SetOpNode& node) {
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr left, Lower(node.left()));
    UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr right, Lower(node.right()));
    if (options_.sort_merge_intersect &&
        node.op() == SetOpAlgebra::kIntersect &&
        node.mode() == DuplicateMode::kDist) {
      return OperatorPtr(
          new SortMergeIntersectOp(std::move(left), std::move(right)));
    }
    return OperatorPtr(
        new SetOpOp(node.op(), node.mode(), std::move(left),
                    std::move(right)));
  }

  /// Rebases a right-side-only conjunct from product coordinates into the
  /// right child's own coordinates.
  static ExprPtr ShiftColumnsDown(const ExprPtr& expr, size_t left_width) {
    size_t max_col = expr->MaxColumnIndexPlusOne();
    std::vector<size_t> mapping(max_col, 0);
    for (size_t i = left_width; i < max_col; ++i) mapping[i] = i - left_width;
    return RemapColumns(expr, mapping);
  }

  const Database& db_;
  const PhysicalOptions& options_;
  ExecProfile* profile_;
  ParallelLoweringHooks* hooks_;
  int depth_ = 0;
};

}  // namespace

Result<OperatorPtr> CreatePhysicalPlan(const PlanPtr& plan,
                                       const Database& db,
                                       const PhysicalOptions& options,
                                       ExecProfile* profile,
                                       ParallelLoweringHooks* hooks) {
  Lowering lowering(db, options, profile, hooks);
  return lowering.Lower(plan);
}

Result<std::vector<Row>> ExecutePlan(const PlanPtr& plan, const Database& db,
                                     ExecContext* ctx,
                                     const PhysicalOptions& options,
                                     ExecProfile* profile) {
  if (options.dop > 1) {
    UNIQOPT_ASSIGN_OR_RETURN(
        std::optional<std::vector<Row>> parallel,
        TryParallelExecute(plan, db, ctx, options, profile));
    if (parallel.has_value()) return std::move(*parallel);
    // Unsupported plan shape: fall through to the serial executor.
  }
  ctx->batch_size = options.batch_size;
  UNIQOPT_ASSIGN_OR_RETURN(OperatorPtr root,
                           CreatePhysicalPlan(plan, db, options, profile));
  return ExecuteToVector(root.get(), ctx);
}

}  // namespace uniqopt
