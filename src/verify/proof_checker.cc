#include "verify/proof_checker.h"

#include <optional>
#include <string>
#include <vector>

#include "analysis/shape.h"

namespace uniqopt {
namespace verify {

namespace {

void AddViolation(VerifyReport* report, ViolationCode code, std::string message,
                  std::string context = {}) {
  Violation v;
  v.analyzer = Analyzer::kProofChecker;
  v.code = code;
  v.message = std::move(message);
  v.context = std::move(context);
  report->violations.push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// Reference implementation. Deliberately naive and self-contained: it
// flattens conjunctions itself, classifies atoms by direct ExprKind
// inspection (no shared ClassifyAtom, no CNF normalizer), and closes
// with a quadratic fixpoint. Its deductive power is a subset of the
// production Algorithm 1 (which CNF-normalizes nested predicates
// first), so reference-YES must imply production-YES; the converse
// holds on the conjunctive WHERE clauses this grammar produces.
// ---------------------------------------------------------------------------

void FlattenConjunct(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : e->children()) FlattenConjunct(c, out);
    return;
  }
  out->push_back(e);
}

struct RefAtom {
  bool is_type2 = false;
  size_t column = 0;
  size_t other_column = 0;  // Type 2 only
};

std::optional<RefAtom> ClassifyReferenceAtom(const ExprPtr& e) {
  if (e->kind() != ExprKind::kComparison ||
      e->compare_op() != CompareOp::kEq || e->num_children() != 2) {
    return std::nullopt;
  }
  const ExprPtr& l = e->child(0);
  const ExprPtr& r = e->child(1);
  bool l_col = l->kind() == ExprKind::kColumnRef;
  bool r_col = r->kind() == ExprKind::kColumnRef;
  bool l_const =
      l->kind() == ExprKind::kLiteral || l->kind() == ExprKind::kHostVar;
  bool r_const =
      r->kind() == ExprKind::kLiteral || r->kind() == ExprKind::kHostVar;
  RefAtom atom;
  if (l_col && r_col) {
    atom.is_type2 = true;
    atom.column = l->column_index();
    atom.other_column = r->column_index();
    return atom;
  }
  if (l_col && r_const) {
    atom.column = l->column_index();
    return atom;
  }
  if (r_col && l_const) {
    atom.column = r->column_index();
    return atom;
  }
  return std::nullopt;
}

}  // namespace

AttributeSet ReferenceClosure(const std::vector<ExprPtr>& conjuncts,
                              const AttributeSet& initially_bound,
                              const AnalysisOptions& options,
                              bool* any_equality_kept) {
  std::vector<ExprPtr> flat;
  for (const ExprPtr& c : conjuncts) FlattenConjunct(c, &flat);
  std::vector<RefAtom> atoms;
  for (const ExprPtr& c : flat) {
    if (c->IsTrueLiteral()) continue;
    std::optional<RefAtom> atom = ClassifyReferenceAtom(c);
    if (!atom.has_value()) continue;
    if (!atom->is_type2 && !options.bind_constants) continue;
    if (atom->is_type2 && !options.use_column_equivalence) continue;
    atoms.push_back(*atom);
  }
  if (any_equality_kept != nullptr) *any_equality_kept = !atoms.empty();

  AttributeSet bound = initially_bound;
  for (const RefAtom& atom : atoms) {
    if (!atom.is_type2) bound.Add(atom.column);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RefAtom& atom : atoms) {
      if (!atom.is_type2) continue;
      if (bound.Contains(atom.column) && !bound.Contains(atom.other_column)) {
        bound.Add(atom.other_column);
        changed = true;
      } else if (bound.Contains(atom.other_column) &&
                 !bound.Contains(atom.column)) {
        bound.Add(atom.column);
        changed = true;
      }
    }
  }
  return bound;
}

namespace {

/// Exhaustive key-coverage scan: every FROM table of `shape` must have
/// at least one candidate key whose (shifted by `extra_shift`) columns
/// all lie in `bound`. Unlike the production loop there is no early
/// exit — every key of every table is tested.
bool AllTablesKeyCovered(const SpecShape& shape, const AttributeSet& bound,
                         const Algorithm1Options& options,
                         size_t extra_shift) {
  bool all_covered = true;
  for (const SpecShape::BaseTable& bt : shape.tables) {
    const TableDef& table = bt.get->table();
    bool covered = false;
    for (const KeyConstraint& key : table.keys()) {
      if (key.kind == KeyKind::kUnique && !options.use_unique_keys) continue;
      bool key_covered = true;
      for (size_t col : key.columns) {
        key_covered =
            key_covered && bound.Contains(extra_shift + bt.offset + col);
      }
      covered = covered || key_covered;
    }
    all_covered = all_covered && covered;
  }
  return all_covered;
}

/// Reference Algorithm 1: YES iff the closure of the projection
/// attributes under the specification's equalities covers a candidate
/// key of every FROM table. nullopt when the plan is not a
/// select-project-product specification the reference can decompose.
std::optional<bool> ReferenceAlgorithm1(const PlanPtr& projection,
                                        const Algorithm1Options& options) {
  Result<SpecShape> shape = ExtractSpecShape(projection);
  if (!shape.ok()) return std::nullopt;
  AttributeSet initially =
      AttributeSet::FromVector(shape->project->columns());
  bool any_kept = false;
  AttributeSet bound =
      ReferenceClosure(shape->predicates, initially, options, &any_kept);
  if (!any_kept && options.verbatim_line10) return false;
  return AllTablesKeyCovered(*shape, bound, options, /*extra_shift=*/0);
}

/// Reference Theorem 2: with every outer column bound, the closure over
/// the correlation plus the inner block's own predicates must cover a
/// candidate key of every inner table — then at most one inner row can
/// match each outer row. nullopt when the inner block is not
/// decomposable.
std::optional<bool> ReferenceTheorem2(const ExistsNode& exists,
                                      const Algorithm1Options& options) {
  if (exists.negated()) return std::nullopt;
  size_t outer_width = exists.outer()->schema().num_columns();
  Result<SpecShape> inner = ExtractProductShape(exists.sub());
  if (!inner.ok()) return std::nullopt;
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& pred : inner->predicates) {
    conjuncts.push_back(ShiftColumns(pred, outer_width));
  }
  conjuncts.push_back(exists.correlation());
  AttributeSet bound = ReferenceClosure(
      conjuncts, AttributeSet::AllUpTo(outer_width), options, nullptr);
  return AllTablesKeyCovered(*inner, bound, options, outer_width);
}

/// Reference GROUP-BY-on-key: with the group columns bound, the closure
/// over the input's predicates must cover a key of every input table,
/// i.e. each group holds exactly one row.
std::optional<bool> ReferenceGroupOnKey(const AggregateNode& agg,
                                        const Algorithm1Options& options) {
  Result<SpecShape> shape = ExtractProductShape(agg.input());
  if (!shape.ok()) return std::nullopt;
  AttributeSet bound =
      ReferenceClosure(shape->predicates,
                       AttributeSet::FromVector(agg.group_columns()), options,
                       nullptr);
  return AllTablesKeyCovered(*shape, bound, options, /*extra_shift=*/0);
}

}  // namespace

bool ReferenceDuplicateFree(const PlanPtr& plan,
                            const Algorithm1Options& options) {
  switch (plan->kind()) {
    case PlanKind::kGet: {
      const TableDef& table = As<GetNode>(plan)->table();
      for (const KeyConstraint& key : table.keys()) {
        if (key.kind == KeyKind::kUnique && !options.use_unique_keys) {
          continue;
        }
        return true;
      }
      return false;
    }
    case PlanKind::kSelect:
      // A selection only removes rows; key-freeness of the input holds.
      // (The reference forgoes harvesting new constants here — weaker
      // than production, still sound.)
      return ReferenceDuplicateFree(As<SelectNode>(plan)->input(), options);
    case PlanKind::kProject: {
      const ProjectNode& proj = *As<ProjectNode>(plan);
      if (proj.mode() == DuplicateMode::kDist) return true;
      return ReferenceAlgorithm1(plan, options).value_or(false);
    }
    case PlanKind::kProduct:
      // Distinct pairs of distinct rows are distinct.
      return ReferenceDuplicateFree(As<ProductNode>(plan)->left(), options) &&
             ReferenceDuplicateFree(As<ProductNode>(plan)->right(), options);
    case PlanKind::kExists:
      // A semi/anti join filters the outer rows.
      return ReferenceDuplicateFree(As<ExistsNode>(plan)->outer(), options);
    case PlanKind::kSetOp: {
      const SetOpNode& setop = *As<SetOpNode>(plan);
      if (setop.mode() == DuplicateMode::kDist) return true;
      // ∩_All / −_All output multiplicities are bounded by the left
      // operand's.
      return ReferenceDuplicateFree(setop.left(), options);
    }
    case PlanKind::kAggregate:
      // The group columns key the output; a global aggregate yields a
      // single row.
      return true;
  }
  return false;
}

namespace {

/// Internal-consistency lint of a recorded ProofTrace: a key outcome's
/// `covered` flag must agree with its missing-column list, and a
/// recorded proof must state a conclusion.
void CheckProofConsistency(const ProofTrace& proof, const char* what,
                           VerifyReport* report) {
  if (!proof.recorded) return;
  ++report->proofs_checked;
  if (proof.conclusion.empty()) {
    AddViolation(report, ViolationCode::kProofWithoutConclusion,
                 std::string(what) + " recorded a proof with no conclusion");
  }
  for (const ProofKeyOutcome& key : proof.keys) {
    if (key.covered != key.missing_columns.empty()) {
      AddViolation(report, ViolationCode::kProofKeyOutcomeInconsistent,
                   std::string(what) + ": key " + key.key_name + " of " +
                       key.table + " marked " +
                       (key.covered ? "covered" : "not covered") +
                       " but its missing-column list says otherwise");
    }
  }
}

void CheckDivergence(std::optional<bool> reference, const char* claim,
                     const std::string& description, VerifyReport* report) {
  if (!reference.has_value()) {
    AddViolation(report, ViolationCode::kProofNotRecheckable,
                 std::string(claim) +
                     ": the reference implementation could not decompose "
                     "the evidence subtree",
                 description);
    return;
  }
  if (!*reference) {
    AddViolation(report, ViolationCode::kProofDivergence,
                 std::string(claim) +
                     ": production proved the condition but the reference "
                     "implementation cannot reproduce the proof",
                 description);
  }
}

void CheckRewriteProof(const AppliedRewrite& r,
                       const Algorithm1Options& options,
                       VerifyReport* report) {
  const char* rule = RewriteRuleIdToString(r.rule);
  CheckProofConsistency(r.evidence.proof, rule, report);
  const PlanPtr& before = r.evidence.before;
  const PlanPtr& after = r.evidence.after;
  if (before == nullptr || after == nullptr) return;  // lint reports this
  switch (r.rule) {
    case RewriteRuleId::kRemoveRedundantDistinct: {
      if (const ProjectNode* proj = As<ProjectNode>(before)) {
        if (proj->mode() != DuplicateMode::kDist) {
          AddViolation(report, ViolationCode::kProofClaimMismatch,
                       std::string(rule) +
                           " evidence subtree is not a DISTINCT projection",
                       before->ToString());
          return;
        }
        // The claim is that the ALL-mode replacement is duplicate-free.
        // Try the structural judgment first (it also covers GROUP BY
        // inputs Algorithm 1 cannot decompose); when it fails, a
        // recorded Algorithm 1 proof must be reproducible by the
        // reference closure. A claim proven by the stronger FD detector
        // carries no Algorithm 1 proof and is out of the naive
        // reference's deductive reach — the lint still enforces that
        // its evidence facts are present.
        if (after != nullptr && ReferenceDuplicateFree(after, options)) {
          return;
        }
        if (r.evidence.proof.recorded) {
          CheckDivergence(ReferenceAlgorithm1(before, options),
                          "Theorem 1 (Algorithm 1)", r.description, report);
        }
        return;
      }
      // ∩_Dist → ∩_All / −_Dist → −_All: some operand is duplicate-free.
      if (const SetOpNode* setop = As<SetOpNode>(after)) {
        bool ok = ReferenceDuplicateFree(setop->left(), options) ||
                  ReferenceDuplicateFree(setop->right(), options);
        CheckDivergence(ok, "set-operation DISTINCT removal", r.description,
                        report);
        return;
      }
      AddViolation(report, ViolationCode::kProofClaimMismatch,
                   std::string(rule) +
                       " evidence matches neither a DISTINCT projection nor "
                       "a set operation",
                   before->ToString());
      return;
    }
    case RewriteRuleId::kSubqueryToJoin: {
      // The evidence carries the full π(EXISTS) subtree; accept a bare
      // ExistsNode too (older producers).
      const ExistsNode* exists = As<ExistsNode>(before);
      if (exists == nullptr) {
        if (const auto* proj = As<ProjectNode>(before)) {
          exists = As<ExistsNode>(proj->input());
        }
      }
      if (exists == nullptr) {
        AddViolation(report, ViolationCode::kProofClaimMismatch,
                     std::string(rule) +
                         " evidence subtree is not an existential subquery",
                     before->ToString());
        return;
      }
      CheckDivergence(ReferenceTheorem2(*exists, options), "Theorem 2",
                      r.description, report);
      return;
    }
    case RewriteRuleId::kJoinToSubquery: {
      // Only the ALL-mode conversion rests on a Theorem 2 proof.
      if (!r.evidence.proof.recorded) return;
      const ExistsNode* exists = As<ExistsNode>(after);
      if (exists == nullptr) {
        if (const auto* proj = As<ProjectNode>(after)) {
          exists = As<ExistsNode>(proj->input());
        }
      }
      if (exists == nullptr) {
        AddViolation(report, ViolationCode::kProofClaimMismatch,
                     std::string(rule) +
                         " evidence subtree is not an existential subquery",
                     after->ToString());
        return;
      }
      CheckDivergence(ReferenceTheorem2(*exists, options),
                      "Theorem 2 (join direction)", r.description, report);
      return;
    }
    case RewriteRuleId::kIntersectToExists:
    case RewriteRuleId::kIntersectAllToExists:
    case RewriteRuleId::kExceptToNotExists: {
      const ExistsNode* exists = As<ExistsNode>(after);
      if (exists == nullptr) {
        AddViolation(report, ViolationCode::kProofClaimMismatch,
                     std::string(rule) + " did not produce an EXISTS node",
                     after->ToString());
        return;
      }
      // Theorem 3 / Corollary 2: the surviving operand (the EXISTS
      // outer) must be duplicate-free.
      CheckDivergence(ReferenceDuplicateFree(exists->outer(), options),
                      "Theorem 3 operand duplicate-freeness", r.description,
                      report);
      return;
    }
    case RewriteRuleId::kExistsToIntersect: {
      const SetOpNode* setop = As<SetOpNode>(after);
      if (setop == nullptr) {
        AddViolation(report, ViolationCode::kProofClaimMismatch,
                     std::string(rule) + " did not produce a set operation",
                     after->ToString());
        return;
      }
      CheckDivergence(ReferenceDuplicateFree(setop->left(), options),
                      "EXISTS-to-INTERSECT outer duplicate-freeness",
                      r.description, report);
      return;
    }
    case RewriteRuleId::kEliminateGroupByOnKey: {
      const AggregateNode* agg = As<AggregateNode>(before);
      if (agg == nullptr) {
        AddViolation(report, ViolationCode::kProofClaimMismatch,
                     std::string(rule) +
                         " evidence subtree is not an aggregation",
                     before->ToString());
        return;
      }
      CheckDivergence(ReferenceGroupOnKey(*agg, options),
                      "GROUP-BY-on-key single-row groups", r.description,
                      report);
      return;
    }
    case RewriteRuleId::kSubqueryToDistinctJoin:
    case RewriteRuleId::kJoinElimination:
    case RewriteRuleId::kRemoveImpliedPredicate:
    case RewriteRuleId::kDetectEmptyResult:
      // Gated on evidence the reference has no independent engine for
      // (Corollary 1 derived properties, inclusion dependencies, CHECK
      // implication); the plan lint enforces evidence presence.
      return;
  }
}

}  // namespace

void CheckProofs(const VerifyInput& input, VerifyReport* report) {
  if (input.rewrites != nullptr) {
    for (const AppliedRewrite& r : *input.rewrites) {
      CheckRewriteProof(r, input.options, report);
    }
  }

  // Cross-check the optimizer's standalone DISTINCT verdict against the
  // reference — in both directions. The reference is at most as strong
  // as production (it skips CNF normalization), so reference-YES with
  // production-NO is a definite production bug; the converse marks a
  // proof the reference cannot reproduce.
  if (input.analysis != nullptr && input.original != nullptr &&
      input.analysis->has_distinct &&
      input.analysis->detector == DetectorKind::kAlgorithm1 &&
      input.analysis->proof.recorded) {
    CheckProofConsistency(input.analysis->proof, "DISTINCT analysis", report);
    std::optional<bool> reference =
        ReferenceAlgorithm1(input.original, input.options);
    if (reference.has_value()) {
      if (input.analysis->distinct_unnecessary && !*reference) {
        AddViolation(report, ViolationCode::kProofDivergence,
                     "production Algorithm 1 proved DISTINCT redundant but "
                     "the reference implementation cannot reproduce the "
                     "proof",
                     input.analysis->proof.conclusion);
      } else if (!input.analysis->distinct_unnecessary && *reference &&
                 input.analysis->proof.conclusion.find("budget") ==
                     std::string::npos) {
        // (A budget-exceeded NO is a deliberate production give-up, not
        // a lost derivation.)
        AddViolation(report, ViolationCode::kProofDivergence,
                     "the naive reference closure proves DISTINCT redundant "
                     "but production Algorithm 1 answered NO — production "
                     "lost a derivable binding",
                     input.analysis->proof.conclusion);
      }
    }
  }
}

}  // namespace verify
}  // namespace uniqopt
