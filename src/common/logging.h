#ifndef UNIQOPT_COMMON_LOGGING_H_
#define UNIQOPT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace uniqopt {

/// Internal-invariant check. Unlike assert(), stays on in release builds:
/// the analyzer must never silently return a wrong uniqueness verdict.
#define UNIQOPT_DCHECK(condition)                                        \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "UNIQOPT_DCHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #condition);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define UNIQOPT_DCHECK_MSG(condition, msg)                               \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "UNIQOPT_DCHECK failed at %s:%d: %s (%s)\n",  \
                   __FILE__, __LINE__, #condition, msg);                 \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

}  // namespace uniqopt

#endif  // UNIQOPT_COMMON_LOGGING_H_
