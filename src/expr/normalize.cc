#include "expr/normalize.h"

#include "common/logging.h"

namespace uniqopt {

namespace {

ExprPtr NegateAtom(const ExprPtr& atom) {
  switch (atom->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(NegateCompareOp(atom->compare_op()),
                           atom->child(0), atom->child(1));
    case ExprKind::kIsNull:
      return Expr::IsNotNull(atom->child(0));
    case ExprKind::kIsNotNull:
      return Expr::IsNull(atom->child(0));
    case ExprKind::kLiteral:
      if (atom->IsTrueLiteral()) return FalseLiteral();
      if (atom->IsFalseLiteral()) return TrueLiteral();
      return Expr::MakeNot(atom);
    default:
      // Boolean-typed column refs / host vars: keep the NOT.
      return Expr::MakeNot(atom);
  }
}

ExprPtr ToNnfImpl(const ExprPtr& expr, bool negated) {
  switch (expr->kind()) {
    case ExprKind::kNot:
      return ToNnfImpl(expr->child(0), !negated);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(expr->num_children());
      for (const ExprPtr& c : expr->children()) {
        children.push_back(ToNnfImpl(c, negated));
      }
      bool make_and = (expr->kind() == ExprKind::kAnd) != negated;
      return make_and ? Expr::MakeAnd(std::move(children))
                      : Expr::MakeOr(std::move(children));
    }
    default:
      return negated ? NegateAtom(expr) : expr;
  }
}

/// A "clause list" representation: outer vector joined by `outer_is_and ?
/// AND : OR`, inner vectors joined by the dual connective.
using ClauseList = std::vector<std::vector<ExprPtr>>;

/// Distributes an NNF expression into clause-list form. When
/// `outer_is_and` is true the result is CNF, otherwise DNF.
Status Distribute(const ExprPtr& expr, bool outer_is_and, size_t budget,
                  ClauseList* out) {
  // The dual connective distributes; the matching connective concatenates.
  ExprKind concat_kind = outer_is_and ? ExprKind::kAnd : ExprKind::kOr;
  ExprKind cross_kind = outer_is_and ? ExprKind::kOr : ExprKind::kAnd;
  if (expr->kind() == concat_kind) {
    for (const ExprPtr& c : expr->children()) {
      UNIQOPT_RETURN_NOT_OK(Distribute(c, outer_is_and, budget, out));
      if (out->size() > budget) {
        return Status::LimitExceeded("normalization clause budget exceeded");
      }
    }
    return Status::OK();
  }
  if (expr->kind() == cross_kind) {
    // Cross product of the children's clause lists.
    ClauseList acc;
    acc.push_back({});
    for (const ExprPtr& c : expr->children()) {
      ClauseList child_clauses;
      UNIQOPT_RETURN_NOT_OK(
          Distribute(c, outer_is_and, budget, &child_clauses));
      ClauseList next;
      if (acc.size() * child_clauses.size() > budget) {
        return Status::LimitExceeded("normalization clause budget exceeded");
      }
      next.reserve(acc.size() * child_clauses.size());
      for (const auto& a : acc) {
        for (const auto& b : child_clauses) {
          std::vector<ExprPtr> merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          next.push_back(std::move(merged));
        }
      }
      acc = std::move(next);
    }
    for (auto& clause : acc) out->push_back(std::move(clause));
    return Status::OK();
  }
  // Atom.
  out->push_back({expr});
  return Status::OK();
}

ExprPtr AssembleClauses(ClauseList clauses, bool outer_is_and) {
  std::vector<ExprPtr> outer;
  outer.reserve(clauses.size());
  for (auto& clause : clauses) {
    outer.push_back(outer_is_and ? Expr::MakeOr(std::move(clause))
                                 : Expr::MakeAnd(std::move(clause)));
  }
  return outer_is_and ? Expr::MakeAnd(std::move(outer))
                      : Expr::MakeOr(std::move(outer));
}

Result<ExprPtr> Normalize(const ExprPtr& expr, bool cnf, size_t budget) {
  ExprPtr nnf = ToNnf(expr);
  ClauseList clauses;
  Status st = Distribute(nnf, cnf, budget, &clauses);
  if (!st.ok()) return st;
  return AssembleClauses(std::move(clauses), cnf);
}

}  // namespace

ExprPtr ToNnf(const ExprPtr& expr) { return ToNnfImpl(expr, false); }

Result<ExprPtr> ToCnf(const ExprPtr& expr, size_t budget) {
  return Normalize(expr, /*cnf=*/true, budget);
}

Result<ExprPtr> ToDnf(const ExprPtr& expr, size_t budget) {
  return Normalize(expr, /*cnf=*/false, budget);
}

std::vector<ExprPtr> FlattenAnd(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kAnd) return expr->children();
  return {expr};
}

std::vector<ExprPtr> FlattenOr(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kOr) return expr->children();
  return {expr};
}

}  // namespace uniqopt
