#ifndef UNIQOPT_UNIQOPT_UNIQOPT_H_
#define UNIQOPT_UNIQOPT_UNIQOPT_H_

/// \mainpage uniqopt — Exploiting Uniqueness in Query Optimization
///
/// Umbrella header for the public API. The library reproduces
/// Paulley & Larson (ICDE 1994):
///  - `AnalyzeDistinct*` — Theorem 1's uniqueness condition via the
///    paper's Algorithm 1 and an FD-propagation generalization;
///  - `RewritePlan` — the §5/§6 semantic transformations;
///  - `Optimizer` — the parse → bind → rewrite → execute facade;
///  - `ims::` / `oodb::` — the §6 navigational back ends with cost
///    accounting.

#include "analysis/properties.h"      // IWYU pragma: export
#include "analysis/subquery.h"        // IWYU pragma: export
#include "analysis/uniqueness.h"      // IWYU pragma: export
#include "catalog/catalog.h"          // IWYU pragma: export
#include "exec/planner.h"             // IWYU pragma: export
#include "ims/gateway.h"              // IWYU pragma: export
#include "obs/advisor.h"              // IWYU pragma: export
#include "oodb/navigator.h"           // IWYU pragma: export
#include "parser/parser.h"            // IWYU pragma: export
#include "plan/binder.h"              // IWYU pragma: export
#include "rewrite/rewriter.h"         // IWYU pragma: export
#include "storage/table.h"            // IWYU pragma: export
#include "uniqopt/advisor_replay.h"   // IWYU pragma: export
#include "uniqopt/optimizer.h"        // IWYU pragma: export
#include "workload/supplier_schema.h" // IWYU pragma: export

#endif  // UNIQOPT_UNIQOPT_UNIQOPT_H_
