file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_storage.dir/table.cc.o"
  "CMakeFiles/uniqopt_storage.dir/table.cc.o.d"
  "libuniqopt_storage.a"
  "libuniqopt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
