file(REMOVE_RECURSE
  "CMakeFiles/uniqopt_plan.dir/binder.cc.o"
  "CMakeFiles/uniqopt_plan.dir/binder.cc.o.d"
  "CMakeFiles/uniqopt_plan.dir/plan.cc.o"
  "CMakeFiles/uniqopt_plan.dir/plan.cc.o.d"
  "libuniqopt_plan.a"
  "libuniqopt_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniqopt_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
